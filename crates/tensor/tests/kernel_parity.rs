//! Kernel-parity contract for the blocked/parallel compute backend: every
//! transpose flavour of the packed GEMM and the GEMM-lowered convolutions
//! must match scalar references across odd shapes, transposes and the
//! batch sizes DP-SGD cares about (1, 2, 33).
//!
//! Tolerance note: within one K panel the blocked kernel accumulates in
//! the same k-ascending order as the reference, but it uses fused
//! multiply-add and splits K beyond the panel length, so parity is pinned
//! to a K-scaled tolerance rather than bit equality (the contract the
//! issue allows where reassociation is in play). The convolution
//! references below are direct loop nests, independent of any GEMM.

use diva_tensor::{
    conv2d, conv2d_backward_data, conv2d_backward_weight, matmul, matmul_nt, matmul_reference,
    matmul_tn, matmul_tt, Conv2dGeom, DivaRng, Tensor,
};

/// Absolute tolerance for accumulations of length `k` over uniform(-1,1)
/// data: FMA-vs-separate rounding and panel reassociation both scale with
/// the accumulation length.
fn tol(k: usize) -> f32 {
    1e-6 * (k as f32).max(16.0)
}

/// Odd, boundary-straddling GEMM shapes; several exceed the blocked-path
/// threshold and the K panel length (768) so multi-panel accumulation and
/// zero-padded tail strips are all exercised.
const SHAPES: [(usize, usize, usize); 7] = [
    (1, 1, 1),
    (33, 7, 5),
    (48, 48, 48),
    (65, 129, 33),
    (97, 803, 51),
    (256, 256, 256),
    (129, 1031, 17),
];

#[test]
fn matmul_matches_reference_on_odd_shapes() {
    let mut rng = DivaRng::seed_from_u64(1);
    for &(m, k, n) in &SHAPES {
        let a = Tensor::uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng);
        let fast = matmul(&a, &b);
        let slow = matmul_reference(&a, &b);
        let diff = fast.max_abs_diff(&slow);
        assert!(diff < tol(k), "({m},{k},{n}): diff {diff}");
    }
}

#[test]
fn transpose_flavours_match_reference_on_odd_shapes() {
    let mut rng = DivaRng::seed_from_u64(2);
    for &(m, k, n) in &SHAPES {
        let a = Tensor::uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng);
        let slow = matmul_reference(&a, &b);
        let at = a.transpose();
        let bt = b.transpose();
        for (name, fast) in [
            ("tn", matmul_tn(&at, &b)),
            ("nt", matmul_nt(&a, &bt)),
            ("tt", matmul_tt(&at, &bt)),
        ] {
            let diff = fast.max_abs_diff(&slow);
            assert!(diff < tol(k), "{name} ({m},{k},{n}): diff {diff}");
        }
    }
}

/// Direct (loop-nest) convolution oracle, independent of any GEMM.
fn conv2d_direct(input: &Tensor, weight: &Tensor, geom: &Conv2dGeom) -> Tensor {
    let n = input.shape().dim(0);
    let (p, q) = geom.out_hw();
    let mut out = Tensor::zeros(&[n, geom.cout, p, q]);
    for ni in 0..n {
        for co in 0..geom.cout {
            for pi in 0..p {
                for qi in 0..q {
                    let mut acc = 0.0f32;
                    for ci in 0..geom.cin {
                        for ki in 0..geom.k {
                            for kj in 0..geom.k {
                                let ih = (pi * geom.stride + ki) as isize - geom.pad as isize;
                                let iw = (qi * geom.stride + kj) as isize - geom.pad as isize;
                                if ih < 0
                                    || iw < 0
                                    || ih >= geom.in_h as isize
                                    || iw >= geom.in_w as isize
                                {
                                    continue;
                                }
                                acc += input[&[ni, ci, ih as usize, iw as usize]]
                                    * weight[&[co, ci, ki, kj]];
                            }
                        }
                    }
                    out[&[ni, co, pi, qi]] = acc;
                }
            }
        }
    }
    out
}

/// Direct weight-gradient oracle: `gw = Σ_n x ⋆ gy` by definition.
fn conv2d_backward_weight_direct(input: &Tensor, grad_out: &Tensor, geom: &Conv2dGeom) -> Tensor {
    let n = input.shape().dim(0);
    let (p, q) = geom.out_hw();
    let mut gw = Tensor::zeros(&[geom.cout, geom.cin, geom.k, geom.k]);
    for ni in 0..n {
        for co in 0..geom.cout {
            for ci in 0..geom.cin {
                for ki in 0..geom.k {
                    for kj in 0..geom.k {
                        let mut acc = 0.0f32;
                        for pi in 0..p {
                            for qi in 0..q {
                                let ih = (pi * geom.stride + ki) as isize - geom.pad as isize;
                                let iw = (qi * geom.stride + kj) as isize - geom.pad as isize;
                                if ih < 0
                                    || iw < 0
                                    || ih >= geom.in_h as isize
                                    || iw >= geom.in_w as isize
                                {
                                    continue;
                                }
                                acc += input[&[ni, ci, ih as usize, iw as usize]]
                                    * grad_out[&[ni, co, pi, qi]];
                            }
                        }
                        gw[&[co, ci, ki, kj]] += acc;
                    }
                }
            }
        }
    }
    gw
}

/// Direct data-gradient oracle: full correlation of `gy` with the filter.
fn conv2d_backward_data_direct(grad_out: &Tensor, weight: &Tensor, geom: &Conv2dGeom) -> Tensor {
    let n = grad_out.shape().dim(0);
    let (p, q) = geom.out_hw();
    let mut gx = Tensor::zeros(&[n, geom.cin, geom.in_h, geom.in_w]);
    for ni in 0..n {
        for co in 0..geom.cout {
            for pi in 0..p {
                for qi in 0..q {
                    let g = grad_out[&[ni, co, pi, qi]];
                    for ci in 0..geom.cin {
                        for ki in 0..geom.k {
                            for kj in 0..geom.k {
                                let ih = (pi * geom.stride + ki) as isize - geom.pad as isize;
                                let iw = (qi * geom.stride + kj) as isize - geom.pad as isize;
                                if ih < 0
                                    || iw < 0
                                    || ih >= geom.in_h as isize
                                    || iw >= geom.in_w as isize
                                {
                                    continue;
                                }
                                gx[&[ni, ci, ih as usize, iw as usize]] +=
                                    g * weight[&[co, ci, ki, kj]];
                            }
                        }
                    }
                }
            }
        }
    }
    gx
}

/// Convolution geometries with odd channel counts, strides and pads; the
/// batch sizes 1, 2 and 33 cover the degenerate, the minimal-parallel and
/// the odd-split cases the DP-SGD batch axis produces.
#[test]
fn conv_kernels_match_direct_loops_across_batches() {
    let geoms = [
        Conv2dGeom::new(3, 5, 3, 1, 1, 9, 7),
        Conv2dGeom::new(2, 4, 3, 2, 1, 8, 8),
        Conv2dGeom::new(5, 3, 1, 1, 0, 6, 6),
    ];
    let mut rng = DivaRng::seed_from_u64(3);
    for geom in &geoms {
        for &batch in &[1usize, 2, 33] {
            let x = Tensor::uniform(
                &[batch, geom.cin, geom.in_h, geom.in_w],
                -1.0,
                1.0,
                &mut rng,
            );
            let w = Tensor::uniform(&[geom.cout, geom.cin, geom.k, geom.k], -0.5, 0.5, &mut rng);
            let (p, q) = geom.out_hw();
            let gy = Tensor::uniform(&[batch, geom.cout, p, q], -1.0, 1.0, &mut rng);

            let f_tol = tol(geom.patch_len());
            let fwd = conv2d(&x, &w, geom);
            let fwd_ref = conv2d_direct(&x, &w, geom);
            let d = fwd.max_abs_diff(&fwd_ref);
            assert!(d < f_tol, "conv2d b={batch} {geom:?}: diff {d}");

            // The weight gradient reduces over B·P·Q terms.
            let w_tol = tol(batch * p * q);
            let gw = conv2d_backward_weight(&x, &gy, geom);
            let gw_ref = conv2d_backward_weight_direct(&x, &gy, geom);
            let d = gw.max_abs_diff(&gw_ref);
            assert!(d < w_tol, "wgrad b={batch} {geom:?}: diff {d}");

            let gx = conv2d_backward_data(&gy, &w, geom);
            let gx_ref = conv2d_backward_data_direct(&gy, &w, geom);
            let d = gx.max_abs_diff(&gx_ref);
            assert!(d < f_tol, "dgrad b={batch} {geom:?}: diff {d}");
        }
    }
}

/// The M-parallel split must be invisible: results are identical for any
/// worker count because each worker owns disjoint output rows and keeps
/// the serial per-element accumulation order.
#[test]
fn parallel_split_is_bitwise_invisible() {
    let mut rng = DivaRng::seed_from_u64(4);
    let a = Tensor::uniform(&[131, 257], -1.0, 1.0, &mut rng);
    let b = Tensor::uniform(&[257, 65], -1.0, 1.0, &mut rng);
    let serial = diva_tensor::Backend::serial().install(|| matmul(&a, &b));
    for threads in [2usize, 3, 7] {
        let par = diva_tensor::Backend::with_threads(threads).install(|| matmul(&a, &b));
        assert_eq!(
            par.max_abs_diff(&serial),
            0.0,
            "thread count {threads} changed GEMM results"
        );
    }
}

/// The full dispatch matrix — explicit-SIMD kernel on/off × threads
/// 1/4/8 × odd blocked-path shapes — must produce bit-identical outputs:
/// every cell performs the same per-element FMA sequence, so neither the
/// kernel choice nor the M-split may show up in a single bit.
///
/// Without the `simd` feature (or on CPUs without AVX2+FMA),
/// `set_simd_enabled` is a no-op and the matrix degenerates to the
/// thread sweep; with it, this is the contract that makes the feature safe
/// to enable in production. The AVX-512 axis works the same way:
/// `set_avx512_enabled(false)` forces the AVX2 arm on AVX-512 hosts, so
/// capable hosts sweep safe × AVX2 × AVX-512; others silently cover what
/// they have. The L1-reorder axis sweeps the interior B-strip grouping
/// on/off — loop order, like the kernel choice, must never show in a bit.
#[test]
fn simd_thread_matrix_is_bit_identical() {
    use diva_tensor::{
        avx512_available, set_avx512_enabled, set_l1_reorder, set_simd_enabled, simd_available,
        Backend,
    };
    // Odd shapes that all route through the blocked/packed path (k >= 16,
    // m*k*n over the threshold), straddling panel and strip boundaries.
    let shapes = [(65usize, 129usize, 33usize), (97, 803, 51), (129, 1031, 17)];
    let mut rng = DivaRng::seed_from_u64(5);
    for &(m, k, n) in &shapes {
        let a = Tensor::uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng);
        // Baseline cell: safe kernel, one thread, default loop order.
        set_simd_enabled(false);
        let baseline = Backend::serial().install(|| matmul(&a, &b));
        for simd in [false, true] {
            if simd && !simd_available() {
                continue;
            }
            set_simd_enabled(simd);
            for avx512 in [false, true] {
                if avx512 && !(simd && avx512_available()) {
                    continue;
                }
                set_avx512_enabled(avx512);
                for reorder in [false, true] {
                    set_l1_reorder(reorder);
                    for threads in [1usize, 4, 8] {
                        let out = Backend::with_threads(threads).install(|| matmul(&a, &b));
                        assert_eq!(
                            out.max_abs_diff(&baseline),
                            0.0,
                            "({m},{k},{n}) simd={simd} avx512={avx512} reorder={reorder} \
                             threads={threads} diverged from baseline"
                        );
                    }
                }
            }
        }
        // Restore the default dispatch.
        set_simd_enabled(true);
        set_avx512_enabled(true);
        set_l1_reorder(true);
    }
}
