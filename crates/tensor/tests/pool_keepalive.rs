//! Lifecycle contract of the persistent worker pool behind
//! `diva_tensor::parallel`: workers are spawned lazily, parked between
//! regions, reused by later regions (never re-spawned per region, which is
//! what the old `std::thread::scope` design did), and nested regions still
//! degrade to serial execution on the worker they run on.
//!
//! This suite lives in its own integration-test binary so its pool-growth
//! assertions see a process whose pool traffic it fully controls.

use std::collections::HashSet;
use std::sync::Mutex;
use std::thread::ThreadId;

use diva_tensor::parallel::{self, par_map, pool_stats, Backend};

/// The pool is process-global and the test harness runs tests concurrently;
/// every test that asserts on spawn counts takes this lock so another
/// test's pool growth cannot race its before/after reads.
static POOL_LOCK: Mutex<()> = Mutex::new(());

fn pool_guard() -> std::sync::MutexGuard<'static, ()> {
    POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Two back-to-back regions of the same width must reuse the workers the
/// first one spawned: the spawn count stays flat, and across many regions
/// the set of distinct worker threads stays bounded by that count instead
/// of growing per region.
#[test]
fn back_to_back_regions_reuse_workers() {
    const WIDTH: usize = 4;
    const REGIONS: usize = 6;
    let _guard = pool_guard();
    Backend::with_threads(WIDTH).install(|| {
        let caller = std::thread::current().id();
        // Warm-up region: allowed to spawn workers.
        let _ = par_map(WIDTH, |i| i);
        let spawned_after_first = pool_stats().spawned;
        assert!(
            spawned_after_first >= WIDTH - 1,
            "a {WIDTH}-way region needs at least {} workers, pool has {}",
            WIDTH - 1,
            spawned_after_first
        );

        let mut worker_ids: HashSet<ThreadId> = HashSet::new();
        for _ in 0..REGIONS {
            let ids = par_map(WIDTH, |_| std::thread::current().id());
            worker_ids.extend(ids.into_iter().filter(|id| *id != caller));
        }
        let spawned_after_all = pool_stats().spawned;
        assert_eq!(
            spawned_after_first, spawned_after_all,
            "equal-width regions must not grow the pool"
        );
        // Scoped threads would have produced up to REGIONS * (WIDTH - 1)
        // distinct ids; the keep-alive pool draws every region from the
        // same spawned set.
        assert!(
            worker_ids.len() <= spawned_after_all,
            "{} distinct worker threads across {REGIONS} regions, but only {} ever spawned",
            worker_ids.len(),
            spawned_after_all
        );
    });
}

/// A nested parallel region inside a pool worker must not fan out again:
/// it runs serially, on the worker thread itself.
#[test]
fn nested_region_falls_back_to_serial_on_the_worker() {
    Backend::with_threads(4).install(|| {
        let reports = par_map(4, |_| {
            let outer = std::thread::current().id();
            let nested = par_map(4, |_| std::thread::current().id());
            (outer, nested)
        });
        for (outer, nested) in reports {
            for id in nested {
                assert_eq!(id, outer, "nested region escaped its worker thread");
            }
        }
    });
}

/// `prewarm` spawns workers ahead of the first region, and `Backend::prewarm`
/// resolves its configured width the same way its regions will.
#[test]
fn prewarm_spawns_and_parks_workers() {
    let _guard = pool_guard();
    parallel::prewarm(3);
    assert!(pool_stats().spawned >= 2, "prewarm(3) must leave 2 workers");
    Backend::with_threads(6).prewarm();
    let stats = pool_stats();
    assert!(
        stats.spawned >= 5,
        "Backend::with_threads(6).prewarm() must leave 5 workers, have {}",
        stats.spawned
    );
    // Workers are parked, not burning a queue: an immediate region works.
    let out = Backend::with_threads(6).install(|| par_map(12, |i| i * 2));
    assert_eq!(out, (0..12).map(|i| i * 2).collect::<Vec<_>>());
}

/// The fallible region variant: `try_par_map` isolates each item's panic
/// into an `Err` slot — every other item still completes, the region
/// returns normally, and the pool survives without re-spawning.
#[test]
fn try_par_map_isolates_per_item_panics() {
    let _guard = pool_guard();
    Backend::with_threads(4).install(|| {
        let _ = par_map(4, |i| i); // warm up
        let spawned_before = pool_stats().spawned;
        let out = parallel::try_par_map(8, |i| {
            if i % 3 == 0 {
                panic!("injected failure at {i}");
            }
            i * 10
        });
        assert_eq!(out.len(), 8);
        for (i, slot) in out.iter().enumerate() {
            if i % 3 == 0 {
                let msg = slot.as_ref().expect_err("multiples of 3 panic");
                assert_eq!(msg, &format!("injected failure at {i}"));
            } else {
                assert_eq!(slot.as_ref().expect("others succeed"), &(i * 10));
            }
        }
        // The failures stayed inside their slots: the pool is intact and
        // an ordinary region still works on the same workers.
        assert_eq!(par_map(4, |i| i + 1), vec![1, 2, 3, 4]);
        assert_eq!(pool_stats().spawned, spawned_before);
    });
}

/// `try_par_map` is bit-stable across thread counts, including in *which*
/// items fail: failure assignment is data-determined, never
/// scheduling-determined.
#[test]
fn try_par_map_failures_are_thread_count_stable() {
    let run = |threads: usize| {
        Backend::with_threads(threads).install(|| {
            parallel::try_par_map(13, |i| {
                if i % 5 == 2 {
                    panic!("boom {i}");
                }
                i
            })
        })
    };
    assert_eq!(run(1), run(4));
    assert_eq!(run(1), run(8));
}

/// A panic in a pool worker must propagate to the region caller (matching
/// the old scoped behavior) and must not kill the worker: the pool stays
/// usable afterwards without re-spawning.
#[test]
fn worker_panic_propagates_and_pool_survives() {
    let _guard = pool_guard();
    Backend::with_threads(4).install(|| {
        let _ = par_map(4, |i| i); // warm up
        let spawned_before = pool_stats().spawned;
        let result = std::panic::catch_unwind(|| {
            par_map(4, |i| {
                assert!(i != 0, "deliberate test panic");
                i
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool still works, with the same workers.
        let out = par_map(8, |i| i + 1);
        assert_eq!(out, (1..9).collect::<Vec<_>>());
        assert_eq!(
            pool_stats().spawned,
            spawned_before,
            "a panicking task must not cost a worker"
        );
    });
}
