//! Lifecycle contract of the persistent worker pool behind
//! `diva_tensor::parallel`: workers are spawned lazily, parked between
//! regions, reused by later regions (never re-spawned per region, which is
//! what the old `std::thread::scope` design did), and nested regions are
//! scheduled hierarchically — their tasks go on the submitting worker's
//! deque, to be run inline while it waits or stolen by idle siblings, so
//! an inner region inside a pool worker fans out with its configured
//! width instead of degrading to serial.
//!
//! This suite lives in its own integration-test binary so its pool-growth
//! assertions see a process whose pool traffic it fully controls.

use std::collections::HashSet;
use std::sync::Mutex;
use std::thread::ThreadId;

use diva_tensor::parallel::{self, par_map, pool_stats, Backend};

/// The pool is process-global and the test harness runs tests concurrently;
/// every test that asserts on spawn counts takes this lock so another
/// test's pool growth cannot race its before/after reads.
static POOL_LOCK: Mutex<()> = Mutex::new(());

fn pool_guard() -> std::sync::MutexGuard<'static, ()> {
    POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Two back-to-back regions of the same width must reuse the workers the
/// first one spawned: the spawn count stays flat, and across many regions
/// the set of distinct worker threads stays bounded by that count instead
/// of growing per region.
#[test]
fn back_to_back_regions_reuse_workers() {
    const WIDTH: usize = 4;
    const REGIONS: usize = 6;
    let _guard = pool_guard();
    Backend::with_threads(WIDTH).install(|| {
        let caller = std::thread::current().id();
        // Warm-up region: allowed to spawn workers.
        let _ = par_map(WIDTH, |i| i);
        let spawned_after_first = pool_stats().spawned;
        assert!(
            spawned_after_first >= WIDTH - 1,
            "a {WIDTH}-way region needs at least {} workers, pool has {}",
            WIDTH - 1,
            spawned_after_first
        );

        let mut worker_ids: HashSet<ThreadId> = HashSet::new();
        for _ in 0..REGIONS {
            let ids = par_map(WIDTH, |_| std::thread::current().id());
            worker_ids.extend(ids.into_iter().filter(|id| *id != caller));
        }
        let spawned_after_all = pool_stats().spawned;
        assert_eq!(
            spawned_after_first, spawned_after_all,
            "equal-width regions must not grow the pool"
        );
        // Scoped threads would have produced up to REGIONS * (WIDTH - 1)
        // distinct ids; the keep-alive pool draws every region from the
        // same spawned set.
        assert!(
            worker_ids.len() <= spawned_after_all,
            "{} distinct worker threads across {REGIONS} regions, but only {} ever spawned",
            worker_ids.len(),
            spawned_after_all
        );
    });
}

/// Nested regions are scheduled for real: for every outer × inner width
/// combination the nested evaluation must produce exactly the values the
/// serial evaluation would — task-to-data assignment is fixed before
/// execution, so which worker (or the waiting submitter) runs each task
/// cannot leak into the output.
#[test]
fn nested_regions_execute_across_width_matrix() {
    let _guard = pool_guard();
    assert!(
        parallel::nested_parallelism(),
        "hierarchical nested scheduling is the default"
    );
    let expected: Vec<Vec<usize>> = (0..4)
        .map(|i| (0..6).map(|j| i * 100 + j * 7).collect())
        .collect();
    for outer_w in [1usize, 2, 4] {
        for inner_w in [1usize, 2, 4] {
            let got = Backend::with_threads(outer_w).install(|| {
                par_map(4, |i| {
                    Backend::with_threads(inner_w).install(|| par_map(6, |j| i * 100 + j * 7))
                })
            });
            assert_eq!(got, expected, "outer={outer_w} inner={inner_w} diverged");
        }
    }
}

/// The scheduler sees both levels of a two-level region tree: the inner
/// tasks observe region depth 2, the pool's high-water depth counter
/// records it, and the steal / inline-run counters only ever move forward.
#[test]
fn nested_region_depth_and_counters_are_sane() {
    let _guard = pool_guard();
    let before = pool_stats();
    Backend::with_threads(2).install(|| {
        let depths = par_map(2, |_| {
            assert_eq!(parallel::region_depth(), 1, "outer task depth");
            par_map(2, |_| parallel::region_depth())
        });
        assert_eq!(depths, vec![vec![2, 2], vec![2, 2]]);
    });
    let after = pool_stats();
    assert!(
        after.max_depth >= 2,
        "a nested region must raise the pool's depth high-water (got {})",
        after.max_depth
    );
    assert!(
        after.steals >= before.steals,
        "steal counter went backwards"
    );
    assert!(
        after.inline_runs >= before.inline_runs,
        "inline-run counter went backwards"
    );
}

/// A panic inside an *inner* region must re-raise through the outer
/// region to the caller, without wedging either region's latch and
/// without costing the pool a worker.
#[test]
fn panic_in_inner_region_reraises_through_outer() {
    let _guard = pool_guard();
    Backend::with_threads(3).install(|| {
        let _ = par_map(3, |i| i); // warm up
        let spawned_before = pool_stats().spawned;
        let result = std::panic::catch_unwind(|| {
            par_map(3, |i| {
                par_map(3, move |j| {
                    assert!(!(i == 1 && j == 2), "deliberate inner panic");
                    i * 10 + j
                })
            })
        });
        assert!(result.is_err(), "inner panic must reach the outer caller");
        // Both latches resolved and the workers survived: an ordinary
        // two-level region still works, with no replacement spawns.
        let out = par_map(2, |i| par_map(2, move |j| i * 2 + j));
        assert_eq!(out, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(
            pool_stats().spawned,
            spawned_before,
            "a panicking nested region must not cost a worker"
        );
    });
}

/// `prewarm` spawns workers ahead of the first region, and `Backend::prewarm`
/// resolves its configured width the same way its regions will.
#[test]
fn prewarm_spawns_and_parks_workers() {
    let _guard = pool_guard();
    parallel::prewarm(3);
    assert!(pool_stats().spawned >= 2, "prewarm(3) must leave 2 workers");
    Backend::with_threads(6).prewarm();
    let stats = pool_stats();
    assert!(
        stats.spawned >= 5,
        "Backend::with_threads(6).prewarm() must leave 5 workers, have {}",
        stats.spawned
    );
    // Workers are parked, not burning a queue: an immediate region works.
    let out = Backend::with_threads(6).install(|| par_map(12, |i| i * 2));
    assert_eq!(out, (0..12).map(|i| i * 2).collect::<Vec<_>>());
}

/// The fallible region variant: `try_par_map` isolates each item's panic
/// into an `Err` slot — every other item still completes, the region
/// returns normally, and the pool survives without re-spawning.
#[test]
fn try_par_map_isolates_per_item_panics() {
    let _guard = pool_guard();
    Backend::with_threads(4).install(|| {
        let _ = par_map(4, |i| i); // warm up
        let spawned_before = pool_stats().spawned;
        let out = parallel::try_par_map(8, |i| {
            if i % 3 == 0 {
                panic!("injected failure at {i}");
            }
            i * 10
        });
        assert_eq!(out.len(), 8);
        for (i, slot) in out.iter().enumerate() {
            if i % 3 == 0 {
                let msg = slot.as_ref().expect_err("multiples of 3 panic");
                assert_eq!(msg, &format!("injected failure at {i}"));
            } else {
                assert_eq!(slot.as_ref().expect("others succeed"), &(i * 10));
            }
        }
        // The failures stayed inside their slots: the pool is intact and
        // an ordinary region still works on the same workers.
        assert_eq!(par_map(4, |i| i + 1), vec![1, 2, 3, 4]);
        assert_eq!(pool_stats().spawned, spawned_before);
    });
}

/// `try_par_map` is bit-stable across thread counts, including in *which*
/// items fail: failure assignment is data-determined, never
/// scheduling-determined.
#[test]
fn try_par_map_failures_are_thread_count_stable() {
    let run = |threads: usize| {
        Backend::with_threads(threads).install(|| {
            parallel::try_par_map(13, |i| {
                if i % 5 == 2 {
                    panic!("boom {i}");
                }
                i
            })
        })
    };
    assert_eq!(run(1), run(4));
    assert_eq!(run(1), run(8));
}

/// A panic in a pool worker must propagate to the region caller (matching
/// the old scoped behavior) and must not kill the worker: the pool stays
/// usable afterwards without re-spawning.
#[test]
fn worker_panic_propagates_and_pool_survives() {
    let _guard = pool_guard();
    Backend::with_threads(4).install(|| {
        let _ = par_map(4, |i| i); // warm up
        let spawned_before = pool_stats().spawned;
        let result = std::panic::catch_unwind(|| {
            par_map(4, |i| {
                assert!(i != 0, "deliberate test panic");
                i
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool still works, with the same workers.
        let out = par_map(8, |i| i + 1);
        assert_eq!(out, (1..9).collect::<Vec<_>>());
        assert_eq!(
            pool_stats().spawned,
            spawned_before,
            "a panicking task must not cost a worker"
        );
    });
}
