//! Cache-blocked, register-tiled GEMM — the compute backend behind every
//! transpose flavour of [`crate::matmul`] and, through `im2col` lowering,
//! every convolution in the repo.
//!
//! Structure (classic BLIS-style three-level blocking, all safe Rust):
//!
//! * The K dimension is split into panels of `KC`. For each panel the whole
//!   B slab is packed once into `NR`-wide column strips (k-major within a
//!   strip), shared read-only by all workers.
//! * The M dimension is split across workers of the shared pool
//!   ([`crate::parallel`]); each worker owns a contiguous row-block of C, so
//!   no synchronization is needed on the output.
//! * Within a worker, M is blocked by `MC`; each `MC × KC` block of A is
//!   packed into `MR`-tall row strips, then an `MR × NR` register-tile
//!   micro-kernel walks the packed panels. The micro-kernel's inner loops
//!   have constant trip counts over contiguous slices, which the
//!   autovectorizer turns into wide FMA code under `-C target-cpu=native`.
//!
//! Packing absorbs transposition: both A and B are described by arbitrary
//! (row, column) strides, so NT/TN/TT flavours cost the same as NN and the
//! micro-kernel only ever sees contiguous data.
//!
//! Numerics: within one K panel the per-element accumulation order is the
//! same k-ascending order as the scalar reference; splitting K into panels
//! (K > `KC`) and the use of fused multiply-add reassociate/round
//! differently at the 1e-7-relative level. Kernel-parity tests in
//! `tests/kernel_parity.rs` pin this contract.

use crate::parallel;
use std::sync::atomic::{AtomicBool, Ordering};

/// When set, every GEMM routes through the scalar reference kernel — the
/// seed implementation's exact loop nest. Benchmarks flip this to measure
/// whole-pipeline speedups against the scalar baseline; it is not intended
/// for production use.
static SCALAR_REFERENCE_MODE: AtomicBool = AtomicBool::new(false);

/// Forces (or releases) scalar-reference execution for all subsequent GEMM
/// calls process-wide. Benchmark/testing hook.
pub fn set_scalar_reference_mode(enabled: bool) {
    SCALAR_REFERENCE_MODE.store(enabled, Ordering::Relaxed);
}

/// Whether GEMMs currently route through the scalar reference kernel.
pub fn scalar_reference_mode() -> bool {
    SCALAR_REFERENCE_MODE.load(Ordering::Relaxed)
}

/// Micro-tile height (rows of C held in registers). With `NR = 16` the
/// accumulator occupies 12 256-bit registers — enough independent FMA
/// chains to hide the FMA latency without spilling.
const MR: usize = 6;
/// Micro-tile width (columns of C held in registers): two 256-bit `f32`
/// vectors per row. Empirically faster than 512-bit tiles on the
/// virtualized Xeons this repo targets (wide vectors downclock).
const NR: usize = 16;
/// K-dimension panel length. Large panels amortize the accumulator
/// write-back; the packed `MR × KC` A strip (18 KiB) stays L1-resident
/// while the B strip streams from L2. Tuned empirically at 256³–512³.
const KC: usize = 768;
/// M-dimension block height per packing round: an `MC × KC` packed A block
/// is ~216 KiB, comfortably L2-resident.
const MC: usize = 72;

/// Below this many multiply-adds the packing overhead outweighs the win and
/// the scalar reference kernel is faster.
const BLOCKED_THRESHOLD: usize = 48 * 48 * 48;

/// Minimum C rows per worker before the M dimension is split across
/// threads; keeps per-thread work well above spawn cost.
const ROWS_PER_WORKER_MIN: usize = 48;

/// A matrix operand view: base slice plus arbitrary row/column strides.
///
/// `elem(i, j) = data[i * rs + j * cs]` for the logical (non-transposed)
/// GEMM operand shape. A transposed input is expressed by swapping strides.
#[derive(Clone, Copy)]
pub(crate) struct MatRef<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl<'a> MatRef<'a> {
    /// A row-major `(rows, cols)` view.
    pub(crate) fn row_major(data: &'a [f32], cols: usize) -> Self {
        Self {
            data,
            rs: cols,
            cs: 1,
        }
    }

    /// The transpose of a row-major `(rows, cols)` view: logical element
    /// `(i, j)` reads `data[j * cols + i]`.
    pub(crate) fn transposed(data: &'a [f32], cols: usize) -> Self {
        Self {
            data,
            rs: 1,
            cs: cols,
        }
    }

    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.rs + j * self.cs]
    }
}

/// Scalar reference kernel, stride-general: `out += A × B` in i-k-j order.
///
/// This is the seed implementation's loop nest, kept as the bit-level
/// baseline for parity tests and benchmark comparisons.
pub(crate) fn gemm_reference(m: usize, k: usize, n: usize, a: MatRef, b: MatRef, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        for kk in 0..k {
            let aik = a.at(i, kk);
            if aik == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            if b.cs == 1 {
                let brow = &b.data[kk * b.rs..kk * b.rs + n];
                for (c, &bkj) in crow.iter_mut().zip(brow.iter()) {
                    *c += aik * bkj;
                }
            } else {
                for (j, c) in crow.iter_mut().enumerate() {
                    *c += aik * b.at(kk, j);
                }
            }
        }
    }
}

/// Packs the `kb × n` slab of B starting at row `kc` into `NR`-wide strips:
/// `packed[strip][kk][jr]` with the tail strip zero-padded to `NR`.
fn pack_b(b: MatRef, kc: usize, kb: usize, n: usize, packed: &mut [f32]) {
    debug_assert_eq!(packed.len(), n.div_ceil(NR) * kb * NR);
    for (strip, panel) in packed.chunks_mut(kb * NR).enumerate() {
        let j0 = strip * NR;
        let jw = NR.min(n - j0);
        for (kk, row) in panel.chunks_mut(NR).enumerate() {
            for (jr, slot) in row.iter_mut().enumerate() {
                *slot = if jr < jw { b.at(kc + kk, j0 + jr) } else { 0.0 };
            }
        }
    }
}

/// Packs the `mb × kb` block of A at `(i0, kc)` into `MR`-tall strips:
/// `packed[strip][kk][ir]` with the tail strip zero-padded to `MR`.
fn pack_a(a: MatRef, i0: usize, mb: usize, kc: usize, kb: usize, packed: &mut [f32]) {
    debug_assert!(packed.len() >= mb.div_ceil(MR) * kb * MR);
    for (strip, panel) in packed.chunks_mut(kb * MR).take(mb.div_ceil(MR)).enumerate() {
        let r0 = strip * MR;
        let rh = MR.min(mb - r0);
        for (kk, col) in panel.chunks_mut(MR).enumerate() {
            for (ir, slot) in col.iter_mut().enumerate() {
                *slot = if ir < rh {
                    a.at(i0 + r0 + ir, kc + kk)
                } else {
                    0.0
                };
            }
        }
    }
}

/// The register-tile kernel: `acc[MR][NR] += Apanel × Bpanel` over `kb`
/// rank-1 updates on packed panels. Constant-size inner loops over
/// contiguous slices vectorize to FMA.
#[inline(always)]
fn microkernel(kb: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for kk in 0..kb {
        let av: &[f32] = &a_panel[kk * MR..kk * MR + MR];
        let bv: &[f32] = &b_panel[kk * NR..kk * NR + NR];
        for ir in 0..MR {
            let aik = av[ir];
            let row = &mut acc[ir];
            for jr in 0..NR {
                row[jr] = aik.mul_add(bv[jr], row[jr]);
            }
        }
    }
}

/// Computes one worker's row-range of C against the shared packed B panel.
#[allow(clippy::too_many_arguments)] // a flat hot-path signature, called twice
fn gemm_rows(
    a: MatRef,
    row0: usize,
    rows: usize,
    kc: usize,
    kb: usize,
    n: usize,
    packed_b: &[f32],
    out_rows: &mut [f32],
) {
    debug_assert_eq!(out_rows.len(), rows * n);
    let n_strips = n.div_ceil(NR);
    let mut packed_a = vec![0.0f32; MC.div_ceil(MR) * MR * kb];
    let mut i0 = 0;
    while i0 < rows {
        let mb = MC.min(rows - i0);
        pack_a(a, row0 + i0, mb, kc, kb, &mut packed_a);
        for strip_b in 0..n_strips {
            let j0 = strip_b * NR;
            let jw = NR.min(n - j0);
            let b_panel = &packed_b[strip_b * kb * NR..(strip_b + 1) * kb * NR];
            for strip_a in 0..mb.div_ceil(MR) {
                let r0 = i0 + strip_a * MR;
                let rh = MR.min(i0 + mb - r0);
                let a_panel = &packed_a[strip_a * kb * MR..(strip_a + 1) * kb * MR];
                let mut acc = [[0.0f32; NR]; MR];
                microkernel(kb, a_panel, b_panel, &mut acc);
                for ir in 0..rh {
                    let crow = &mut out_rows[(r0 + ir) * n + j0..(r0 + ir) * n + j0 + jw];
                    for (c, &v) in crow.iter_mut().zip(acc[ir].iter()) {
                        *c += v;
                    }
                }
            }
        }
        i0 += mb;
    }
}

/// Blocked, packed, M-parallel GEMM: `out += A × B` where `A` is logically
/// `(m, k)` and `B` is `(k, n)` under their respective stride views, and
/// `out` is row-major `(m, n)`.
///
/// Falls back to the scalar reference below [`BLOCKED_THRESHOLD`]
/// multiply-adds.
pub(crate) fn gemm(m: usize, k: usize, n: usize, a: MatRef, b: MatRef, out: &mut [f32]) {
    assert_eq!(out.len(), m * n, "output buffer shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Tiny-K GEMMs (DP-SGD's per-example rank-1 weight gradients, K = 1)
    // are pure outer-product accumulations: the packing passes cost more
    // than they save, and the reference kernel's inner loop is already
    // contiguous over B and C rows.
    if scalar_reference_mode() || k < 16 || m * k * n < BLOCKED_THRESHOLD {
        gemm_reference(m, k, n, a, b, out);
        return;
    }
    let threads = parallel::effective_threads().min(m.div_ceil(ROWS_PER_WORKER_MIN));
    let rows_per_worker = m.div_ceil(threads.max(1));
    let mut packed_b = vec![0.0f32; n.div_ceil(NR) * KC * NR];
    let mut kc = 0;
    while kc < k {
        let kb = KC.min(k - kc);
        let packed_len = n.div_ceil(NR) * kb * NR;
        pack_b(b, kc, kb, n, &mut packed_b[..packed_len]);
        let packed = &packed_b[..packed_len];
        if threads <= 1 {
            gemm_rows(a, 0, m, kc, kb, n, packed, out);
        } else {
            parallel::par_chunks_mut(out, rows_per_worker * n, |widx, out_rows| {
                let row0 = widx * rows_per_worker;
                gemm_rows(a, row0, out_rows.len() / n, kc, kb, n, packed, out_rows);
            });
        }
        kc += kb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DivaRng;

    fn dense(rows: usize, cols: usize, rng: &mut DivaRng) -> Vec<f32> {
        (0..rows * cols).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn blocked_matches_reference_across_shapes() {
        let mut rng = DivaRng::seed_from_u64(42);
        // Shapes straddling the strip/panel boundaries: exact multiples,
        // off-by-one, tiny, and larger-than-one-panel K.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (MR, KC, NR),
            (MR + 1, KC + 3, NR + 1),
            (65, 300, 47),
            (130, 70, 33),
        ] {
            let a = dense(m, k, &mut rng);
            let b = dense(k, n, &mut rng);
            let mut fast = vec![0.0f32; m * n];
            let mut slow = vec![0.0f32; m * n];
            // Call the blocked path directly (below threshold the public
            // entry would route to the reference anyway).
            let av = MatRef::row_major(&a, k);
            let bv = MatRef::row_major(&b, n);
            gemm_reference(m, k, n, av, bv, &mut slow);
            let threads = parallel::effective_threads().min(m.div_ceil(ROWS_PER_WORKER_MIN));
            let rows_per_worker = m.div_ceil(threads.max(1));
            let mut packed_b = vec![0.0f32; n.div_ceil(NR) * KC * NR];
            let mut kc = 0;
            while kc < k {
                let kb = KC.min(k - kc);
                let plen = n.div_ceil(NR) * kb * NR;
                pack_b(bv, kc, kb, n, &mut packed_b[..plen]);
                parallel::par_chunks_mut(&mut fast, rows_per_worker * n, |widx, rows| {
                    gemm_rows(
                        av,
                        widx * rows_per_worker,
                        rows.len() / n,
                        kc,
                        kb,
                        n,
                        &packed_b[..plen],
                        rows,
                    );
                });
                kc += kb;
            }
            assert!(
                max_diff(&fast, &slow) < 1e-4,
                "mismatch at ({m},{k},{n}): {}",
                max_diff(&fast, &slow)
            );
        }
    }

    #[test]
    fn packing_zero_pads_tails() {
        let mut rng = DivaRng::seed_from_u64(7);
        let n = NR + 3; // one full strip + a padded tail strip
        let k = 5;
        let b = dense(k, n, &mut rng);
        let bv = MatRef::row_major(&b, n);
        let mut packed = vec![f32::NAN; n.div_ceil(NR) * k * NR];
        pack_b(bv, 0, k, n, &mut packed);
        // Tail strip: entries beyond column n must be exactly zero.
        let tail = &packed[k * NR..];
        for kk in 0..k {
            for jr in 0..NR {
                let v = tail[kk * NR + jr];
                if jr < 3 {
                    assert_eq!(v, b[kk * n + NR + jr]);
                } else {
                    assert_eq!(v, 0.0, "padding not zeroed at k={kk} jr={jr}");
                }
            }
        }
    }
}
