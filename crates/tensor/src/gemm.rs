//! Cache-blocked, register-tiled GEMM — the compute backend behind every
//! transpose flavour of [`crate::matmul`] and, through `im2col` lowering,
//! every convolution in the repo.
//!
//! Structure (classic BLIS-style three-level blocking, all safe Rust):
//!
//! * The K dimension is split into panels of `KC`. For each panel the whole
//!   B slab is packed once into `NR`-wide column strips (k-major within a
//!   strip), shared read-only by all workers.
//! * The M dimension is split across workers of the shared pool
//!   ([`crate::parallel`]); each worker owns a contiguous row-block of C, so
//!   no synchronization is needed on the output.
//! * Within a worker, M is blocked by `MC`; each `MC × KC` block of A is
//!   packed into `MR`-tall row strips, then an `MR × NR` register-tile
//!   micro-kernel walks the packed panels. The safe micro-kernel's inner
//!   loops have constant trip counts over contiguous slices (k loop
//!   unrolled ×4), which the autovectorizer turns into wide FMA code under
//!   `-C target-cpu=native`; with the `simd` cargo feature on an AVX2+FMA
//!   x86-64 host, an explicit-intrinsics 6×16 kernel ([`crate::simd`]) runs
//!   instead — **bit-identical** by construction (same per-element FMA
//!   sequence), selected at runtime via `is_x86_feature_detected!` with the
//!   safe kernel as the universal fallback. [`simd_available`] /
//!   [`set_simd_enabled`] expose the dispatch for benches and parity tests.
//!
//! Packing absorbs transposition: both A and B are described by arbitrary
//! (row, column) strides, so NT/TN/TT flavours cost the same as NN and the
//! micro-kernel only ever sees contiguous data.
//!
//! Numerics: within one K panel the per-element accumulation order is the
//! same k-ascending order as the scalar reference; splitting K into panels
//! (K > `KC`) and the use of fused multiply-add reassociate/round
//! differently at the 1e-7-relative level. Kernel-parity tests in
//! `tests/kernel_parity.rs` pin this contract.

use crate::parallel;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::thread::LocalKey;

/// When set, every GEMM routes through the scalar reference kernel — the
/// seed implementation's exact loop nest. Benchmarks flip this to measure
/// whole-pipeline speedups against the scalar baseline; it is not intended
/// for production use.
static SCALAR_REFERENCE_MODE: AtomicBool = AtomicBool::new(false);

/// Forces (or releases) scalar-reference execution for all subsequent GEMM
/// calls process-wide. Benchmark/testing hook.
pub fn set_scalar_reference_mode(enabled: bool) {
    SCALAR_REFERENCE_MODE.store(enabled, Ordering::Relaxed);
}

/// Whether GEMMs currently route through the scalar reference kernel.
pub fn scalar_reference_mode() -> bool {
    SCALAR_REFERENCE_MODE.load(Ordering::Relaxed)
}

/// When set, the explicit-SIMD micro-kernel is skipped even where
/// available, forcing the safe kernel. Parity tests sweep this; stored
/// inverted so the default (`false`) means "simd on when available".
static SIMD_DISABLED: AtomicBool = AtomicBool::new(false);

/// Whether the explicit AVX2+FMA micro-kernel is compiled in (`simd`
/// feature, `x86_64` target) *and* supported by the running CPU.
pub fn simd_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        crate::simd::detected()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Enables or disables the explicit-SIMD micro-kernel process-wide.
///
/// A testing/benchmarking hook: results are bit-identical either way (the
/// contract `tests/kernel_parity.rs` pins), only throughput changes. A
/// no-op when [`simd_available`] is `false`.
pub fn set_simd_enabled(enabled: bool) {
    SIMD_DISABLED.store(!enabled, Ordering::Relaxed);
}

/// Whether GEMMs will currently use the explicit-SIMD micro-kernel.
pub fn simd_enabled() -> bool {
    simd_available() && !SIMD_DISABLED.load(Ordering::Relaxed)
}

/// When set, the AVX-512 arm of the explicit kernel is skipped even where
/// available, so an AVX-512 host can still measure/test the AVX2 arm.
/// Stored inverted so the default (`false`) means "avx512 on when
/// available".
static AVX512_DISABLED: AtomicBool = AtomicBool::new(false);

/// Whether the AVX-512 micro-kernel arm is compiled in (`simd` feature,
/// `x86_64` target) *and* supported by the running CPU (`avx512f`).
pub fn avx512_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        crate::simd::detected_avx512()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Enables or disables the AVX-512 arm of the explicit kernel
/// process-wide. A testing/benchmarking hook like [`set_simd_enabled`]
/// (which it is subordinate to: disabling simd disables this arm too);
/// results are bit-identical either way. A no-op when [`avx512_available`]
/// is `false`.
pub fn set_avx512_enabled(enabled: bool) {
    AVX512_DISABLED.store(!enabled, Ordering::Relaxed);
}

/// Whether GEMMs will currently use the AVX-512 micro-kernel arm.
pub fn avx512_enabled() -> bool {
    simd_enabled() && avx512_available() && !AVX512_DISABLED.load(Ordering::Relaxed)
}

/// Micro-tile height (rows of C held in registers). With `NR = 16` the
/// accumulator occupies 12 256-bit registers — enough independent FMA
/// chains to hide the FMA latency without spilling.
pub(crate) const MR: usize = 6;
/// Micro-tile width (columns of C held in registers): two 256-bit `f32`
/// vectors per row. Empirically faster than 512-bit tiles on the
/// virtualized Xeons this repo targets (wide vectors downclock).
pub(crate) const NR: usize = 16;
/// K-dimension panel length. Large panels amortize the accumulator
/// write-back; the packed `MR × KC` A strip (18 KiB) stays L1-resident
/// while the B strip streams from L2. Tuned empirically at 256³–512³.
const KC: usize = 768;
/// M-dimension block height per packing round: an `MC × KC` packed A block
/// is ~216 KiB, comfortably L2-resident.
const MC: usize = 72;

/// Below this many multiply-adds the packing overhead outweighs the win and
/// the scalar reference kernel is faster.
const BLOCKED_THRESHOLD: usize = 48 * 48 * 48;

/// When cleared, [`gemm_rows`] walks B strips one at a time (the
/// pre-reorder interior). Bench/bisect hook: results are bit-identical
/// either way — grouping changes tile *visit order*, never any tile's FMA
/// chain — only the L2 traffic of the packed-A block changes. Stored
/// inverted so the default (`false`) means "reorder on".
static L1_REORDER_DISABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables the L1-aware B-strip grouping in the GEMM interior
/// process-wide. Benchmark/testing hook; on by default.
pub fn set_l1_reorder(enabled: bool) {
    L1_REORDER_DISABLED.store(!enabled, Ordering::Relaxed);
}

/// Whether the GEMM interior currently groups B strips for L1 residency.
pub fn l1_reorder_enabled() -> bool {
    !L1_REORDER_DISABLED.load(Ordering::Relaxed)
}

/// Most packed-B strips processed per sweep of the packed-A block, and the
/// packed-B byte budget a group must fit in (picked against a 48 KiB L1d:
/// the group's B panels plus one `MR × kb` A panel, the accumulator tiles
/// and the active C rows must all stay resident). The effective group
/// width is `min(NB_GROUP, L1_GROUP_BUDGET / strip_bytes)`, so long-K
/// panels (`kb` near [`KC`], where one strip alone approaches the budget)
/// degrade gracefully to width 1 — exactly the ungrouped interior.
const NB_GROUP: usize = 3;
const L1_GROUP_BUDGET: usize = 36 * 1024;

/// B strips per packed-A sweep for a `kb`-row panel (see [`NB_GROUP`]).
///
/// The AVX-512 arm opts out: measured on the dev host, its kernel is fast
/// enough that the grouped order's extra L1 pressure (two B panels + the
/// widened accumulator set live at once) costs ~20% — while the prefetcher
/// already hides the packed-A streaming the grouping exists to save. The
/// safe/AVX2 paths keep the grouping: neutral where prefetch covers L2
/// traffic, a win where it does not (the bandwidth-constrained hosts the
/// blocking parameters are sized for).
fn group_width(kb: usize, kernel: Kernel) -> usize {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if kernel == Kernel::Avx512 {
        return 1;
    }
    let _ = kernel;
    if !l1_reorder_enabled() {
        return 1;
    }
    NB_GROUP
        .min(L1_GROUP_BUDGET / (kb * NR * size_of::<f32>()))
        .max(1)
}

thread_local! {
    /// Per-thread packed-A scratch, reused across GEMM calls. The packed-A
    /// block is ~216 KiB — past the allocator's mmap threshold — so a fresh
    /// `vec!` per call costs a page-fault storm that the keep-alive worker
    /// pool would otherwise pay on every region.
    static PACK_A_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread packed-B scratch; same rationale as [`PACK_A_SCRATCH`].
    static PACK_B_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` on a thread-local scratch slice of exactly `len` elements.
///
/// Contents are **unspecified on entry** — `pack_a`/`pack_b` overwrite
/// every slot the kernels later read (tail strips are zero-padded
/// explicitly), so stale data from a previous GEMM can never leak into a
/// result. If the slot is already borrowed, falls back to a fresh
/// allocation rather than panicking. Re-entrancy is real under
/// hierarchical nested scheduling: a GEMM's submitter *helps* while
/// waiting on its region latch (see `pool::run_region`), and a stolen job
/// can open another GEMM on this very thread while the outer one's scratch
/// is still borrowed. The fallback costs an allocation, never correctness
/// — packing layout is identical either way.
fn with_pack_scratch<R>(
    key: &'static LocalKey<RefCell<Vec<f32>>>,
    len: usize,
    f: impl FnOnce(&mut [f32]) -> R,
) -> R {
    key.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            if buf.len() < len {
                buf.resize(len, 0.0);
            }
            f(&mut buf[..len])
        }
        Err(_) => f(&mut vec![0.0f32; len]),
    })
}

/// Minimum C rows per worker before the M dimension is split across
/// threads; keeps per-thread work well above spawn cost.
const ROWS_PER_WORKER_MIN: usize = 48;

/// A matrix operand view: base slice plus arbitrary row/column strides.
///
/// `elem(i, j) = data[i * rs + j * cs]` for the logical (non-transposed)
/// GEMM operand shape. A transposed input is expressed by swapping strides.
#[derive(Clone, Copy)]
pub(crate) struct MatRef<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl<'a> MatRef<'a> {
    /// A row-major `(rows, cols)` view.
    pub(crate) fn row_major(data: &'a [f32], cols: usize) -> Self {
        Self {
            data,
            rs: cols,
            cs: 1,
        }
    }

    /// The transpose of a row-major `(rows, cols)` view: logical element
    /// `(i, j)` reads `data[j * cols + i]`.
    pub(crate) fn transposed(data: &'a [f32], cols: usize) -> Self {
        Self {
            data,
            rs: 1,
            cs: cols,
        }
    }

    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.rs + j * self.cs]
    }
}

/// Scalar reference kernel, stride-general: `out += A × B` in i-k-j order.
///
/// This is the seed implementation's loop nest, kept as the bit-level
/// baseline for parity tests and benchmark comparisons.
pub(crate) fn gemm_reference(m: usize, k: usize, n: usize, a: MatRef, b: MatRef, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        for kk in 0..k {
            let aik = a.at(i, kk);
            if aik == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            if b.cs == 1 {
                let brow = &b.data[kk * b.rs..kk * b.rs + n];
                for (c, &bkj) in crow.iter_mut().zip(brow.iter()) {
                    *c += aik * bkj;
                }
            } else {
                for (j, c) in crow.iter_mut().enumerate() {
                    *c += aik * b.at(kk, j);
                }
            }
        }
    }
}

/// Packs the `kb × n` slab of B starting at row `kc` into `NR`-wide strips:
/// `packed[strip][kk][jr]` with the tail strip zero-padded to `NR`.
///
/// Row-major B (`cs == 1`, every GEMM flavour except `nt`/`tt`) takes a
/// `copy_from_slice` fast path: each strip row is one contiguous 64-byte
/// copy instead of `NR` strided element reads. Same elements, same slots —
/// packing layout is not part of the numeric contract.
fn pack_b(b: MatRef, kc: usize, kb: usize, n: usize, packed: &mut [f32]) {
    debug_assert_eq!(packed.len(), n.div_ceil(NR) * kb * NR);
    for (strip, panel) in packed.chunks_mut(kb * NR).enumerate() {
        let j0 = strip * NR;
        let jw = NR.min(n - j0);
        if b.cs == 1 {
            for (kk, row) in panel.chunks_mut(NR).enumerate() {
                let src = &b.data[(kc + kk) * b.rs + j0..(kc + kk) * b.rs + j0 + jw];
                row[..jw].copy_from_slice(src);
                row[jw..].fill(0.0);
            }
        } else {
            for (kk, row) in panel.chunks_mut(NR).enumerate() {
                for (jr, slot) in row.iter_mut().enumerate() {
                    *slot = if jr < jw { b.at(kc + kk, j0 + jr) } else { 0.0 };
                }
            }
        }
    }
}

/// Packs the `mb × kb` block of A at `(i0, kc)` into `MR`-tall strips:
/// `packed[strip][kk][ir]` with the tail strip zero-padded to `MR`.
///
/// Two fast paths mirror [`pack_b`]'s: row-major A (`cs == 1`, the
/// forward/`nt` flavours) walks each source row contiguously and scatters
/// into the L1-resident strip; column-major A (`rs == 1`, the `tn`
/// weight-gradient flavour) copies each strip column with one contiguous
/// `copy_from_slice`. Same elements, same slots either way.
fn pack_a(a: MatRef, i0: usize, mb: usize, kc: usize, kb: usize, packed: &mut [f32]) {
    debug_assert!(packed.len() >= mb.div_ceil(MR) * kb * MR);
    for (strip, panel) in packed.chunks_mut(kb * MR).take(mb.div_ceil(MR)).enumerate() {
        let r0 = strip * MR;
        let rh = MR.min(mb - r0);
        if a.cs == 1 {
            if rh < MR {
                panel.fill(0.0);
            }
            for ir in 0..rh {
                let src = &a.data[(i0 + r0 + ir) * a.rs + kc..(i0 + r0 + ir) * a.rs + kc + kb];
                for (kk, &v) in src.iter().enumerate() {
                    panel[kk * MR + ir] = v;
                }
            }
        } else if a.rs == 1 {
            for (kk, col) in panel.chunks_mut(MR).enumerate() {
                let base = (kc + kk) * a.cs + i0 + r0;
                col[..rh].copy_from_slice(&a.data[base..base + rh]);
                col[rh..].fill(0.0);
            }
        } else {
            for (kk, col) in panel.chunks_mut(MR).enumerate() {
                for (ir, slot) in col.iter_mut().enumerate() {
                    *slot = if ir < rh {
                        a.at(i0 + r0 + ir, kc + kk)
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// How many rank-1 updates the safe kernel's k loop processes per
/// iteration. `chunks_exact` hands the body compile-time-known sub-slices,
/// so the ×4 unroll costs no extra bounds checks and cannot reassociate:
/// each output element still receives its updates one at a time, k
/// ascending.
const KK_UNROLL: usize = 4;

/// The safe register-tile kernel: `acc[MR][NR] += Apanel × Bpanel` over
/// `kb` rank-1 updates on packed panels. Constant-size inner loops over
/// contiguous slices vectorize to FMA under `-C target-cpu=native`; the k
/// loop is unrolled ×[`KK_UNROLL`] to amortize loop control. Exactly one
/// `mul_add` per output element per k — the bit-parity contract shared
/// with the explicit-SIMD kernel ([`crate::simd`]).
#[inline(always)]
pub(crate) fn microkernel(kb: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let a_main = a_panel[..kb * MR].chunks_exact(MR * KK_UNROLL);
    let b_main = b_panel[..kb * NR].chunks_exact(NR * KK_UNROLL);
    let a_tail = a_main.remainder();
    let b_tail = b_main.remainder();
    for (a4, b4) in a_main.zip(b_main) {
        for u in 0..KK_UNROLL {
            let av = &a4[u * MR..(u + 1) * MR];
            let bv = &b4[u * NR..(u + 1) * NR];
            for ir in 0..MR {
                let aik = av[ir];
                let row = &mut acc[ir];
                for jr in 0..NR {
                    row[jr] = aik.mul_add(bv[jr], row[jr]);
                }
            }
        }
    }
    for (av, bv) in a_tail.chunks_exact(MR).zip(b_tail.chunks_exact(NR)) {
        for ir in 0..MR {
            let aik = av[ir];
            let row = &mut acc[ir];
            for jr in 0..NR {
                row[jr] = aik.mul_add(bv[jr], row[jr]);
            }
        }
    }
}

/// The micro-kernel a GEMM call resolved to. All arms produce
/// bit-identical tiles (see [`crate::simd`]), so dispatch is a pure
/// throughput decision, hoisted out of the tile loops once per
/// [`gemm_rows`] call.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Safe,
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    Avx2,
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    Avx512,
}

/// The best currently-enabled kernel: AVX-512, else AVX2+FMA, else safe.
fn kernel_choice() -> Kernel {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if avx512_enabled() {
            return Kernel::Avx512;
        }
        if simd_enabled() {
            return Kernel::Avx2;
        }
    }
    Kernel::Safe
}

/// Runs one register tile on the resolved kernel.
#[inline(always)]
fn run_microkernel(
    kernel: Kernel,
    kb: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    match kernel {
        Kernel::Safe => microkernel(kb, a_panel, b_panel, acc),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Kernel::Avx2 => crate::simd::microkernel_6x16(kb, a_panel, b_panel, acc),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Kernel::Avx512 => crate::simd::microkernel_6x16_avx512(kb, a_panel, b_panel, acc),
    }
}

/// Computes one worker's row-range of C against the shared packed B panel.
#[allow(clippy::too_many_arguments)] // a flat hot-path signature, called twice
fn gemm_rows(
    a: MatRef,
    row0: usize,
    rows: usize,
    kc: usize,
    kb: usize,
    n: usize,
    packed_b: &[f32],
    out_rows: &mut [f32],
) {
    debug_assert_eq!(out_rows.len(), rows * n);
    let n_strips = n.div_ceil(NR);
    // Kernel choice is hoisted out of the tile loops; it cannot change
    // results (the kernels are bit-identical), only throughput.
    let kernel = kernel_choice();
    // L1-aware interior: walk B strips in groups of `gw` per sweep of the
    // packed-A block. The packed-A block (up to MC × kb ≈ 216 KiB) only
    // streams from L2 once per *group* instead of once per strip, while the
    // group's B panels (≤ L1_GROUP_BUDGET by construction) stay
    // L1-resident across the strip_a sweep. Every (strip_a, strip_b) tile
    // still gets exactly one full-`kb` kernel call, so the per-element FMA
    // chains — and therefore the results — are bit-identical to the
    // ungrouped order; tiles are disjoint, so visit order is free.
    let gw = group_width(kb, kernel);
    with_pack_scratch(&PACK_A_SCRATCH, MC.div_ceil(MR) * MR * kb, |packed_a| {
        let mut i0 = 0;
        while i0 < rows {
            let mb = MC.min(rows - i0);
            pack_a(a, row0 + i0, mb, kc, kb, packed_a);
            let mut gb = 0;
            while gb < n_strips {
                let g_count = gw.min(n_strips - gb);
                for strip_a in 0..mb.div_ceil(MR) {
                    let r0 = i0 + strip_a * MR;
                    let rh = MR.min(i0 + mb - r0);
                    let a_panel = &packed_a[strip_a * kb * MR..(strip_a + 1) * kb * MR];
                    let mut accs = [[[0.0f32; NR]; MR]; NB_GROUP];
                    for (g, acc) in accs.iter_mut().take(g_count).enumerate() {
                        let strip_b = gb + g;
                        let b_panel = &packed_b[strip_b * kb * NR..(strip_b + 1) * kb * NR];
                        run_microkernel(kernel, kb, a_panel, b_panel, acc);
                    }
                    for (g, acc) in accs.iter().take(g_count).enumerate() {
                        let j0 = (gb + g) * NR;
                        let jw = NR.min(n - j0);
                        for ir in 0..rh {
                            let crow = &mut out_rows[(r0 + ir) * n + j0..(r0 + ir) * n + j0 + jw];
                            for (c, &v) in crow.iter_mut().zip(acc[ir].iter()) {
                                *c += v;
                            }
                        }
                    }
                }
                gb += g_count;
            }
            i0 += mb;
        }
    });
}

/// Returns `true` when a GEMM of this shape routes to the blocked/packed
/// kernel rather than the scalar reference — the exact decision [`gemm`]
/// makes internally.
///
/// Tiny-K GEMMs (DP-SGD's per-example rank-1 weight gradients, K = 1)
/// are pure outer-product accumulations: the packing passes cost more
/// than they save, and the reference kernel's inner loop is already
/// contiguous over B and C rows.
///
/// Exposed so callers that pre-pack B through a [`PackCache`] replicate the
/// same routing and therefore stay bit-identical with the unpacked entry
/// points for every shape.
pub(crate) fn blocked_path_eligible(m: usize, k: usize, n: usize) -> bool {
    !scalar_reference_mode() && k >= 16 && m * k * n >= BLOCKED_THRESHOLD
}

/// Blocked, packed, M-parallel GEMM: `out += A × B` where `A` is logically
/// `(m, k)` and `B` is `(k, n)` under their respective stride views, and
/// `out` is row-major `(m, n)`.
///
/// Falls back to the scalar reference below [`BLOCKED_THRESHOLD`]
/// multiply-adds.
pub(crate) fn gemm(m: usize, k: usize, n: usize, a: MatRef, b: MatRef, out: &mut [f32]) {
    assert_eq!(out.len(), m * n, "output buffer shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if !blocked_path_eligible(m, k, n) {
        gemm_reference(m, k, n, a, b, out);
        return;
    }
    let threads = parallel::effective_threads().min(m.div_ceil(ROWS_PER_WORKER_MIN));
    let rows_per_worker = m.div_ceil(threads.max(1));
    with_pack_scratch(
        &PACK_B_SCRATCH,
        n.div_ceil(NR) * KC.min(k) * NR,
        |packed_b| {
            let mut kc = 0;
            while kc < k {
                let kb = KC.min(k - kc);
                let packed_len = n.div_ceil(NR) * kb * NR;
                pack_b(b, kc, kb, n, &mut packed_b[..packed_len]);
                let packed = &packed_b[..packed_len];
                if threads <= 1 {
                    gemm_rows(a, 0, m, kc, kb, n, packed, out);
                } else {
                    parallel::par_chunks_mut(out, rows_per_worker * n, |widx, out_rows| {
                        let row0 = widx * rows_per_worker;
                        gemm_rows(a, row0, out_rows.len() / n, kc, kb, n, packed, out_rows);
                    });
                }
                kc += kb;
            }
        },
    );
}

/// A B operand packed once into `NR`-wide strips for a caller-chosen panel
/// decomposition of K, so repeated GEMMs against the same B (or against
/// K-windows of it) skip the packing pass entirely.
///
/// The panel boundaries are part of the packed layout *and* of the numeric
/// contract: the blocked kernel accumulates `out += A × B` one panel at a
/// time, so two GEMMs agree bit-for-bit only when their panel decompositions
/// agree. [`PackedB::pack_segmented`] splits each `segment`-row slab of B at
/// multiples of `KC`, which reproduces [`gemm`]'s own split for any window
/// that is a whole number of segments — the property the fused convolution
/// backward relies on (per-example windows of the shared patch buffer).
#[derive(Clone, Debug)]
pub struct PackedB {
    k: usize,
    n: usize,
    /// Per panel: (global K offset, panel length, offset into `data`).
    panels: Vec<(usize, usize, usize)>,
    data: Vec<f32>,
}

impl PackedB {
    /// Packs all of B (`k × n` under the stride view) into strips, splitting
    /// K first at multiples of `segment` and then at multiples of `KC`
    /// within each segment.
    ///
    /// # Panics
    ///
    /// Panics if `segment` is zero or does not divide `k`.
    pub(crate) fn pack_segmented(b: MatRef, k: usize, n: usize, segment: usize) -> Self {
        assert!(
            segment > 0 && k.is_multiple_of(segment),
            "segment {segment} must divide K {k}"
        );
        let n_strips = n.div_ceil(NR);
        let mut panels = Vec::new();
        let mut data = Vec::new();
        let mut seg0 = 0;
        while seg0 < k {
            let mut kc = 0;
            while kc < segment {
                let kb = KC.min(segment - kc);
                let offset = data.len();
                data.resize(offset + n_strips * kb * NR, 0.0);
                pack_b(b, seg0 + kc, kb, n, &mut data[offset..]);
                panels.push((seg0 + kc, kb, offset));
                kc += kb;
            }
            seg0 += segment;
        }
        Self { k, n, panels, data }
    }
}

/// A lazily-initialized, shareable cache of a packed B operand.
///
/// DP-SGD(R) runs two backward passes over the same forward state. Every
/// GEMM whose B operand is unchanged between (and within) those passes —
/// the shared `im2col` patch buffer of the weight-gradient GEMMs, the
/// filter matrix of the data-gradient GEMM — packs B exactly once through
/// this handle and reuses the panels thereafter. The handle lives inside
/// the layer's forward cache, which is immutable for the lifetime of both
/// passes, so the cached pack can never go stale within a training step.
///
/// Thread-safe: concurrent first users (the per-example fan-out of the
/// `NormOnly` pass) race on a `OnceLock`; one packs, the rest block briefly
/// and share the result.
///
/// Besides the operand shape, every reuse revalidates a caller-supplied
/// content `token` (see `content_token`), so a cache keyed to data that
/// *can* change out from under it — the filter matrix of the data-gradient
/// GEMM, after an optimizer update mutates the weights — fails loudly
/// instead of silently computing against the stale pack.
#[derive(Clone, Debug, Default)]
pub struct PackCache {
    slot: OnceLock<(PackedB, u64)>,
}

impl PackCache {
    /// An empty cache; the first GEMM through it pays the packing pass.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the packed operand, packing it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the cache was initialized with a different shape or a
    /// different content `token` — the operand changed between uses.
    pub(crate) fn get_or_pack(
        &self,
        k: usize,
        n: usize,
        token: u64,
        pack: impl FnOnce() -> PackedB,
    ) -> &PackedB {
        let (pb, stored) = self.slot.get_or_init(|| (pack(), token));
        assert_eq!(
            (pb.k, pb.n),
            (k, n),
            "PackCache reused across operands of different shapes"
        );
        assert_eq!(
            *stored, token,
            "PackCache reused after its operand changed (stale pack)"
        );
        pb
    }
}

/// An order-sensitive FNV-1a hash of a slice's bit patterns, used as the
/// [`PackCache`] staleness token. One read-only pass — negligible next to
/// the GEMM the pack feeds, and exact: any in-place mutation of the operand
/// changes the token (up to 64-bit hash collisions).
pub fn content_token(data: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in data {
        h ^= u64::from(v.to_bits());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Blocked, M-parallel GEMM against pre-packed B panels covering the global
/// B-row window `lo..hi`: `out += A × B[lo..hi, :]`, where `A` is `(m,
/// hi-lo)` under its stride view and A's K axis is window-local.
///
/// The window must start and end on packed panel boundaries (any whole
/// number of segments of [`PackedB::pack_segmented`] qualifies). Routing is
/// the caller's job: check [`blocked_path_eligible`] first and fall back to
/// [`gemm_reference`] on the raw operands, exactly as [`gemm`] would.
pub(crate) fn gemm_packed_window(
    m: usize,
    n: usize,
    a: MatRef,
    pb: &PackedB,
    lo: usize,
    hi: usize,
    out: &mut [f32],
) {
    assert_eq!(out.len(), m * n, "output buffer shape mismatch");
    assert_eq!(
        pb.n, n,
        "packed operand has {} columns, GEMM wants {n}",
        pb.n
    );
    assert!(
        lo <= hi && hi <= pb.k,
        "window {lo}..{hi} outside K {}",
        pb.k
    );
    let threads = parallel::effective_threads().min(m.div_ceil(ROWS_PER_WORKER_MIN));
    let rows_per_worker = m.div_ceil(threads.max(1));
    let n_strips = n.div_ceil(NR);
    let mut covered = lo;
    for &(k0, kb, offset) in &pb.panels {
        if k0 + kb <= lo || k0 >= hi {
            continue;
        }
        assert!(
            k0 == covered && k0 + kb <= hi,
            "window {lo}..{hi} does not align with packed panel boundaries"
        );
        covered = k0 + kb;
        let panel = &pb.data[offset..offset + n_strips * kb * NR];
        let kc_local = k0 - lo;
        if threads <= 1 {
            gemm_rows(a, 0, m, kc_local, kb, n, panel, out);
        } else {
            parallel::par_chunks_mut(out, rows_per_worker * n, |widx, out_rows| {
                let row0 = widx * rows_per_worker;
                gemm_rows(
                    a,
                    row0,
                    out_rows.len() / n,
                    kc_local,
                    kb,
                    n,
                    panel,
                    out_rows,
                );
            });
        }
    }
    assert_eq!(covered, hi, "packed panels do not cover window {lo}..{hi}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DivaRng;

    fn dense(rows: usize, cols: usize, rng: &mut DivaRng) -> Vec<f32> {
        (0..rows * cols).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn blocked_matches_reference_across_shapes() {
        let mut rng = DivaRng::seed_from_u64(42);
        // Shapes straddling the strip/panel boundaries: exact multiples,
        // off-by-one, tiny, and larger-than-one-panel K.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (MR, KC, NR),
            (MR + 1, KC + 3, NR + 1),
            (65, 300, 47),
            (130, 70, 33),
        ] {
            let a = dense(m, k, &mut rng);
            let b = dense(k, n, &mut rng);
            let mut fast = vec![0.0f32; m * n];
            let mut slow = vec![0.0f32; m * n];
            // Call the blocked path directly (below threshold the public
            // entry would route to the reference anyway).
            let av = MatRef::row_major(&a, k);
            let bv = MatRef::row_major(&b, n);
            gemm_reference(m, k, n, av, bv, &mut slow);
            let threads = parallel::effective_threads().min(m.div_ceil(ROWS_PER_WORKER_MIN));
            let rows_per_worker = m.div_ceil(threads.max(1));
            let mut packed_b = vec![0.0f32; n.div_ceil(NR) * KC * NR];
            let mut kc = 0;
            while kc < k {
                let kb = KC.min(k - kc);
                let plen = n.div_ceil(NR) * kb * NR;
                pack_b(bv, kc, kb, n, &mut packed_b[..plen]);
                parallel::par_chunks_mut(&mut fast, rows_per_worker * n, |widx, rows| {
                    gemm_rows(
                        av,
                        widx * rows_per_worker,
                        rows.len() / n,
                        kc,
                        kb,
                        n,
                        &packed_b[..plen],
                        rows,
                    );
                });
                kc += kb;
            }
            assert!(
                max_diff(&fast, &slow) < 1e-4,
                "mismatch at ({m},{k},{n}): {}",
                max_diff(&fast, &slow)
            );
        }
    }

    /// A packed-window GEMM over a whole-K window must equal the unpacked
    /// blocked path bit-for-bit (same panel boundaries, same kernels), and
    /// per-segment windows must equal GEMMs on the corresponding B slabs.
    #[test]
    fn packed_windows_match_unpacked_gemm() {
        let mut rng = DivaRng::seed_from_u64(99);
        let (seg, n_seg, n) = (130usize, 3usize, 47usize);
        let k = seg * n_seg;
        let m = 65;
        let a = dense(m, k, &mut rng);
        let b = dense(k, n, &mut rng);
        let av = MatRef::row_major(&a, k);
        let bv = MatRef::row_major(&b, n);
        let pb = PackedB::pack_segmented(bv, k, n, seg);

        // Whole window: segment boundaries force extra panel splits, which
        // reassociates relative to the single-panel reference, so this is a
        // tolerance comparison.
        let mut packed_out = vec![0.0f32; m * n];
        gemm_packed_window(m, n, av, &pb, 0, k, &mut packed_out);
        let mut slow = vec![0.0f32; m * n];
        gemm_reference(m, k, n, av, bv, &mut slow);
        assert!(max_diff(&packed_out, &slow) < 1e-4);

        // Per-segment windows: must match a GEMM on the sliced operands
        // exactly, because the panel boundaries agree (seg < KC → one
        // panel either way).
        for s in 0..n_seg {
            let (lo, hi) = (s * seg, (s + 1) * seg);
            let a_win = dense(m, seg, &mut rng);
            let awv = MatRef::row_major(&a_win, seg);
            let mut win_out = vec![0.0f32; m * n];
            gemm_packed_window(m, n, awv, &pb, lo, hi, &mut win_out);
            let b_slab = &b[lo * n..hi * n];
            let mut direct = vec![0.0f32; m * n];
            // Unpacked blocked path on the same slab.
            let bsv = MatRef::row_major(b_slab, n);
            let mut packed_b = vec![0.0f32; n.div_ceil(NR) * seg * NR];
            pack_b(bsv, 0, seg, n, &mut packed_b);
            gemm_rows(awv, 0, m, 0, seg, n, &packed_b, &mut direct);
            assert_eq!(win_out, direct, "segment {s} diverged from slab GEMM");
        }
    }

    #[test]
    #[should_panic(expected = "reused across operands of different shapes")]
    fn pack_cache_rejects_shape_change() {
        let b = vec![0.0f32; 6];
        let bv = MatRef::row_major(&b, 3);
        let cache = PackCache::new();
        let _ = cache.get_or_pack(2, 3, 0, || PackedB::pack_segmented(bv, 2, 3, 2));
        let _ = cache.get_or_pack(3, 2, 0, || PackedB::pack_segmented(bv, 3, 2, 3));
    }

    #[test]
    #[should_panic(expected = "stale pack")]
    fn pack_cache_rejects_changed_operand() {
        let mut b = vec![1.0f32; 6];
        let cache = PackCache::new();
        {
            let bv = MatRef::row_major(&b, 3);
            let t0 = content_token(&b);
            let _ = cache.get_or_pack(2, 3, t0, || PackedB::pack_segmented(bv, 2, 3, 2));
        }
        b[4] = 2.0; // the operand mutates between uses
        let bv = MatRef::row_major(&b, 3);
        let t1 = content_token(&b);
        let _ = cache.get_or_pack(2, 3, t1, || PackedB::pack_segmented(bv, 2, 3, 2));
    }

    #[test]
    fn content_token_is_order_and_value_sensitive() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [2.0f32, 1.0, 3.0];
        let c = [1.0f32, 2.0, 3.0];
        assert_eq!(content_token(&a), content_token(&c));
        assert_ne!(content_token(&a), content_token(&b));
        assert_ne!(content_token(&a), content_token(&a[..2]));
    }

    /// On-host tuning diagnostic (ignored; run with `--ignored --nocapture`):
    /// times the serial 256³ GEMM with the L1 B-strip grouping on and off.
    /// Not an assertion — wall-clock on shared CI boxes is too noisy to
    /// gate on; the acceptance numbers live in `BENCH_perf.json`.
    #[test]
    #[ignore = "timing diagnostic, run manually"]
    fn l1_reorder_timing() {
        const D: usize = 256;
        let mut rng = DivaRng::seed_from_u64(3);
        let a = dense(D, D, &mut rng);
        let b = dense(D, D, &mut rng);
        let av = MatRef::row_major(&a, D);
        let bv = MatRef::row_major(&b, D);
        let mut out = vec![0.0f32; D * D];
        let time_once = |reorder: bool, out: &mut [f32]| {
            set_l1_reorder(reorder);
            let reps = 20;
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                out.fill(0.0);
                crate::parallel::Backend::serial().install(|| gemm(D, D, D, av, bv, out));
            }
            let dt = t0.elapsed().as_secs_f64() / f64::from(reps);
            set_l1_reorder(true);
            dt
        };
        // Interleave off/on samples (ABAB…) and take medians, so slow drift
        // on a shared host cancels instead of biasing one side.
        let _ = time_once(false, &mut out);
        let base = out.clone();
        let _ = time_once(true, &mut out);
        assert_eq!(out, base, "reorder changed results");
        let mut offs = Vec::new();
        let mut ons = Vec::new();
        for _ in 0..9 {
            offs.push(time_once(false, &mut out));
            ons.push(time_once(true, &mut out));
        }
        offs.sort_by(f64::total_cmp);
        ons.sort_by(f64::total_cmp);
        let (off, on) = (offs[offs.len() / 2], ons[ons.len() / 2]);
        println!(
            "256^3 serial: reorder off {:.3} ms, on {:.3} ms ({:+.1}%)  \
             off-samples {:?}",
            off * 1e3,
            on * 1e3,
            (on / off - 1.0) * 100.0,
            offs.iter()
                .map(|s| (s * 1e4).round() / 10.0)
                .collect::<Vec<_>>()
        );
    }

    /// On-host cost-split diagnostic (ignored): times the bare micro-kernel
    /// sweep, the packing passes, and the full GEMM at 256³ so interior
    /// changes can be attributed to compute vs. packing vs. traffic.
    #[test]
    #[ignore = "timing diagnostic, run manually"]
    fn interior_cost_split_timing() {
        const D: usize = 256;
        let mut rng = DivaRng::seed_from_u64(3);
        let a = dense(D, D, &mut rng);
        let b = dense(D, D, &mut rng);
        let av = MatRef::row_major(&a, D);
        let bv = MatRef::row_major(&b, D);
        let kb = D;
        let n_strips = D.div_ceil(NR);
        let mut packed_b = vec![0.0f32; n_strips * kb * NR];
        pack_b(bv, 0, kb, D, &mut packed_b);
        let mut packed_a = vec![0.0f32; D.div_ceil(MR) * MR * kb];
        pack_a(av, 0, D, 0, kb, &mut packed_a);
        let reps = 40;

        // Bare kernel sweep over all tiles, panels streamed as in gemm_rows.
        let kernel = kernel_choice();
        let t0 = std::time::Instant::now();
        let mut sink = 0.0f32;
        for _ in 0..reps {
            for strip_b in 0..n_strips {
                let b_panel = &packed_b[strip_b * kb * NR..(strip_b + 1) * kb * NR];
                for strip_a in 0..D.div_ceil(MR) {
                    let a_panel = &packed_a[strip_a * kb * MR..(strip_a + 1) * kb * MR];
                    let mut acc = [[0.0f32; NR]; MR];
                    run_microkernel(kernel, kb, a_panel, b_panel, &mut acc);
                    // Defeat dead-code elimination of unused lanes.
                    let acc = std::hint::black_box(acc);
                    sink += acc[0][0];
                }
            }
        }
        let kernel_ms = t0.elapsed().as_secs_f64() / f64::from(reps) * 1e3;

        // Same tile count, but one fixed L1-resident panel pair: the pure
        // compute floor with no panel streaming at all.
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            for _ in 0..n_strips {
                let b_panel = &packed_b[..kb * NR];
                for _ in 0..D.div_ceil(MR) {
                    let a_panel = &packed_a[..kb * MR];
                    let mut acc = [[0.0f32; NR]; MR];
                    run_microkernel(kernel, kb, a_panel, b_panel, &mut acc);
                    let acc = std::hint::black_box(acc);
                    sink += acc[0][0];
                }
            }
        }
        let resident_ms = t0.elapsed().as_secs_f64() / f64::from(reps) * 1e3;
        println!("fixed-panel compute floor: {resident_ms:.3} ms");

        // Packing passes alone.
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            pack_b(bv, 0, kb, D, &mut packed_b);
            pack_a(av, 0, D, 0, kb, &mut packed_a);
        }
        let pack_ms = t0.elapsed().as_secs_f64() / f64::from(reps) * 1e3;

        // Full serial GEMM.
        let mut out = vec![0.0f32; D * D];
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            out.fill(0.0);
            crate::parallel::Backend::serial().install(|| gemm(D, D, D, av, bv, &mut out));
        }
        let gemm_ms = t0.elapsed().as_secs_f64() / f64::from(reps) * 1e3;
        println!(
            "256^3 serial: kernel sweep {kernel_ms:.3} ms, packing {pack_ms:.3} ms, \
             full gemm {gemm_ms:.3} ms (sink {sink})"
        );
    }

    #[test]
    fn packing_zero_pads_tails() {
        let mut rng = DivaRng::seed_from_u64(7);
        let n = NR + 3; // one full strip + a padded tail strip
        let k = 5;
        let b = dense(k, n, &mut rng);
        let bv = MatRef::row_major(&b, n);
        let mut packed = vec![f32::NAN; n.div_ceil(NR) * k * NR];
        pack_b(bv, 0, k, n, &mut packed);
        // Tail strip: entries beyond column n must be exactly zero.
        let tail = &packed[k * NR..];
        for kk in 0..k {
            for jr in 0..NR {
                let v = tail[kk * NR + jr];
                if jr < 3 {
                    assert_eq!(v, b[kk * n + NR + jr]);
                } else {
                    assert_eq!(v, 0.0, "padding not zeroed at k={kk} jr={jr}");
                }
            }
        }
    }
}
