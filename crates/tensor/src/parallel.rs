//! Shared data-parallel runtime for the compute backend.
//!
//! DP-SGD's hot path is embarrassingly parallel along two axes: the M
//! dimension of every GEMM and the batch dimension of per-example gradient
//! derivation (paper Algorithm 1 lines 16–25 — each example's gradient,
//! norm and clip factor is independent). This module provides the one
//! process-wide thread configuration every parallel kernel in the workspace
//! consults, so nested parallel regions and the figure binaries cannot
//! oversubscribe the machine.
//!
//! Design notes:
//!
//! * Workers live in a **persistent keep-alive pool** (the crate-private
//!   `pool` module):
//!   lazily spawned on first use, parked on a condvar between regions, and
//!   never torn down. A region hands each worker a contiguous task before
//!   execution starts, so scheduling can never influence results (see the
//!   pool docs for the bit-stability argument); two back-to-back regions
//!   reuse the same OS threads instead of paying spawn/join per region as
//!   the original `std::thread::scope` design did. [`prewarm`] (or
//!   [`Backend::prewarm`]) spawns the workers ahead of the first hot
//!   region; [`pool_stats`] exposes occupancy for tests and diagnostics.
//! * A thread-local "inside a parallel region" flag makes nested parallel
//!   calls run serially: the GEMM called from a batch-parallel per-example
//!   backward does not fan out again.
//! * [`Backend`] is the user-facing knob. Installing one scopes a thread
//!   count to a closure, which is how `DpTrainer` and the benches sweep
//!   serial vs. parallel execution without touching global state.
//!
//! The process-wide default is `DIVA_NUM_THREADS` if set, else the number of
//! available cores.

use crate::pool;
pub use crate::pool::PoolStats;
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::LocalKey;

/// Process-wide default thread count; 0 means "not yet initialized".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while executing inside a worker of a parallel region; forces any
    /// nested parallel call on this thread to run serially.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
    /// Per-thread override installed by [`Backend::install`]; 0 = none.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::env::var("DIVA_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The process-wide maximum number of worker threads.
pub fn max_threads() -> usize {
    let cur = GLOBAL_THREADS.load(Ordering::Relaxed);
    if cur != 0 {
        return cur;
    }
    let n = default_threads();
    // Racing initializers compute the same value; either store wins.
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Overrides the process-wide maximum worker-thread count.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn set_max_threads(n: usize) {
    assert!(n > 0, "thread count must be positive");
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The thread count parallel kernels should use *right now* on this thread:
/// 1 inside an existing parallel region, otherwise the installed
/// [`Backend`] override or the global default.
pub fn effective_threads() -> usize {
    if IN_PARALLEL.with(Cell::get) {
        return 1;
    }
    let o = THREAD_OVERRIDE.with(Cell::get);
    if o > 0 {
        o
    } else {
        max_threads()
    }
}

/// Spawns (and parks) the workers an `n`-way region needs — `n - 1`, since
/// the calling thread always executes the region's last task — so the first
/// hot region does not pay thread-spawn latency. Idempotent: the pool never
/// shrinks and existing workers count. A no-op for `n <= 1`.
pub fn prewarm(n: usize) {
    if n > 1 {
        pool::Pool::global().ensure_workers(n - 1);
    }
}

/// Occupancy of the persistent worker pool (see [`PoolStats`]).
pub fn pool_stats() -> PoolStats {
    pool::Pool::global().stats()
}

/// Execution configuration for the compute backend, threaded through
/// `DpTrainer` and the bench drivers.
///
/// # Example
///
/// ```
/// use diva_tensor::Backend;
/// let serial = Backend::serial();
/// assert_eq!(serial.threads(), 1);
/// let auto = Backend::auto();
/// assert!(auto.threads() >= 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Single-threaded reference execution.
    Serial,
    /// Parallel execution on the shared pool; `threads == 0` means "use the
    /// process-wide default" (see [`max_threads`]).
    Parallel {
        /// Worker-thread cap for this backend; 0 = process default.
        threads: usize,
    },
}

impl Backend {
    /// A single-threaded backend.
    pub fn serial() -> Self {
        Backend::Serial
    }

    /// A parallel backend using the process-wide default thread count.
    pub fn auto() -> Self {
        Backend::Parallel { threads: 0 }
    }

    /// A parallel backend capped at `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` (use [`Backend::auto`] for "default").
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "use Backend::auto() for the default count");
        Backend::Parallel { threads }
    }

    /// The concrete thread count this backend resolves to.
    pub fn threads(&self) -> usize {
        match self {
            Backend::Serial => 1,
            Backend::Parallel { threads: 0 } => max_threads(),
            Backend::Parallel { threads } => *threads,
        }
    }

    /// A short label for tables and benchmark records.
    pub fn label(&self) -> String {
        match self {
            Backend::Serial => "serial".to_string(),
            b => format!("parallel({})", b.threads()),
        }
    }

    /// Runs `f` with this backend's thread count installed on the current
    /// thread. The previous value is restored on every exit path — normal
    /// return or unwinding panic — so a caller that catches a panic never
    /// observes a stale override.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _restore = SetCell::new(&THREAD_OVERRIDE, self.threads());
        f()
    }

    /// Ensures the shared keep-alive pool has the workers this backend's
    /// parallel regions will use (see [`prewarm`]). `DpTrainer` and the
    /// bench drivers call this at configuration time so the first training
    /// step or measured iteration runs at steady-state pool occupancy.
    pub fn prewarm(&self) {
        prewarm(self.threads());
    }
}

/// Sets a thread-local `Cell` and restores the previous value on drop, so
/// panics unwinding through a parallel region cannot leave the thread's
/// scheduling state (`IN_PARALLEL`, `THREAD_OVERRIDE`) permanently stuck.
struct SetCell<T: Copy + 'static> {
    key: &'static LocalKey<Cell<T>>,
    prev: T,
}

impl<T: Copy + 'static> SetCell<T> {
    fn new(key: &'static LocalKey<Cell<T>>, value: T) -> Self {
        let prev = key.with(Cell::get);
        key.with(|c| c.set(value));
        Self { key, prev }
    }
}

impl<T: Copy + 'static> Drop for SetCell<T> {
    fn drop(&mut self) {
        self.key.with(|c| c.set(self.prev));
    }
}

impl Default for Backend {
    fn default() -> Self {
        Backend::auto()
    }
}

/// Splits `n` items into at most `parts` contiguous ranges of near-equal
/// length (first `n % parts` ranges get one extra item). Empty when `n == 0`.
fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for w in 0..parts {
        let len = base + usize::from(w < rem);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Extracts a human-readable message from a caught panic payload
/// (`panic!` with a `&str` or formatted `String`; anything else reports
/// its opacity). Shared by [`try_par_map`] and the scenario layer's cell
/// supervisor, which classify caught panics into typed failure records.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The **fallible region variant** of [`par_map`]: maps `f` over `0..n`
/// on the shared keep-alive pool, catching each item's panic individually
/// instead of letting the region re-raise the first one. Every item runs
/// to completion — one panicking item cannot unwind the region or starve
/// its siblings — and the result preserves index order: `Ok(value)` for
/// items that returned, `Err(message)` for items that panicked.
///
/// This is the primitive behind the scenario engine's per-cell
/// supervisor: a grid of independent evaluations where one poisoned cell
/// must degrade to an error record, not abort the experiment.
///
/// Determinism matches [`par_map`]: task-to-data assignment is fixed
/// before execution, so results (including which items fail) are
/// identical for every worker-thread count.
pub fn try_par_map<T, F>(n: usize, f: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    par_map(n, |i| {
        catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|p| panic_message(p.as_ref()))
    })
}

/// Maps `f` over `0..n` on the shared keep-alive pool, returning results in
/// index order. Runs serially when the effective thread count is 1, `n < 2`,
/// or the call is nested inside another parallel region.
///
/// Determinism: range `w` of the deterministic `split_ranges` partition
/// always writes slots
/// `range.start..range.end`, whichever pool worker executes it, so the
/// output is identical for every thread count and scheduling order.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let ranges = split_ranges(n, threads);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let f = &f;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
        let mut rest: &mut [Option<T>] = &mut slots;
        for range in ranges {
            let (head, tail) = rest.split_at_mut(range.len());
            rest = tail;
            tasks.push(Box::new(move || {
                let _nested = SetCell::new(&IN_PARALLEL, true);
                for (slot, i) in head.iter_mut().zip(range) {
                    *slot = Some(f(i));
                }
            }));
        }
        // The last task runs inline on the calling thread; the rest go to
        // parked pool workers.
        pool::run_region(tasks);
    }
    slots
        .into_iter()
        .map(|o| o.expect("parallel worker left a slot empty"))
        .collect()
}

/// Runs `f` over disjoint chunks of `data` (each `chunk_len` items, last one
/// shorter) on the shared keep-alive pool. `f` receives the chunk index and
/// the chunk.
///
/// This is the mutable-output primitive the blocked GEMM parallelizes over:
/// each region task owns a contiguous run of chunks (a contiguous row-block
/// of the output matrix), fixed before execution starts, so results are
/// identical for every thread count and scheduling order.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = effective_threads().min(n_chunks);
    if threads <= 1 {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    // Distribute whole chunks across tasks: task w handles a contiguous
    // run of chunks, so each worker still touches a contiguous byte range.
    let ranges = split_ranges(n_chunks, threads);
    let f = &f;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
    let mut rest: &mut [T] = data;
    let mut consumed = 0usize;
    for range in ranges {
        let end_item = (range.end * chunk_len).min(consumed + rest.len());
        let (head, tail) = rest.split_at_mut(end_item - consumed);
        rest = tail;
        consumed = end_item;
        tasks.push(Box::new(move || {
            let _nested = SetCell::new(&IN_PARALLEL, true);
            for (off, chunk) in head.chunks_mut(chunk_len).enumerate() {
                f(range.start + off, chunk);
            }
        }));
    }
    pool::run_region(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0u32; 103];
        par_chunks_mut(&mut data, 10, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + idx as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 10) as u32, "wrong value at {i}");
        }
    }

    #[test]
    fn nested_parallel_regions_run_serially() {
        // Inside a worker, effective_threads() must collapse to 1.
        let inner_counts = par_map(4, |_| {
            // We're potentially on a worker thread now.
            let nested = par_map(4, |_| effective_threads());
            nested.into_iter().max().unwrap()
        });
        // On a single-core host the outer loop is serial, so the nested
        // calls may still see the full count; the invariant we can assert
        // everywhere is "at most the global maximum".
        for c in inner_counts {
            assert!(c <= max_threads());
        }
    }

    #[test]
    fn backend_install_scopes_thread_count() {
        let serial = Backend::serial();
        let observed = serial.install(effective_threads);
        assert_eq!(observed, 1);
        let two = Backend::with_threads(2);
        assert_eq!(two.install(effective_threads), 2);
        // Restored afterwards.
        assert_eq!(
            THREAD_OVERRIDE.with(Cell::get),
            0,
            "override must be restored"
        );
    }

    #[test]
    fn install_restores_state_on_panic() {
        let result =
            std::panic::catch_unwind(|| Backend::with_threads(3).install(|| panic!("boom")));
        assert!(result.is_err());
        assert_eq!(
            THREAD_OVERRIDE.with(Cell::get),
            0,
            "override must be restored after an unwinding panic"
        );
        let result = std::panic::catch_unwind(|| {
            par_map(2, |i| if i == 1 { panic!("worker boom") } else { i })
        });
        assert!(result.is_err());
        assert!(
            !IN_PARALLEL.with(Cell::get),
            "IN_PARALLEL must not stick after a worker panic"
        );
    }

    #[test]
    fn split_ranges_covers_everything() {
        for n in [0usize, 1, 7, 64, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(n, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    assert!(!r.is_empty());
                    expect = r.end;
                }
            }
        }
    }
}
