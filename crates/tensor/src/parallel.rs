//! Shared data-parallel runtime for the compute backend.
//!
//! DP-SGD's hot path is embarrassingly parallel along two axes: the M
//! dimension of every GEMM and the batch dimension of per-example gradient
//! derivation (paper Algorithm 1 lines 16–25 — each example's gradient,
//! norm and clip factor is independent). This module provides the one
//! process-wide thread configuration every parallel kernel in the workspace
//! consults, so nested parallel regions and the figure binaries cannot
//! oversubscribe the machine.
//!
//! Design notes:
//!
//! * Workers live in a **persistent keep-alive pool** (the crate-private
//!   `pool` module):
//!   lazily spawned on first use, parked on a condvar between regions, and
//!   never torn down. A region fixes task-to-data assignment before
//!   execution starts, so scheduling can never influence results (see the
//!   pool docs for the bit-stability argument); two back-to-back regions
//!   reuse the same OS threads instead of paying spawn/join per region as
//!   the original `std::thread::scope` design did. [`prewarm`] (or
//!   [`Backend::prewarm`]) spawns the workers ahead of the first hot
//!   region; [`pool_stats`] exposes occupancy and scheduling counters for
//!   tests, benches and `diva-serve`'s `/stats`.
//! * **Nested regions are scheduled hierarchically**, not serialized: a
//!   parallel call made from inside a region's task (the GEMM under a
//!   batch-parallel per-example backward, a cell's compute under the
//!   scenario grid) queues its tasks on the shared pool, where idle
//!   workers steal them; the nested caller executes its own queued tasks
//!   while it waits, so the nested region never deadlocks and never runs
//!   slower than the old collapse-to-serial behavior. The *data* split of
//!   a nested region is still decided by its requested width before
//!   execution — scheduling decides who runs a task, never what a task
//!   computes. [`set_nested_parallelism`] restores the legacy serial
//!   collapse (a bench/bisect hook; results are bit-identical either way).
//! * [`Backend`] is the user-facing knob. Installing one scopes a thread
//!   count to a closure, which is how `DpTrainer` and the benches sweep
//!   serial vs. parallel execution without touching global state. The
//!   override travels *with the region*: a task executing on a stolen
//!   worker sees the submitting thread's backend, not the worker's.
//!
//! The process-wide default is `DIVA_NUM_THREADS` if set, else the number of
//! available cores.

use crate::pool;
pub use crate::pool::PoolStats;
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread::LocalKey;

/// Process-wide default thread count; 0 means "not yet initialized".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// When cleared, nested parallel regions collapse to serial execution on
/// their calling thread (the pre-work-stealing behavior). Stored inverted
/// so the default (`false`) means "nested scheduling on".
static NESTED_DISABLED: AtomicBool = AtomicBool::new(false);

/// Regions nested deeper than this run serially: by then every level of
/// the machine is saturated and further task-splitting is pure overhead
/// (the depth is data-flow determined, so the cutoff is deterministic).
/// Depth 1 is an un-nested region; the deepest real chain in this
/// workspace is scenario grid → per-example backward → GEMM M-split = 3.
const MAX_REGION_DEPTH: usize = 4;

thread_local! {
    /// Nesting depth of the region task currently executing on this thread
    /// (0 = not inside any region). Tasks carry their submitting region's
    /// depth + 1, whichever thread they execute on.
    static REGION_DEPTH: Cell<usize> = const { Cell::new(0) };
    /// Per-thread override installed by [`Backend::install`]; 0 = none.
    /// Region tasks re-install their submitter's override while they run.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Enables or disables hierarchical scheduling of nested parallel regions
/// process-wide. Disabled, a nested region runs serially on its calling
/// thread — the legacy behavior. Results are bit-identical either way
/// (pinned by the scenario/explorer byte-identity suites); only
/// scheduling, and therefore throughput, changes.
pub fn set_nested_parallelism(enabled: bool) {
    NESTED_DISABLED.store(!enabled, Ordering::Relaxed);
}

/// Whether nested parallel regions are currently scheduled hierarchically
/// (the default) rather than collapsed to serial.
pub fn nested_parallelism() -> bool {
    !NESTED_DISABLED.load(Ordering::Relaxed)
}

/// The nesting depth of the parallel region this thread is currently
/// executing a task of (0 = top level). Diagnostics/tests.
pub fn region_depth() -> usize {
    REGION_DEPTH.with(Cell::get)
}

fn default_threads() -> usize {
    std::env::var("DIVA_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The process-wide maximum number of worker threads.
pub fn max_threads() -> usize {
    let cur = GLOBAL_THREADS.load(Ordering::Relaxed);
    if cur != 0 {
        return cur;
    }
    let n = default_threads();
    // Racing initializers compute the same value; either store wins.
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Overrides the process-wide maximum worker-thread count.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn set_max_threads(n: usize) {
    assert!(n > 0, "thread count must be positive");
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The thread count parallel kernels should use *right now* on this thread:
/// the installed [`Backend`] override or the global default — even inside
/// an existing parallel region, because nested regions are scheduled for
/// real (their tasks run on idle workers, or on the caller while it waits).
/// Collapses to 1 inside a region only when nested parallelism is disabled
/// ([`set_nested_parallelism`]) or the region is already
/// `MAX_REGION_DEPTH` levels deep.
pub fn effective_threads() -> usize {
    let depth = REGION_DEPTH.with(Cell::get);
    if depth > 0 && (!nested_parallelism() || depth >= MAX_REGION_DEPTH) {
        return 1;
    }
    let o = THREAD_OVERRIDE.with(Cell::get);
    if o > 0 {
        o
    } else {
        max_threads()
    }
}

/// Spawns (and parks) the workers an `n`-way region needs — `n - 1`, since
/// the calling thread always executes the region's last task — so the first
/// hot region does not pay thread-spawn latency. Idempotent: the pool never
/// shrinks and existing workers count. A no-op for `n <= 1`.
pub fn prewarm(n: usize) {
    if n > 1 {
        pool::Pool::global().ensure_workers(n - 1);
    }
}

/// Occupancy of the persistent worker pool (see [`PoolStats`]).
pub fn pool_stats() -> PoolStats {
    pool::Pool::global().stats()
}

/// Execution configuration for the compute backend, threaded through
/// `DpTrainer` and the bench drivers.
///
/// # Example
///
/// ```
/// use diva_tensor::Backend;
/// let serial = Backend::serial();
/// assert_eq!(serial.threads(), 1);
/// let auto = Backend::auto();
/// assert!(auto.threads() >= 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Single-threaded reference execution.
    Serial,
    /// Parallel execution on the shared pool; `threads == 0` means "use the
    /// process-wide default" (see [`max_threads`]).
    Parallel {
        /// Worker-thread cap for this backend; 0 = process default.
        threads: usize,
    },
}

impl Backend {
    /// A single-threaded backend.
    pub fn serial() -> Self {
        Backend::Serial
    }

    /// A parallel backend using the process-wide default thread count.
    pub fn auto() -> Self {
        Backend::Parallel { threads: 0 }
    }

    /// A parallel backend capped at `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` (use [`Backend::auto`] for "default").
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "use Backend::auto() for the default count");
        Backend::Parallel { threads }
    }

    /// The concrete thread count this backend resolves to.
    pub fn threads(&self) -> usize {
        match self {
            Backend::Serial => 1,
            Backend::Parallel { threads: 0 } => max_threads(),
            Backend::Parallel { threads } => *threads,
        }
    }

    /// A short label for tables and benchmark records.
    pub fn label(&self) -> String {
        match self {
            Backend::Serial => "serial".to_string(),
            b => format!("parallel({})", b.threads()),
        }
    }

    /// Runs `f` with this backend's thread count installed on the current
    /// thread. The previous value is restored on every exit path — normal
    /// return or unwinding panic — so a caller that catches a panic never
    /// observes a stale override.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _restore = SetCell::new(&THREAD_OVERRIDE, self.threads());
        f()
    }

    /// Ensures the shared keep-alive pool has the workers this backend's
    /// parallel regions will use (see [`prewarm`]). `DpTrainer` and the
    /// bench drivers call this at configuration time so the first training
    /// step or measured iteration runs at steady-state pool occupancy.
    pub fn prewarm(&self) {
        prewarm(self.threads());
    }
}

/// Sets a thread-local `Cell` and restores the previous value on drop, so
/// panics unwinding through a parallel region cannot leave the thread's
/// scheduling state (`REGION_DEPTH`, `THREAD_OVERRIDE`) permanently stuck.
struct SetCell<T: Copy + 'static> {
    key: &'static LocalKey<Cell<T>>,
    prev: T,
}

impl<T: Copy + 'static> SetCell<T> {
    fn new(key: &'static LocalKey<Cell<T>>, value: T) -> Self {
        let prev = key.with(Cell::get);
        key.with(|c| c.set(value));
        Self { key, prev }
    }
}

impl<T: Copy + 'static> Drop for SetCell<T> {
    fn drop(&mut self) {
        self.key.with(|c| c.set(self.prev));
    }
}

impl Default for Backend {
    fn default() -> Self {
        Backend::auto()
    }
}

/// Splits `n` items into at most `parts` contiguous ranges of near-equal
/// length (first `n % parts` ranges get one extra item). Empty when `n == 0`.
fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for w in 0..parts {
        let len = base + usize::from(w < rem);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Extracts a human-readable message from a caught panic payload
/// (`panic!` with a `&str` or formatted `String`; anything else reports
/// its opacity). Shared by [`try_par_map`] and the scenario layer's cell
/// supervisor, which classify caught panics into typed failure records.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The **fallible region variant** of [`par_map`]: maps `f` over `0..n`
/// on the shared keep-alive pool, catching each item's panic individually
/// instead of letting the region re-raise the first one. Every item runs
/// to completion — one panicking item cannot unwind the region or starve
/// its siblings — and the result preserves index order: `Ok(value)` for
/// items that returned, `Err(message)` for items that panicked.
///
/// This is the primitive behind the scenario engine's per-cell
/// supervisor: a grid of independent evaluations where one poisoned cell
/// must degrade to an error record, not abort the experiment.
///
/// Determinism matches [`par_map`]: task-to-data assignment is fixed
/// before execution, so results (including which items fail) are
/// identical for every worker-thread count.
pub fn try_par_map<T, F>(n: usize, f: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    par_map(n, |i| {
        catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|p| panic_message(p.as_ref()))
    })
}

/// The scheduling context a region's tasks carry with them: the
/// submitter's backend override and the region's nesting depth. Installing
/// it on the executing thread (worker, stealer, or helping waiter) makes
/// nested `effective_threads()` calls resolve exactly as they would have
/// on the submitting thread — context flows lexically with the region
/// tree, never with the OS thread, which is what keeps data splits
/// deterministic under work-stealing.
#[derive(Clone, Copy)]
struct RegionCtx {
    thread_override: usize,
    depth: usize,
}

impl RegionCtx {
    /// The context tasks of a region submitted from this thread must run
    /// under: same override, one level deeper.
    fn capture() -> Self {
        Self {
            thread_override: THREAD_OVERRIDE.with(Cell::get),
            depth: REGION_DEPTH.with(Cell::get) + 1,
        }
    }

    /// Installs the context for the duration of a task body.
    fn install(self) -> (SetCell<usize>, SetCell<usize>) {
        (
            SetCell::new(&THREAD_OVERRIDE, self.thread_override),
            SetCell::new(&REGION_DEPTH, self.depth),
        )
    }
}

/// Maps `f` over `0..n` on the shared keep-alive pool, returning results in
/// index order. Runs serially when the effective thread count is 1 or
/// `n < 2`; a call nested inside another parallel region fans out onto
/// idle workers (see the module docs).
///
/// Determinism: range `w` of the deterministic `split_ranges` partition
/// always writes slots
/// `range.start..range.end`, whichever pool worker executes it, so the
/// output is identical for every thread count and scheduling order.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let ctx = RegionCtx::capture();
    let ranges = split_ranges(n, threads);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let f = &f;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
        let mut rest: &mut [Option<T>] = &mut slots;
        for range in ranges {
            let (head, tail) = rest.split_at_mut(range.len());
            rest = tail;
            tasks.push(Box::new(move || {
                let _ctx = ctx.install();
                for (slot, i) in head.iter_mut().zip(range) {
                    *slot = Some(f(i));
                }
            }));
        }
        // The last task runs inline on the calling thread; the rest are
        // queued for idle (or stealing) pool workers.
        pool::run_region(tasks, ctx.depth);
    }
    slots
        .into_iter()
        .map(|o| o.expect("parallel worker left a slot empty"))
        .collect()
}

/// Runs `f` over disjoint chunks of `data` (each `chunk_len` items, last one
/// shorter) on the shared keep-alive pool. `f` receives the chunk index and
/// the chunk.
///
/// This is the mutable-output primitive the blocked GEMM parallelizes over:
/// each region task owns a contiguous run of chunks (a contiguous row-block
/// of the output matrix), fixed before execution starts, so results are
/// identical for every thread count and scheduling order.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = effective_threads().min(n_chunks);
    if threads <= 1 {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    // Distribute whole chunks across tasks: task w handles a contiguous
    // run of chunks, so each worker still touches a contiguous byte range.
    let ctx = RegionCtx::capture();
    let ranges = split_ranges(n_chunks, threads);
    let f = &f;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
    let mut rest: &mut [T] = data;
    let mut consumed = 0usize;
    for range in ranges {
        let end_item = (range.end * chunk_len).min(consumed + rest.len());
        let (head, tail) = rest.split_at_mut(end_item - consumed);
        rest = tail;
        consumed = end_item;
        tasks.push(Box::new(move || {
            let _ctx = ctx.install();
            for (off, chunk) in head.chunks_mut(chunk_len).enumerate() {
                f(range.start + off, chunk);
            }
        }));
    }
    pool::run_region(tasks, ctx.depth);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0u32; 103];
        par_chunks_mut(&mut data, 10, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + idx as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 10) as u32, "wrong value at {i}");
        }
    }

    #[test]
    fn nested_regions_track_depth_and_produce_identical_results() {
        // Force a real two-level region tree (a plain call would degrade to
        // serial on a single-core host) and check every inner task observes
        // depth 2 wherever it executed, with index-ordered results.
        let outer = Backend::with_threads(2)
            .install(|| par_map(4, |i| par_map(4, |j| (region_depth(), i * 10 + j))));
        for (i, inner) in outer.iter().enumerate() {
            for (j, (depth, v)) in inner.iter().enumerate() {
                assert_eq!(*depth, 2, "inner task at wrong depth");
                assert_eq!(*v, i * 10 + j);
            }
        }
        assert_eq!(region_depth(), 0, "depth must be restored after regions");
    }

    #[test]
    fn nested_parallelism_toggle_collapses_inner_regions() {
        set_nested_parallelism(false);
        let counts = par_map(2, |_| par_map(2, |_| effective_threads()));
        set_nested_parallelism(true);
        // With the legacy collapse restored, any task that ran inside a
        // real (fanned-out) region must have seen width 1; tasks of a
        // serially-degraded outer region run at depth 0 and may see more.
        for inner in counts {
            for c in inner {
                assert!(c <= max_threads());
            }
        }
        assert!(nested_parallelism(), "toggle must be restored");
    }

    #[test]
    fn depth_cutoff_forces_serial_beyond_max_depth() {
        // Simulate a task executing at the cutoff depth: effective_threads
        // must collapse to 1 regardless of the configured width.
        let _depth = SetCell::new(&REGION_DEPTH, MAX_REGION_DEPTH);
        assert_eq!(effective_threads(), 1);
    }

    #[test]
    fn backend_install_scopes_thread_count() {
        let serial = Backend::serial();
        let observed = serial.install(effective_threads);
        assert_eq!(observed, 1);
        let two = Backend::with_threads(2);
        assert_eq!(two.install(effective_threads), 2);
        // Restored afterwards.
        assert_eq!(
            THREAD_OVERRIDE.with(Cell::get),
            0,
            "override must be restored"
        );
    }

    #[test]
    fn install_restores_state_on_panic() {
        let result =
            std::panic::catch_unwind(|| Backend::with_threads(3).install(|| panic!("boom")));
        assert!(result.is_err());
        assert_eq!(
            THREAD_OVERRIDE.with(Cell::get),
            0,
            "override must be restored after an unwinding panic"
        );
        let result = std::panic::catch_unwind(|| {
            par_map(2, |i| if i == 1 { panic!("worker boom") } else { i })
        });
        assert!(result.is_err());
        assert_eq!(
            REGION_DEPTH.with(Cell::get),
            0,
            "REGION_DEPTH must not stick after a worker panic"
        );
    }

    #[test]
    fn split_ranges_covers_everything() {
        for n in [0usize, 1, 7, 64, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(n, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    assert!(!r.is_empty());
                    expect = r.end;
                }
            }
        }
    }
}
