//! The dense row-major `f32` tensor type.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::rng::DivaRng;
use crate::shape::Shape;

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` owns its storage (`Vec<f32>`). All operations in this crate are
/// eager and allocate their outputs; shape mismatches are programming errors
/// and panic with a descriptive message (documented per function).
///
/// # Example
///
/// ```
/// use diva_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a square identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements implied
    /// by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.len()
        );
        Self { shape, data }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut DivaRng) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(|_| rng.uniform(lo, hi)).collect();
        Self { shape, data }
    }

    /// Creates a tensor with elements drawn from `N(0, std²)`.
    pub fn gaussian(dims: &[usize], std: f32, rng: &mut DivaRng) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len())
            .map(|_| rng.gaussian(0.0, f64::from(std)) as f32)
            .collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape holding the same number of
    /// elements (a free, row-major reshape).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, dims: &[usize]) -> Self {
        let new_shape = Shape::new(dims);
        assert_eq!(
            self.shape.len(),
            new_shape.len(),
            "cannot reshape {} ({} elements) into {} ({} elements)",
            self.shape,
            self.shape.len(),
            new_shape,
            new_shape.len()
        );
        self.shape = new_shape;
        self
    }

    /// For a rank-2 tensor, returns `(rows, cols)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn dims2(&self) -> (usize, usize) {
        assert_eq!(self.shape.rank(), 2, "expected rank-2, got {}", self.shape);
        (self.shape.dim(0), self.shape.dim(1))
    }

    /// Returns a new tensor that is the rank-2 transpose of `self`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Self {
        let (r, c) = self.dims2();
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Returns the row `i` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        let (r, c) = self.dims2();
        assert!(i < r, "row {i} out of bounds for {} rows", r);
        &self.data[i * c..(i + 1) * c]
    }

    /// Elementwise in-place addition of another tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Elementwise in-place subtraction of another tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "sub_assign shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// The sum of all elements (accumulated in `f64` for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| f64::from(x)).sum()
    }

    /// The sum of squares of all elements (accumulated in `f64`).
    pub fn squared_norm(&self) -> f64 {
        self.data.iter().map(|&x| f64::from(x) * f64::from(x)).sum()
    }

    /// The L2 norm of the tensor viewed as a flat vector.
    pub fn l2_norm(&self) -> f64 {
        self.squared_norm().sqrt()
    }

    /// The maximum absolute difference against another tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "max_abs_diff shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Index<&[usize]> for Tensor {
    type Output = f32;

    fn index(&self, idx: &[usize]) -> &f32 {
        &self.data[flat_index(&self.shape, idx)]
    }
}

impl IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let i = flat_index(&self.shape, idx);
        &mut self.data[i]
    }
}

fn flat_index(shape: &Shape, idx: &[usize]) -> usize {
    assert_eq!(
        idx.len(),
        shape.rank(),
        "index rank {} does not match tensor rank {}",
        idx.len(),
        shape.rank()
    );
    let strides = shape.strides();
    idx.iter()
        .zip(strides.iter())
        .zip(shape.dims().iter())
        .map(|((&i, &s), &d)| {
            assert!(i < d, "index {i} out of bounds for dimension of size {d}");
            i * s
        })
        .sum()
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}, ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "{:?})", self.data)
        } else {
            write!(f, "[{:?}, ...])", &self.data[..8])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t[&[1, 2, 3]] = 7.5;
        assert_eq!(t[&[1, 2, 3]], 7.5);
        assert_eq!(t.data()[12 + 2 * 4 + 3], 7.5);
    }

    #[test]
    fn transpose_is_involution() {
        let mut rng = DivaRng::seed_from_u64(7);
        let t = Tensor::uniform(&[3, 5], -1.0, 1.0, &mut rng);
        assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn eye_times_scale() {
        let mut t = Tensor::eye(3);
        t.scale(2.0);
        assert_eq!(t.sum(), 6.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_assign_rejects_mismatch() {
        let mut a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        a.add_assign(&b);
    }

    #[test]
    fn norms_agree_with_manual() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert!((t.l2_norm() - 5.0).abs() < 1e-12);
        assert!((t.squared_norm() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.clone().reshape(&[4]);
        assert_eq!(r.data(), t.data());
    }
}
