//! GEMM entry points in all transpose flavours, plus the outer-product
//! decomposition used by DiVa's GEMM engine (paper Figure 9).
//!
//! All four flavours route through the cache-blocked, register-tiled,
//! M-parallel backend in [`crate::gemm`]; transposition is absorbed by the
//! packing stage, so `tn`/`nt`/`tt` cost the same as `nn`. The seed's
//! scalar i-k-j kernel is retained as [`matmul_reference`] — it is the
//! baseline every parity test and throughput benchmark compares against.

use crate::gemm::{gemm, gemm_reference, MatRef};
use crate::tensor::Tensor;

/// Computes `C = A × B` for row-major rank-2 tensors.
///
/// `A` is `(M, K)`, `B` is `(K, N)`, and the result is `(M, N)`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use diva_tensor::{matmul, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert_eq!(matmul(&a, &b), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = a.dims2();
    let (kb, n) = b.dims2();
    assert_eq!(
        ka, kb,
        "matmul inner dimension mismatch: ({m},{ka}) x ({kb},{n})"
    );
    let mut out = Tensor::zeros(&[m, n]);
    gemm(
        m,
        ka,
        n,
        MatRef::row_major(a.data(), ka),
        MatRef::row_major(b.data(), n),
        out.data_mut(),
    );
    out
}

/// Computes `C = Aᵀ × B` where `A` is `(K, M)` and `B` is `(K, N)`.
///
/// This is the shape of the weight-gradient GEMM in backpropagation
/// (`G(W) = Xᵀ × G(Y)`, paper Figure 6 middle).
///
/// # Panics
///
/// Panics on rank/shape mismatch.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = a.dims2();
    let (kb, n) = b.dims2();
    assert_eq!(
        ka, kb,
        "matmul_tn K dimension mismatch: ({ka},{m})^T x ({kb},{n})"
    );
    let mut out = Tensor::zeros(&[m, n]);
    gemm(
        m,
        ka,
        n,
        MatRef::transposed(a.data(), m),
        MatRef::row_major(b.data(), n),
        out.data_mut(),
    );
    out
}

/// Computes `C = A × Bᵀ` where `A` is `(M, K)` and `B` is `(N, K)`.
///
/// This is the shape of the activation-gradient GEMM in backpropagation
/// (`G(X) = G(Y) × Wᵀ`).
///
/// # Panics
///
/// Panics on rank/shape mismatch.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = a.dims2();
    let (n, kb) = b.dims2();
    assert_eq!(
        ka, kb,
        "matmul_nt K dimension mismatch: ({m},{ka}) x ({n},{kb})^T"
    );
    let mut out = Tensor::zeros(&[m, n]);
    gemm(
        m,
        ka,
        n,
        MatRef::row_major(a.data(), ka),
        MatRef::transposed(b.data(), kb),
        out.data_mut(),
    );
    out
}

/// Computes `C = Aᵀ × Bᵀ` where `A` is `(K, M)` and `B` is `(N, K)`.
///
/// # Panics
///
/// Panics on rank/shape mismatch.
pub fn matmul_tt(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = a.dims2();
    let (n, kb) = b.dims2();
    assert_eq!(
        ka, kb,
        "matmul_tt K dimension mismatch: ({ka},{m})^T x ({n},{kb})^T"
    );
    let mut out = Tensor::zeros(&[m, n]);
    gemm(
        m,
        ka,
        n,
        MatRef::transposed(a.data(), m),
        MatRef::transposed(b.data(), kb),
        out.data_mut(),
    );
    out
}

/// The seed's scalar i-k-j GEMM, kept verbatim as the parity/benchmark
/// baseline for the blocked backend.
///
/// # Panics
///
/// Panics on rank/shape mismatch, like [`matmul`].
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = a.dims2();
    let (kb, n) = b.dims2();
    assert_eq!(
        ka, kb,
        "matmul inner dimension mismatch: ({m},{ka}) x ({kb},{n})"
    );
    let mut out = Tensor::zeros(&[m, n]);
    gemm_reference(
        m,
        ka,
        n,
        MatRef::row_major(a.data(), ka),
        MatRef::row_major(b.data(), n),
        out.data_mut(),
    );
    out
}

/// Accumulates one outer-product step `C += a ⊗ b` into `c`.
///
/// This is the per-cycle operation of DiVa's outer-product GEMM engine
/// (paper Figure 9): a length-`M` column of the LHS and a length-`N` row of
/// the RHS are broadcast across the PE array, and every PE performs one MAC.
///
/// # Panics
///
/// Panics if `c` is not `(a.len(), b.len())`.
pub fn outer_product_accumulate(c: &mut Tensor, a: &[f32], b: &[f32]) {
    let (m, n) = c.dims2();
    assert_eq!(a.len(), m, "outer product LHS length {} != M {m}", a.len());
    assert_eq!(b.len(), n, "outer product RHS length {} != N {n}", b.len());
    let cv = c.data_mut();
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0.0 {
            continue;
        }
        let crow = &mut cv[i * n..(i + 1) * n];
        for (cij, &bj) in crow.iter_mut().zip(b.iter()) {
            *cij += ai * bj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DivaRng;

    fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
        a.max_abs_diff(b) < tol
    }

    #[test]
    fn transpose_variants_agree() {
        let mut rng = DivaRng::seed_from_u64(11);
        let a = Tensor::uniform(&[4, 6], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[6, 5], -1.0, 1.0, &mut rng);
        let c = matmul(&a, &b);
        assert!(close(&matmul_tn(&a.transpose(), &b), &c, 1e-5));
        assert!(close(&matmul_nt(&a, &b.transpose()), &c, 1e-5));
        assert!(close(&matmul_tt(&a.transpose(), &b.transpose()), &c, 1e-5));
    }

    #[test]
    fn blocked_agrees_with_reference_above_threshold() {
        // 96³ is above the blocked-path threshold, so this exercises the
        // packed kernel end-to-end through the public API.
        let mut rng = DivaRng::seed_from_u64(12);
        let a = Tensor::uniform(&[96, 96], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[96, 96], -1.0, 1.0, &mut rng);
        let fast = matmul(&a, &b);
        let slow = matmul_reference(&a, &b);
        assert!(
            close(&fast, &slow, 1e-4),
            "blocked GEMM diverged: {}",
            fast.max_abs_diff(&slow)
        );
    }

    #[test]
    fn outer_product_decomposition_matches_matmul() {
        // The identity DiVa's engine is built on: A×B == Σ_k col_k(A) ⊗ row_k(B).
        let mut rng = DivaRng::seed_from_u64(13);
        let a = Tensor::uniform(&[5, 7], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[7, 3], -1.0, 1.0, &mut rng);
        let at = a.transpose(); // rows of at are columns of a
        let mut c = Tensor::zeros(&[5, 3]);
        for k in 0..7 {
            outer_product_accumulate(&mut c, at.row(k), b.row(k));
        }
        assert!(close(&c, &matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_by_identity_is_identity_map() {
        let mut rng = DivaRng::seed_from_u64(17);
        let a = Tensor::uniform(&[3, 3], -1.0, 1.0, &mut rng);
        assert!(close(&matmul(&a, &Tensor::eye(3)), &a, 1e-6));
        assert!(close(&matmul(&Tensor::eye(3), &a), &a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn degenerate_dims_produce_empty_or_zero() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert_eq!(matmul(&a, &b).shape().dims(), &[0, 2]);
        // K = 0 means the sum over k is empty: all zeros.
        let a = Tensor::full(&[2, 0], 1.0);
        let b = Tensor::full(&[0, 2], 1.0);
        assert_eq!(matmul(&a, &b), Tensor::zeros(&[2, 2]));
    }
}
