//! GEMM kernels in all transpose flavours, plus the outer-product
//! decomposition used by DiVa's GEMM engine (paper Figure 9).

use crate::tensor::Tensor;

/// Computes `C = A × B` for row-major rank-2 tensors.
///
/// `A` is `(M, K)`, `B` is `(K, N)`, and the result is `(M, N)`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use diva_tensor::{matmul, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert_eq!(matmul(&a, &b), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = a.dims2();
    let (kb, n) = b.dims2();
    assert_eq!(
        ka, kb,
        "matmul inner dimension mismatch: ({m},{ka}) x ({kb},{n})"
    );
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.data();
    let bv = b.data();
    let ov = out.data_mut();
    // i-k-j loop order keeps the inner loop contiguous over B and C rows.
    for i in 0..m {
        for k in 0..ka {
            let aik = av[i * ka + k];
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[k * n..(k + 1) * n];
            let crow = &mut ov[i * n..(i + 1) * n];
            for (c, &bkj) in crow.iter_mut().zip(brow.iter()) {
                *c += aik * bkj;
            }
        }
    }
    out
}

/// Computes `C = Aᵀ × B` where `A` is `(K, M)` and `B` is `(K, N)`.
///
/// This is the shape of the weight-gradient GEMM in backpropagation
/// (`G(W) = Xᵀ × G(Y)`, paper Figure 6 middle).
///
/// # Panics
///
/// Panics on rank/shape mismatch.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = a.dims2();
    let (kb, n) = b.dims2();
    assert_eq!(
        ka, kb,
        "matmul_tn K dimension mismatch: ({ka},{m})^T x ({kb},{n})"
    );
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.data();
    let bv = b.data();
    let ov = out.data_mut();
    // Outer-product style accumulation: for each k, C += a_k ⊗ b_k.
    for k in 0..ka {
        let arow = &av[k * m..(k + 1) * m];
        let brow = &bv[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let crow = &mut ov[i * n..(i + 1) * n];
            for (c, &bkj) in crow.iter_mut().zip(brow.iter()) {
                *c += aki * bkj;
            }
        }
    }
    out
}

/// Computes `C = A × Bᵀ` where `A` is `(M, K)` and `B` is `(N, K)`.
///
/// This is the shape of the activation-gradient GEMM in backpropagation
/// (`G(X) = G(Y) × Wᵀ`).
///
/// # Panics
///
/// Panics on rank/shape mismatch.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = a.dims2();
    let (n, kb) = b.dims2();
    assert_eq!(
        ka, kb,
        "matmul_nt K dimension mismatch: ({m},{ka}) x ({n},{kb})^T"
    );
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.data();
    let bv = b.data();
    let ov = out.data_mut();
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        for j in 0..n {
            let brow = &bv[j * kb..(j + 1) * kb];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            ov[i * n + j] = acc;
        }
    }
    out
}

/// Computes `C = Aᵀ × Bᵀ` where `A` is `(K, M)` and `B` is `(N, K)`.
///
/// # Panics
///
/// Panics on rank/shape mismatch.
pub fn matmul_tt(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = a.dims2();
    let (n, kb) = b.dims2();
    assert_eq!(
        ka, kb,
        "matmul_tt K dimension mismatch: ({ka},{m})^T x ({n},{kb})^T"
    );
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.data();
    let bv = b.data();
    let ov = out.data_mut();
    for k in 0..ka {
        let arow = &av[k * m..(k + 1) * m];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let crow = &mut ov[i * n..(i + 1) * n];
            for (j, c) in crow.iter_mut().enumerate() {
                *c += aki * bv[j * kb + k];
            }
        }
    }
    out
}

/// Accumulates one outer-product step `C += a ⊗ b` into `c`.
///
/// This is the per-cycle operation of DiVa's outer-product GEMM engine
/// (paper Figure 9): a length-`M` column of the LHS and a length-`N` row of
/// the RHS are broadcast across the PE array, and every PE performs one MAC.
///
/// # Panics
///
/// Panics if `c` is not `(a.len(), b.len())`.
pub fn outer_product_accumulate(c: &mut Tensor, a: &[f32], b: &[f32]) {
    let (m, n) = c.dims2();
    assert_eq!(a.len(), m, "outer product LHS length {} != M {m}", a.len());
    assert_eq!(b.len(), n, "outer product RHS length {} != N {n}", b.len());
    let cv = c.data_mut();
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0.0 {
            continue;
        }
        let crow = &mut cv[i * n..(i + 1) * n];
        for (cij, &bj) in crow.iter_mut().zip(b.iter()) {
            *cij += ai * bj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DivaRng;

    fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
        a.max_abs_diff(b) < tol
    }

    #[test]
    fn transpose_variants_agree() {
        let mut rng = DivaRng::seed_from_u64(11);
        let a = Tensor::uniform(&[4, 6], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[6, 5], -1.0, 1.0, &mut rng);
        let c = matmul(&a, &b);
        assert!(close(&matmul_tn(&a.transpose(), &b), &c, 1e-5));
        assert!(close(&matmul_nt(&a, &b.transpose()), &c, 1e-5));
        assert!(close(&matmul_tt(&a.transpose(), &b.transpose()), &c, 1e-5));
    }

    #[test]
    fn outer_product_decomposition_matches_matmul() {
        // The identity DiVa's engine is built on: A×B == Σ_k col_k(A) ⊗ row_k(B).
        let mut rng = DivaRng::seed_from_u64(13);
        let a = Tensor::uniform(&[5, 7], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[7, 3], -1.0, 1.0, &mut rng);
        let at = a.transpose(); // rows of at are columns of a
        let mut c = Tensor::zeros(&[5, 3]);
        for k in 0..7 {
            outer_product_accumulate(&mut c, at.row(k), b.row(k));
        }
        assert!(close(&c, &matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_by_identity_is_identity_map() {
        let mut rng = DivaRng::seed_from_u64(17);
        let a = Tensor::uniform(&[3, 3], -1.0, 1.0, &mut rng);
        assert!(close(&matmul(&a, &Tensor::eye(3)), &a, 1e-6));
        assert!(close(&matmul(&Tensor::eye(3), &a), &a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn degenerate_dims_produce_empty_or_zero() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert_eq!(matmul(&a, &b).shape().dims(), &[0, 2]);
        // K = 0 means the sum over k is empty: all zeros.
        let a = Tensor::full(&[2, 0], 1.0);
        let b = Tensor::full(&[0, 2], 1.0);
        assert_eq!(matmul(&a, &b), Tensor::zeros(&[2, 2]));
    }
}
