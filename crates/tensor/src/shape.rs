//! Tensor shapes: small fixed vectors of dimension sizes.

use std::fmt;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension sizes.
///
/// Shapes are value types (cheap to clone) and compare structurally. A
/// zero-dimensional shape describes a scalar tensor with one element.
///
/// # Example
///
/// ```
/// use diva_tensor::Shape;
/// let s = Shape::new(&[4, 3, 2]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// The number of dimensions (rank) of the shape.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The total number of elements described by the shape.
    ///
    /// A rank-0 shape has one element (a scalar).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` if the shape describes zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides for this shape (innermost dimension has stride 1).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.strides(), vec![6, 2, 1]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
    }

    #[test]
    fn zero_dim_is_empty() {
        assert!(Shape::new(&[3, 0, 2]).is_empty());
        assert!(!Shape::new(&[1]).is_empty());
    }
}
