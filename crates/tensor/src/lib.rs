//! Dense `f32` tensor substrate for the DiVa reproduction.
//!
//! This crate provides the minimal linear-algebra toolkit needed to implement
//! DP-SGD from scratch (see the `diva-nn` and `diva-dp` crates): row-major
//! dense tensors, GEMM in all transpose flavours, `im2col`/`col2im` lowering
//! of convolutions (the transformation the paper relies on to express every
//! training step as GEMM, Section II-D of the paper), elementwise kernels,
//! reductions, and a seedable random-number facility including a Gaussian
//! sampler (Box–Muller; implemented here because `rand_distr` is not part of
//! the approved dependency set).
//!
//! The crate is deliberately free of unsafe code and external BLAS. GEMM is
//! nevertheless a cache-blocked, register-tiled, multi-threaded kernel (see
//! the `gemm` module and [`parallel`]): written so the autovectorizer emits
//! wide FMA code, with the seed's scalar loop retained as
//! [`matmul_reference`] for parity testing and benchmarking.
//!
//! # Example
//!
//! ```
//! use diva_tensor::{Tensor, matmul};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bf16;
mod conv;
mod gemm;
mod matmul;
mod ops;
pub mod parallel;
mod rng;
mod shape;
mod tensor;

pub use bf16::{round_bf16, BF16_MAX_RELATIVE_ERROR};
pub use conv::{
    col2im, conv2d, conv2d_backward_data, conv2d_backward_data_from_rows, conv2d_backward_weight,
    im2col, nchw_to_rows, Conv2dGeom, PatchBuffer,
};
pub use gemm::{scalar_reference_mode, set_scalar_reference_mode, PackCache};
pub use matmul::{
    matmul, matmul_nt, matmul_reference, matmul_tn, matmul_tt, outer_product_accumulate,
};
pub use ops::{
    add_scaled, argmax_rows, relu, relu_backward, softmax_cross_entropy, SoftmaxCrossEntropy,
};
pub use parallel::Backend;
pub use rng::DivaRng;
pub use shape::Shape;
pub use tensor::Tensor;
