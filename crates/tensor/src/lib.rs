//! Dense `f32` tensor substrate for the DiVa reproduction.
//!
//! This crate provides the minimal linear-algebra toolkit needed to implement
//! DP-SGD from scratch (see the `diva-nn` and `diva-dp` crates): row-major
//! dense tensors, GEMM in all transpose flavours, `im2col`/`col2im` lowering
//! of convolutions (the transformation the paper relies on to express every
//! training step as GEMM, Section II-D of the paper), elementwise kernels,
//! reductions, and a seedable random-number facility including a Gaussian
//! sampler (Box–Muller; implemented here because `rand_distr` is not part of
//! the approved dependency set).
//!
//! The crate uses no external BLAS, and unsafe code is denied crate-wide
//! except at two narrow, audited sites: the lifetime erasure inside the
//! persistent worker pool (`pool` module — sound because a region never
//! returns before all its tasks finish) and the AVX2+FMA intrinsics kernel
//! (`simd` module, compiled only under the `simd` cargo feature). GEMM is a
//! cache-blocked, register-tiled, multi-threaded kernel (see the `gemm`
//! module and [`parallel`]): the safe micro-kernel is written so the
//! autovectorizer emits wide FMA code, the optional explicit-SIMD kernel is
//! bit-identical to it and runtime-detected, and the seed's scalar loop is
//! retained as [`matmul_reference`] for parity testing and benchmarking.
//!
//! # Feature flags
//!
//! * `simd` — compiles the explicit AVX2+FMA 6×16 micro-kernel
//!   ([`simd_available`], [`set_simd_enabled`]). Off by default; results
//!   are bit-identical with the feature on or off, on any CPU.
//!
//! # Example
//!
//! ```
//! use diva_tensor::{Tensor, matmul};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bf16;
mod conv;
pub mod fft;
mod gemm;
mod matmul;
mod ops;
pub mod parallel;
mod pool;
mod rng;
mod shape;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd;
mod tensor;

pub use bf16::{round_bf16, BF16_MAX_RELATIVE_ERROR};
pub use conv::{
    col2im, conv2d, conv2d_backward_data, conv2d_backward_data_from_rows, conv2d_backward_weight,
    im2col, nchw_to_rows, Conv2dGeom, PatchBuffer,
};
pub use gemm::{
    avx512_available, avx512_enabled, l1_reorder_enabled, scalar_reference_mode,
    set_avx512_enabled, set_l1_reorder, set_scalar_reference_mode, set_simd_enabled,
    simd_available, simd_enabled, PackCache,
};
pub use matmul::{
    matmul, matmul_nt, matmul_reference, matmul_tn, matmul_tt, outer_product_accumulate,
};
pub use ops::{
    add_scaled, argmax_rows, relu, relu_backward, softmax_cross_entropy, SoftmaxCrossEntropy,
};
pub use parallel::Backend;
pub use rng::DivaRng;
pub use shape::Shape;
pub use tensor::Tensor;
