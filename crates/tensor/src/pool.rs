//! The persistent worker pool behind [`crate::parallel`].
//!
//! # Lifecycle
//!
//! Workers are **lazily spawned and never exit**: the first parallel region
//! that needs `W` ways spawns `W - 1` worker threads (the calling thread is
//! always the region's last worker), and every later region reuses them.
//! Between regions a worker is *parked* on a condvar inside
//! [`Pool::worker_loop`] — it consumes no CPU and wakes only when a job is
//! submitted. The pool grows monotonically to the largest region width ever
//! requested and is shared by every parallel kernel in the workspace: the
//! GEMM M-split, the per-example backward fan-out, the clip-reduce, and the
//! figure binaries' `run_parallel`. This replaces the original
//! `std::thread::scope` design, which re-spawned (and re-joined) OS threads
//! on **every** region — measurable overhead when DP-SGD issues thousands
//! of small parallel regions per training step.
//!
//! # Region protocol
//!
//! [`run_region`] takes the region's tasks in range order, submits all but
//! the last to the shared queue, runs the last inline on the calling
//! thread, and then blocks on a per-region latch until every submitted task
//! has finished. Task-to-*data* assignment is decided by the caller before
//! submission (each task owns its output range), so which OS thread happens
//! to execute a task can never affect results — the bit-stability guarantee
//! of the scoped design is preserved verbatim.
//!
//! A task that panics does not kill its worker: the panic is caught, the
//! first payload is stashed in the latch, and [`run_region`] re-raises it
//! on the calling thread after the region completes — the same observable
//! behavior as `std::thread::scope`. Callers that need per-task failure
//! *isolation* instead of region-wide re-raise (the scenario engine's
//! cell supervisor) use [`crate::parallel::try_par_map`], which catches
//! each item's panic inside the task itself so the region always
//! completes with a `Result` per item.
//!
//! # Why the one `unsafe` block is sound
//!
//! Tasks borrow the caller's stack (`&mut` output ranges, `&` operands), so
//! their true lifetime is the region's `'scope`, but the queue stores
//! `'static` jobs. [`run_region`] erases the lifetime with a transmute and
//! restores soundness by construction: it does not return — not even by
//! unwinding, the inline task's panic is caught — until the latch counted
//! every submitted job as complete. No job can outlive the borrows it
//! holds. This is the same argument `std::thread::scope` makes via its
//! internal `ScopeData`; it is confined to this module and pinned by the
//! keep-alive and panic tests in `tests/pool_keepalive.rs`.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Poison-proof lock acquisition. The soundness argument of [`run_region`]
/// requires that, once a region has submitted its first job, nothing on
/// its path to `latch.wait_all()` can panic — a poisoned mutex (from, say,
/// a worker-spawn failure on another thread) turning `submit` into a
/// panic would unwind the region while lifetime-erased jobs still borrow
/// its stack. Pool and latch state are plain counters and queues with no
/// invariant a mid-update panic could break (the only panic site while a
/// lock is held is `ensure_workers`' spawn `expect`, which mutates nothing
/// partially), so ignoring poison is both sound and required.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// A type- and lifetime-erased unit of region work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Occupancy snapshot of the persistent pool, for tests and diagnostics
/// (see [`crate::parallel::pool_stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned since process start. Workers never exit, so
    /// this grows monotonically to the widest region ever requested; two
    /// back-to-back identical regions leave it unchanged.
    pub spawned: usize,
    /// Workers currently parked waiting for work.
    pub idle: usize,
}

struct State {
    queue: VecDeque<Job>,
    spawned: usize,
    idle: usize,
}

/// The process-wide keep-alive pool. See the module docs for the lifecycle.
pub(crate) struct Pool {
    state: Mutex<State>,
    work_ready: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    /// The process-wide pool instance (created empty; workers spawn on
    /// demand).
    pub(crate) fn global() -> &'static Pool {
        POOL.get_or_init(|| Pool {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                spawned: 0,
                idle: 0,
            }),
            work_ready: Condvar::new(),
        })
    }

    pub(crate) fn stats(&self) -> PoolStats {
        let st = lock_unpoisoned(&self.state);
        PoolStats {
            spawned: st.spawned,
            idle: st.idle,
        }
    }

    /// Spawns workers until at least `workers` exist. Existing (possibly
    /// busy) workers count; the pool never shrinks.
    pub(crate) fn ensure_workers(&'static self, workers: usize) {
        let mut st = lock_unpoisoned(&self.state);
        while st.spawned < workers {
            st.spawned += 1;
            let idx = st.spawned;
            std::thread::Builder::new()
                .name(format!("diva-pool-{idx}"))
                .spawn(move || self.worker_loop())
                .expect("failed to spawn pool worker");
        }
    }

    /// A worker's whole life: pop a job or park until one arrives, run it,
    /// repeat. Jobs are pre-wrapped by [`run_region`] to catch panics, so
    /// the loop (and the worker) survives panicking tasks.
    fn worker_loop(&'static self) {
        loop {
            let job = {
                let mut st = lock_unpoisoned(&self.state);
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                    st.idle += 1;
                    st = self.work_ready.wait(st).unwrap_or_else(|e| e.into_inner());
                    st.idle -= 1;
                }
            };
            job();
        }
    }

    fn submit(&'static self, job: Job) {
        let mut st = lock_unpoisoned(&self.state);
        st.queue.push_back(job);
        drop(st);
        // If every worker is mid-job the notify is lost, but not the work:
        // a worker re-checks the queue after finishing its current job.
        self.work_ready.notify_one();
    }
}

/// Completion latch for one region: counts outstanding remote tasks and
/// stashes the first panic payload.
struct Latch {
    state: Mutex<LatchState>,
    all_done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(remaining: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining,
                panic: None,
            }),
            all_done: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = lock_unpoisoned(&self.state);
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait_all(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = lock_unpoisoned(&self.state);
        while st.remaining > 0 {
            st = self.all_done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.panic.take()
    }
}

/// Runs the region's tasks concurrently: all but the last on pool workers,
/// the last inline on the calling thread (exactly the task distribution of
/// the old scoped design). Returns only after **every** task finished; the
/// first panic, remote or inline, is re-raised here afterwards.
pub(crate) fn run_region(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let mut tasks = tasks;
    let Some(inline_task) = tasks.pop() else {
        return;
    };
    if tasks.is_empty() {
        inline_task();
        return;
    }
    let pool = Pool::global();
    pool.ensure_workers(tasks.len());
    let latch = Arc::new(Latch::new(tasks.len()));
    for task in tasks {
        let latch = Arc::clone(&latch);
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            latch.complete(result.err());
        });
        // SAFETY: this only erases the job's lifetime, not its type. The
        // job's borrows stay valid for the whole region because this
        // function cannot return (or unwind — the inline task below runs
        // under `catch_unwind`) before `latch.wait_all()` has observed the
        // job's completion; the latch is decremented strictly after the
        // task finished, even if it panicked. See the module docs.
        #[allow(unsafe_code)]
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
        pool.submit(job);
    }
    let inline_result = catch_unwind(AssertUnwindSafe(inline_task));
    let remote_panic = latch.wait_all();
    if let Err(payload) = inline_result {
        resume_unwind(payload);
    }
    if let Some(payload) = remote_panic {
        resume_unwind(payload);
    }
}
