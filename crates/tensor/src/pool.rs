//! The persistent work-stealing worker pool behind [`crate::parallel`].
//!
//! # Lifecycle
//!
//! Workers are **lazily spawned and never exit**: the first parallel region
//! that needs `W` ways spawns `W - 1` worker threads (the calling thread is
//! always the region's last worker), and every later region reuses them.
//! Between regions a worker is *parked* on a condvar inside
//! [`Pool::worker_loop`] — it consumes no CPU and wakes only when a job is
//! submitted. The pool grows monotonically to the largest region width ever
//! requested and is shared by every parallel kernel in the workspace: the
//! GEMM M-split, the per-example backward fan-out, the clip-reduce, the
//! scenario runner's cell grid, and the figure binaries' `run_parallel`.
//!
//! # Hierarchical scheduling
//!
//! Earlier revisions forced any region nested inside another region to run
//! serially on its worker (a thread-local `IN_PARALLEL` flag). This pool
//! schedules nested regions for real, with two mechanisms:
//!
//! * **Per-worker deques + stealing.** Every worker owns a deque. A region
//!   submitted from a worker pushes its tasks onto that worker's own deque;
//!   a region submitted from a non-pool thread pushes onto a shared
//!   injector queue. A worker looking for work pops its own deque first
//!   (newest-first — the task whose data its caches are warm for), then
//!   the injector, then *steals* oldest-first from a sibling's deque. An
//!   idle worker therefore drains whatever region — outer grid cell or
//!   nested GEMM — currently has queued work, instead of sleeping while a
//!   sibling's nested region runs serially.
//! * **Helping waiters.** A region caller that reaches its completion latch
//!   with tasks still pending does not park immediately: it pops and runs
//!   pending jobs (its own region's first, then anything it can steal)
//!   until its latch opens. This is what makes nested regions deadlock-free
//!   — a worker blocked on an inner region's latch executes that region's
//!   queued tasks itself if no sibling is idle, so the inner region
//!   degrades to serial-on-the-worker in the worst case and fans out
//!   across idle workers in the best case.
//!
//! All queues hang off one pool mutex: queue operations are tens of
//! nanoseconds against region tasks that are microseconds at minimum (the
//! splitting heuristics in [`crate::parallel`] and the GEMM's
//! rows-per-worker floor see to that), so a single lock is not a
//! contention concern at the widths this repo targets, and it keeps the
//! park/wake protocol auditable. The deque *discipline* (own-newest /
//! steal-oldest) is what buys locality, not lock granularity.
//!
//! # Bit-stability under stealing
//!
//! [`run_region`] takes the region's tasks in range order; task-to-*data*
//! assignment is decided by the caller **before** submission (each task owns
//! its output range), so which OS thread happens to execute a task — worker,
//! stealer, or helping waiter — can never affect results. Scheduling moves
//! *execution*, never *data*. The byte-identity guarantees of the scenario
//! and explorer layers (same document at any thread count, under kill/
//! resume, nested scheduling on or off) rest on exactly this line.
//!
//! # Panics
//!
//! A task that panics does not kill its worker: the panic is caught, the
//! first payload is stashed in the region's latch, and [`run_region`]
//! re-raises it on the calling thread after the region completes — the same
//! observable behavior as `std::thread::scope`, including for a panic in a
//! *nested* region: it re-raises at the nested region's caller (inside the
//! outer task), and from there propagates like any other task panic.
//! Callers that need per-task failure *isolation* instead of region-wide
//! re-raise (the scenario engine's cell supervisor) use
//! [`crate::parallel::try_par_map`], which catches each item's panic inside
//! the task itself so the region always completes with a `Result` per item.
//!
//! # Why the one `unsafe` block is sound
//!
//! Tasks borrow the caller's stack (`&mut` output ranges, `&` operands), so
//! their true lifetime is the region's `'scope`, but the deques store
//! `'static` jobs. [`run_region`] erases the lifetime with a transmute and
//! restores soundness by construction: it does not return — not even by
//! unwinding, the inline task and every helped job run under
//! `catch_unwind` — until the latch counted every submitted job as
//! complete. The latch is decremented strictly *after* a job finished
//! (normally or by panic), so no job can outlive the borrows it holds.
//! Helping does not weaken the argument: a waiter executing a stolen job
//! runs it to completion on its own stack before re-checking its latch,
//! and the stolen job's borrows belong to a region whose caller is, by the
//! same argument, still pinned in its own `run_region` frame. This is the
//! same reasoning `std::thread::scope` makes via its internal `ScopeData`;
//! it is confined to this module and pinned by the keep-alive, panic and
//! nested-scheduling tests in `tests/pool_keepalive.rs`.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Poison-proof lock acquisition. The soundness argument of [`run_region`]
/// requires that, once a region has submitted its first job, nothing on
/// its path to `wait_until_done` can panic — a poisoned mutex (from, say,
/// a worker-spawn failure on another thread) turning `submit` into a
/// panic would unwind the region while lifetime-erased jobs still borrow
/// its stack. Pool and latch state are plain counters and queues with no
/// invariant a mid-update panic could break (the only panic site while a
/// lock is held is `ensure_workers`' spawn `expect`, which mutates nothing
/// partially), so ignoring poison is both sound and required.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// A type- and lifetime-erased unit of region work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Occupancy and scheduling counters of the persistent pool, for tests and
/// diagnostics (see [`crate::parallel::pool_stats`] and `diva-serve`'s
/// `/stats` endpoint). Counters are monotone over the process lifetime and
/// describe *scheduling*, which is explicitly allowed to vary run-to-run —
/// they must never feed a rendered document that promises byte-identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned since process start. Workers never exit, so
    /// this grows monotonically to the widest region ever requested; two
    /// back-to-back identical regions leave it unchanged.
    pub spawned: usize,
    /// Workers currently parked waiting for work.
    pub idle: usize,
    /// Jobs a thread took from *another* worker's deque (work-stealing
    /// transfers). Zero until some region overlaps another.
    pub steals: u64,
    /// Jobs a region caller executed itself while waiting on its own
    /// completion latch (helping). This is how nested regions make
    /// progress when every sibling worker is busy.
    pub inline_runs: u64,
    /// Deepest region nesting observed (an un-nested region is depth 1).
    pub max_depth: usize,
}

/// Where a submitting thread's tasks go: worker `i` pushes onto its own
/// deque, everything else onto the shared injector.
#[derive(Clone, Copy)]
enum Origin {
    Injector,
    Worker(usize),
}

struct State {
    /// Jobs submitted by non-pool threads, oldest first.
    injector: VecDeque<Job>,
    /// One deque per spawned worker; the owner pops newest-first, thieves
    /// steal oldest-first.
    locals: Vec<VecDeque<Job>>,
    spawned: usize,
    idle: usize,
    steals: u64,
    inline_runs: u64,
    max_depth: usize,
}

impl State {
    /// Pops the next job for `who`: own deque newest-first, then the
    /// injector, then the oldest job of the fullest sibling deque.
    /// `helping` attributes the run to the right counter.
    fn take(&mut self, who: Origin, helping: bool) -> Option<Job> {
        if let Origin::Worker(me) = who {
            if let Some(job) = self.locals[me].pop_back() {
                if helping {
                    self.inline_runs += 1;
                }
                return Some(job);
            }
        }
        if let Some(job) = self.injector.pop_front() {
            if helping {
                self.inline_runs += 1;
            }
            return Some(job);
        }
        let me = match who {
            Origin::Worker(i) => Some(i),
            Origin::Injector => None,
        };
        let victim = (0..self.locals.len())
            .filter(|&i| Some(i) != me && !self.locals[i].is_empty())
            .max_by_key(|&i| self.locals[i].len())?;
        let job = self.locals[victim].pop_front()?;
        self.steals += 1;
        if helping {
            self.inline_runs += 1;
        }
        Some(job)
    }
}

thread_local! {
    /// The pool-worker index of this thread, if it is a pool worker.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The process-wide keep-alive pool. See the module docs for the lifecycle.
pub(crate) struct Pool {
    state: Mutex<State>,
    /// Signaled when a job is queued *and* when a region latch opens:
    /// helping waiters park on this condvar too, and must wake for either
    /// event.
    work_ready: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    /// The process-wide pool instance (created empty; workers spawn on
    /// demand).
    pub(crate) fn global() -> &'static Pool {
        POOL.get_or_init(|| Pool {
            state: Mutex::new(State {
                injector: VecDeque::new(),
                locals: Vec::new(),
                spawned: 0,
                idle: 0,
                steals: 0,
                inline_runs: 0,
                max_depth: 0,
            }),
            work_ready: Condvar::new(),
        })
    }

    pub(crate) fn stats(&self) -> PoolStats {
        let st = lock_unpoisoned(&self.state);
        PoolStats {
            spawned: st.spawned,
            idle: st.idle,
            steals: st.steals,
            inline_runs: st.inline_runs,
            max_depth: st.max_depth,
        }
    }

    /// Records a region's nesting depth for the `max_depth` counter.
    pub(crate) fn note_depth(&self, depth: usize) {
        let mut st = lock_unpoisoned(&self.state);
        st.max_depth = st.max_depth.max(depth);
    }

    /// Spawns workers until at least `workers` exist. Existing (possibly
    /// busy) workers count; the pool never shrinks.
    pub(crate) fn ensure_workers(&'static self, workers: usize) {
        let mut st = lock_unpoisoned(&self.state);
        while st.spawned < workers {
            let idx = st.spawned;
            st.spawned += 1;
            st.locals.push(VecDeque::new());
            std::thread::Builder::new()
                .name(format!("diva-pool-{idx}"))
                .spawn(move || self.worker_loop(idx))
                .expect("failed to spawn pool worker");
        }
    }

    /// A worker's whole life: take a job (own deque, injector, or stolen)
    /// or park until one arrives, run it, repeat. Jobs are pre-wrapped by
    /// [`run_region`] to catch panics, so the loop (and the worker)
    /// survives panicking tasks.
    fn worker_loop(&'static self, index: usize) {
        WORKER_INDEX.with(|c| c.set(Some(index)));
        loop {
            let job = {
                let mut st = lock_unpoisoned(&self.state);
                loop {
                    if let Some(job) = st.take(Origin::Worker(index), false) {
                        break job;
                    }
                    st.idle += 1;
                    st = self.work_ready.wait(st).unwrap_or_else(|e| e.into_inner());
                    st.idle -= 1;
                }
            };
            job();
        }
    }

    fn submit(&'static self, job: Job, origin: Origin) {
        let mut st = lock_unpoisoned(&self.state);
        match origin {
            Origin::Worker(i) => st.locals[i].push_back(job),
            Origin::Injector => st.injector.push_back(job),
        }
        drop(st);
        // If every worker is mid-job the notify is lost, but not the work:
        // a worker re-checks the queues after finishing its current job,
        // and a waiting region caller helps.
        self.work_ready.notify_one();
    }

    /// Blocks until `latch` opens, executing queued jobs while waiting.
    /// The executed jobs are *usually* this caller's own region's (its
    /// deque is popped first), but can be any region's — that is what
    /// keeps the whole pool live when regions nest.
    fn wait_until_done(&'static self, who: Origin, latch: &Latch) {
        loop {
            if latch.is_done() {
                return;
            }
            let job = {
                let mut st = lock_unpoisoned(&self.state);
                loop {
                    if latch.is_done() {
                        return;
                    }
                    if let Some(job) = st.take(who, true) {
                        break job;
                    }
                    // No runnable job anywhere and our region is still
                    // pending: its tasks are running on other threads.
                    // Park until a job is queued or a latch opens (both
                    // signal `work_ready`; see `Latch::complete`).
                    st = self.work_ready.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            job();
        }
    }
}

/// Completion latch for one region: counts outstanding remote tasks and
/// stashes the first panic payload.
struct Latch {
    state: Mutex<LatchState>,
    /// Fast-path completion flag, readable without the latch lock (the
    /// helping waiter checks it while holding the *pool* lock; taking the
    /// latch lock there would order the two locks both ways round).
    done: AtomicBool,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(remaining: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining,
                panic: None,
            }),
            done: AtomicBool::new(remaining == 0),
        }
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn complete(&self, pool: &'static Pool, panic: Option<Box<dyn Any + Send>>) {
        let open = {
            let mut st = lock_unpoisoned(&self.state);
            st.remaining -= 1;
            if st.panic.is_none() {
                st.panic = panic;
            }
            st.remaining == 0
        };
        if open {
            self.done.store(true, Ordering::Release);
            // Wake the region's (possibly parked) caller. Taking the pool
            // lock before notifying closes the lost-wakeup window: the
            // waiter checks `is_done` while holding the pool lock, so this
            // store+notify cannot slip between its check and its wait.
            drop(lock_unpoisoned(&pool.state));
            pool.work_ready.notify_all();
        }
    }

    /// Takes the stashed panic after the region completed.
    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        lock_unpoisoned(&self.state).panic.take()
    }
}

/// Runs the region's tasks concurrently: all but the last are queued on the
/// pool (the submitting worker's own deque, or the injector from non-pool
/// threads), the last runs inline on the calling thread. While the queued
/// tasks are pending the caller *helps* — it executes queued jobs instead
/// of blocking — so a region nested inside a busy pool always makes
/// progress. Returns only after **every** task finished; the first panic,
/// remote or inline, is re-raised here afterwards.
///
/// `depth` is the region's nesting depth (1 = not nested), recorded in
/// [`PoolStats::max_depth`].
pub(crate) fn run_region(tasks: Vec<Box<dyn FnOnce() + Send + '_>>, depth: usize) {
    let mut tasks = tasks;
    let Some(inline_task) = tasks.pop() else {
        return;
    };
    if tasks.is_empty() {
        inline_task();
        return;
    }
    let pool = Pool::global();
    pool.note_depth(depth);
    // Workers are only guaranteed for the *outermost* region width (its
    // caller prewarms / ensure_workers covers it). A nested region must
    // not grow the pool: its tasks run on whoever is idle, or on the
    // caller itself via helping.
    if depth <= 1 {
        pool.ensure_workers(tasks.len());
    }
    let who = match WORKER_INDEX.with(Cell::get) {
        Some(i) => Origin::Worker(i),
        None => Origin::Injector,
    };
    let latch = Arc::new(Latch::new(tasks.len()));
    for task in tasks {
        let latch = Arc::clone(&latch);
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            latch.complete(pool, result.err());
        });
        // SAFETY: this only erases the job's lifetime, not its type. The
        // job's borrows stay valid for the whole region because this
        // function cannot return (or unwind — the inline task below and
        // every job a helping waiter executes run under `catch_unwind`)
        // before `wait_until_done` has observed the job's completion; the
        // latch is decremented strictly after the task finished, even if
        // it panicked. See the module docs.
        #[allow(unsafe_code)]
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
        pool.submit(job, who);
    }
    let inline_result = catch_unwind(AssertUnwindSafe(inline_task));
    pool.wait_until_done(who, &latch);
    let remote_panic = latch.take_panic();
    if let Err(payload) = inline_result {
        resume_unwind(payload);
    }
    if let Some(payload) = remote_panic {
        resume_unwind(payload);
    }
}
