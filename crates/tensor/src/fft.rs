//! In-tree radix-2 complex FFT and FFT-based linear convolution.
//!
//! Built for the privacy-accounting engine in `diva_dp`: composing two
//! discretized privacy-loss distributions is a linear convolution of their
//! probability mass functions, and production step counts (10⁴–10⁵
//! compositions) make the O(n²) direct form the bottleneck. The transform
//! is the standard iterative Cooley–Tukey radix-2 decimation-in-time over
//! split `(re, im)` slices with a per-call twiddle table (exact `sin`/`cos`
//! per root of unity, no recurrence drift), entirely safe code with zero
//! external dependencies like the rest of the workspace.
//!
//! Determinism contract: outputs depend only on the inputs — no threading,
//! no runtime dispatch — so callers inherit the workspace-wide
//! thread-count bit-stability guarantee.

use std::f64::consts::PI;

/// The smallest power of two `>= n` (and `>= 1`).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward DFT of the complex sequence `(re, im)`.
///
/// # Panics
///
/// Panics if the slices differ in length or the length is not a power of
/// two.
pub fn fft(re: &mut [f64], im: &mut [f64]) {
    transform(re, im, false);
}

/// In-place inverse DFT of `(re, im)`, scaled by `1/n` so that
/// `ifft(fft(x)) == x` up to round-off.
///
/// # Panics
///
/// Panics if the slices differ in length or the length is not a power of
/// two.
pub fn ifft(re: &mut [f64], im: &mut [f64]) {
    transform(re, im, true);
}

fn transform(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch: {n} vs {}", im.len());
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }

    // Twiddle table: w[k] = exp(sign · 2πi k / n) for k < n/2, computed
    // with a direct sin/cos per entry so error stays at the ulp level
    // instead of accumulating through a recurrence.
    let sign = if inverse { 1.0 } else { -1.0 };
    let half = n / 2;
    let mut tw_re = Vec::with_capacity(half);
    let mut tw_im = Vec::with_capacity(half);
    for k in 0..half {
        let ang = sign * 2.0 * PI * k as f64 / n as f64;
        tw_re.push(ang.cos());
        tw_im.push(ang.sin());
    }

    let mut len = 2;
    while len <= n {
        let stride = n / len;
        let half_len = len / 2;
        for start in (0..n).step_by(len) {
            for k in 0..half_len {
                let wr = tw_re[k * stride];
                let wi = tw_im[k * stride];
                let i0 = start + k;
                let i1 = i0 + half_len;
                let tr = re[i1] * wr - im[i1] * wi;
                let ti = re[i1] * wi + im[i1] * wr;
                re[i1] = re[i0] - tr;
                im[i1] = im[i0] - ti;
                re[i0] += tr;
                im[i0] += ti;
            }
        }
        len <<= 1;
    }

    if inverse {
        let scale = 1.0 / n as f64;
        for v in re.iter_mut() {
            *v *= scale;
        }
        for v in im.iter_mut() {
            *v *= scale;
        }
    }
}

/// Linear convolution of two real sequences: `out[k] = Σ a[i]·b[k−i]`,
/// of length `a.len() + b.len() − 1` (empty if either input is empty).
///
/// Small products use the direct O(n²) form (fewer flops *and* no FFT
/// round-trip error); larger ones go through zero-padded FFTs. Round-off
/// can leave values off by ~1e-15·Σ|a|·Σ|b| — callers holding probability
/// masses clamp tiny negatives themselves.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    if a.len().min(b.len()) <= 32 || out_len <= 256 {
        return convolve_direct(a, b);
    }
    let n = next_pow2(out_len);
    let mut are = vec![0.0; n];
    let mut aim = vec![0.0; n];
    let mut bre = vec![0.0; n];
    let mut bim = vec![0.0; n];
    are[..a.len()].copy_from_slice(a);
    bre[..b.len()].copy_from_slice(b);
    fft(&mut are, &mut aim);
    fft(&mut bre, &mut bim);
    for i in 0..n {
        let r = are[i] * bre[i] - aim[i] * bim[i];
        let im = are[i] * bim[i] + aim[i] * bre[i];
        are[i] = r;
        aim[i] = im;
    }
    ifft(&mut are, &mut aim);
    are.truncate(out_len);
    are
}

fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] += ai * bj;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DivaRng;

    #[test]
    fn impulse_transforms_to_all_ones() {
        let mut re = vec![1.0, 0.0, 0.0, 0.0];
        let mut im = vec![0.0; 4];
        fft(&mut re, &mut im);
        for i in 0..4 {
            assert!((re[i] - 1.0).abs() < 1e-12 && im[i].abs() < 1e-12);
        }
    }

    #[test]
    fn forward_inverse_round_trips() {
        let mut rng = DivaRng::seed_from_u64(7);
        let n = 256;
        let orig: Vec<f64> = (0..n)
            .map(|_| f64::from(rng.uniform(0.0, 1.0)) - 0.5)
            .collect();
        let mut re = orig.clone();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        ifft(&mut re, &mut im);
        for i in 0..n {
            assert!((re[i] - orig[i]).abs() < 1e-12, "re[{i}]");
            assert!(im[i].abs() < 1e-12, "im[{i}]");
        }
    }

    #[test]
    fn known_dft_of_ramp() {
        // DFT of [0, 1, 2, 3]: X0 = 6, X1 = -2+2i, X2 = -2, X3 = -2-2i.
        let mut re = vec![0.0, 1.0, 2.0, 3.0];
        let mut im = vec![0.0; 4];
        fft(&mut re, &mut im);
        let expect = [(6.0, 0.0), (-2.0, 2.0), (-2.0, 0.0), (-2.0, -2.0)];
        for (i, (er, ei)) in expect.iter().enumerate() {
            assert!((re[i] - er).abs() < 1e-12, "re[{i}] = {}", re[i]);
            assert!((im[i] - ei).abs() < 1e-12, "im[{i}] = {}", im[i]);
        }
    }

    #[test]
    fn convolution_matches_direct_form() {
        let mut rng = DivaRng::seed_from_u64(8);
        // Lengths straddling the FFT cutoff, including a forced-FFT pair.
        for (na, nb) in [(3, 5), (33, 300), (200, 311)] {
            let a: Vec<f64> = (0..na).map(|_| f64::from(rng.uniform(0.0, 1.0))).collect();
            let b: Vec<f64> = (0..nb).map(|_| f64::from(rng.uniform(0.0, 1.0))).collect();
            let fast = convolve(&a, &b);
            let slow = convolve_direct(&a, &b);
            assert_eq!(fast.len(), slow.len());
            for i in 0..fast.len() {
                assert!(
                    (fast[i] - slow[i]).abs() < 1e-9,
                    "({na},{nb}) out[{i}]: {} vs {}",
                    fast[i],
                    slow[i]
                );
            }
        }
    }

    #[test]
    fn convolution_with_point_mass_shifts() {
        let a = [0.25, 0.5, 0.25];
        let b = [1.0];
        assert_eq!(convolve(&a, &b), vec![0.25, 0.5, 0.25]);
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1024), 1024);
    }
}
