//! Explicit AVX2+FMA micro-kernel for the blocked GEMM (cargo feature
//! `simd`, `x86_64` only).
//!
//! # Kernel shape
//!
//! Identical to the safe kernel in [`crate::gemm`]: a 6×16 register tile
//! (`MR = 6` rows × `NR = 16` columns = two 256-bit `f32` vectors per row),
//! held in 12 `__m256` accumulators while `kb` rank-1 updates stream the
//! packed panels. Per k step: two aligned-size loads of the B strip row,
//! six broadcasts of the A strip column, twelve `_mm256_fmadd_ps`. The k
//! loop is unrolled ×4 to amortize loop control; accumulators are **not**
//! split across k, because that would reassociate the sum.
//!
//! # Bit-parity contract
//!
//! For every output element this kernel performs *exactly* the same
//! operations in the same order as the safe micro-kernel: one fused
//! multiply-add per k, k ascending, into a single accumulator.
//! `f32::mul_add` and `_mm256_fmadd_ps` are both IEEE-754 fused operations
//! (one rounding), so results are bit-identical whether this kernel, the
//! autovectorized safe kernel, or a scalar loop executes the tile. The
//! feature-matrix case in `tests/kernel_parity.rs` pins this: simd on/off ×
//! thread counts × odd shapes must agree to the last bit.
//!
//! # Dispatch
//!
//! The kernel is selected per GEMM call by [`crate::gemm`] only when
//! [`detected`] reports AVX2+FMA at runtime (`is_x86_feature_detected!`) —
//! the binary stays runnable on older x86-64 CPUs, which silently fall back
//! to the safe kernel, as do all non-x86 targets and builds without the
//! `simd` feature.

// The only unsafe code in this module is the intrinsics kernel below; its
// preconditions (CPU support, panel bounds) are checked by the safe wrapper.
use crate::gemm::{MR, NR};
use std::sync::OnceLock;

/// Whether the running CPU supports the AVX2+FMA kernel. Detected once per
/// process via `is_x86_feature_detected!`.
pub(crate) fn detected() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
}

/// Safe wrapper over the intrinsics kernel: `acc += Apanel × Bpanel` over
/// `kb` rank-1 updates on packed panels, bit-identical to
/// `gemm::microkernel`.
///
/// # Panics
///
/// Debug-asserts CPU support and panel bounds; callers must route through
/// [`crate::gemm`]'s dispatch, which checks [`detected`] first.
pub(crate) fn microkernel_6x16(
    kb: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    debug_assert!(detected(), "simd kernel dispatched without CPU support");
    assert!(a_panel.len() >= kb * MR, "A panel too short");
    assert!(b_panel.len() >= kb * NR, "B panel too short");
    // SAFETY: `detected()` verified AVX2+FMA before this path was selected
    // (debug-asserted above, guaranteed by the dispatch in `gemm`); the
    // asserts above bound every pointer offset the kernel computes.
    #[allow(unsafe_code)]
    unsafe {
        kernel(kb, a_panel.as_ptr(), b_panel.as_ptr(), acc)
    }
}

/// The 6×16 AVX2+FMA register-tile kernel.
///
/// # Safety
///
/// Requires AVX2 and FMA at runtime, `ap` valid for `kb * MR` reads and
/// `bp` valid for `kb * NR` reads.
#[allow(unsafe_code)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kernel(kb: usize, ap: *const f32, bp: *const f32, acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    let mut ap = ap;
    let mut bp = bp;
    // Start from the incoming accumulator so the contract (`acc +=`, not
    // `acc =`) matches the safe kernel exactly.
    let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
    for (row, acc_row) in c.iter_mut().zip(acc.iter()) {
        row[0] = _mm256_loadu_ps(acc_row.as_ptr());
        row[1] = _mm256_loadu_ps(acc_row.as_ptr().add(8));
    }
    // One rank-1 update: 2 B loads, 6 A broadcasts, 12 FMAs. Exactly one
    // fused multiply-add per output element, k ascending — the bit-parity
    // contract with the safe kernel.
    macro_rules! rank1 {
        () => {{
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for (ir, row) in c.iter_mut().enumerate() {
                let a = _mm256_set1_ps(*ap.add(ir));
                row[0] = _mm256_fmadd_ps(a, b0, row[0]);
                row[1] = _mm256_fmadd_ps(a, b1, row[1]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }};
    }
    let mut kk = 0;
    while kk + 4 <= kb {
        rank1!();
        rank1!();
        rank1!();
        rank1!();
        kk += 4;
    }
    while kk < kb {
        rank1!();
        kk += 1;
    }
    for (row, acc_row) in c.iter().zip(acc.iter_mut()) {
        _mm256_storeu_ps(acc_row.as_mut_ptr(), row[0]);
        _mm256_storeu_ps(acc_row.as_mut_ptr().add(8), row[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DivaRng;

    /// The intrinsics kernel must agree with the safe kernel to the bit for
    /// every panel length, including the <4 unroll tails.
    #[test]
    fn intrinsics_match_safe_kernel_bitwise() {
        if !detected() {
            eprintln!("skipping: host lacks AVX2+FMA");
            return;
        }
        let mut rng = DivaRng::seed_from_u64(77);
        for kb in [1usize, 2, 3, 4, 5, 7, 8, 33, 768] {
            let a: Vec<f32> = (0..kb * MR).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let b: Vec<f32> = (0..kb * NR).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let mut acc_simd = [[0.5f32; NR]; MR];
            let mut acc_safe = [[0.5f32; NR]; MR];
            microkernel_6x16(kb, &a, &b, &mut acc_simd);
            crate::gemm::microkernel(kb, &a, &b, &mut acc_safe);
            assert_eq!(acc_simd, acc_safe, "kb={kb} diverged");
        }
    }
}
