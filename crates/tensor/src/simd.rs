//! Explicit AVX2+FMA and AVX-512 micro-kernels for the blocked GEMM
//! (cargo feature `simd`, `x86_64` only).
//!
//! # Kernel shape
//!
//! Identical to the safe kernel in [`crate::gemm`]: a 6×16 register tile
//! (`MR = 6` rows × `NR = 16` columns). The AVX2 arm holds it in 12
//! `__m256` accumulators — per k step: two loads of the B strip row, six
//! broadcasts of the A strip column, twelve `_mm256_fmadd_ps`. The AVX-512
//! arm holds the same tile in just 6 `__m512` accumulators (`NR = 16` is
//! exactly one 512-bit vector per row) — per k step: **one** B load, six
//! broadcasts, six `_mm512_fmadd_ps`, half the AVX2 instruction count per
//! update. Both k loops are unrolled ×4 to amortize loop control;
//! accumulators are **not** split across k, because that would reassociate
//! the sum.
//!
//! # Bit-parity contract
//!
//! For every output element every kernel performs *exactly* the same
//! operations in the same order as the safe micro-kernel: one fused
//! multiply-add per k, k ascending, into a single accumulator.
//! `f32::mul_add`, `_mm256_fmadd_ps` and `_mm512_fmadd_ps` are all
//! IEEE-754 fused operations (one rounding), so results are bit-identical
//! whichever kernel — or the autovectorized safe loop — executes the tile.
//! The feature-matrix case in `tests/kernel_parity.rs` pins this: simd
//! on/off × AVX-512 on/off × thread counts × odd shapes must agree to the
//! last bit.
//!
//! # Dispatch
//!
//! The kernel is selected per GEMM call by [`crate::gemm`]: AVX-512 when
//! [`detected_avx512`] reports `avx512f` at runtime (and the arm is not
//! disabled via [`crate::gemm::set_avx512_enabled`]), else AVX2+FMA when
//! [`detected`] reports it, else the safe kernel — the binary stays
//! runnable on older x86-64 CPUs, which silently fall back, as do all
//! non-x86 targets and builds without the `simd` feature.

// The only unsafe code in this module is the intrinsics kernel below; its
// preconditions (CPU support, panel bounds) are checked by the safe wrapper.
use crate::gemm::{MR, NR};
use std::sync::OnceLock;

/// Whether the running CPU supports the AVX2+FMA kernel. Detected once per
/// process via `is_x86_feature_detected!`.
pub(crate) fn detected() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
}

/// Whether the running CPU supports the AVX-512 kernel (`avx512f` covers
/// every instruction it uses). Detected once per process.
pub(crate) fn detected_avx512() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| is_x86_feature_detected!("avx512f"))
}

/// Safe wrapper over the intrinsics kernel: `acc += Apanel × Bpanel` over
/// `kb` rank-1 updates on packed panels, bit-identical to
/// `gemm::microkernel`.
///
/// # Panics
///
/// Debug-asserts CPU support and panel bounds; callers must route through
/// [`crate::gemm`]'s dispatch, which checks [`detected`] first.
pub(crate) fn microkernel_6x16(
    kb: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    debug_assert!(detected(), "simd kernel dispatched without CPU support");
    assert!(a_panel.len() >= kb * MR, "A panel too short");
    assert!(b_panel.len() >= kb * NR, "B panel too short");
    // SAFETY: `detected()` verified AVX2+FMA before this path was selected
    // (debug-asserted above, guaranteed by the dispatch in `gemm`); the
    // asserts above bound every pointer offset the kernel computes.
    #[allow(unsafe_code)]
    unsafe {
        kernel(kb, a_panel.as_ptr(), b_panel.as_ptr(), acc)
    }
}

/// The 6×16 AVX2+FMA register-tile kernel.
///
/// # Safety
///
/// Requires AVX2 and FMA at runtime, `ap` valid for `kb * MR` reads and
/// `bp` valid for `kb * NR` reads.
#[allow(unsafe_code)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kernel(kb: usize, ap: *const f32, bp: *const f32, acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    let mut ap = ap;
    let mut bp = bp;
    // Start from the incoming accumulator so the contract (`acc +=`, not
    // `acc =`) matches the safe kernel exactly.
    let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
    for (row, acc_row) in c.iter_mut().zip(acc.iter()) {
        row[0] = _mm256_loadu_ps(acc_row.as_ptr());
        row[1] = _mm256_loadu_ps(acc_row.as_ptr().add(8));
    }
    // One rank-1 update: 2 B loads, 6 A broadcasts, 12 FMAs. Exactly one
    // fused multiply-add per output element, k ascending — the bit-parity
    // contract with the safe kernel.
    macro_rules! rank1 {
        () => {{
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for (ir, row) in c.iter_mut().enumerate() {
                let a = _mm256_set1_ps(*ap.add(ir));
                row[0] = _mm256_fmadd_ps(a, b0, row[0]);
                row[1] = _mm256_fmadd_ps(a, b1, row[1]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }};
    }
    let mut kk = 0;
    while kk + 4 <= kb {
        rank1!();
        rank1!();
        rank1!();
        rank1!();
        kk += 4;
    }
    while kk < kb {
        rank1!();
        kk += 1;
    }
    for (row, acc_row) in c.iter().zip(acc.iter_mut()) {
        _mm256_storeu_ps(acc_row.as_mut_ptr(), row[0]);
        _mm256_storeu_ps(acc_row.as_mut_ptr().add(8), row[1]);
    }
}

/// Safe wrapper over the AVX-512 intrinsics kernel: same contract as
/// [`microkernel_6x16`], bit-identical to it and to `gemm::microkernel`.
///
/// # Panics
///
/// Debug-asserts CPU support and panel bounds; callers must route through
/// [`crate::gemm`]'s dispatch, which checks [`detected_avx512`] first.
pub(crate) fn microkernel_6x16_avx512(
    kb: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    debug_assert!(
        detected_avx512(),
        "avx512 kernel dispatched without CPU support"
    );
    assert!(a_panel.len() >= kb * MR, "A panel too short");
    assert!(b_panel.len() >= kb * NR, "B panel too short");
    // SAFETY: `detected_avx512()` verified avx512f before this path was
    // selected (debug-asserted above, guaranteed by the dispatch in
    // `gemm`); the asserts above bound every pointer offset the kernel
    // computes.
    #[allow(unsafe_code)]
    unsafe {
        kernel_avx512(kb, a_panel.as_ptr(), b_panel.as_ptr(), acc)
    }
}

/// The 6×16 AVX-512 register-tile kernel: one `__m512` accumulator per
/// tile row.
///
/// # Safety
///
/// Requires `avx512f` at runtime, `ap` valid for `kb * MR` reads and `bp`
/// valid for `kb * NR` reads.
#[allow(unsafe_code)]
#[target_feature(enable = "avx512f")]
unsafe fn kernel_avx512(kb: usize, ap: *const f32, bp: *const f32, acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    let mut ap = ap;
    let mut bp = bp;
    // Start from the incoming accumulator so the contract (`acc +=`, not
    // `acc =`) matches the safe kernel exactly.
    let mut c: [__m512; MR] = [_mm512_setzero_ps(); MR];
    for (row, acc_row) in c.iter_mut().zip(acc.iter()) {
        *row = _mm512_loadu_ps(acc_row.as_ptr());
    }
    // One rank-1 update: 1 B load, 6 A broadcasts, 6 FMAs. Exactly one
    // fused multiply-add per output element, k ascending — the bit-parity
    // contract with the safe kernel.
    macro_rules! rank1 {
        () => {{
            let b = _mm512_loadu_ps(bp);
            for (ir, row) in c.iter_mut().enumerate() {
                let a = _mm512_set1_ps(*ap.add(ir));
                *row = _mm512_fmadd_ps(a, b, *row);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }};
    }
    let mut kk = 0;
    while kk + 4 <= kb {
        rank1!();
        rank1!();
        rank1!();
        rank1!();
        kk += 4;
    }
    while kk < kb {
        rank1!();
        kk += 1;
    }
    for (row, acc_row) in c.iter().zip(acc.iter_mut()) {
        _mm512_storeu_ps(acc_row.as_mut_ptr(), *row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DivaRng;

    /// The intrinsics kernels must agree with the safe kernel to the bit
    /// for every panel length, including the <4 unroll tails.
    #[test]
    fn intrinsics_match_safe_kernel_bitwise() {
        if !detected() {
            eprintln!("skipping: host lacks AVX2+FMA");
            return;
        }
        let mut rng = DivaRng::seed_from_u64(77);
        for kb in [1usize, 2, 3, 4, 5, 7, 8, 33, 768] {
            let a: Vec<f32> = (0..kb * MR).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let b: Vec<f32> = (0..kb * NR).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let mut acc_simd = [[0.5f32; NR]; MR];
            let mut acc_safe = [[0.5f32; NR]; MR];
            microkernel_6x16(kb, &a, &b, &mut acc_simd);
            crate::gemm::microkernel(kb, &a, &b, &mut acc_safe);
            assert_eq!(acc_simd, acc_safe, "kb={kb} diverged");
            if detected_avx512() {
                let mut acc_512 = [[0.5f32; NR]; MR];
                microkernel_6x16_avx512(kb, &a, &b, &mut acc_512);
                assert_eq!(acc_512, acc_safe, "avx512 kb={kb} diverged");
            }
        }
    }
}
