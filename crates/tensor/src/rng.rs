//! Seedable randomness for experiments: uniform and Gaussian sampling.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A seedable random-number generator with a Gaussian sampler.
///
/// Wraps [`rand::rngs::SmallRng`] (cloneable, so experiments can snapshot
/// generator state) and adds Box–Muller normal sampling, which we implement
/// locally because `rand_distr` is not part of the approved dependency set
/// for this reproduction.
///
/// All stochastic components of the repo (synthetic datasets, weight
/// initialization, the DP Gaussian mechanism) take a `&mut DivaRng` so that
/// every experiment is reproducible from a single `u64` seed.
///
/// # Example
///
/// ```
/// use diva_tensor::DivaRng;
/// let mut a = DivaRng::seed_from_u64(42);
/// let mut b = DivaRng::seed_from_u64(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Clone, Debug)]
pub struct DivaRng {
    inner: SmallRng,
    /// Cached second output of the Box–Muller transform.
    spare: Option<f64>,
}

impl DivaRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Draws a uniform sample from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform bounds reversed: {lo} > {hi}");
        if lo == hi {
            return lo;
        }
        self.inner.random_range(lo..hi)
    }

    /// Draws a uniform integer from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        self.inner.random_range(0..n)
    }

    /// Draws a sample from the normal distribution `N(mean, std²)` using the
    /// Box–Muller transform.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative.
    pub fn gaussian(&mut self, mean: f64, std: f64) -> f64 {
        assert!(std >= 0.0, "negative standard deviation: {std}");
        let z = self.standard_normal();
        mean + std * z
    }

    /// Draws a standard normal `N(0, 1)` sample.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent standard normals.
        // u1 is kept away from 0 so that ln(u1) is finite.
        let u1: f64 = loop {
            let u: f64 = self.inner.random();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = self.inner.random();
        let r = (-2.0f64 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.random_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Derives an independent child generator (for splitting a seed across
    /// parallel components without correlating their streams).
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.inner.random())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = DivaRng::seed_from_u64(1);
        let mut b = DivaRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = DivaRng::seed_from_u64(1234);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 9.0).abs() < 0.2, "variance was {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DivaRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DivaRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_decorrelates_streams() {
        let mut parent = DivaRng::seed_from_u64(5);
        let mut child = parent.fork();
        // Not a statistical test; just checks the streams are not identical.
        let a: Vec<f64> = (0..8).map(|_| parent.standard_normal()).collect();
        let b: Vec<f64> = (0..8).map(|_| child.standard_normal()).collect();
        assert_ne!(a, b);
    }
}
