//! Seedable randomness for experiments: uniform and Gaussian sampling.
//!
//! Implemented from scratch on xoshiro256++ (seeded through SplitMix64)
//! because no external `rand`/`rand_distr` crates are part of the approved
//! dependency set for this reproduction.

/// A seedable random-number generator with a Gaussian sampler.
///
/// Wraps a local xoshiro256++ core (cloneable, so experiments can snapshot
/// generator state) and adds Box–Muller normal sampling.
///
/// All stochastic components of the repo (synthetic datasets, weight
/// initialization, the DP Gaussian mechanism) take a `&mut DivaRng` so that
/// every experiment is reproducible from a single `u64` seed.
///
/// # Example
///
/// ```
/// use diva_tensor::DivaRng;
/// let mut a = DivaRng::seed_from_u64(42);
/// let mut b = DivaRng::seed_from_u64(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Clone, Debug)]
pub struct DivaRng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare: Option<f64>,
}

/// SplitMix64 step: expands one 64-bit seed into a well-mixed stream, the
/// standard way of seeding xoshiro state (Blackman & Vigna).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DivaRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state, spare: None }
    }

    /// The xoshiro256++ next-u64 step.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)` using the top 24 bits.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Draws a uniform sample from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform bounds reversed: {lo} > {hi}");
        if lo == hi {
            return lo;
        }
        lo + (hi - lo) * self.next_f32()
    }

    /// Draws a uniform integer from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        // Lemire-style widening multiply maps a u64 to [0, n) with
        // negligible bias for the n used here (dataset/batch indices).
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Draws a sample from the normal distribution `N(mean, std²)` using the
    /// Box–Muller transform.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative.
    pub fn gaussian(&mut self, mean: f64, std: f64) -> f64 {
        assert!(std >= 0.0, "negative standard deviation: {std}");
        let z = self.standard_normal();
        mean + std * z
    }

    /// Draws a standard normal `N(0, 1)` sample.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent standard normals.
        // u1 is kept away from 0 so that ln(u1) is finite.
        let u1: f64 = loop {
            let u: f64 = self.next_f64();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = self.next_f64();
        let r = (-2.0f64 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Derives an independent child generator (for splitting a seed across
    /// parallel components without correlating their streams).
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = DivaRng::seed_from_u64(1);
        let mut b = DivaRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = DivaRng::seed_from_u64(1234);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 9.0).abs() < 0.2, "variance was {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DivaRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn index_respects_bounds_and_covers_range() {
        let mut rng = DivaRng::seed_from_u64(10);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let i = rng.index(8);
            assert!(i < 8);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "index never hit some bucket");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DivaRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_decorrelates_streams() {
        let mut parent = DivaRng::seed_from_u64(5);
        let mut child = parent.fork();
        // Not a statistical test; just checks the streams are not identical.
        let a: Vec<f64> = (0..8).map(|_| parent.standard_normal()).collect();
        let b: Vec<f64> = (0..8).map(|_| child.standard_normal()).collect();
        assert_ne!(a, b);
    }
}
