//! bfloat16 emulation.
//!
//! The modeled accelerators multiply in BF16 and accumulate in FP32 (paper
//! Table III: "BF16 Mult, FP32 Add", citing the BFLOAT16 training study).
//! This module emulates that numeric behaviour on top of `f32` so the
//! functional PE-array simulators can reproduce accelerator-accurate
//! arithmetic: operands are rounded to bfloat16 (round-to-nearest-even on
//! the upper 16 bits of the IEEE-754 single) while sums stay in `f32`.

use crate::tensor::Tensor;

/// Rounds an `f32` to the nearest bfloat16 value (ties to even), returned
/// as an `f32` whose low 16 mantissa bits are zero.
///
/// NaN payloads are canonicalized; infinities and zeros pass through.
///
/// # Example
///
/// ```
/// use diva_tensor::round_bf16;
/// // 1.0 is exactly representable.
/// assert_eq!(round_bf16(1.0), 1.0);
/// // bf16 stores 7 mantissa bits: a 2^-9 perturbation rounds away.
/// assert_eq!(round_bf16(1.0 + 1.0 / 512.0), 1.0);
/// ```
pub fn round_bf16(x: f32) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    let bits = x.to_bits();
    // Round to nearest even on the truncated 16 bits.
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    let rounded = bits.wrapping_add(rounding_bias) & 0xFFFF_0000;
    f32::from_bits(rounded)
}

impl Tensor {
    /// Returns a copy with every element rounded to bfloat16 precision.
    pub fn to_bf16(&self) -> Tensor {
        let data = self.data().iter().map(|&v| round_bf16(v)).collect();
        Tensor::from_vec(data, self.shape().dims())
    }
}

/// The largest relative rounding error bf16 can introduce for normal
/// values: half a ulp of its 7 stored mantissa bits, `2⁻⁸`.
pub const BF16_MAX_RELATIVE_ERROR: f32 = 1.0 / 256.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DivaRng;

    #[test]
    fn representable_values_pass_through() {
        for v in [0.0f32, -0.0, 1.0, -2.5, 0.15625, f32::INFINITY] {
            assert_eq!(round_bf16(v), v, "{v} should be exactly representable");
        }
    }

    #[test]
    fn nan_stays_nan() {
        assert!(round_bf16(f32::NAN).is_nan());
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut rng = DivaRng::seed_from_u64(50);
        for _ in 0..10_000 {
            let x = rng.uniform(-1e6, 1e6);
            if x == 0.0 {
                continue;
            }
            let r = round_bf16(x);
            let rel = ((r - x) / x).abs();
            assert!(
                rel <= BF16_MAX_RELATIVE_ERROR,
                "relative error {rel} for {x}"
            );
        }
    }

    #[test]
    fn rounding_is_idempotent() {
        let mut rng = DivaRng::seed_from_u64(51);
        for _ in 0..1000 {
            let x = rng.uniform(-100.0, 100.0);
            let once = round_bf16(x);
            assert_eq!(round_bf16(once), once);
        }
    }

    #[test]
    fn ties_round_to_even() {
        // With 7 stored mantissa bits, values near 1.0 step by 2^-7.
        let lo = 1.0f32 + 1.0 / 128.0; // representable (odd last bit)
        let hi = 1.0f32 + 2.0 / 128.0; // representable (even last bit)
        let mid = 1.0f32 + 3.0 / 256.0; // exact midpoint
        let r = round_bf16(mid);
        assert!(r == lo || r == hi);
        // Ties go to the even mantissa.
        assert_eq!(r, hi);
    }

    #[test]
    fn tensor_quantization_applies_elementwise() {
        let t = Tensor::from_vec(vec![1.0, 1.0 + 1.0 / 1024.0], &[2]);
        let q = t.to_bf16();
        assert_eq!(q.data()[0], 1.0);
        assert_eq!(q.data()[1], 1.0); // sub-ulp perturbation rounds away
    }

    #[test]
    fn bf16_gemm_error_is_small_and_bounded() {
        // Quantized GEMM (BF16 inputs, FP32 accumulate) stays within a few
        // bf16 ulps of the FP32 result — the accelerator numeric contract.
        let mut rng = DivaRng::seed_from_u64(52);
        let a = Tensor::uniform(&[16, 32], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[32, 16], -1.0, 1.0, &mut rng);
        let exact = crate::matmul(&a, &b);
        let quant = crate::matmul(&a.to_bf16(), &b.to_bf16());
        // Error per output ≤ K · 2 · max|a||b| · 2^-8; loose bound.
        let max_err = exact.max_abs_diff(&quant);
        assert!(max_err < 32.0 * 2.0 * 2.0 / 256.0, "error {max_err}");
        assert!(max_err > 0.0, "quantization should perturb something");
    }
}
