//! Convolution lowered to GEMM via `im2col`, exactly the transformation the
//! paper assumes when it states that "both forward and backpropagation of
//! SGD can all be permuted to GEMM for representative DNN layers"
//! (Section II-D, citing cuDNN's `im2col`).
//!
//! Layouts: activations are NCHW, weights are `(C_out, C_in, R, S)` where
//! `R`/`S` are the filter height/width, matching the paper's Figure 6
//! nomenclature.
//!
//! Two tiers of API live here:
//!
//! * The free functions ([`conv2d`], [`conv2d_backward_weight`],
//!   [`conv2d_backward_data`]) lower their input with `im2col` on every
//!   call. They are the naive reference path — simple, stateless, and the
//!   baseline the fused path is parity-tested against.
//! * [`PatchBuffer`] is the reuse-aware path DiVa's dataflow motivates:
//!   `im2col` runs **once per batch**, and every subsequent GEMM — the
//!   forward, the per-batch weight gradient, and all `B` per-example
//!   weight gradients of DP-SGD — executes as a strided panel over that one
//!   buffer, with the packed-B panels cached across DP-SGD(R)'s two
//!   backward passes (see [`crate::PackCache`]).

use crate::gemm::{
    blocked_path_eligible, gemm_packed_window, gemm_reference, MatRef, PackCache, PackedB,
};
use crate::matmul::{matmul, matmul_nt, matmul_tn};
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution: channel counts, filter size, stride,
/// padding and the input spatial extent.
///
/// # Example
///
/// ```
/// use diva_tensor::Conv2dGeom;
/// let g = Conv2dGeom::new(3, 16, 3, 1, 1, 32, 32);
/// assert_eq!(g.out_hw(), (32, 32));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Conv2dGeom {
    /// Input channels (`C_in`).
    pub cin: usize,
    /// Output channels (`C_out`).
    pub cout: usize,
    /// Filter side (square filters: `R == S == k`).
    pub k: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub pad: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
}

impl Conv2dGeom {
    /// Creates a convolution geometry.
    ///
    /// # Panics
    ///
    /// Panics if the output would be empty (filter larger than the padded
    /// input) or if `stride == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        let g = Self {
            cin,
            cout,
            k,
            stride,
            pad,
            in_h,
            in_w,
        };
        let (p, q) = g.out_hw();
        assert!(
            p > 0 && q > 0,
            "convolution produces empty output: {k}x{k} filter on {in_h}x{in_w} input with pad {pad}"
        );
        g
    }

    /// The output spatial extent `(P, Q)`.
    pub fn out_hw(&self) -> (usize, usize) {
        let p = (self.in_h + 2 * self.pad).saturating_sub(self.k) / self.stride + 1;
        let q = (self.in_w + 2 * self.pad).saturating_sub(self.k) / self.stride + 1;
        (p, q)
    }

    /// The number of weight elements `C_out * C_in * R * S`.
    pub fn weight_len(&self) -> usize {
        self.cout * self.cin * self.k * self.k
    }

    /// The patch length `C_in * R * S` (the K dimension of the forward GEMM).
    pub fn patch_len(&self) -> usize {
        self.cin * self.k * self.k
    }
}

/// Unfolds an NCHW input batch into the patch matrix of shape
/// `(N * P * Q, C_in * R * S)`.
///
/// Row `n*P*Q + p*Q + q` holds the receptive field of output position
/// `(p, q)` for example `n`; out-of-bounds positions read as zero (padding).
///
/// # Panics
///
/// Panics if `input` is not rank 4 or its channel/spatial dims disagree with
/// `geom`.
pub fn im2col(input: &Tensor, geom: &Conv2dGeom) -> Tensor {
    let dims = input.shape().dims();
    assert_eq!(dims.len(), 4, "im2col expects NCHW, got {}", input.shape());
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(
        c, geom.cin,
        "channel mismatch: input {c}, geom {}",
        geom.cin
    );
    assert_eq!(
        h, geom.in_h,
        "height mismatch: input {h}, geom {}",
        geom.in_h
    );
    assert_eq!(
        w, geom.in_w,
        "width mismatch: input {w}, geom {}",
        geom.in_w
    );

    let (p, q) = geom.out_hw();
    let patch = geom.patch_len();
    let mut out = Tensor::zeros(&[n * p * q, patch]);
    let iv = input.data();
    let ov = out.data_mut();
    let k = geom.k;
    for ni in 0..n {
        for pi in 0..p {
            for qi in 0..q {
                let row = (ni * p + pi) * q + qi;
                let base = row * patch;
                for ci in 0..c {
                    for ki in 0..k {
                        let ih = (pi * geom.stride + ki) as isize - geom.pad as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for kj in 0..k {
                            let iw = (qi * geom.stride + kj) as isize - geom.pad as isize;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            let src = ((ni * c + ci) * h + ih as usize) * w + iw as usize;
                            let dst = base + (ci * k + ki) * k + kj;
                            ov[dst] = iv[src];
                        }
                    }
                }
            }
        }
    }
    out
}

/// Folds a patch matrix of shape `(N * P * Q, C_in * R * S)` back into an
/// NCHW tensor, *summing* overlapping contributions.
///
/// `col2im` is the adjoint of [`im2col`]: for all `x`, `y` it holds that
/// `⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩`, which is exactly what backpropagation
/// through the unfold requires.
///
/// # Panics
///
/// Panics if `cols` does not have the shape implied by `geom` and `n`.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeom, n: usize) -> Tensor {
    let (p, q) = geom.out_hw();
    let patch = geom.patch_len();
    let (rows, cols_w) = cols.dims2();
    assert_eq!(rows, n * p * q, "col2im row count mismatch");
    assert_eq!(cols_w, patch, "col2im patch length mismatch");

    let (c, h, w) = (geom.cin, geom.in_h, geom.in_w);
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let ov = out.data_mut();
    let cv = cols.data();
    let k = geom.k;
    for ni in 0..n {
        for pi in 0..p {
            for qi in 0..q {
                let row = (ni * p + pi) * q + qi;
                let base = row * patch;
                for ci in 0..c {
                    for ki in 0..k {
                        let ih = (pi * geom.stride + ki) as isize - geom.pad as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for kj in 0..k {
                            let iw = (qi * geom.stride + kj) as isize - geom.pad as isize;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            let dst = ((ni * c + ci) * h + ih as usize) * w + iw as usize;
                            let src = base + (ci * k + ki) * k + kj;
                            ov[dst] += cv[src];
                        }
                    }
                }
            }
        }
    }
    out
}

/// Forward convolution: input `(N, C_in, H, W)`, weight `(C_out, C_in, R, S)`,
/// output `(N, C_out, P, Q)`.
///
/// Internally lowers to the forward GEMM of the paper's Figure 6:
/// `(M, K, N) = (B·P·Q, C_in·R·S, C_out)`.
///
/// # Panics
///
/// Panics on any layout mismatch with `geom`.
pub fn conv2d(input: &Tensor, weight: &Tensor, geom: &Conv2dGeom) -> Tensor {
    PatchBuffer::lower(input, geom).forward(weight)
}

/// Backpropagates a convolution to its input: given `G(Y)` of shape
/// `(N, C_out, P, Q)`, returns `G(X)` of shape `(N, C_in, H, W)`.
///
/// # Panics
///
/// Panics on layout mismatch.
pub fn conv2d_backward_data(grad_out: &Tensor, weight: &Tensor, geom: &Conv2dGeom) -> Tensor {
    let n = grad_out.shape().dim(0);
    let gy2d = nchw_to_rows(grad_out, geom); // (N*P*Q, Cout)
    let w2d = weight.clone().reshape(&[geom.cout, geom.patch_len()]);
    let dpatches = matmul(&gy2d, &w2d); // (N*P*Q, Cin*R*S)
    col2im(&dpatches, geom, n)
}

/// [`conv2d_backward_data`] with the packed filter matrix cached in `pack`.
///
/// The data-gradient GEMM's B operand is the `(C_out, C_in·R·S)` filter
/// matrix, which is identical in both of DP-SGD(R)'s backward passes (the
/// weights only change at the optimizer update). Passing the same
/// [`PackCache`] to both passes packs it once; the cache revalidates a
/// content token of the weights on every use, so reuse across an optimizer
/// update fails loudly instead of silently computing against stale
/// weights. Bit-identical to [`conv2d_backward_data`] on an equivalent
/// `gy_rows` (`nchw_to_rows` of the NCHW gradient): the routing decision
/// and the panel decomposition are the same, only the (exact-copy) packing
/// is skipped on reuse.
///
/// The gradient comes in pre-flattened with [`nchw_to_rows`] because the
/// caller (the conv layer's backward) already flattens once per pass for
/// the weight-gradient GEMMs — no second NCHW-to-rows transpose.
///
/// # Panics
///
/// Panics on layout mismatch, or if `pack` was previously used with a
/// differently-shaped operand.
pub fn conv2d_backward_data_from_rows(
    gy_rows: &Tensor,
    weight: &Tensor,
    geom: &Conv2dGeom,
    n: usize,
    pack: &PackCache,
) -> Tensor {
    assert_eq!(
        weight.len(),
        geom.weight_len(),
        "weight has {} elements, geometry implies {}",
        weight.len(),
        geom.weight_len()
    );
    let (rows, cout) = gy_rows.dims2();
    let (p, q) = geom.out_hw();
    assert_eq!(rows, n * p * q, "gradient row-count mismatch");
    assert_eq!(cout, geom.cout, "gradient channel mismatch");
    let patch = geom.patch_len();
    let mut dpatches = Tensor::zeros(&[rows, patch]);
    let a = MatRef::row_major(gy_rows.data(), cout);
    if blocked_path_eligible(rows, cout, patch) {
        // The weights can change between a forward and a later backward
        // (optimizer updates); the content token makes such stale-cache
        // reuse fail loudly instead of silently using pre-update weights.
        let token = crate::gemm::content_token(weight.data());
        let pb = pack.get_or_pack(cout, patch, token, || {
            PackedB::pack_segmented(MatRef::row_major(weight.data(), patch), cout, patch, cout)
        });
        gemm_packed_window(rows, patch, a, pb, 0, cout, dpatches.data_mut());
    } else {
        let b = MatRef::row_major(weight.data(), patch);
        gemm_reference(rows, cout, patch, a, b, dpatches.data_mut());
    }
    col2im(&dpatches, geom, n)
}

/// Backpropagates a convolution to its weights: given the layer input and
/// `G(Y)`, returns the *per-batch* `G(W)` of shape `(C_out, C_in, R, S)`.
///
/// This is the per-batch weight-gradient GEMM of the paper's Figure 6:
/// `(M, K, N) = (C_in·R·S, B·P·Q, C_out)`; the reduction over the mini-batch
/// happens inside the K dimension.
///
/// # Panics
///
/// Panics on layout mismatch.
pub fn conv2d_backward_weight(input: &Tensor, grad_out: &Tensor, geom: &Conv2dGeom) -> Tensor {
    let patches = im2col(input, geom); // (N*P*Q, Cin*R*S)
    let gy2d = nchw_to_rows(grad_out, geom); // (N*P*Q, Cout)
                                             // G(W)^T with shape (Cin*R*S, Cout) = patches^T x gy2d, then transpose.
    let gw_t = matmul_tn(&patches, &gy2d);
    gw_t.transpose()
        .reshape(&[geom.cout, geom.cin, geom.k, geom.k])
}

/// The reuse-aware convolution lowering: `im2col` computed **once** per
/// batch, shared by the forward GEMM and every backward weight-gradient
/// GEMM, with the packed-B panels of the weight-gradient GEMMs cached for
/// reuse across DP-SGD(R)'s two backward passes.
///
/// Rows `i·P·Q .. (i+1)·P·Q` of the buffer are example `i`'s receptive
/// fields, so a per-example weight gradient is a GEMM over a contiguous
/// row-window of the shared buffer — no per-example `im2col`, no
/// per-example copy. The weight-gradient GEMM is formulated as
/// `G(W) = G(Y)ᵀ × patches` (B = the patch buffer), which makes the packed
/// operand the *invariant* one: packed once, it serves all `B` per-example
/// GEMMs of the `NormOnly`/`PerExample` pass *and* the per-batch GEMM of
/// the reweighted second pass.
///
/// Numerics: for every **per-example** window the GEMM routing, the
/// K-panel boundaries and the per-element accumulation order match the
/// naive per-example [`conv2d_backward_weight`] path (multiplication is
/// commutative under IEEE-754 even through FMA), so per-example gradients
/// and norms are bit-identical to the per-example `im2col` path — the
/// contract `tests/conv_fused_parity.rs` pins in the `diva-nn` crate. The
/// **per-batch** window is the exception: its packed panels split at every
/// example boundary while the naive batch GEMM splits only at multiples of
/// the K panel length, so [`PatchBuffer::backward_weight_batch`] matches
/// the naive batch path to reassociation tolerance (~1e-7 relative), not
/// bit-for-bit.
#[derive(Clone, Debug)]
pub struct PatchBuffer {
    patches: Tensor,
    geom: Conv2dGeom,
    n: usize,
    pack: PackCache,
}

impl PatchBuffer {
    /// Lowers an NCHW batch with [`im2col`] once.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match `geom` (see [`im2col`]).
    pub fn lower(input: &Tensor, geom: &Conv2dGeom) -> Self {
        let n = input.shape().dim(0);
        Self {
            patches: im2col(input, geom),
            geom: *geom,
            n,
            pack: PackCache::new(),
        }
    }

    /// The underlying `(N·P·Q, C_in·R·S)` patch matrix.
    pub fn patches(&self) -> &Tensor {
        &self.patches
    }

    /// The batch size this buffer was lowered from.
    pub fn batch(&self) -> usize {
        self.n
    }

    /// The geometry this buffer was lowered under.
    pub fn geom(&self) -> &Conv2dGeom {
        &self.geom
    }

    /// Patch rows per example, `P·Q`.
    fn rows_per_example(&self) -> usize {
        let (p, q) = self.geom.out_hw();
        p * q
    }

    /// Forward convolution from the lowered patches: identical arithmetic
    /// to [`conv2d`], minus the re-lowering.
    ///
    /// # Panics
    ///
    /// Panics if `weight` does not match the geometry.
    pub fn forward(&self, weight: &Tensor) -> Tensor {
        assert_eq!(
            weight.len(),
            self.geom.weight_len(),
            "weight has {} elements, geometry implies {}",
            weight.len(),
            self.geom.weight_len()
        );
        let (p, q) = self.geom.out_hw();
        let cout = self.geom.cout;
        let w2d = weight.clone().reshape(&[cout, self.geom.patch_len()]);
        let y = matmul_nt(&self.patches, &w2d); // (N*P*Q, Cout)
                                                // Reorder (N*P*Q, Cout) -> (N, Cout, P, Q).
        let mut out = Tensor::zeros(&[self.n, cout, p, q]);
        let yv = y.data();
        let ov = out.data_mut();
        for ni in 0..self.n {
            for pi in 0..p {
                for qi in 0..q {
                    let row = (ni * p + pi) * q + qi;
                    for co in 0..cout {
                        ov[((ni * cout + co) * p + pi) * q + qi] = yv[row * cout + co];
                    }
                }
            }
        }
        out
    }

    /// The per-batch weight gradient `(C_out, C_in, R, S)` from the shared
    /// buffer: the `(C_out, B·P·Q, C_in·R·S)` GEMM of the reweighted second
    /// pass, reusing the packed patch panels if a per-example pass already
    /// paid for them.
    ///
    /// # Panics
    ///
    /// Panics if `gy_rows` is not the `(N·P·Q, C_out)` row layout of
    /// [`nchw_to_rows`].
    pub fn backward_weight_batch(&self, gy_rows: &Tensor) -> Tensor {
        self.weight_grad_window(gy_rows, 0, self.n * self.rows_per_example())
    }

    /// The weight gradient of example `i` as a strided GEMM panel over the
    /// shared buffer — Algorithm 1's per-example `(C_in·R·S, P·Q, C_out)`
    /// derivation without the per-example `im2col`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= batch` or `gy_rows` has the wrong layout.
    pub fn backward_weight_example(&self, gy_rows: &Tensor, i: usize) -> Tensor {
        assert!(i < self.n, "example {i} out of bounds for batch {}", self.n);
        let pq = self.rows_per_example();
        self.weight_grad_window(gy_rows, i * pq, (i + 1) * pq)
    }

    /// Shared weight-gradient core over patch-buffer rows `lo..hi`:
    /// `G(W)[co][d] = Σ_r gy[r][co] · patches[r][d]` with the patch buffer
    /// as the (packed, cached) B operand.
    fn weight_grad_window(&self, gy_rows: &Tensor, lo: usize, hi: usize) -> Tensor {
        let (rows, cout) = gy_rows.dims2();
        assert_eq!(cout, self.geom.cout, "gradient channel mismatch");
        assert_eq!(
            rows,
            self.n * self.rows_per_example(),
            "gradient row-count mismatch"
        );
        let patch = self.geom.patch_len();
        let (m, k) = (cout, hi - lo);
        let mut gw = Tensor::zeros(&[cout, self.geom.cin, self.geom.k, self.geom.k]);
        let a = MatRef::transposed(&gy_rows.data()[lo * cout..hi * cout], cout);
        if blocked_path_eligible(m, k, patch) {
            let total = rows;
            let pq = self.rows_per_example();
            // Token 0: the patch buffer is owned by `self` and immutable
            // after lowering, so it cannot go stale.
            let pb = self.pack.get_or_pack(total, patch, 0, || {
                PackedB::pack_segmented(
                    MatRef::row_major(self.patches.data(), patch),
                    total,
                    patch,
                    pq,
                )
            });
            gemm_packed_window(m, patch, a, pb, lo, hi, gw.data_mut());
        } else {
            let b = MatRef::row_major(&self.patches.data()[lo * patch..hi * patch], patch);
            gemm_reference(m, k, patch, a, b, gw.data_mut());
        }
        gw
    }
}

/// Flattens `(N, C_out, P, Q)` into GEMM row-major order `(N*P*Q, C_out)` —
/// the row layout [`PatchBuffer`]'s weight-gradient GEMMs consume. Row
/// `n·P·Q + p·Q + q` holds the `C_out` output-gradient channels of position
/// `(p, q)` in example `n`, matching [`im2col`]'s row indexing so that a
/// contiguous row-window selects one example in both operands.
///
/// # Panics
///
/// Panics if `t` is not `(N, C_out, P, Q)` for `geom`.
pub fn nchw_to_rows(t: &Tensor, geom: &Conv2dGeom) -> Tensor {
    let dims = t.shape().dims();
    assert_eq!(dims.len(), 4, "expected NCHW, got {}", t.shape());
    let (n, c, p, q) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, geom.cout, "channel mismatch in gradient tensor");
    let mut out = Tensor::zeros(&[n * p * q, c]);
    let tv = t.data();
    let ov = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            for pi in 0..p {
                for qi in 0..q {
                    let row = (ni * p + pi) * q + qi;
                    ov[row * c + ci] = tv[((ni * c + ci) * p + pi) * q + qi];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DivaRng;

    /// Direct (quadruple-loop) convolution used as the test oracle.
    fn conv2d_reference(input: &Tensor, weight: &Tensor, geom: &Conv2dGeom) -> Tensor {
        let n = input.shape().dim(0);
        let (p, q) = geom.out_hw();
        let mut out = Tensor::zeros(&[n, geom.cout, p, q]);
        for ni in 0..n {
            for co in 0..geom.cout {
                for pi in 0..p {
                    for qi in 0..q {
                        let mut acc = 0.0;
                        for ci in 0..geom.cin {
                            for ki in 0..geom.k {
                                for kj in 0..geom.k {
                                    let ih = (pi * geom.stride + ki) as isize - geom.pad as isize;
                                    let iw = (qi * geom.stride + kj) as isize - geom.pad as isize;
                                    if ih < 0
                                        || iw < 0
                                        || ih >= geom.in_h as isize
                                        || iw >= geom.in_w as isize
                                    {
                                        continue;
                                    }
                                    acc += input[&[ni, ci, ih as usize, iw as usize]]
                                        * weight[&[co, ci, ki, kj]];
                                }
                            }
                        }
                        out[&[ni, co, pi, qi]] = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn gemm_lowering_matches_direct_convolution() {
        let mut rng = DivaRng::seed_from_u64(21);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let geom = Conv2dGeom::new(3, 4, 3, stride, pad, 8, 8);
            let x = Tensor::uniform(&[2, 3, 8, 8], -1.0, 1.0, &mut rng);
            let w = Tensor::uniform(&[4, 3, 3, 3], -1.0, 1.0, &mut rng);
            let fast = conv2d(&x, &w, &geom);
            let slow = conv2d_reference(&x, &w, &geom);
            assert!(
                fast.max_abs_diff(&slow) < 1e-4,
                "mismatch at stride={stride} pad={pad}"
            );
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        let mut rng = DivaRng::seed_from_u64(23);
        let geom = Conv2dGeom::new(2, 3, 3, 2, 1, 7, 7);
        let x = Tensor::uniform(&[2, 2, 7, 7], -1.0, 1.0, &mut rng);
        let unfolded = im2col(&x, &geom);
        let y = Tensor::uniform(unfolded.shape().dims(), -1.0, 1.0, &mut rng);
        let folded = col2im(&y, &geom, 2);
        let lhs: f64 = unfolded
            .data()
            .iter()
            .zip(y.data())
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(folded.data())
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3,
            "adjointness violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = DivaRng::seed_from_u64(29);
        let geom = Conv2dGeom::new(2, 2, 3, 1, 1, 5, 5);
        let x = Tensor::uniform(&[1, 2, 5, 5], -1.0, 1.0, &mut rng);
        let mut w = Tensor::uniform(&[2, 2, 3, 3], -0.5, 0.5, &mut rng);
        // Loss = sum(conv(x, w)); dL/dY = ones.
        let (p, q) = geom.out_hw();
        let gy = Tensor::full(&[1, 2, p, q], 1.0);
        let gw = conv2d_backward_weight(&x, &gy, &geom);
        let eps = 1e-3;
        for idx in [0usize, 7, 17, 35] {
            let orig = w.data()[idx];
            w.data_mut()[idx] = orig + eps;
            let up = conv2d(&x, &w, &geom).sum();
            w.data_mut()[idx] = orig - eps;
            let dn = conv2d(&x, &w, &geom).sum();
            w.data_mut()[idx] = orig;
            let fd = (up - dn) / (2.0 * f64::from(eps));
            let an = f64::from(gw.data()[idx]);
            assert!(
                (fd - an).abs() < 1e-2,
                "weight grad mismatch at {idx}: fd={fd} analytic={an}"
            );
        }
    }

    #[test]
    fn data_gradient_matches_finite_difference() {
        let mut rng = DivaRng::seed_from_u64(31);
        let geom = Conv2dGeom::new(2, 3, 3, 2, 1, 6, 6);
        let mut x = Tensor::uniform(&[1, 2, 6, 6], -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(&[3, 2, 3, 3], -0.5, 0.5, &mut rng);
        let (p, q) = geom.out_hw();
        let gy = Tensor::full(&[1, 3, p, q], 1.0);
        let gx = conv2d_backward_data(&gy, &w, &geom);
        let eps = 1e-3;
        for idx in [0usize, 13, 40, 71] {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let up = conv2d(&x, &w, &geom).sum();
            x.data_mut()[idx] = orig - eps;
            let dn = conv2d(&x, &w, &geom).sum();
            x.data_mut()[idx] = orig;
            let fd = (up - dn) / (2.0 * f64::from(eps));
            let an = f64::from(gx.data()[idx]);
            assert!(
                (fd - an).abs() < 1e-2,
                "data grad mismatch at {idx}: fd={fd} analytic={an}"
            );
        }
    }

    /// The packed/cached data-gradient path must match the plain
    /// `conv2d_backward_data` (which routes through `matmul`) on both the
    /// blocked-eligible and the reference-kernel shapes — an independent
    /// oracle for the call-site wiring of `gemm_packed_window`, including
    /// across a pack-cache reuse.
    #[test]
    fn data_gradient_from_rows_matches_reference_path() {
        let mut rng = DivaRng::seed_from_u64(37);
        for (geom, n) in [
            // rows=1152, k=cout=16, n=patch=36: blocked/packed route.
            (Conv2dGeom::new(4, 16, 3, 1, 1, 12, 12), 8usize),
            // Tiny: reference-kernel route.
            (Conv2dGeom::new(2, 3, 3, 2, 1, 6, 6), 2),
        ] {
            let (p, q) = geom.out_hw();
            let gy = Tensor::uniform(&[n, geom.cout, p, q], -1.0, 1.0, &mut rng);
            let w = Tensor::uniform(&[geom.cout, geom.cin, geom.k, geom.k], -0.5, 0.5, &mut rng);
            let reference = conv2d_backward_data(&gy, &w, &geom);
            let rows = nchw_to_rows(&gy, &geom);
            let pack = PackCache::new();
            let first = conv2d_backward_data_from_rows(&rows, &w, &geom, n, &pack);
            assert_eq!(
                first.data(),
                reference.data(),
                "cold pack diverged: {geom:?}"
            );
            let second = conv2d_backward_data_from_rows(&rows, &w, &geom, n, &pack);
            assert_eq!(
                second.data(),
                reference.data(),
                "warm pack diverged: {geom:?}"
            );
        }
    }

    #[test]
    fn geometry_reports_expected_output_size() {
        // Same-padding 3x3 stride 1 keeps spatial dims.
        assert_eq!(Conv2dGeom::new(3, 8, 3, 1, 1, 32, 32).out_hw(), (32, 32));
        // Stride-2 halves.
        assert_eq!(Conv2dGeom::new(3, 8, 3, 2, 1, 32, 32).out_hw(), (16, 16));
        // 1x1 conv.
        assert_eq!(Conv2dGeom::new(16, 32, 1, 1, 0, 8, 8).out_hw(), (8, 8));
    }
}
