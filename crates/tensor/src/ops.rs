//! Elementwise activations, loss functions and small vector utilities.

// Indexed loops below mirror hardware/tensor coordinates; iterator
// rewrites would obscure the (row, column, timestep) structure.
#![allow(clippy::needless_range_loop)]

use crate::tensor::Tensor;

/// Width of the manually unrolled `add_scaled` strips: matches the widest
/// `f32` vector register the backend targets (one AVX-512 register, two
/// AVX2 registers), so the constant-trip-count strip loop compiles to
/// branch-free FMA vector code.
const LANES: usize = 16;

/// Applies ReLU elementwise, returning a new tensor.
pub fn relu(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    for v in out.data_mut() {
        // Comparison (not `f32::max`) preserves NaN propagation.
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    out
}

/// Backpropagates through ReLU: zeroes gradient entries where the forward
/// input was non-positive.
///
/// # Panics
///
/// Panics if the shapes of `grad_out` and `input` differ.
pub fn relu_backward(grad_out: &Tensor, input: &Tensor) -> Tensor {
    assert_eq!(
        grad_out.shape(),
        input.shape(),
        "relu_backward shape mismatch: {} vs {}",
        grad_out.shape(),
        input.shape()
    );
    let mut out = grad_out.clone();
    for (g, &x) in out.data_mut().iter_mut().zip(input.data()) {
        if x <= 0.0 {
            *g = 0.0;
        }
    }
    out
}

/// Adds `scale * src` into `dst` elementwise.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn add_scaled(dst: &mut Tensor, src: &Tensor, scale: f32) {
    assert_eq!(
        dst.shape(),
        src.shape(),
        "add_scaled shape mismatch: {} vs {}",
        dst.shape(),
        src.shape()
    );
    let n = dst.len();
    let dv = &mut dst.data_mut()[..n];
    let sv = &src.data()[..n];
    let mut d_chunks = dv.chunks_exact_mut(LANES);
    let mut s_chunks = sv.chunks_exact(LANES);
    // Fixed-width strips with fused multiply-add: the axpy kernel at the
    // heart of every weighted clip-reduce.
    for (dc, sc) in (&mut d_chunks).zip(&mut s_chunks) {
        for (d, &s) in dc.iter_mut().zip(sc) {
            *d = s.mul_add(scale, *d);
        }
    }
    for (d, &s) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        *d = s.mul_add(scale, *d);
    }
}

/// The result of a fused softmax + cross-entropy evaluation.
#[derive(Clone, Debug)]
pub struct SoftmaxCrossEntropy {
    /// Mean loss over the batch.
    pub mean_loss: f64,
    /// Per-example losses, length = batch size.
    pub per_example_loss: Vec<f64>,
    /// Gradient of the *per-example* loss with respect to the logits, shape
    /// `(B, classes)`. Note: NOT divided by the batch size; DP-SGD needs the
    /// raw per-example gradients (paper Algorithm 1 line 19).
    pub grad_logits: Tensor,
}

/// Computes softmax cross-entropy over logits of shape `(B, classes)` against
/// integer labels.
///
/// Returns per-example losses and the per-example gradient of the loss with
/// respect to the logits (`softmax(z) - onehot(y)`), which downstream code
/// scales as needed (SGD divides by `B` during reduction; DP-SGD clips first).
///
/// # Panics
///
/// Panics if `logits` is not rank 2, `labels.len()` differs from the batch
/// size, or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> SoftmaxCrossEntropy {
    let (b, c) = logits.dims2();
    assert_eq!(labels.len(), b, "expected {b} labels, got {}", labels.len());
    let mut grad = Tensor::zeros(&[b, c]);
    let mut per_example_loss = Vec::with_capacity(b);
    for i in 0..b {
        let row = logits.row(i);
        let label = labels[i];
        assert!(label < c, "label {label} out of range for {c} classes");
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f64> = row.iter().map(|&z| f64::from(z - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        let log_z = z.ln();
        let loss = log_z - f64::from(row[label] - max);
        per_example_loss.push(loss);
        let grow = &mut grad.data_mut()[i * c..(i + 1) * c];
        for j in 0..c {
            let p = (exps[j] / z) as f32;
            grow[j] = if j == label { p - 1.0 } else { p };
        }
    }
    let mean_loss = per_example_loss.iter().sum::<f64>() / b as f64;
    SoftmaxCrossEntropy {
        mean_loss,
        per_example_loss,
        grad_logits: grad,
    }
}

/// Returns the index of the maximum entry in each row of a rank-2 tensor.
///
/// # Panics
///
/// Panics if `t` is not rank 2 or has zero columns.
pub fn argmax_rows(t: &Tensor) -> Vec<usize> {
    let (b, c) = t.dims2();
    assert!(c > 0, "argmax over zero columns");
    (0..b)
        .map(|i| {
            let row = t.row(i);
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(j, _)| j)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DivaRng;

    #[test]
    fn relu_clamps_negatives_only() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = Tensor::from_vec(vec![-1.0, 0.5, 0.0], &[3]);
        let g = Tensor::from_vec(vec![10.0, 10.0, 10.0], &[3]);
        assert_eq!(relu_backward(&g, &x).data(), &[0.0, 10.0, 0.0]);
    }

    #[test]
    fn softmax_gradient_matches_finite_difference() {
        let mut rng = DivaRng::seed_from_u64(37);
        let mut logits = Tensor::uniform(&[2, 4], -1.0, 1.0, &mut rng);
        let labels = vec![1usize, 3usize];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..8 {
            let orig = logits.data()[idx];
            logits.data_mut()[idx] = orig + eps;
            let up: f64 = softmax_cross_entropy(&logits, &labels)
                .per_example_loss
                .iter()
                .sum();
            logits.data_mut()[idx] = orig - eps;
            let dn: f64 = softmax_cross_entropy(&logits, &labels)
                .per_example_loss
                .iter()
                .sum();
            logits.data_mut()[idx] = orig;
            let fd = (up - dn) / (2.0 * f64::from(eps));
            let an = f64::from(out.grad_logits.data()[idx]);
            assert!(
                (fd - an).abs() < 1e-3,
                "grad mismatch at {idx}: {fd} vs {an}"
            );
        }
    }

    #[test]
    fn softmax_loss_is_log_classes_for_uniform_logits() {
        let logits = Tensor::zeros(&[1, 10]);
        let out = softmax_cross_entropy(&logits, &[4]);
        assert!((out.mean_loss - (10.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 5.0, -2.0, 3.0], &[2, 3]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[1, 3]);
        let ga = softmax_cross_entropy(&a, &[0]);
        let gb = softmax_cross_entropy(&b, &[0]);
        assert!((ga.mean_loss - gb.mean_loss).abs() < 1e-5);
        assert!(ga.grad_logits.max_abs_diff(&gb.grad_logits) < 1e-5);
    }
}
