//! Fused-vs-naive parity for the patch-reuse convolution backward.
//!
//! The fused path (shared batch `im2col` + strided per-example GEMM
//! windows + packed-B reuse) must be **bit-identical** — not
//! epsilon-close — to the naive per-example `im2col` path it replaced, for
//! every gradient mode, across odd spatial shapes, stride/padding combos,
//! the DP-SGD batch sizes 1/2/33, and any worker-thread count. Bit
//! identity holds because the fused GEMM keeps the same routing decision,
//! the same K-panel boundaries and the same per-element k-ascending
//! accumulation order; only operand roles are swapped, and IEEE-754
//! multiplication (including through FMA) is commutative.
//!
//! The naive reference below reconstructs the pre-fusion implementation
//! verbatim from the public tensor API: slice the example, lower it with
//! its own `im2col` (inside `conv2d_backward_weight`), run the
//! `(C_in·R·S, P·Q, C_out)` GEMM, and reduce the bias over spatial
//! positions.

use diva_nn::{slice_example, Conv2dLayer, GradMode, ParamGrads};
use diva_tensor::{conv2d_backward_weight, Backend, Conv2dGeom, DivaRng, Tensor};

/// The pre-fusion per-example gradients: `[G(W)_i, G(b)_i]`.
fn naive_example_grads(x: &Tensor, gy: &Tensor, geom: &Conv2dGeom, i: usize) -> Vec<Tensor> {
    let xi = slice_example(x, i);
    let gi = slice_example(gy, i);
    let gw = conv2d_backward_weight(&xi, &gi, geom);
    // Bias gradient exactly as the pre-fusion layer computed it: per
    // channel, sum the contiguous P·Q block of the sliced NCHW gradient.
    let dims = gi.shape().dims();
    let (c, p, q) = (dims[1], dims[2], dims[3]);
    let mut gb = Tensor::zeros(&[c]);
    for ci in 0..c {
        let base = ci * p * q;
        let s: f32 = gi.data()[base..base + p * q].iter().sum();
        gb.data_mut()[ci] += s;
    }
    vec![gw, gb]
}

/// Geometries with odd channel counts, non-square inputs, stride and
/// padding variety; the last is large enough to route the per-example GEMM
/// through the blocked/packed kernel (`C_out·P·Q·C_in·R·S ≥ 48³`, `P·Q ≥
/// 16`), so both the reference and the packed code paths are pinned.
fn parity_geoms() -> Vec<Conv2dGeom> {
    vec![
        Conv2dGeom::new(3, 5, 3, 1, 1, 9, 7),
        Conv2dGeom::new(2, 4, 3, 2, 1, 8, 8),
        Conv2dGeom::new(5, 3, 1, 1, 0, 6, 6),
        Conv2dGeom::new(2, 6, 3, 2, 2, 7, 5),
        Conv2dGeom::new(8, 24, 3, 1, 1, 12, 12),
    ]
}

fn layer_for(geom: &Conv2dGeom, rng: &mut DivaRng) -> Conv2dLayer {
    Conv2dLayer::new(
        geom.cin,
        geom.cout,
        geom.k,
        geom.stride,
        geom.pad,
        geom.in_h,
        geom.in_w,
        rng,
    )
}

#[test]
fn fused_norm_only_is_bit_identical_to_naive_path() {
    let mut rng = DivaRng::seed_from_u64(0xc0de);
    for geom in parity_geoms() {
        for &batch in &[1usize, 2, 33] {
            let layer = layer_for(&geom, &mut rng);
            let x = Tensor::uniform(
                &[batch, geom.cin, geom.in_h, geom.in_w],
                -1.0,
                1.0,
                &mut rng,
            );
            let (y, cache) = layer.forward(&x);
            let gy = Tensor::uniform(y.shape().dims(), -1.0, 1.0, &mut rng);

            let naive: Vec<f64> = (0..batch)
                .map(|i| {
                    naive_example_grads(&x, &gy, &geom, i)
                        .iter()
                        .map(Tensor::squared_norm)
                        .sum()
                })
                .collect();
            for &threads in &[1usize, 4, 8] {
                let fused = Backend::with_threads(threads)
                    .install(|| layer.backward(&cache, &gy, GradMode::NormOnly));
                let ParamGrads::SqNorms(norms) = &fused.grads else {
                    panic!("NormOnly must yield SqNorms");
                };
                assert_eq!(
                    norms, &naive,
                    "norms diverged from naive path: {geom:?} b={batch} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn fused_per_example_grads_are_bit_identical_to_naive_path() {
    let mut rng = DivaRng::seed_from_u64(0xfaded);
    for geom in parity_geoms() {
        for &batch in &[1usize, 2, 33] {
            let layer = layer_for(&geom, &mut rng);
            let x = Tensor::uniform(
                &[batch, geom.cin, geom.in_h, geom.in_w],
                -1.0,
                1.0,
                &mut rng,
            );
            let (y, cache) = layer.forward(&x);
            let gy = Tensor::uniform(y.shape().dims(), -1.0, 1.0, &mut rng);

            for &threads in &[1usize, 4, 8] {
                let fused = Backend::with_threads(threads)
                    .install(|| layer.backward(&cache, &gy, GradMode::PerExample));
                let ParamGrads::PerExample(per_ex) = &fused.grads else {
                    panic!("PerExample must yield per-example gradients");
                };
                assert_eq!(per_ex.len(), batch);
                for (i, ex) in per_ex.iter().enumerate() {
                    let naive = naive_example_grads(&x, &gy, &geom, i);
                    assert_eq!(ex.len(), naive.len());
                    for (pi, (f, n)) in ex.iter().zip(&naive).enumerate() {
                        // The naive gradient keeps a leading batch dim of
                        // 1 on neither tensor (both are (Cout, Cin, R, S)
                        // / (Cout,)); compare raw data bit-for-bit.
                        assert_eq!(
                            f.data(),
                            n.data(),
                            "param {pi} of example {i} diverged: {geom:?} b={batch} \
                             threads={threads}"
                        );
                    }
                }
            }
        }
    }
}

/// The packed-B panels cached during the first (norm-only) pass must serve
/// the per-batch GEMM of the reweighted second pass without changing its
/// result: running PerBatch on a *fresh* cache (no pack reuse) and on a
/// cache pre-warmed by a NormOnly pass must agree bit-for-bit.
#[test]
fn pack_reuse_across_passes_is_bit_invisible() {
    let mut rng = DivaRng::seed_from_u64(0xb0b);
    for geom in parity_geoms() {
        let batch = 9;
        let layer = layer_for(&geom, &mut rng);
        let x = Tensor::uniform(
            &[batch, geom.cin, geom.in_h, geom.in_w],
            -1.0,
            1.0,
            &mut rng,
        );
        let (y, warm_cache) = layer.forward(&x);
        let (_, cold_cache) = layer.forward(&x);
        let gy = Tensor::uniform(y.shape().dims(), -1.0, 1.0, &mut rng);

        // Warm the pack caches with a first pass (as DP-SGD(R) does).
        let _ = layer.backward(&warm_cache, &gy, GradMode::NormOnly);
        let warm = layer.backward(&warm_cache, &gy, GradMode::PerBatch);
        let cold = layer.backward(&cold_cache, &gy, GradMode::PerBatch);
        let (ParamGrads::PerBatch(a), ParamGrads::PerBatch(b)) = (&warm.grads, &cold.grads) else {
            panic!("expected per-batch gradients");
        };
        for (wa, ca) in a.iter().zip(b) {
            assert_eq!(wa.data(), ca.data(), "pack reuse changed results: {geom:?}");
        }
        assert_eq!(
            warm.grad_input.unwrap().data(),
            cold.grad_input.unwrap().data(),
            "cached filter pack changed the data gradient: {geom:?}"
        );
    }
}

/// Thread-count bit-stability of the fused path itself (the parallel fan
///-out and the M-parallel GEMM split must be invisible).
#[test]
fn fused_path_is_bit_stable_across_thread_counts() {
    let mut rng = DivaRng::seed_from_u64(0x7ead);
    let geom = Conv2dGeom::new(8, 24, 3, 1, 1, 12, 12);
    let layer = layer_for(&geom, &mut rng);
    let x = Tensor::uniform(&[33, 8, 12, 12], -1.0, 1.0, &mut rng);
    let (y, cache) = layer.forward(&x);
    let gy = Tensor::uniform(y.shape().dims(), -1.0, 1.0, &mut rng);
    let baseline = Backend::serial().install(|| layer.backward(&cache, &gy, GradMode::NormOnly));
    let ParamGrads::SqNorms(base) = baseline.grads else {
        panic!("expected norms");
    };
    for threads in [2usize, 4, 8] {
        let run = Backend::with_threads(threads)
            .install(|| layer.backward(&cache, &gy, GradMode::NormOnly));
        let ParamGrads::SqNorms(n) = run.grads else {
            panic!("expected norms");
        };
        assert_eq!(n, base, "thread count {threads} changed fused norms");
    }
}
