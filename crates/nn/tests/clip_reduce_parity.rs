//! Parity contract for the fused/parallel clip-reduce pipeline: the
//! parallel `weighted_reduce`, the per-layer variant, and the fused
//! `backward_reweighted` of DP-SGD(R) must agree with straightforward
//! serial accumulation across the batch sizes DP-SGD cares about
//! (1, 2, 33) and across worker counts.

use diva_nn::{GradMode, Layer, Network, NetworkGrads, ParamGrads};
use diva_tensor::{softmax_cross_entropy, Backend, DivaRng, Tensor};

fn cnn(rng: &mut DivaRng) -> Network {
    Network::new(vec![
        Layer::conv2d(1, 4, 3, 1, 1, 6, 6, rng),
        Layer::relu(),
        Layer::flatten(),
        Layer::dense(4 * 36, 8, true, rng),
        Layer::relu(),
        Layer::dense(8, 3, true, rng),
    ])
}

fn forward_loss(net: &Network, b: usize, rng: &mut DivaRng) -> (Vec<diva_nn::LayerCache>, Tensor) {
    let x = Tensor::uniform(&[b, 1, 6, 6], -1.0, 1.0, rng);
    let labels: Vec<usize> = (0..b).map(|i| i % 3).collect();
    let (y, caches) = net.forward(&x);
    let loss = softmax_cross_entropy(&y, &labels);
    (caches, loss.grad_logits)
}

/// Straightforward serial weighted reduction used as the oracle.
fn reduce_serial(grads: &NetworkGrads, weights: &[f64]) -> Vec<Tensor> {
    let mut out = Vec::new();
    for g in &grads.layers {
        if let ParamGrads::PerExample(per_ex) = g {
            for pi in 0..per_ex[0].len() {
                let mut acc = Tensor::zeros(per_ex[0][pi].shape().dims());
                for (ex, &w) in per_ex.iter().zip(weights) {
                    diva_tensor::add_scaled(&mut acc, &ex[pi], w as f32);
                }
                out.push(acc);
            }
        }
    }
    out
}

/// The parallel weighted reduce is bit-identical to serial accumulation
/// for every worker count (each job keeps the serial example order).
#[test]
fn weighted_reduce_is_bitwise_stable_across_thread_counts() {
    let mut rng = DivaRng::seed_from_u64(21);
    let net = cnn(&mut rng);
    for &b in &[1usize, 2, 33] {
        let (caches, grad_loss) = forward_loss(&net, b, &mut rng);
        let per_ex = net.backward(&caches, &grad_loss, GradMode::PerExample);
        let weights: Vec<f64> = (0..b).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let oracle = reduce_serial(&per_ex, &weights);
        for backend in [
            Backend::serial(),
            Backend::with_threads(2),
            Backend::with_threads(5),
        ] {
            let reduced = backend.install(|| per_ex.weighted_reduce(&weights));
            let flat = reduced.flatten_per_batch();
            let oracle_flat: Vec<f32> = oracle.iter().flat_map(|t| t.data().to_vec()).collect();
            assert_eq!(flat.len(), oracle_flat.len(), "b={b} {}", backend.label());
            for (i, (x, y)) in flat.iter().zip(&oracle_flat).enumerate() {
                assert_eq!(x, y, "b={b} {} diverged at {i}", backend.label());
            }
        }
    }
}

/// Per-layer weighting agrees with the flat path when every layer uses the
/// same weights.
#[test]
fn per_layer_reduce_matches_flat_reduce_for_uniform_weights() {
    let mut rng = DivaRng::seed_from_u64(22);
    let net = cnn(&mut rng);
    for &b in &[1usize, 2, 33] {
        let (caches, grad_loss) = forward_loss(&net, b, &mut rng);
        let per_ex = net.backward(&caches, &grad_loss, GradMode::PerExample);
        let weights: Vec<f64> = (0..b).map(|i| 0.25 + (i as f64) * 0.01).collect();
        let per_layer: Vec<Vec<f64>> = per_ex.layers.iter().map(|_| weights.clone()).collect();
        let flat = per_ex.weighted_reduce(&weights).flatten_per_batch();
        let layered = per_ex
            .weighted_reduce_per_layer(&per_layer)
            .flatten_per_batch();
        assert_eq!(flat, layered, "b={b}");
    }
}

/// The fused DP-SGD(R) path (reweight the loss gradient, reduce inside the
/// per-batch backward) matches materialize-then-clip-reduce within the
/// reassociation tolerance — the paper's central algorithmic identity,
/// checked at batch sizes 1, 2 and 33.
#[test]
fn fused_reweighted_backward_matches_materialized_clip_reduce() {
    let mut rng = DivaRng::seed_from_u64(23);
    let net = cnn(&mut rng);
    for &b in &[1usize, 2, 33] {
        let (caches, grad_loss) = forward_loss(&net, b, &mut rng);
        let factors: Vec<f64> = (0..b).map(|i| 1.0 / (1.0 + (i % 5) as f64)).collect();
        let fused = net.backward_reweighted(&caches, &grad_loss, &factors);
        let materialized = net
            .backward(&caches, &grad_loss, GradMode::PerExample)
            .weighted_reduce(&factors);
        let a = fused.flatten_per_batch();
        let c = materialized.flatten_per_batch();
        assert_eq!(a.len(), c.len());
        for (i, (x, y)) in a.iter().zip(&c).enumerate() {
            assert!(
                (x - y).abs() < 1e-4,
                "b={b}: fused vs materialized diverged at {i}: {x} vs {y}"
            );
        }
    }
}
