//! Neural-network layers with **per-example gradient** support — the
//! algorithmic substrate of DP-SGD (paper Section II-C, Algorithm 1).
//!
//! Standard SGD frameworks only materialize *per-batch* weight gradients;
//! DP-SGD additionally needs, for every layer, either
//!
//! 1. the full set of per-example weight gradients (vanilla DP-SGD, so they
//!    can be clipped and then reduced), or
//! 2. only the per-example gradient *norms* (the memory-efficient
//!    "reweighted" DP-SGD(R) of Lee & Kifer, where clipping is fused into a
//!    second backpropagation pass as a per-example loss scale).
//!
//! Every layer here therefore supports three gradient modes
//! ([`GradMode`]): `PerBatch`, `PerExample`, and `NormOnly`. The `NormOnly`
//! mode computes per-example gradients layer-by-layer, accumulates their
//! squared norms, and immediately discards them — which is exactly the
//! memory saving DP-SGD(R) exploits (paper Section II-C).
//!
//! Compute: every GEMM a layer issues runs on `diva_tensor`'s blocked
//! kernel, and the per-example fan-outs (`PerExample` / `NormOnly`) are
//! batch-parallel over the workspace-wide keep-alive pool
//! (`diva_tensor::parallel`) — nested GEMMs inside a fan-out are
//! scheduled hierarchically on the same pool (idle workers steal them;
//! results are bit-identical regardless). Convolution layers lower their
//! batch with
//! `im2col` exactly once per forward (`diva_tensor::PatchBuffer`) and
//! reuse both the patch buffer and its packed GEMM panels across DP-SGD(R)'s
//! two backward passes. See `ARCHITECTURE.md` at the workspace root for
//! the full layer map.
//!
//! # Example
//!
//! ```
//! use diva_nn::{GradMode, Layer, Network};
//! use diva_tensor::{DivaRng, Tensor};
//!
//! let mut rng = DivaRng::seed_from_u64(0);
//! let net = Network::new(vec![
//!     Layer::dense(4, 8, true, &mut rng),
//!     Layer::relu(),
//!     Layer::dense(8, 3, true, &mut rng),
//! ]);
//! let x = Tensor::uniform(&[2, 4], -1.0, 1.0, &mut rng);
//! let (y, caches) = net.forward(&x);
//! assert_eq!(y.shape().dims(), &[2, 3]);
//! # let _ = caches;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv_layer;
mod dense;
mod embedding;
mod layer;
mod lstm;
mod network;
mod norm;
mod pool;
mod simple;

pub use conv_layer::Conv2dLayer;
pub use dense::Dense;
pub use embedding::Embedding;
pub use layer::{BackwardOutput, GradMode, Layer, LayerCache, ParamGrads};
pub use lstm::Lstm;
pub use network::{Network, NetworkGrads};
pub use norm::GroupNorm;
pub use pool::{AvgPool2d, MaxPool2d};
pub use simple::{Flatten, Relu, Sigmoid, Tanh};

/// Extracts example `i` from a batched tensor (first dimension = batch),
/// returning a tensor with leading dimension 1.
///
/// The fused convolution backward no longer slices per example (it windows
/// the shared patch buffer instead); this survives as a public utility for
/// the naive reference path in parity tests and benchmarks.
///
/// # Panics
///
/// Panics if the tensor is rank 0 or `i` is out of bounds.
pub fn slice_example(t: &diva_tensor::Tensor, i: usize) -> diva_tensor::Tensor {
    let dims = t.shape().dims();
    assert!(!dims.is_empty(), "cannot slice a scalar tensor");
    let b = dims[0];
    assert!(i < b, "example index {i} out of bounds for batch {b}");
    let stride: usize = dims[1..].iter().product();
    let data = t.data()[i * stride..(i + 1) * stride].to_vec();
    let mut new_dims = vec![1usize];
    new_dims.extend_from_slice(&dims[1..]);
    diva_tensor::Tensor::from_vec(data, &new_dims)
}
