//! The closed set of layer types and the gradient-mode taxonomy.

use diva_tensor::Tensor;

use crate::conv_layer::{Conv2dCache, Conv2dLayer};
use crate::dense::{Dense, DenseCache};
use crate::embedding::{Embedding, EmbeddingCache};
use crate::lstm::{Lstm, LstmCache};
use crate::norm::{GroupNorm, GroupNormCache};
use crate::pool::{AvgPool2d, MaxPool2d, PoolCache};
use crate::simple::{
    Flatten, FlattenCache, Relu, ReluCache, Sigmoid, SigmoidCache, Tanh, TanhCache,
};
use diva_tensor::DivaRng;

/// How weight gradients are derived during backpropagation.
///
/// Mirrors the three algorithms characterized by the paper:
///
/// * [`GradMode::PerBatch`] — non-private SGD: one reduced gradient per
///   mini-batch (paper Figure 2(a)).
/// * [`GradMode::PerExample`] — vanilla DP-SGD: `B` separate weight
///   gradients that are later clipped and reduced (Figure 2(b),
///   Algorithm 1 lines 16–25). This is the memory-hungry variant.
/// * [`GradMode::NormOnly`] — the first pass of DP-SGD(R): per-example
///   gradients are formed transiently, their squared L2 norms accumulated,
///   and the gradients discarded (Algorithm 1 lines 28–42).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GradMode {
    /// One weight gradient per mini-batch (standard SGD).
    PerBatch,
    /// One weight gradient per example (vanilla DP-SGD).
    PerExample,
    /// Per-example gradient squared-norms only (DP-SGD(R) first pass).
    NormOnly,
}

/// Weight gradients produced by a layer's backward pass.
#[derive(Clone, Debug)]
pub enum ParamGrads {
    /// The layer has no trainable parameters.
    None,
    /// Reduced gradients, one tensor per parameter (same shapes as params).
    PerBatch(Vec<Tensor>),
    /// Per-example gradients: `grads[example][param]`.
    PerExample(Vec<Vec<Tensor>>),
    /// Per-example squared L2 norms of this layer's weight gradient,
    /// `sq_norms[example]`.
    SqNorms(Vec<f64>),
}

impl ParamGrads {
    /// Returns the per-batch gradient tensors.
    ///
    /// # Panics
    ///
    /// Panics if the variant is not `PerBatch`.
    pub fn expect_per_batch(self) -> Vec<Tensor> {
        match self {
            ParamGrads::PerBatch(g) => g,
            ParamGrads::None => Vec::new(),
            other => panic!("expected per-batch gradients, got {other:?}"),
        }
    }
}

/// The result of a layer backward pass: the gradient flowing to the
/// previous layer (when derived — see `grad_input`) and this layer's weight
/// gradients (per the requested [`GradMode`]).
#[derive(Clone, Debug)]
pub struct BackwardOutput {
    /// Gradient of the loss with respect to the layer input.
    ///
    /// **When is this `None`?** Exactly when the caller passed
    /// `need_input_grad = false` to [`Layer::backward_opt`] *and* the layer
    /// puts real work behind the flag (dense and convolution — for a first
    /// conv layer the input gradient is a whole `(B·P·Q, C_out, C_in·R·S)`
    /// GEMM plus a `col2im` of pure waste, since a first layer has no
    /// predecessor to feed). Cheap layers ignore the flag and return `Some`
    /// regardless; callers must treat `Some` under `need_input_grad =
    /// false` as equally valid and simply drop it, never rely on `None` as
    /// a signal. With `need_input_grad = true` (the [`Layer::backward`]
    /// default) this is always `Some`.
    pub grad_input: Option<Tensor>,
    /// The layer's weight gradients.
    pub grads: ParamGrads,
}

/// A neural-network layer.
///
/// The set of layers is closed (an enum rather than a trait object) so that
/// forward caches can be strongly typed and the whole network remains
/// `Clone`-able and inspectable — convenient for the double-backward pass of
/// DP-SGD(R).
#[derive(Clone, Debug)]
pub enum Layer {
    /// Fully-connected layer.
    Dense(Dense),
    /// 2-D convolution.
    Conv2d(Conv2dLayer),
    /// Rectified linear unit.
    Relu(Relu),
    /// Flattens `(B, ...)` to `(B, features)`.
    Flatten(Flatten),
    /// Average pooling with square window.
    AvgPool2d(AvgPool2d),
    /// Max pooling with square window.
    MaxPool2d(MaxPool2d),
    /// Single-layer LSTM over `(B, T, input)` sequences.
    Lstm(Lstm),
    /// Group normalization (the BN replacement used in DP training).
    GroupNorm(GroupNorm),
    /// Embedding lookup over `(B, T)` token ids.
    Embedding(Embedding),
    /// Logistic sigmoid.
    Sigmoid(Sigmoid),
    /// Hyperbolic tangent.
    Tanh(Tanh),
}

/// Forward-pass state cached for the backward pass, strongly typed per layer.
#[derive(Clone, Debug)]
pub enum LayerCache {
    /// Cache for [`Dense`].
    Dense(DenseCache),
    /// Cache for [`Conv2dLayer`].
    Conv2d(Conv2dCache),
    /// Cache for [`Relu`].
    Relu(ReluCache),
    /// Cache for [`Flatten`].
    Flatten(FlattenCache),
    /// Cache for pooling layers.
    Pool(PoolCache),
    /// Cache for [`Lstm`].
    Lstm(LstmCache),
    /// Cache for [`GroupNorm`].
    GroupNorm(GroupNormCache),
    /// Cache for [`Embedding`].
    Embedding(EmbeddingCache),
    /// Cache for [`Sigmoid`].
    Sigmoid(SigmoidCache),
    /// Cache for [`Tanh`].
    Tanh(TanhCache),
}

impl Layer {
    /// Convenience constructor for a dense layer with Kaiming-uniform init.
    pub fn dense(input: usize, output: usize, bias: bool, rng: &mut DivaRng) -> Self {
        Layer::Dense(Dense::new(input, output, bias, rng))
    }

    /// Convenience constructor for a convolution layer.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
        in_h: usize,
        in_w: usize,
        rng: &mut DivaRng,
    ) -> Self {
        Layer::Conv2d(Conv2dLayer::new(cin, cout, k, stride, pad, in_h, in_w, rng))
    }

    /// Convenience constructor for ReLU.
    pub fn relu() -> Self {
        Layer::Relu(Relu::new())
    }

    /// Convenience constructor for Flatten.
    pub fn flatten() -> Self {
        Layer::Flatten(Flatten::new())
    }

    /// Convenience constructor for average pooling.
    pub fn avg_pool2d(k: usize) -> Self {
        Layer::AvgPool2d(AvgPool2d::new(k))
    }

    /// Convenience constructor for max pooling.
    pub fn max_pool2d(k: usize) -> Self {
        Layer::MaxPool2d(MaxPool2d::new(k))
    }

    /// Convenience constructor for an LSTM layer.
    pub fn lstm(input: usize, hidden: usize, rng: &mut DivaRng) -> Self {
        Layer::Lstm(Lstm::new(input, hidden, rng))
    }

    /// Convenience constructor for group normalization.
    pub fn group_norm(channels: usize, groups: usize) -> Self {
        Layer::GroupNorm(GroupNorm::new(channels, groups))
    }

    /// Convenience constructor for an embedding table.
    pub fn embedding(vocab: usize, dim: usize, rng: &mut DivaRng) -> Self {
        Layer::Embedding(Embedding::new(vocab, dim, rng))
    }

    /// Convenience constructor for sigmoid.
    pub fn sigmoid() -> Self {
        Layer::Sigmoid(Sigmoid::new())
    }

    /// Convenience constructor for tanh.
    pub fn tanh() -> Self {
        Layer::Tanh(Tanh::new())
    }

    /// Runs the layer forward, returning the output and the cache needed for
    /// backpropagation.
    pub fn forward(&self, x: &Tensor) -> (Tensor, LayerCache) {
        match self {
            Layer::Dense(l) => {
                let (y, c) = l.forward(x);
                (y, LayerCache::Dense(c))
            }
            Layer::Conv2d(l) => {
                let (y, c) = l.forward(x);
                (y, LayerCache::Conv2d(c))
            }
            Layer::Relu(l) => {
                let (y, c) = l.forward(x);
                (y, LayerCache::Relu(c))
            }
            Layer::Flatten(l) => {
                let (y, c) = l.forward(x);
                (y, LayerCache::Flatten(c))
            }
            Layer::AvgPool2d(l) => {
                let (y, c) = l.forward(x);
                (y, LayerCache::Pool(c))
            }
            Layer::MaxPool2d(l) => {
                let (y, c) = l.forward(x);
                (y, LayerCache::Pool(c))
            }
            Layer::Lstm(l) => {
                let (y, c) = l.forward(x);
                (y, LayerCache::Lstm(c))
            }
            Layer::GroupNorm(l) => {
                let (y, c) = l.forward(x);
                (y, LayerCache::GroupNorm(c))
            }
            Layer::Embedding(l) => {
                let (y, c) = l.forward(x);
                (y, LayerCache::Embedding(c))
            }
            Layer::Sigmoid(l) => {
                let (y, c) = l.forward(x);
                (y, LayerCache::Sigmoid(c))
            }
            Layer::Tanh(l) => {
                let (y, c) = l.forward(x);
                (y, LayerCache::Tanh(c))
            }
        }
    }

    /// Runs the layer backward given the gradient of the loss with respect
    /// to the layer output. Always derives the input gradient; see
    /// [`Layer::backward_opt`] to skip it when it is dead.
    ///
    /// # Panics
    ///
    /// Panics if `cache` does not belong to this layer type.
    pub fn backward(
        &self,
        cache: &LayerCache,
        grad_out: &Tensor,
        mode: GradMode,
    ) -> BackwardOutput {
        self.backward_opt(cache, grad_out, mode, true)
    }

    /// Runs the layer backward, deriving the input gradient only when
    /// `need_input_grad` is set. [`crate::Network::backward`] clears it for
    /// the first layer, whose input gradient nobody consumes. Dense and
    /// convolution honor the flag (their input gradient is a whole GEMM);
    /// every other layer ignores it and returns `Some` regardless, which
    /// callers must treat as equally valid — see
    /// [`BackwardOutput::grad_input`] for the exact `None` contract.
    ///
    /// # Panics
    ///
    /// Panics if `cache` does not belong to this layer type.
    pub fn backward_opt(
        &self,
        cache: &LayerCache,
        grad_out: &Tensor,
        mode: GradMode,
        need_input_grad: bool,
    ) -> BackwardOutput {
        match (self, cache) {
            (Layer::Dense(l), LayerCache::Dense(c)) => {
                l.backward_opt(c, grad_out, mode, need_input_grad)
            }
            (Layer::Conv2d(l), LayerCache::Conv2d(c)) => {
                l.backward_opt(c, grad_out, mode, need_input_grad)
            }
            (Layer::Relu(l), LayerCache::Relu(c)) => l.backward(c, grad_out),
            (Layer::Flatten(l), LayerCache::Flatten(c)) => l.backward(c, grad_out),
            (Layer::AvgPool2d(l), LayerCache::Pool(c)) => l.backward(c, grad_out),
            (Layer::MaxPool2d(l), LayerCache::Pool(c)) => l.backward(c, grad_out),
            (Layer::Lstm(l), LayerCache::Lstm(c)) => l.backward(c, grad_out, mode),
            (Layer::GroupNorm(l), LayerCache::GroupNorm(c)) => l.backward(c, grad_out, mode),
            (Layer::Embedding(l), LayerCache::Embedding(c)) => l.backward(c, grad_out, mode),
            (Layer::Sigmoid(l), LayerCache::Sigmoid(c)) => l.backward(c, grad_out),
            (Layer::Tanh(l), LayerCache::Tanh(c)) => l.backward(c, grad_out),
            _ => panic!("layer/cache type mismatch in backward"),
        }
    }

    /// Immutable views of the layer's trainable parameters.
    pub fn params(&self) -> Vec<&Tensor> {
        match self {
            Layer::Dense(l) => l.params(),
            Layer::Conv2d(l) => l.params(),
            Layer::Lstm(l) => l.params(),
            Layer::GroupNorm(l) => l.params(),
            Layer::Embedding(l) => l.params(),
            _ => Vec::new(),
        }
    }

    /// Mutable views of the layer's trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            Layer::Dense(l) => l.params_mut(),
            Layer::Conv2d(l) => l.params_mut(),
            Layer::Lstm(l) => l.params_mut(),
            Layer::GroupNorm(l) => l.params_mut(),
            Layer::Embedding(l) => l.params_mut(),
            _ => Vec::new(),
        }
    }

    /// Total number of trainable scalars in the layer.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// A short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Layer::Dense(l) => format!("Dense({}->{})", l.input(), l.output()),
            Layer::Conv2d(l) => format!(
                "Conv2d({}x{}x{}, cout={})",
                l.geom().cin,
                l.geom().k,
                l.geom().k,
                l.geom().cout
            ),
            Layer::Relu(_) => "ReLU".to_string(),
            Layer::Flatten(_) => "Flatten".to_string(),
            Layer::AvgPool2d(l) => format!("AvgPool2d({})", l.k()),
            Layer::MaxPool2d(l) => format!("MaxPool2d({})", l.k()),
            Layer::Lstm(l) => format!("LSTM({}->{})", l.input(), l.hidden()),
            Layer::GroupNorm(l) => format!("GroupNorm({}, g={})", l.channels(), l.groups()),
            Layer::Embedding(l) => format!("Embedding({}x{})", l.vocab(), l.dim()),
            Layer::Sigmoid(_) => "Sigmoid".to_string(),
            Layer::Tanh(_) => "Tanh".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stateless_layers_report_no_params() {
        assert_eq!(Layer::relu().param_count(), 0);
        assert_eq!(Layer::flatten().param_count(), 0);
        assert_eq!(Layer::avg_pool2d(2).param_count(), 0);
    }

    #[test]
    fn dense_param_count() {
        let mut rng = DivaRng::seed_from_u64(0);
        let l = Layer::dense(10, 4, true, &mut rng);
        assert_eq!(l.param_count(), 10 * 4 + 4);
        let l = Layer::dense(10, 4, false, &mut rng);
        assert_eq!(l.param_count(), 40);
    }

    #[test]
    #[should_panic(expected = "layer/cache type mismatch")]
    fn mismatched_cache_panics() {
        let mut rng = DivaRng::seed_from_u64(0);
        let dense = Layer::dense(2, 2, false, &mut rng);
        let relu = Layer::relu();
        let x = Tensor::zeros(&[1, 2]);
        let (_, cache) = relu.forward(&x);
        let g = Tensor::zeros(&[1, 2]);
        let _ = dense.backward(&cache, &g, GradMode::PerBatch);
    }
}
