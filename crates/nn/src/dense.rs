//! Fully-connected (MLP) layer.
//!
//! The forward GEMM is `(M, K, N) = (B, I, O)`; the per-batch weight
//! gradient GEMM is `(I, B, O)`; the per-example weight gradient is the
//! degenerate `(I, 1, O)` GEMM — an outer product — exactly the paper's
//! Figure 6 "MLP layer" row. That K=1 shape is the pathological case for
//! weight-stationary systolic arrays that motivates DiVa.

use diva_tensor::{matmul, matmul_nt, matmul_tn, parallel, DivaRng, Tensor};

use crate::layer::{BackwardOutput, GradMode, ParamGrads};

/// A fully-connected layer computing `Y = X·W (+ b)`.
///
/// `W` has shape `(input, output)`; the optional bias has shape `(output,)`.
#[derive(Clone, Debug)]
pub struct Dense {
    weight: Tensor,
    bias: Option<Tensor>,
    input: usize,
    output: usize,
}

/// Forward cache for [`Dense`]: the layer input.
#[derive(Clone, Debug)]
pub struct DenseCache {
    x: Tensor,
}

impl Dense {
    /// Creates a dense layer with Kaiming-uniform initialized weights.
    pub fn new(input: usize, output: usize, bias: bool, rng: &mut DivaRng) -> Self {
        let bound = (6.0 / input as f32).sqrt();
        Self {
            weight: Tensor::uniform(&[input, output], -bound, bound, rng),
            bias: bias.then(|| Tensor::zeros(&[output])),
            input,
            output,
        }
    }

    /// Input feature count.
    pub fn input(&self) -> usize {
        self.input
    }

    /// Output feature count.
    pub fn output(&self) -> usize {
        self.output
    }

    /// Runs the layer forward on `(B, input)`, producing `(B, output)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `(B, input)`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, DenseCache) {
        let (_, features) = x.dims2();
        assert_eq!(
            features, self.input,
            "Dense expects {} input features, got {features}",
            self.input
        );
        let mut y = matmul(x, &self.weight);
        if let Some(b) = &self.bias {
            let (rows, cols) = y.dims2();
            let yv = y.data_mut();
            for r in 0..rows {
                for c in 0..cols {
                    yv[r * cols + c] += b.data()[c];
                }
            }
        }
        (y, DenseCache { x: x.clone() })
    }

    /// Backward pass with the input gradient always derived. See
    /// [`GradMode`] for the three gradient flavours.
    pub fn backward(
        &self,
        cache: &DenseCache,
        grad_out: &Tensor,
        mode: GradMode,
    ) -> BackwardOutput {
        self.backward_opt(cache, grad_out, mode, true)
    }

    /// Backward pass; skips the `(B, O, I)` activation-gradient GEMM when
    /// `need_input_grad` is `false` (dead work for a network's first layer).
    pub fn backward_opt(
        &self,
        cache: &DenseCache,
        grad_out: &Tensor,
        mode: GradMode,
        need_input_grad: bool,
    ) -> BackwardOutput {
        let (b, o) = grad_out.dims2();
        assert_eq!(o, self.output, "gradient feature mismatch");
        // G(X) = G(Y) × Wᵀ — the activation-gradient GEMM.
        let grad_input = need_input_grad.then(|| matmul_nt(grad_out, &self.weight));

        let grads = match mode {
            GradMode::PerBatch => {
                // G(W) = Xᵀ × G(Y): (I, B, O) GEMM; K = B reduces over the batch.
                let gw = matmul_tn(&cache.x, grad_out);
                let mut out = vec![gw];
                if self.bias.is_some() {
                    out.push(column_sums(grad_out));
                }
                ParamGrads::PerBatch(out)
            }
            GradMode::PerExample => ParamGrads::PerExample(parallel::par_map(b, |i| {
                self.example_grads(cache, grad_out, i)
            })),
            GradMode::NormOnly => {
                // Goodfellow's identity: the per-example dense weight
                // gradient is the rank-1 outer product `x_i ⊗ g_i`, so
                // `‖x_i ⊗ g_i‖² = ‖x_i‖²·‖g_i‖²` — no gradient needs to be
                // materialized at all, which is the whole point of the
                // DP-SGD(R) first pass (paper Algorithm 1 lines 28–42).
                let has_bias = self.bias.is_some();
                let norms = parallel::par_map(b, |i| {
                    let sx: f64 = cache
                        .x
                        .row(i)
                        .iter()
                        .map(|&v| f64::from(v) * f64::from(v))
                        .sum();
                    let sg: f64 = grad_out
                        .row(i)
                        .iter()
                        .map(|&v| f64::from(v) * f64::from(v))
                        .sum();
                    sx * sg + if has_bias { sg } else { 0.0 }
                });
                ParamGrads::SqNorms(norms)
            }
        };
        BackwardOutput { grad_input, grads }
    }

    /// The per-example gradient of example `i`: `x_i ⊗ g_i` (and `g_i` for
    /// the bias). This is the `(I, 1, O)` GEMM of the paper's Figure 6.
    fn example_grads(&self, cache: &DenseCache, grad_out: &Tensor, i: usize) -> Vec<Tensor> {
        let xi = Tensor::from_vec(cache.x.row(i).to_vec(), &[1, self.input]);
        let gi = Tensor::from_vec(grad_out.row(i).to_vec(), &[1, self.output]);
        let gw = matmul_tn(&xi, &gi);
        let mut out = vec![gw];
        if self.bias.is_some() {
            out.push(gi.reshape(&[self.output]));
        }
        out
    }

    /// Immutable parameter views (`[weight]` or `[weight, bias]`).
    pub fn params(&self) -> Vec<&Tensor> {
        let mut p = vec![&self.weight];
        if let Some(b) = &self.bias {
            p.push(b);
        }
        p
    }

    /// Mutable parameter views.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut p = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            p.push(b);
        }
        p
    }
}

/// Sums a `(B, O)` tensor over rows, producing `(O,)`.
fn column_sums(t: &Tensor) -> Tensor {
    let (b, o) = t.dims2();
    let mut out = Tensor::zeros(&[o]);
    for i in 0..b {
        for (acc, &v) in out.data_mut().iter_mut().zip(t.row(i)) {
            *acc += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(rng: &mut DivaRng) -> (Dense, Tensor, Tensor) {
        let layer = Dense::new(5, 3, true, rng);
        let x = Tensor::uniform(&[4, 5], -1.0, 1.0, rng);
        let g = Tensor::uniform(&[4, 3], -1.0, 1.0, rng);
        (layer, x, g)
    }

    #[test]
    fn per_example_grads_sum_to_per_batch() {
        let mut rng = DivaRng::seed_from_u64(1);
        let (layer, x, g) = make(&mut rng);
        let (_, cache) = layer.forward(&x);
        let batch = layer
            .backward(&cache, &g, GradMode::PerBatch)
            .grads
            .expect_per_batch();
        let per_ex = match layer.backward(&cache, &g, GradMode::PerExample).grads {
            ParamGrads::PerExample(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        for (pi, batch_grad) in batch.iter().enumerate() {
            let mut sum = Tensor::zeros(batch_grad.shape().dims());
            for ex in &per_ex {
                sum.add_assign(&ex[pi]);
            }
            assert!(
                sum.max_abs_diff(batch_grad) < 1e-4,
                "per-example grads do not reduce to per-batch for param {pi}"
            );
        }
    }

    #[test]
    fn norm_only_matches_per_example_norms() {
        let mut rng = DivaRng::seed_from_u64(2);
        let (layer, x, g) = make(&mut rng);
        let (_, cache) = layer.forward(&x);
        let norms = match layer.backward(&cache, &g, GradMode::NormOnly).grads {
            ParamGrads::SqNorms(n) => n,
            other => panic!("unexpected {other:?}"),
        };
        let per_ex = match layer.backward(&cache, &g, GradMode::PerExample).grads {
            ParamGrads::PerExample(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        for (i, ex) in per_ex.iter().enumerate() {
            let sq: f64 = ex.iter().map(Tensor::squared_norm).sum();
            assert!((sq - norms[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = DivaRng::seed_from_u64(3);
        let mut layer = Dense::new(4, 2, true, &mut rng);
        let x = Tensor::uniform(&[3, 4], -1.0, 1.0, &mut rng);
        // Loss = sum(Y).
        let (y0, cache) = layer.forward(&x);
        let g = Tensor::full(y0.shape().dims(), 1.0);
        let grads = layer
            .backward(&cache, &g, GradMode::PerBatch)
            .grads
            .expect_per_batch();
        let eps = 1e-3;
        for idx in [0usize, 3, 7] {
            let orig = layer.weight.data()[idx];
            layer.weight.data_mut()[idx] = orig + eps;
            let up = layer.forward(&x).0.sum();
            layer.weight.data_mut()[idx] = orig - eps;
            let dn = layer.forward(&x).0.sum();
            layer.weight.data_mut()[idx] = orig;
            let fd = (up - dn) / (2.0 * f64::from(eps));
            assert!((fd - f64::from(grads[0].data()[idx])).abs() < 1e-2);
        }
        // Bias gradient for loss=sum is the batch size per output unit.
        assert!(grads[1].data().iter().all(|&v| (v - 3.0).abs() < 1e-4));
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = DivaRng::seed_from_u64(4);
        let layer = Dense::new(4, 2, false, &mut rng);
        let mut x = Tensor::uniform(&[2, 4], -1.0, 1.0, &mut rng);
        let (y0, cache) = layer.forward(&x);
        let g = Tensor::full(y0.shape().dims(), 1.0);
        let gx = layer
            .backward(&cache, &g, GradMode::PerBatch)
            .grad_input
            .expect("input gradient requested");
        let eps = 1e-3;
        for idx in [0usize, 5] {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let up = layer.forward(&x).0.sum();
            x.data_mut()[idx] = orig - eps;
            let dn = layer.forward(&x).0.sum();
            x.data_mut()[idx] = orig;
            let fd = (up - dn) / (2.0 * f64::from(eps));
            assert!((fd - f64::from(gx.data()[idx])).abs() < 1e-2);
        }
    }
}
