//! Sequential networks and whole-network gradient plumbing.

use diva_tensor::{parallel, Tensor};

use crate::layer::{GradMode, Layer, LayerCache, ParamGrads};

/// A feed-forward stack of [`Layer`]s applied in order.
///
/// The network itself is immutable during forward/backward; all per-batch
/// state lives in the returned caches. This makes the two-pass reweighted
/// backpropagation of DP-SGD(R) trivial: run `backward` twice against the
/// same caches with different loss gradients.
#[derive(Clone, Debug)]
pub struct Network {
    layers: Vec<Layer>,
}

/// Whole-network gradients, one [`ParamGrads`] per layer (parameter-free
/// layers contribute [`ParamGrads::None`]).
#[derive(Clone, Debug)]
pub struct NetworkGrads {
    /// Per-layer gradients, in layer order.
    pub layers: Vec<ParamGrads>,
}

impl Network {
    /// Creates a network from a list of layers.
    pub fn new(layers: Vec<Layer>) -> Self {
        Self { layers }
    }

    /// The layers in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (for weight updates).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Runs the network forward, returning the output and per-layer caches.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Vec<LayerCache>) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for layer in &self.layers {
            let (y, cache) = layer.forward(&cur);
            caches.push(cache);
            cur = y;
        }
        (cur, caches)
    }

    /// Runs the network backward from the loss gradient at the output.
    ///
    /// `grad_loss` must have the shape of the network output, with one row
    /// per example and *no* batch averaging applied (DP-SGD needs raw
    /// per-example gradients; plain SGD can divide the result by `B`).
    ///
    /// The first layer's input gradient is never consumed by anyone, so it
    /// is not derived at all (`need_input_grad = false` — for a first conv
    /// layer this skips a whole `(B·P·Q, C_out, C_in·R·S)` GEMM plus a
    /// `col2im` per pass, which DP-SGD(R) would otherwise pay twice).
    ///
    /// # Panics
    ///
    /// Panics if `caches` was not produced by a matching `forward` call.
    pub fn backward(
        &self,
        caches: &[LayerCache],
        grad_loss: &Tensor,
        mode: GradMode,
    ) -> NetworkGrads {
        assert_eq!(
            caches.len(),
            self.layers.len(),
            "cache count {} does not match layer count {}",
            caches.len(),
            self.layers.len()
        );
        let mut grads = vec![ParamGrads::None; self.layers.len()];
        let mut grad = grad_loss.clone();
        for (idx, (layer, cache)) in self.layers.iter().zip(caches).enumerate().rev() {
            let out = layer.backward_opt(cache, &grad, mode, idx > 0);
            grads[idx] = out.grads;
            if idx > 0 {
                grad = out
                    .grad_input
                    .expect("non-first layers must derive an input gradient");
            }
        }
        NetworkGrads { layers: grads }
    }

    /// The fused clip-and-reduce backward of DP-SGD(R) (paper Algorithm 1
    /// lines 36–41): scales the loss gradient of example `i` by
    /// `factors[i]` in a single pass and immediately runs the *per-batch*
    /// backward, so clipping rides the K=B reduction inside each layer's
    /// weight-gradient GEMM. No per-example gradient (or scaled copy of the
    /// per-example loss gradients beyond one `(B, F)` buffer) is ever
    /// materialized — the memory saving that motivates DP-SGD(R).
    ///
    /// Because this pass runs against the *same* `caches` as the preceding
    /// `NormOnly` pass, every convolution layer reuses the patch buffer
    /// lowered in the forward and the GEMM operands packed during the first
    /// pass (see `diva_tensor::PatchBuffer` / `PackCache`): no `im2col` and
    /// no re-packing happens here.
    ///
    /// # Panics
    ///
    /// Panics if `grad_loss` is not `(B, F)` with `B == factors.len()`, or
    /// if `caches` does not match this network.
    pub fn backward_reweighted(
        &self,
        caches: &[LayerCache],
        grad_loss: &Tensor,
        factors: &[f64],
    ) -> NetworkGrads {
        let (b, f) = grad_loss.dims2();
        assert_eq!(b, factors.len(), "one clip factor per example required");
        let mut reweighted = grad_loss.clone();
        let rv = reweighted.data_mut();
        for (row, &w) in rv.chunks_mut(f).zip(factors) {
            let w = w as f32;
            for v in row {
                *v *= w;
            }
        }
        self.backward(caches, &reweighted, GradMode::PerBatch)
    }

    /// Applies `param -= lr * grad` for per-batch gradients.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not contain per-batch gradients matching this
    /// network's parameters.
    pub fn apply_update(&mut self, grads: &NetworkGrads, lr: f32) {
        assert_eq!(grads.layers.len(), self.layers.len());
        for (layer, g) in self.layers.iter_mut().zip(&grads.layers) {
            match g {
                ParamGrads::None => {}
                ParamGrads::PerBatch(tensors) => {
                    let mut params = layer.params_mut();
                    assert_eq!(params.len(), tensors.len(), "parameter count mismatch");
                    for (p, t) in params.iter_mut().zip(tensors) {
                        diva_tensor::add_scaled(p, t, -lr);
                    }
                }
                other => panic!("apply_update requires per-batch gradients, got {other:?}"),
            }
        }
    }
}

impl NetworkGrads {
    /// For per-example gradients: the squared L2 norm of each example's
    /// full (all-layer) gradient vector — Algorithm 1 line 22.
    ///
    /// Works for both `PerExample` (sums tensor norms) and `SqNorms`
    /// (sums the pre-computed per-layer squared norms, as DP-SGD(R)'s first
    /// pass does).
    ///
    /// # Panics
    ///
    /// Panics if the gradients are per-batch, or per-example counts differ
    /// across layers.
    pub fn per_example_sq_norms(&self) -> Vec<f64> {
        let mut norms: Option<Vec<f64>> = None;
        for g in &self.layers {
            let layer_norms: Option<Vec<f64>> = match g {
                ParamGrads::None => None,
                ParamGrads::PerExample(per_ex) => Some(parallel::par_map(per_ex.len(), |i| {
                    per_ex[i].iter().map(Tensor::squared_norm).sum()
                })),
                ParamGrads::SqNorms(n) => Some(n.clone()),
                ParamGrads::PerBatch(_) => {
                    panic!("per-example norms requested from per-batch gradients")
                }
            };
            if let Some(ln) = layer_norms {
                match &mut norms {
                    None => norms = Some(ln),
                    Some(acc) => {
                        assert_eq!(acc.len(), ln.len(), "batch size mismatch across layers");
                        for (a, b) in acc.iter_mut().zip(ln) {
                            *a += b;
                        }
                    }
                }
            }
        }
        norms.unwrap_or_default()
    }

    /// Per-layer, per-example squared gradient norms: `out[layer][example]`.
    /// Layers without parameters produce empty vectors. Used by per-layer
    /// clipping (an Opacus-style extension of Algorithm 1 where each layer
    /// gets its own bound `C_l` with `Σ C_l² = C²`).
    ///
    /// # Panics
    ///
    /// Panics if any layer gradient is per-batch.
    pub fn per_layer_sq_norms(&self) -> Vec<Vec<f64>> {
        self.layers
            .iter()
            .map(|g| match g {
                ParamGrads::None => Vec::new(),
                ParamGrads::PerExample(per_ex) => per_ex
                    .iter()
                    .map(|ex| ex.iter().map(Tensor::squared_norm).sum())
                    .collect(),
                ParamGrads::SqNorms(n) => n.clone(),
                ParamGrads::PerBatch(_) => {
                    panic!("per-layer norms requested from per-batch gradients")
                }
            })
            .collect()
    }

    /// Like [`Self::weighted_reduce`], but with independent weights per
    /// layer: `weights[layer][example]`. Entries for parameter-free layers
    /// are ignored (may be empty).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or non-per-example gradients.
    pub fn weighted_reduce_per_layer(&self, weights: &[Vec<f64>]) -> NetworkGrads {
        assert_eq!(
            weights.len(),
            self.layers.len(),
            "need one weight vector per layer"
        );
        let per_layer: Vec<&[f64]> = weights.iter().map(Vec::as_slice).collect();
        self.reduce_with(&per_layer)
    }

    /// Shared clip-reduce core: one job per parameter tensor, each a single
    /// deterministic pass over the batch (`acc += wᵢ · gᵢ` in example
    /// order), fanned out over the shared pool. Because every job keeps the
    /// serial accumulation order, the result is bit-identical whatever the
    /// thread count.
    fn reduce_with(&self, weights: &[&[f64]]) -> NetworkGrads {
        let jobs: Vec<(usize, usize)> = self
            .layers
            .iter()
            .enumerate()
            .flat_map(|(li, g)| {
                let n_params = match g {
                    ParamGrads::None => 0,
                    ParamGrads::PerExample(per_ex) => {
                        assert_eq!(
                            per_ex.len(),
                            weights[li].len(),
                            "weight count mismatch in layer {li}"
                        );
                        per_ex.first().map_or(0, Vec::len)
                    }
                    other => {
                        panic!("weighted reduce requires per-example gradients, got {other:?}")
                    }
                };
                (0..n_params).map(move |pi| (li, pi))
            })
            .collect();
        let mut reduced = parallel::par_map(jobs.len(), |j| {
            let (li, pi) = jobs[j];
            let ParamGrads::PerExample(per_ex) = &self.layers[li] else {
                unreachable!("job list only references per-example layers")
            };
            let mut acc = Tensor::zeros(per_ex[0][pi].shape().dims());
            for (ex, &w) in per_ex.iter().zip(weights[li]) {
                diva_tensor::add_scaled(&mut acc, &ex[pi], w as f32);
            }
            acc
        })
        .into_iter();
        let layers = self
            .layers
            .iter()
            .map(|g| match g {
                ParamGrads::None => ParamGrads::None,
                ParamGrads::PerExample(per_ex) => {
                    let n_params = per_ex.first().map_or(0, Vec::len);
                    ParamGrads::PerBatch(
                        (0..n_params)
                            .map(|_| reduced.next().expect("job list covers every param"))
                            .collect(),
                    )
                }
                _ => unreachable!("validated while building the job list"),
            })
            .collect();
        NetworkGrads { layers }
    }

    /// Elementwise sum of two gradient sets (used by microbatch
    /// accumulation). Both must be per-batch.
    ///
    /// # Panics
    ///
    /// Panics on structural mismatch.
    pub fn accumulate(&mut self, other: &NetworkGrads) {
        assert_eq!(self.layers.len(), other.layers.len());
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            match (a, b) {
                (ParamGrads::None, ParamGrads::None) => {}
                (ParamGrads::PerBatch(xs), ParamGrads::PerBatch(ys)) => {
                    assert_eq!(xs.len(), ys.len());
                    for (x, y) in xs.iter_mut().zip(ys) {
                        x.add_assign(y);
                    }
                }
                (a, b) => panic!("cannot accumulate {a:?} with {b:?}"),
            }
        }
    }

    /// Reduces per-example gradients into per-batch gradients, scaling each
    /// example `i` by `weights[i]` first (weights of all-ones gives the
    /// plain sum). This is Algorithm 1 lines 23–24 without the noise: a
    /// single fused pass per parameter — no clipped per-example copies are
    /// materialized — parallelized across parameter tensors.
    ///
    /// # Panics
    ///
    /// Panics if the gradients are not per-example or `weights` has the
    /// wrong length.
    pub fn weighted_reduce(&self, weights: &[f64]) -> NetworkGrads {
        let per_layer: Vec<&[f64]> = self.layers.iter().map(|_| weights).collect();
        self.reduce_with(&per_layer)
    }

    /// Flattens per-batch gradients into one contiguous vector (layer order,
    /// parameter order, row-major). Useful for noise addition and tests.
    ///
    /// # Panics
    ///
    /// Panics if any layer gradient is not per-batch (or `None`).
    pub fn flatten_per_batch(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for g in &self.layers {
            match g {
                ParamGrads::None => {}
                ParamGrads::PerBatch(tensors) => {
                    for t in tensors {
                        out.extend_from_slice(t.data());
                    }
                }
                other => panic!("flatten_per_batch on non-per-batch gradients: {other:?}"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_tensor::{softmax_cross_entropy, DivaRng};

    fn mlp(rng: &mut DivaRng) -> Network {
        Network::new(vec![
            Layer::dense(6, 8, true, rng),
            Layer::relu(),
            Layer::dense(8, 4, true, rng),
        ])
    }

    #[test]
    fn forward_backward_shapes() {
        let mut rng = DivaRng::seed_from_u64(12);
        let net = mlp(&mut rng);
        let x = Tensor::uniform(&[3, 6], -1.0, 1.0, &mut rng);
        let (y, caches) = net.forward(&x);
        assert_eq!(y.shape().dims(), &[3, 4]);
        let loss = softmax_cross_entropy(&y, &[0, 1, 2]);
        let grads = net.backward(&caches, &loss.grad_logits, GradMode::PerBatch);
        assert_eq!(grads.layers.len(), 3);
    }

    #[test]
    fn per_example_norms_match_explicit_computation() {
        let mut rng = DivaRng::seed_from_u64(13);
        let net = mlp(&mut rng);
        let x = Tensor::uniform(&[4, 6], -1.0, 1.0, &mut rng);
        let (y, caches) = net.forward(&x);
        let loss = softmax_cross_entropy(&y, &[0, 1, 2, 3]);
        let gex = net.backward(&caches, &loss.grad_logits, GradMode::PerExample);
        let gno = net.backward(&caches, &loss.grad_logits, GradMode::NormOnly);
        let a = gex.per_example_sq_norms();
        let b = gno.per_example_sq_norms();
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6 * x.max(1.0));
        }
    }

    #[test]
    fn weighted_reduce_with_ones_equals_per_batch() {
        let mut rng = DivaRng::seed_from_u64(14);
        let net = mlp(&mut rng);
        let x = Tensor::uniform(&[4, 6], -1.0, 1.0, &mut rng);
        let (y, caches) = net.forward(&x);
        let loss = softmax_cross_entropy(&y, &[0, 1, 2, 3]);
        let batch = net.backward(&caches, &loss.grad_logits, GradMode::PerBatch);
        let per_ex = net.backward(&caches, &loss.grad_logits, GradMode::PerExample);
        let reduced = per_ex.weighted_reduce(&[1.0; 4]);
        let a = batch.flatten_per_batch();
        let b = reduced.flatten_per_batch();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn sgd_update_decreases_loss() {
        let mut rng = DivaRng::seed_from_u64(15);
        let mut net = mlp(&mut rng);
        let x = Tensor::uniform(&[8, 6], -1.0, 1.0, &mut rng);
        let labels = vec![0usize, 1, 2, 3, 0, 1, 2, 3];
        let mut last = f64::INFINITY;
        for _ in 0..30 {
            let (y, caches) = net.forward(&x);
            let loss = softmax_cross_entropy(&y, &labels);
            let mut grad = loss.grad_logits.clone();
            grad.scale(1.0 / 8.0);
            let grads = net.backward(&caches, &grad, GradMode::PerBatch);
            net.apply_update(&grads, 0.5);
            last = loss.mean_loss;
        }
        assert!(last < 1.0, "loss failed to decrease: {last}");
    }

    #[test]
    fn cnn_pipeline_runs_end_to_end() {
        let mut rng = DivaRng::seed_from_u64(16);
        let net = Network::new(vec![
            Layer::conv2d(1, 4, 3, 1, 1, 8, 8, &mut rng),
            Layer::relu(),
            Layer::max_pool2d(2),
            Layer::flatten(),
            Layer::dense(4 * 4 * 4, 3, true, &mut rng),
        ]);
        let x = Tensor::uniform(&[2, 1, 8, 8], -1.0, 1.0, &mut rng);
        let (y, caches) = net.forward(&x);
        assert_eq!(y.shape().dims(), &[2, 3]);
        let loss = softmax_cross_entropy(&y, &[0, 1]);
        let grads = net.backward(&caches, &loss.grad_logits, GradMode::PerExample);
        assert_eq!(grads.per_example_sq_norms().len(), 2);
    }
}
