//! Group normalization — the normalizer used in DP training practice.
//!
//! Batch normalization mixes statistics *across* examples, which breaks
//! DP-SGD's per-example gradient structure (one example's gradient would
//! depend on the others). Real DP pipelines (including the CIFAR-10 DP-SGD
//! results the paper's Section V builds on) therefore replace BN with
//! GroupNorm, which normalizes within each example only. Supporting it here
//! keeps the functional stack faithful to how the paper's workloads are
//! actually trained.

// Indexed loops below mirror hardware/tensor coordinates; iterator
// rewrites would obscure the (row, column, timestep) structure.
#![allow(clippy::needless_range_loop)]

use diva_tensor::Tensor;

use crate::layer::{BackwardOutput, GradMode, ParamGrads};

/// Group normalization over NCHW tensors: channels are split into `groups`,
/// each normalized to zero mean / unit variance per example, then scaled by
/// a learned per-channel `gamma` and shifted by `beta`.
#[derive(Clone, Debug)]
pub struct GroupNorm {
    gamma: Tensor, // (C,)
    beta: Tensor,  // (C,)
    groups: usize,
    channels: usize,
    eps: f32,
}

/// Forward cache for [`GroupNorm`]: normalized activations and per-group
/// inverse standard deviations.
#[derive(Clone, Debug)]
pub struct GroupNormCache {
    x_hat: Tensor,
    /// `1/σ` per (example, group).
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl GroupNorm {
    /// Creates a group-norm layer (`gamma = 1`, `beta = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide `channels` or either is zero.
    pub fn new(channels: usize, groups: usize) -> Self {
        assert!(groups > 0 && channels > 0, "empty group norm");
        assert!(
            channels.is_multiple_of(groups),
            "groups {groups} must divide channels {channels}"
        );
        Self {
            gamma: Tensor::full(&[channels], 1.0),
            beta: Tensor::zeros(&[channels]),
            groups,
            channels,
            eps: 1e-5,
        }
    }

    /// Number of channel groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Normalizes `(B, C, H, W)` within each (example, group).
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 4 with `C == channels`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, GroupNormCache) {
        let dims = x.shape().dims().to_vec();
        assert_eq!(dims.len(), 4, "GroupNorm expects NCHW, got {}", x.shape());
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        assert_eq!(c, self.channels, "channel mismatch");
        let cg = c / self.groups; // channels per group
        let group_len = cg * h * w;

        let mut x_hat = Tensor::zeros(&dims);
        let mut out = Tensor::zeros(&dims);
        let mut inv_std = Vec::with_capacity(n * self.groups);
        let xv = x.data();
        for ni in 0..n {
            for g in 0..self.groups {
                let start = (ni * c + g * cg) * h * w;
                let slice = &xv[start..start + group_len];
                let mean = slice.iter().map(|&v| f64::from(v)).sum::<f64>() / group_len as f64;
                let var = slice
                    .iter()
                    .map(|&v| (f64::from(v) - mean).powi(2))
                    .sum::<f64>()
                    / group_len as f64;
                let istd = 1.0 / ((var as f32) + self.eps).sqrt();
                inv_std.push(istd);
                for idx in 0..group_len {
                    let ch = g * cg + idx / (h * w);
                    let xh = (slice[idx] - mean as f32) * istd;
                    x_hat.data_mut()[start + idx] = xh;
                    out.data_mut()[start + idx] = self.gamma.data()[ch] * xh + self.beta.data()[ch];
                }
            }
        }
        (
            out,
            GroupNormCache {
                x_hat,
                inv_std,
                dims,
            },
        )
    }

    /// Backward pass; see [`GradMode`].
    pub fn backward(
        &self,
        cache: &GroupNormCache,
        grad_out: &Tensor,
        mode: GradMode,
    ) -> BackwardOutput {
        let (n, c, h, w) = (cache.dims[0], cache.dims[1], cache.dims[2], cache.dims[3]);
        let cg = c / self.groups;
        let group_len = cg * h * w;
        let gv = grad_out.data();
        let xh = cache.x_hat.data();

        let mut grad_input = Tensor::zeros(&cache.dims);
        // Per-example (dgamma, dbeta) pairs, reduced later per mode.
        let mut dgammas = vec![Tensor::zeros(&[c]); n];
        let mut dbetas = vec![Tensor::zeros(&[c]); n];

        for ni in 0..n {
            for g in 0..self.groups {
                let start = (ni * c + g * cg) * h * w;
                let istd = cache.inv_std[ni * self.groups + g];
                // First pass: accumulate the two group means the dx formula
                // needs, plus the parameter gradients.
                let mut mean_dxhat = 0.0f64;
                let mut mean_dxhat_xhat = 0.0f64;
                for idx in 0..group_len {
                    let ch = g * cg + idx / (h * w);
                    let dy = gv[start + idx];
                    let xhi = xh[start + idx];
                    dbetas[ni].data_mut()[ch] += dy;
                    dgammas[ni].data_mut()[ch] += dy * xhi;
                    let dxhat = dy * self.gamma.data()[ch];
                    mean_dxhat += f64::from(dxhat);
                    mean_dxhat_xhat += f64::from(dxhat * xhi);
                }
                mean_dxhat /= group_len as f64;
                mean_dxhat_xhat /= group_len as f64;
                // Second pass: dx = istd * (dxhat - mean(dxhat) - xhat*mean(dxhat*xhat)).
                for idx in 0..group_len {
                    let ch = g * cg + idx / (h * w);
                    let dxhat = gv[start + idx] * self.gamma.data()[ch];
                    let xhi = xh[start + idx];
                    grad_input.data_mut()[start + idx] =
                        istd * (dxhat - mean_dxhat as f32 - xhi * mean_dxhat_xhat as f32);
                }
            }
        }

        let grads = match mode {
            GradMode::PerBatch => {
                let mut dgamma = Tensor::zeros(&[c]);
                let mut dbeta = Tensor::zeros(&[c]);
                for ni in 0..n {
                    dgamma.add_assign(&dgammas[ni]);
                    dbeta.add_assign(&dbetas[ni]);
                }
                ParamGrads::PerBatch(vec![dgamma, dbeta])
            }
            GradMode::PerExample => ParamGrads::PerExample(
                dgammas
                    .into_iter()
                    .zip(dbetas)
                    .map(|(g, b)| vec![g, b])
                    .collect(),
            ),
            GradMode::NormOnly => ParamGrads::SqNorms(
                dgammas
                    .iter()
                    .zip(&dbetas)
                    .map(|(g, b)| g.squared_norm() + b.squared_norm())
                    .collect(),
            ),
        };
        BackwardOutput {
            grad_input: Some(grad_input),
            grads,
        }
    }

    /// Immutable parameter views: `[gamma, beta]`.
    pub fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    /// Mutable parameter views.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_tensor::DivaRng;

    #[test]
    fn output_is_normalized_per_group() {
        let mut rng = DivaRng::seed_from_u64(20);
        let gn = GroupNorm::new(4, 2);
        let x = Tensor::uniform(&[2, 4, 3, 3], -5.0, 5.0, &mut rng);
        let (y, _) = gn.forward(&x);
        // Each (example, group) slab of y has ~zero mean and ~unit variance.
        let group_len = 2 * 9;
        for ni in 0..2 {
            for g in 0..2 {
                let start = (ni * 4 + g * 2) * 9;
                let slab = &y.data()[start..start + group_len];
                let mean: f64 = slab.iter().map(|&v| f64::from(v)).sum::<f64>() / group_len as f64;
                let var: f64 = slab
                    .iter()
                    .map(|&v| (f64::from(v) - mean).powi(2))
                    .sum::<f64>()
                    / group_len as f64;
                assert!(mean.abs() < 1e-5, "mean {mean}");
                assert!((var - 1.0).abs() < 1e-3, "var {var}");
            }
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = DivaRng::seed_from_u64(21);
        let mut gn = GroupNorm::new(2, 1);
        // Non-trivial gamma to exercise the scale path.
        gn.gamma.data_mut()[0] = 1.5;
        gn.gamma.data_mut()[1] = 0.7;
        let mut x = Tensor::uniform(&[1, 2, 2, 2], -1.0, 1.0, &mut rng);
        // Loss = Σ y·w with fixed random weights (sum alone has zero grad
        // through a normalizer).
        let wts = Tensor::uniform(&[1, 2, 2, 2], -1.0, 1.0, &mut rng);
        let loss = |gn: &GroupNorm, x: &Tensor| -> f64 {
            let (y, _) = gn.forward(x);
            y.data()
                .iter()
                .zip(wts.data())
                .map(|(&a, &b)| f64::from(a) * f64::from(b))
                .sum()
        };
        let (_, cache) = gn.forward(&x);
        let gx = gn
            .backward(&cache, &wts, GradMode::PerBatch)
            .grad_input
            .unwrap();
        let eps = 1e-3;
        for idx in 0..8 {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let up = loss(&gn, &x);
            x.data_mut()[idx] = orig - eps;
            let dn = loss(&gn, &x);
            x.data_mut()[idx] = orig;
            let fd = (up - dn) / (2.0 * f64::from(eps));
            let an = f64::from(gx.data()[idx]);
            assert!(
                (fd - an).abs() < 1e-2,
                "dx mismatch at {idx}: fd={fd} analytic={an}"
            );
        }
    }

    #[test]
    fn parameter_gradients_match_finite_difference() {
        let mut rng = DivaRng::seed_from_u64(22);
        let mut gn = GroupNorm::new(2, 2);
        let x = Tensor::uniform(&[2, 2, 2, 2], -1.0, 1.0, &mut rng);
        let wts = Tensor::uniform(&[2, 2, 2, 2], -1.0, 1.0, &mut rng);
        let loss = |gn: &GroupNorm, x: &Tensor| -> f64 {
            let (y, _) = gn.forward(x);
            y.data()
                .iter()
                .zip(wts.data())
                .map(|(&a, &b)| f64::from(a) * f64::from(b))
                .sum()
        };
        let (_, cache) = gn.forward(&x);
        let grads = gn
            .backward(&cache, &wts, GradMode::PerBatch)
            .grads
            .expect_per_batch();
        let eps = 1e-3;
        for ch in 0..2 {
            // gamma
            let orig = gn.gamma.data()[ch];
            gn.gamma.data_mut()[ch] = orig + eps;
            let up = loss(&gn, &x);
            gn.gamma.data_mut()[ch] = orig - eps;
            let dn = loss(&gn, &x);
            gn.gamma.data_mut()[ch] = orig;
            let fd = (up - dn) / (2.0 * f64::from(eps));
            assert!((fd - f64::from(grads[0].data()[ch])).abs() < 1e-2);
            // beta
            let orig = gn.beta.data()[ch];
            gn.beta.data_mut()[ch] = orig + eps;
            let up = loss(&gn, &x);
            gn.beta.data_mut()[ch] = orig - eps;
            let dn = loss(&gn, &x);
            gn.beta.data_mut()[ch] = orig;
            let fd = (up - dn) / (2.0 * f64::from(eps));
            assert!((fd - f64::from(grads[1].data()[ch])).abs() < 1e-2);
        }
    }

    #[test]
    fn per_example_grads_sum_to_per_batch() {
        let mut rng = DivaRng::seed_from_u64(23);
        let gn = GroupNorm::new(4, 2);
        let x = Tensor::uniform(&[3, 4, 2, 2], -1.0, 1.0, &mut rng);
        let (y, cache) = gn.forward(&x);
        let g = Tensor::uniform(y.shape().dims(), -1.0, 1.0, &mut rng);
        let batch = gn
            .backward(&cache, &g, GradMode::PerBatch)
            .grads
            .expect_per_batch();
        let per_ex = match gn.backward(&cache, &g, GradMode::PerExample).grads {
            ParamGrads::PerExample(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        for pi in 0..2 {
            let mut sum = Tensor::zeros(batch[pi].shape().dims());
            for ex in &per_ex {
                sum.add_assign(&ex[pi]);
            }
            assert!(sum.max_abs_diff(&batch[pi]) < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_group_count_panics() {
        let _ = GroupNorm::new(6, 4);
    }
}
