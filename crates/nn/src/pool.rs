//! Average and max pooling over square, non-overlapping windows.

use diva_tensor::Tensor;

use crate::layer::{BackwardOutput, ParamGrads};

/// Average pooling with a `k × k` window and stride `k`.
#[derive(Clone, Copy, Debug)]
pub struct AvgPool2d {
    k: usize,
}

/// Max pooling with a `k × k` window and stride `k`.
#[derive(Clone, Copy, Debug)]
pub struct MaxPool2d {
    k: usize,
}

/// Forward cache for pooling layers: input shape plus, for max pooling, the
/// flat index of the winning element per output position.
#[derive(Clone, Debug)]
pub struct PoolCache {
    in_dims: Vec<usize>,
    /// `Some` for max pooling: argmax input index for every output element.
    argmax: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pooling window must be positive");
        Self { k }
    }

    /// The pooling window side.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pools `(B, C, H, W)` down to `(B, C, H/k, W/k)`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 4 or not divisible by `k`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, PoolCache) {
        let (n, c, h, w, p, q) = pool_dims(x, self.k);
        let mut y = Tensor::zeros(&[n, c, p, q]);
        let xv = x.data();
        let yv = y.data_mut();
        let inv = 1.0 / (self.k * self.k) as f32;
        for ni in 0..n {
            for ci in 0..c {
                for pi in 0..p {
                    for qi in 0..q {
                        let mut acc = 0.0;
                        for di in 0..self.k {
                            for dj in 0..self.k {
                                let ih = pi * self.k + di;
                                let iw = qi * self.k + dj;
                                acc += xv[((ni * c + ci) * h + ih) * w + iw];
                            }
                        }
                        yv[((ni * c + ci) * p + pi) * q + qi] = acc * inv;
                    }
                }
            }
        }
        (
            y,
            PoolCache {
                in_dims: x.shape().dims().to_vec(),
                argmax: None,
            },
        )
    }

    /// Distributes each output gradient uniformly over its window.
    pub fn backward(&self, cache: &PoolCache, grad_out: &Tensor) -> BackwardOutput {
        let (n, c, h, w) = (
            cache.in_dims[0],
            cache.in_dims[1],
            cache.in_dims[2],
            cache.in_dims[3],
        );
        let (p, q) = (h / self.k, w / self.k);
        let mut gx = Tensor::zeros(&cache.in_dims);
        let gv = grad_out.data();
        let xv = gx.data_mut();
        let inv = 1.0 / (self.k * self.k) as f32;
        for ni in 0..n {
            for ci in 0..c {
                for pi in 0..p {
                    for qi in 0..q {
                        let g = gv[((ni * c + ci) * p + pi) * q + qi] * inv;
                        for di in 0..self.k {
                            for dj in 0..self.k {
                                let ih = pi * self.k + di;
                                let iw = qi * self.k + dj;
                                xv[((ni * c + ci) * h + ih) * w + iw] += g;
                            }
                        }
                    }
                }
            }
        }
        BackwardOutput {
            grad_input: Some(gx),
            grads: ParamGrads::None,
        }
    }
}

impl MaxPool2d {
    /// Creates a max pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pooling window must be positive");
        Self { k }
    }

    /// The pooling window side.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pools `(B, C, H, W)` down to `(B, C, H/k, W/k)` taking window maxima.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 4 or not divisible by `k`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, PoolCache) {
        let (n, c, h, w, p, q) = pool_dims(x, self.k);
        let mut y = Tensor::zeros(&[n, c, p, q]);
        let mut argmax = vec![0usize; n * c * p * q];
        let xv = x.data();
        let yv = y.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                for pi in 0..p {
                    for qi in 0..q {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for di in 0..self.k {
                            for dj in 0..self.k {
                                let ih = pi * self.k + di;
                                let iw = qi * self.k + dj;
                                let idx = ((ni * c + ci) * h + ih) * w + iw;
                                if xv[idx] > best {
                                    best = xv[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let out_idx = ((ni * c + ci) * p + pi) * q + qi;
                        yv[out_idx] = best;
                        argmax[out_idx] = best_idx;
                    }
                }
            }
        }
        (
            y,
            PoolCache {
                in_dims: x.shape().dims().to_vec(),
                argmax: Some(argmax),
            },
        )
    }

    /// Routes each output gradient to the argmax input position.
    ///
    /// # Panics
    ///
    /// Panics if the cache was produced by average pooling.
    pub fn backward(&self, cache: &PoolCache, grad_out: &Tensor) -> BackwardOutput {
        let argmax = cache
            .argmax
            .as_ref()
            .expect("max-pool backward requires a max-pool cache");
        let mut gx = Tensor::zeros(&cache.in_dims);
        let xv = gx.data_mut();
        for (out_idx, &in_idx) in argmax.iter().enumerate() {
            xv[in_idx] += grad_out.data()[out_idx];
        }
        BackwardOutput {
            grad_input: Some(gx),
            grads: ParamGrads::None,
        }
    }
}

fn pool_dims(x: &Tensor, k: usize) -> (usize, usize, usize, usize, usize, usize) {
    let dims = x.shape().dims();
    assert_eq!(dims.len(), 4, "pooling expects NCHW, got {}", x.shape());
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert!(
        h.is_multiple_of(k) && w.is_multiple_of(k),
        "pooling window {k} does not divide input {h}x{w}"
    );
    (n, c, h, w, h / k, w / k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_computes_window_means() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let (y, _) = AvgPool2d::new(2).forward(&x);
        assert_eq!(y.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn max_pool_computes_window_maxima() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let (y, _) = MaxPool2d::new(2).forward(&x);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn avg_pool_backward_conserves_gradient_mass() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let pool = AvgPool2d::new(2);
        let (y, cache) = pool.forward(&x);
        let g = Tensor::full(y.shape().dims(), 1.0);
        let gx = pool.backward(&cache, &g).grad_input.unwrap();
        assert!((gx.sum() - g.sum()).abs() < 1e-6);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 2.0, 3.0], &[1, 1, 2, 2]);
        let pool = MaxPool2d::new(2);
        let (_, cache) = pool.forward(&x);
        let g = Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]);
        let gx = pool.backward(&cache, &g).grad_input.unwrap();
        assert_eq!(gx.data(), &[0.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn indivisible_input_panics() {
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let _ = AvgPool2d::new(2).forward(&x);
    }
}
