//! Parameter-free layers: ReLU and Flatten.

use diva_tensor::{relu, relu_backward, Tensor};

use crate::layer::{BackwardOutput, ParamGrads};

/// Rectified linear unit, applied elementwise.
#[derive(Clone, Copy, Debug, Default)]
pub struct Relu;

/// Forward cache for [`Relu`]: the pre-activation input.
#[derive(Clone, Debug)]
pub struct ReluCache {
    x: Tensor,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu
    }

    /// Applies ReLU elementwise.
    pub fn forward(&self, x: &Tensor) -> (Tensor, ReluCache) {
        (relu(x), ReluCache { x: x.clone() })
    }

    /// Masks the upstream gradient where the input was non-positive.
    pub fn backward(&self, cache: &ReluCache, grad_out: &Tensor) -> BackwardOutput {
        BackwardOutput {
            grad_input: Some(relu_backward(grad_out, &cache.x)),
            grads: ParamGrads::None,
        }
    }
}

/// Flattens a batched tensor `(B, d1, d2, ...)` into `(B, d1·d2·...)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Flatten;

/// Forward cache for [`Flatten`]: the original input shape.
#[derive(Clone, Debug)]
pub struct FlattenCache {
    dims: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten
    }

    /// Flattens all but the batch dimension.
    ///
    /// # Panics
    ///
    /// Panics if the input is rank 0.
    pub fn forward(&self, x: &Tensor) -> (Tensor, FlattenCache) {
        let dims = x.shape().dims().to_vec();
        assert!(!dims.is_empty(), "cannot flatten a scalar");
        let b = dims[0];
        let rest: usize = dims[1..].iter().product();
        let y = x.clone().reshape(&[b, rest]);
        (y, FlattenCache { dims })
    }

    /// Restores the original shape on the gradient.
    pub fn backward(&self, cache: &FlattenCache, grad_out: &Tensor) -> BackwardOutput {
        BackwardOutput {
            grad_input: Some(grad_out.clone().reshape(&cache.dims)),
            grads: ParamGrads::None,
        }
    }
}

/// Logistic sigmoid, applied elementwise.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sigmoid;

/// Forward cache for [`Sigmoid`]: the activation output (its derivative is
/// `y·(1−y)`).
#[derive(Clone, Debug)]
pub struct SigmoidCache {
    y: Tensor,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid
    }

    /// Applies `1/(1+e^{−x})` elementwise.
    pub fn forward(&self, x: &Tensor) -> (Tensor, SigmoidCache) {
        let mut y = x.clone();
        for v in y.data_mut() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        (y.clone(), SigmoidCache { y })
    }

    /// Backward: `dx = dy · y · (1 − y)`.
    pub fn backward(&self, cache: &SigmoidCache, grad_out: &Tensor) -> BackwardOutput {
        let mut gx = grad_out.clone();
        for (g, &y) in gx.data_mut().iter_mut().zip(cache.y.data()) {
            *g *= y * (1.0 - y);
        }
        BackwardOutput {
            grad_input: Some(gx),
            grads: ParamGrads::None,
        }
    }
}

/// Hyperbolic tangent, applied elementwise.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tanh;

/// Forward cache for [`Tanh`]: the activation output (derivative `1 − y²`).
#[derive(Clone, Debug)]
pub struct TanhCache {
    y: Tensor,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh
    }

    /// Applies `tanh` elementwise.
    pub fn forward(&self, x: &Tensor) -> (Tensor, TanhCache) {
        let mut y = x.clone();
        for v in y.data_mut() {
            *v = v.tanh();
        }
        (y.clone(), TanhCache { y })
    }

    /// Backward: `dx = dy · (1 − y²)`.
    pub fn backward(&self, cache: &TanhCache, grad_out: &Tensor) -> BackwardOutput {
        let mut gx = grad_out.clone();
        for (g, &y) in gx.data_mut().iter_mut().zip(cache.y.data()) {
            *g *= 1.0 - y * y;
        }
        BackwardOutput {
            grad_input: Some(gx),
            grads: ParamGrads::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_round_trips() {
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let f = Flatten::new();
        let (y, cache) = f.forward(&x);
        assert_eq!(y.shape().dims(), &[2, 12]);
        let back = f.backward(&cache, &y).grad_input.unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn relu_backward_uses_forward_input() {
        let r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]);
        let (_, cache) = r.forward(&x);
        let g = Tensor::from_vec(vec![5.0, 5.0], &[1, 2]);
        assert_eq!(
            r.backward(&cache, &g).grad_input.unwrap().data(),
            &[0.0, 5.0]
        );
    }

    #[test]
    fn sigmoid_saturates_and_centers() {
        let s = Sigmoid::new();
        let x = Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]);
        let (y, _) = s.forward(&x);
        assert!(y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_difference() {
        let s = Sigmoid::new();
        let mut x = Tensor::from_vec(vec![0.3, -1.2], &[2]);
        let (_, cache) = s.forward(&x);
        let g = Tensor::full(&[2], 1.0);
        let gx = s.backward(&cache, &g).grad_input.unwrap();
        let eps = 1e-3;
        for idx in 0..2 {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let up = s.forward(&x).0.sum();
            x.data_mut()[idx] = orig - eps;
            let dn = s.forward(&x).0.sum();
            x.data_mut()[idx] = orig;
            let fd = (up - dn) / (2.0 * f64::from(eps));
            assert!((fd - f64::from(gx.data()[idx])).abs() < 1e-4);
        }
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let t = Tanh::new();
        let mut x = Tensor::from_vec(vec![0.5, -0.7, 2.0], &[3]);
        let (_, cache) = t.forward(&x);
        let g = Tensor::full(&[3], 1.0);
        let gx = t.backward(&cache, &g).grad_input.unwrap();
        let eps = 1e-3;
        for idx in 0..3 {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let up = t.forward(&x).0.sum();
            x.data_mut()[idx] = orig - eps;
            let dn = t.forward(&x).0.sum();
            x.data_mut()[idx] = orig;
            let fd = (up - dn) / (2.0 * f64::from(eps));
            assert!((fd - f64::from(gx.data()[idx])).abs() < 1e-4);
        }
    }
}
