//! 2-D convolution layer (lowered to GEMM via `im2col`).
//!
//! Per the paper's Figure 6, the forward GEMM is
//! `(M, K, N) = (B·P·Q, C_in·R·S, C_out)`, the per-batch weight-gradient
//! GEMM is `(C_in·R·S, B·P·Q, C_out)`, and the per-example weight gradient
//! is a `(C_in·R·S, P·Q, C_out)` GEMM per example — the small-K shape that
//! underutilizes systolic arrays.
//!
//! This layer runs the **fused patch-reuse** backward: the forward pass
//! lowers the batch with `im2col` exactly once into a shared
//! [`PatchBuffer`], and every weight-gradient GEMM — per-batch,
//! per-example, and norm-only — executes as a strided row-window over that
//! buffer. DP-SGD(R)'s two backward passes share the same forward cache,
//! so the patch buffer (and its packed GEMM panels, plus the packed filter
//! matrix of the data-gradient GEMM) is lowered/packed once and reused by
//! both passes. The per-example results are bit-identical to the naive
//! per-example `im2col` path (`tests/conv_fused_parity.rs`).

use diva_tensor::{
    conv2d_backward_data_from_rows, nchw_to_rows, parallel, Conv2dGeom, DivaRng, PackCache,
    PatchBuffer, Tensor,
};

use crate::layer::{BackwardOutput, GradMode, ParamGrads};

/// A 2-D convolution layer with square filters and optional bias.
#[derive(Clone, Debug)]
pub struct Conv2dLayer {
    weight: Tensor,
    bias: Option<Tensor>,
    geom: Conv2dGeom,
}

/// Forward cache for [`Conv2dLayer`]: the batch lowered to the shared patch
/// buffer (computed once in the forward, reused by every backward pass that
/// shares this cache), plus the pack-cache handle for the data-gradient
/// GEMM's filter operand.
#[derive(Clone, Debug)]
pub struct Conv2dCache {
    patches: PatchBuffer,
    dgrad_pack: PackCache,
}

impl Conv2dLayer {
    /// Creates a convolution layer with Kaiming-uniform initialization and
    /// a bias vector.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
        in_h: usize,
        in_w: usize,
        rng: &mut DivaRng,
    ) -> Self {
        let geom = Conv2dGeom::new(cin, cout, k, stride, pad, in_h, in_w);
        let fan_in = (cin * k * k) as f32;
        let bound = (6.0 / fan_in).sqrt();
        Self {
            weight: Tensor::uniform(&[cout, cin, k, k], -bound, bound, rng),
            bias: Some(Tensor::zeros(&[cout])),
            geom,
        }
    }

    /// The convolution geometry.
    pub fn geom(&self) -> &Conv2dGeom {
        &self.geom
    }

    /// Runs the layer forward on `(B, C_in, H, W)`.
    ///
    /// # Panics
    ///
    /// Panics if the input does not match the layer geometry.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Conv2dCache) {
        let patches = PatchBuffer::lower(x, &self.geom);
        let mut y = patches.forward(&self.weight);
        if let Some(b) = &self.bias {
            let dims = y.shape().dims().to_vec();
            let (n, c, p, q) = (dims[0], dims[1], dims[2], dims[3]);
            let yv = y.data_mut();
            for ni in 0..n {
                for ci in 0..c {
                    let bc = b.data()[ci];
                    let base = (ni * c + ci) * p * q;
                    for v in &mut yv[base..base + p * q] {
                        *v += bc;
                    }
                }
            }
        }
        (
            y,
            Conv2dCache {
                patches,
                dgrad_pack: PackCache::new(),
            },
        )
    }

    /// Backward pass with the input gradient always derived; see
    /// [`GradMode`] and [`Conv2dLayer::backward_opt`].
    pub fn backward(
        &self,
        cache: &Conv2dCache,
        grad_out: &Tensor,
        mode: GradMode,
    ) -> BackwardOutput {
        self.backward_opt(cache, grad_out, mode, true)
    }

    /// Backward pass; derives the input gradient only when
    /// `need_input_grad` is set (a first-layer convolution's input gradient
    /// is dead work — a full `(B·P·Q, C_out, C_in·R·S)` GEMM plus `col2im`).
    ///
    /// The output gradient is flattened to GEMM rows once per call and
    /// sliced per example; the weight-gradient GEMMs read the shared patch
    /// buffer lowered in the forward.
    pub fn backward_opt(
        &self,
        cache: &Conv2dCache,
        grad_out: &Tensor,
        mode: GradMode,
        need_input_grad: bool,
    ) -> BackwardOutput {
        let b = grad_out.shape().dim(0);
        assert_eq!(
            b,
            cache.patches.batch(),
            "gradient batch does not match the cached forward batch"
        );
        let gy_rows = nchw_to_rows(grad_out, &self.geom);

        let grads = match mode {
            GradMode::PerBatch => {
                let gw = cache.patches.backward_weight_batch(&gy_rows);
                let mut out = vec![gw];
                if self.bias.is_some() {
                    out.push(bias_grad(grad_out));
                }
                ParamGrads::PerBatch(out)
            }
            // Per-example derivation is independent across the batch
            // (Algorithm 1 lines 16–25): fan the `(C_in·R·S, P·Q, C_out)`
            // per-example GEMMs out over the shared pool, each a strided
            // row-window of the shared patch buffer.
            GradMode::PerExample => ParamGrads::PerExample(parallel::par_map(b, |i| {
                self.example_grads(cache, &gy_rows, i)
            })),
            GradMode::NormOnly => ParamGrads::SqNorms(parallel::par_map(b, |i| {
                self.example_grads(cache, &gy_rows, i)
                    .iter()
                    .map(Tensor::squared_norm)
                    .sum()
            })),
        };
        let grad_input = need_input_grad.then(|| {
            conv2d_backward_data_from_rows(&gy_rows, &self.weight, &self.geom, b, &cache.dgrad_pack)
        });
        BackwardOutput { grad_input, grads }
    }

    fn example_grads(&self, cache: &Conv2dCache, gy_rows: &Tensor, i: usize) -> Vec<Tensor> {
        let gw = cache.patches.backward_weight_example(gy_rows, i);
        let mut out = vec![gw];
        if self.bias.is_some() {
            let (p, q) = self.geom.out_hw();
            out.push(bias_grad_example(gy_rows, i, p * q));
        }
        out
    }

    /// Immutable parameter views.
    pub fn params(&self) -> Vec<&Tensor> {
        let mut p = vec![&self.weight];
        if let Some(b) = &self.bias {
            p.push(b);
        }
        p
    }

    /// Mutable parameter views.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut p = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            p.push(b);
        }
        p
    }
}

/// Bias gradient: sums `(N, C, P, Q)` over batch and spatial dims to `(C,)`.
fn bias_grad(grad_out: &Tensor) -> Tensor {
    let dims = grad_out.shape().dims();
    let (n, c, p, q) = (dims[0], dims[1], dims[2], dims[3]);
    let mut out = Tensor::zeros(&[c]);
    let gv = grad_out.data();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * p * q;
            let s: f32 = gv[base..base + p * q].iter().sum();
            out.data_mut()[ci] += s;
        }
    }
    out
}

/// Per-example bias gradient from the `(N·P·Q, C_out)` row layout: sums
/// example `i`'s rows per channel. Each channel accumulates in ascending
/// spatial order, the same order as [`bias_grad`] on the sliced example, so
/// the result is bit-identical to the naive path.
fn bias_grad_example(gy_rows: &Tensor, i: usize, pq: usize) -> Tensor {
    let (_, c) = gy_rows.dims2();
    let mut out = Tensor::zeros(&[c]);
    let ov = out.data_mut();
    for r in i * pq..(i + 1) * pq {
        for (acc, &v) in ov.iter_mut().zip(gy_rows.row(r)) {
            *acc += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_example_grads_sum_to_per_batch() {
        let mut rng = DivaRng::seed_from_u64(5);
        let layer = Conv2dLayer::new(2, 3, 3, 1, 1, 6, 6, &mut rng);
        let x = Tensor::uniform(&[3, 2, 6, 6], -1.0, 1.0, &mut rng);
        let (y, cache) = layer.forward(&x);
        let g = Tensor::uniform(y.shape().dims(), -1.0, 1.0, &mut rng);
        let batch = layer
            .backward(&cache, &g, GradMode::PerBatch)
            .grads
            .expect_per_batch();
        let per_ex = match layer.backward(&cache, &g, GradMode::PerExample).grads {
            ParamGrads::PerExample(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        for (pi, batch_grad) in batch.iter().enumerate() {
            let mut sum = Tensor::zeros(batch_grad.shape().dims());
            for ex in &per_ex {
                sum.add_assign(&ex[pi]);
            }
            assert!(sum.max_abs_diff(batch_grad) < 1e-3);
        }
    }

    #[test]
    fn bias_changes_output_by_constant() {
        let mut rng = DivaRng::seed_from_u64(6);
        let mut layer = Conv2dLayer::new(1, 1, 3, 1, 1, 4, 4, &mut rng);
        let x = Tensor::uniform(&[1, 1, 4, 4], -1.0, 1.0, &mut rng);
        let (y0, _) = layer.forward(&x);
        if let Some(b) = &mut layer.bias {
            b.data_mut()[0] = 2.5;
        }
        let (y1, _) = layer.forward(&x);
        let mut diff = y1;
        diff.sub_assign(&y0);
        assert!(diff.data().iter().all(|&v| (v - 2.5).abs() < 1e-6));
    }

    #[test]
    fn norm_only_is_consistent() {
        let mut rng = DivaRng::seed_from_u64(7);
        let layer = Conv2dLayer::new(2, 2, 3, 2, 1, 6, 6, &mut rng);
        let x = Tensor::uniform(&[2, 2, 6, 6], -1.0, 1.0, &mut rng);
        let (y, cache) = layer.forward(&x);
        let g = Tensor::uniform(y.shape().dims(), -1.0, 1.0, &mut rng);
        let norms = match layer.backward(&cache, &g, GradMode::NormOnly).grads {
            ParamGrads::SqNorms(n) => n,
            other => panic!("unexpected {other:?}"),
        };
        let per_ex = match layer.backward(&cache, &g, GradMode::PerExample).grads {
            ParamGrads::PerExample(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        for (i, ex) in per_ex.iter().enumerate() {
            let sq: f64 = ex.iter().map(Tensor::squared_norm).sum();
            assert!((sq - norms[i]).abs() / sq.max(1.0) < 1e-5);
        }
    }

    #[test]
    fn skipped_input_grad_is_none_and_grads_match() {
        let mut rng = DivaRng::seed_from_u64(8);
        let layer = Conv2dLayer::new(2, 3, 3, 1, 1, 5, 5, &mut rng);
        let x = Tensor::uniform(&[2, 2, 5, 5], -1.0, 1.0, &mut rng);
        let (y, cache) = layer.forward(&x);
        let g = Tensor::uniform(y.shape().dims(), -1.0, 1.0, &mut rng);
        let full = layer.backward_opt(&cache, &g, GradMode::NormOnly, true);
        let skipped = layer.backward_opt(&cache, &g, GradMode::NormOnly, false);
        assert!(full.grad_input.is_some());
        assert!(skipped.grad_input.is_none());
        let (ParamGrads::SqNorms(a), ParamGrads::SqNorms(b)) = (&full.grads, &skipped.grads) else {
            panic!("expected norms");
        };
        assert_eq!(a, b, "skipping the input gradient changed the norms");
    }
}
