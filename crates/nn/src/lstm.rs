//! Single-layer LSTM with full backpropagation-through-time and
//! per-example gradient support.
//!
//! The paper's Figure 6 classifies LSTM weight GEMMs as "MLP layer with
//! time-series input": the per-example weight gradient of example `i` is
//! `Σ_t x_t[i] ⊗ dz_t[i]`, a `(M, K, N) = (I, L, 4H)` GEMM whose K
//! dimension is the sequence length `L` — independent of the batch size,
//! which is why DP-SGD's per-example gradients underutilize systolic arrays.
//!
//! Gate layout: the fused gate pre-activation `z` has width `4H` split as
//! `[input gate i | forget gate f | cell candidate g | output gate o]`.

// Indexed loops below mirror hardware/tensor coordinates; iterator
// rewrites would obscure the (row, column, timestep) structure.
#![allow(clippy::needless_range_loop)]

use diva_tensor::{matmul, matmul_nt, matmul_tn, DivaRng, Tensor};

use crate::layer::{BackwardOutput, GradMode, ParamGrads};

/// A single-layer LSTM mapping `(B, T, input)` to the hidden-state sequence
/// `(B, T, hidden)`. Initial hidden and cell states are zero.
#[derive(Clone, Debug)]
pub struct Lstm {
    w_ih: Tensor, // (input, 4*hidden)
    w_hh: Tensor, // (hidden, 4*hidden)
    bias: Tensor, // (4*hidden,)
    input: usize,
    hidden: usize,
}

/// Forward cache for [`Lstm`]: everything BPTT needs.
#[derive(Clone, Debug)]
pub struct LstmCache {
    /// Input sequence `(B, T, I)`.
    x: Tensor,
    /// Hidden states `h_0..h_T`, each `(B, H)`; `h_0` is zeros.
    h: Vec<Tensor>,
    /// Cell states `c_0..c_T`, each `(B, H)`; `c_0` is zeros.
    c: Vec<Tensor>,
    /// Post-activation gates `(i, f, g, o)` per timestep, each `(B, H)`.
    gates: Vec<[Tensor; 4]>,
    /// `tanh(c_t)` per timestep, each `(B, H)`.
    tanh_c: Vec<Tensor>,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Lstm {
    /// Creates an LSTM with uniform `±1/√hidden` initialization (the PyTorch
    /// default) and forget-gate bias of 1.
    pub fn new(input: usize, hidden: usize, rng: &mut DivaRng) -> Self {
        let bound = 1.0 / (hidden as f32).sqrt();
        let mut bias = Tensor::zeros(&[4 * hidden]);
        // Forget-gate bias init of 1.0 stabilizes early training.
        for v in &mut bias.data_mut()[hidden..2 * hidden] {
            *v = 1.0;
        }
        Self {
            w_ih: Tensor::uniform(&[input, 4 * hidden], -bound, bound, rng),
            w_hh: Tensor::uniform(&[hidden, 4 * hidden], -bound, bound, rng),
            bias,
            input,
            hidden,
        }
    }

    /// Input feature count.
    pub fn input(&self) -> usize {
        self.input
    }

    /// Hidden state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs the LSTM over a `(B, T, input)` sequence, returning the hidden
    /// state sequence `(B, T, hidden)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 3 with the expected feature width.
    pub fn forward(&self, x: &Tensor) -> (Tensor, LstmCache) {
        let dims = x.shape().dims();
        assert_eq!(dims.len(), 3, "LSTM expects (B, T, I), got {}", x.shape());
        let (b, t_len, i_dim) = (dims[0], dims[1], dims[2]);
        assert_eq!(i_dim, self.input, "LSTM input width mismatch");
        let h_dim = self.hidden;

        let mut h = vec![Tensor::zeros(&[b, h_dim])];
        let mut c = vec![Tensor::zeros(&[b, h_dim])];
        let mut gates = Vec::with_capacity(t_len);
        let mut tanh_c = Vec::with_capacity(t_len);
        let mut output = Tensor::zeros(&[b, t_len, h_dim]);

        for t in 0..t_len {
            let x_t = time_slice(x, t);
            // z = x_t W_ih + h_{t-1} W_hh + b : (B, 4H)
            let mut z = matmul(&x_t, &self.w_ih);
            z.add_assign(&matmul(&h[t], &self.w_hh));
            {
                let zv = z.data_mut();
                for r in 0..b {
                    for col in 0..4 * h_dim {
                        zv[r * 4 * h_dim + col] += self.bias.data()[col];
                    }
                }
            }
            let mut gi = Tensor::zeros(&[b, h_dim]);
            let mut gf = Tensor::zeros(&[b, h_dim]);
            let mut gg = Tensor::zeros(&[b, h_dim]);
            let mut go = Tensor::zeros(&[b, h_dim]);
            {
                let zv = z.data();
                for r in 0..b {
                    for j in 0..h_dim {
                        gi.data_mut()[r * h_dim + j] = sigmoid(zv[r * 4 * h_dim + j]);
                        gf.data_mut()[r * h_dim + j] = sigmoid(zv[r * 4 * h_dim + h_dim + j]);
                        gg.data_mut()[r * h_dim + j] = zv[r * 4 * h_dim + 2 * h_dim + j].tanh();
                        go.data_mut()[r * h_dim + j] = sigmoid(zv[r * 4 * h_dim + 3 * h_dim + j]);
                    }
                }
            }
            // c_t = f ⊙ c_{t-1} + i ⊙ g ; h_t = o ⊙ tanh(c_t)
            let mut c_t = Tensor::zeros(&[b, h_dim]);
            let mut th = Tensor::zeros(&[b, h_dim]);
            let mut h_t = Tensor::zeros(&[b, h_dim]);
            for idx in 0..b * h_dim {
                let cv = gf.data()[idx] * c[t].data()[idx] + gi.data()[idx] * gg.data()[idx];
                c_t.data_mut()[idx] = cv;
                let tv = cv.tanh();
                th.data_mut()[idx] = tv;
                h_t.data_mut()[idx] = go.data()[idx] * tv;
            }
            // Write h_t into the output sequence.
            for r in 0..b {
                let dst = (r * t_len + t) * h_dim;
                let src = r * h_dim;
                output.data_mut()[dst..dst + h_dim].copy_from_slice(&h_t.data()[src..src + h_dim]);
            }
            gates.push([gi, gf, gg, go]);
            tanh_c.push(th);
            c.push(c_t);
            h.push(h_t);
        }

        (
            output,
            LstmCache {
                x: x.clone(),
                h,
                c,
                gates,
                tanh_c,
            },
        )
    }

    /// BPTT backward pass; `grad_out` is `(B, T, hidden)` (gradients with
    /// respect to every hidden state output).
    pub fn backward(&self, cache: &LstmCache, grad_out: &Tensor, mode: GradMode) -> BackwardOutput {
        let dims = cache.x.shape().dims();
        let (b, t_len, i_dim) = (dims[0], dims[1], dims[2]);
        let h_dim = self.hidden;
        assert_eq!(
            grad_out.shape().dims(),
            &[b, t_len, h_dim],
            "LSTM gradient shape mismatch"
        );

        let mut grad_x = Tensor::zeros(&[b, t_len, i_dim]);
        let mut dh_next = Tensor::zeros(&[b, h_dim]);
        let mut dc_next = Tensor::zeros(&[b, h_dim]);
        // dz per timestep, kept for per-example gradient reconstruction.
        let mut dz_per_t: Vec<Tensor> = Vec::with_capacity(t_len);

        for t in (0..t_len).rev() {
            let [gi, gf, gg, go] = &cache.gates[t];
            let th = &cache.tanh_c[t];
            let c_prev = &cache.c[t];

            let mut dz = Tensor::zeros(&[b, 4 * h_dim]);
            for r in 0..b {
                for j in 0..h_dim {
                    let idx = r * h_dim + j;
                    let dh = grad_out.data()[(r * t_len + t) * h_dim + j] + dh_next.data()[idx];
                    let o = go.data()[idx];
                    let tv = th.data()[idx];
                    let dc = dc_next.data()[idx] + dh * o * (1.0 - tv * tv);
                    let i_g = gi.data()[idx];
                    let f_g = gf.data()[idx];
                    let g_g = gg.data()[idx];
                    let di = dc * g_g;
                    let df = dc * c_prev.data()[idx];
                    let dg = dc * i_g;
                    let do_ = dh * tv;
                    let zrow = r * 4 * h_dim;
                    dz.data_mut()[zrow + j] = di * i_g * (1.0 - i_g);
                    dz.data_mut()[zrow + h_dim + j] = df * f_g * (1.0 - f_g);
                    dz.data_mut()[zrow + 2 * h_dim + j] = dg * (1.0 - g_g * g_g);
                    dz.data_mut()[zrow + 3 * h_dim + j] = do_ * o * (1.0 - o);
                    dc_next.data_mut()[idx] = dc * f_g;
                }
            }
            // dx_t = dz W_ihᵀ ; dh_{t-1} = dz W_hhᵀ (matmul_nt transposes RHS).
            let dx_t = matmul_nt(&dz, &self.w_ih);
            dh_next = matmul_nt(&dz, &self.w_hh);
            for r in 0..b {
                let dst = (r * t_len + t) * i_dim;
                let src = r * i_dim;
                grad_x.data_mut()[dst..dst + i_dim].copy_from_slice(&dx_t.data()[src..src + i_dim]);
            }
            dz_per_t.push(dz);
        }
        dz_per_t.reverse(); // index by t ascending

        let grads = match mode {
            GradMode::PerBatch => {
                let mut gw_ih = Tensor::zeros(&[i_dim, 4 * h_dim]);
                let mut gw_hh = Tensor::zeros(&[h_dim, 4 * h_dim]);
                let mut gb = Tensor::zeros(&[4 * h_dim]);
                for t in 0..t_len {
                    let x_t = time_slice(&cache.x, t);
                    gw_ih.add_assign(&matmul_tn(&x_t, &dz_per_t[t]));
                    gw_hh.add_assign(&matmul_tn(&cache.h[t], &dz_per_t[t]));
                    for r in 0..b {
                        for (acc, &v) in gb.data_mut().iter_mut().zip(dz_per_t[t].row(r)) {
                            *acc += v;
                        }
                    }
                }
                ParamGrads::PerBatch(vec![gw_ih, gw_hh, gb])
            }
            GradMode::PerExample => {
                ParamGrads::PerExample(diva_tensor::parallel::par_map(b, |r| {
                    self.example_grads(cache, &dz_per_t, r)
                }))
            }
            GradMode::NormOnly => ParamGrads::SqNorms(diva_tensor::parallel::par_map(b, |r| {
                self.example_grads(cache, &dz_per_t, r)
                    .iter()
                    .map(Tensor::squared_norm)
                    .sum()
            })),
        };

        BackwardOutput {
            grad_input: Some(grad_x),
            grads,
        }
    }

    /// Per-example gradients for example `r`: the `(I, L, 4H)` and
    /// `(H, L, 4H)` GEMMs of Figure 6's time-series row.
    fn example_grads(&self, cache: &LstmCache, dz_per_t: &[Tensor], r: usize) -> Vec<Tensor> {
        let t_len = dz_per_t.len();
        let (i_dim, h_dim) = (self.input, self.hidden);
        let mut gw_ih = Tensor::zeros(&[i_dim, 4 * h_dim]);
        let mut gw_hh = Tensor::zeros(&[h_dim, 4 * h_dim]);
        let mut gb = Tensor::zeros(&[4 * h_dim]);
        for (t, dz) in dz_per_t.iter().enumerate() {
            let dz_r = dz.row(r);
            let x_t = time_slice_row(&cache.x, t, r);
            diva_tensor::outer_product_accumulate(&mut gw_ih, &x_t, dz_r);
            diva_tensor::outer_product_accumulate(&mut gw_hh, cache.h[t].row(r), dz_r);
            for (acc, &v) in gb.data_mut().iter_mut().zip(dz_r) {
                *acc += v;
            }
            let _ = t_len;
        }
        vec![gw_ih, gw_hh, gb]
    }

    /// Immutable parameter views: `[w_ih, w_hh, bias]`.
    pub fn params(&self) -> Vec<&Tensor> {
        vec![&self.w_ih, &self.w_hh, &self.bias]
    }

    /// Mutable parameter views.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.bias]
    }
}

/// Extracts timestep `t` from `(B, T, F)` as a `(B, F)` tensor.
fn time_slice(x: &Tensor, t: usize) -> Tensor {
    let dims = x.shape().dims();
    let (b, t_len, f) = (dims[0], dims[1], dims[2]);
    let mut out = Tensor::zeros(&[b, f]);
    for r in 0..b {
        let src = (r * t_len + t) * f;
        out.data_mut()[r * f..(r + 1) * f].copy_from_slice(&x.data()[src..src + f]);
    }
    out
}

/// Extracts `(t, r)` from `(B, T, F)` as a flat `F`-vector.
fn time_slice_row(x: &Tensor, t: usize, r: usize) -> Vec<f32> {
    let dims = x.shape().dims();
    let (t_len, f) = (dims[1], dims[2]);
    let src = (r * t_len + t) * f;
    x.data()[src..src + f].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_and_determinism() {
        let mut rng = DivaRng::seed_from_u64(8);
        let lstm = Lstm::new(3, 5, &mut rng);
        let x = Tensor::uniform(&[2, 4, 3], -1.0, 1.0, &mut rng);
        let (y1, _) = lstm.forward(&x);
        let (y2, _) = lstm.forward(&x);
        assert_eq!(y1.shape().dims(), &[2, 4, 5]);
        assert_eq!(y1, y2);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = DivaRng::seed_from_u64(9);
        let lstm = Lstm::new(3, 4, &mut rng);
        let mut x = Tensor::uniform(&[2, 3, 3], -1.0, 1.0, &mut rng);
        let (y0, cache) = lstm.forward(&x);
        let g = Tensor::full(y0.shape().dims(), 1.0);
        let gx = lstm
            .backward(&cache, &g, GradMode::PerBatch)
            .grad_input
            .unwrap();
        let eps = 1e-3;
        for idx in [0usize, 7, 11, 17] {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let up = lstm.forward(&x).0.sum();
            x.data_mut()[idx] = orig - eps;
            let dn = lstm.forward(&x).0.sum();
            x.data_mut()[idx] = orig;
            let fd = (up - dn) / (2.0 * f64::from(eps));
            let an = f64::from(gx.data()[idx]);
            assert!(
                (fd - an).abs() < 2e-2,
                "input grad mismatch at {idx}: fd={fd} analytic={an}"
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = DivaRng::seed_from_u64(10);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let x = Tensor::uniform(&[2, 3, 2], -1.0, 1.0, &mut rng);
        let (y0, cache) = lstm.forward(&x);
        let g = Tensor::full(y0.shape().dims(), 1.0);
        let grads = lstm
            .backward(&cache, &g, GradMode::PerBatch)
            .grads
            .expect_per_batch();
        let eps = 1e-3;
        // Check a few entries of each parameter.
        for (pi, idxs) in [
            (0usize, vec![0usize, 9, 17]),
            (1, vec![0, 11, 23]),
            (2, vec![0, 5, 11]),
        ] {
            for idx in idxs {
                let orig = match pi {
                    0 => lstm.w_ih.data()[idx],
                    1 => lstm.w_hh.data()[idx],
                    _ => lstm.bias.data()[idx],
                };
                let set = |l: &mut Lstm, v: f32| match pi {
                    0 => l.w_ih.data_mut()[idx] = v,
                    1 => l.w_hh.data_mut()[idx] = v,
                    _ => l.bias.data_mut()[idx] = v,
                };
                set(&mut lstm, orig + eps);
                let up = lstm.forward(&x).0.sum();
                set(&mut lstm, orig - eps);
                let dn = lstm.forward(&x).0.sum();
                set(&mut lstm, orig);
                let fd = (up - dn) / (2.0 * f64::from(eps));
                let an = f64::from(grads[pi].data()[idx]);
                assert!(
                    (fd - an).abs() < 2e-2,
                    "param {pi} grad mismatch at {idx}: fd={fd} analytic={an}"
                );
            }
        }
    }

    #[test]
    fn per_example_grads_sum_to_per_batch() {
        let mut rng = DivaRng::seed_from_u64(11);
        let lstm = Lstm::new(3, 4, &mut rng);
        let x = Tensor::uniform(&[3, 4, 3], -1.0, 1.0, &mut rng);
        let (y, cache) = lstm.forward(&x);
        let g = Tensor::uniform(y.shape().dims(), -1.0, 1.0, &mut rng);
        let batch = lstm
            .backward(&cache, &g, GradMode::PerBatch)
            .grads
            .expect_per_batch();
        let per_ex = match lstm.backward(&cache, &g, GradMode::PerExample).grads {
            ParamGrads::PerExample(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        for (pi, batch_grad) in batch.iter().enumerate() {
            let mut sum = Tensor::zeros(batch_grad.shape().dims());
            for ex in &per_ex {
                sum.add_assign(&ex[pi]);
            }
            assert!(
                sum.max_abs_diff(batch_grad) < 1e-3,
                "per-example sum mismatch for param {pi}"
            );
        }
    }
}
