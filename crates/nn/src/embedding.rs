//! Embedding lookup with per-example gradient support.
//!
//! Embedding tables matter to the DiVa story for an unexpected reason:
//! DP-SGD frameworks materialize *dense* per-example embedding gradients
//! (a `(vocab, dim)` tensor per example), which is why the paper's LSTM
//! workloads blow up in memory (Figure 4). The functional version here
//! mirrors that behaviour so the algorithmic and performance models agree.

use diva_tensor::{DivaRng, Tensor};

use crate::layer::{BackwardOutput, GradMode, ParamGrads};

/// An embedding table mapping integer token ids to dense vectors.
///
/// Input: `(B, T)` tensor whose entries are token ids stored as `f32`
/// (validated to be integral and in range). Output: `(B, T, dim)`.
#[derive(Clone, Debug)]
pub struct Embedding {
    table: Tensor, // (vocab, dim)
    vocab: usize,
    dim: usize,
}

/// Forward cache for [`Embedding`]: the looked-up ids.
#[derive(Clone, Debug)]
pub struct EmbeddingCache {
    ids: Vec<usize>,
    batch: usize,
    seq: usize,
}

impl Embedding {
    /// Creates a table with `N(0, 1)`-scaled-by-`1/√dim` initialization.
    pub fn new(vocab: usize, dim: usize, rng: &mut DivaRng) -> Self {
        let std = 1.0 / (dim as f32).sqrt();
        Self {
            table: Tensor::gaussian(&[vocab, dim], std, rng),
            vocab,
            dim,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up a `(B, T)` id tensor, producing `(B, T, dim)`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 2 or contains non-integral or
    /// out-of-range ids.
    pub fn forward(&self, x: &Tensor) -> (Tensor, EmbeddingCache) {
        let (b, t) = x.dims2();
        let mut ids = Vec::with_capacity(b * t);
        for &v in x.data() {
            let id = v as usize;
            assert!(
                v >= 0.0 && v.fract() == 0.0 && id < self.vocab,
                "invalid token id {v} for vocab {}",
                self.vocab
            );
            ids.push(id);
        }
        let mut out = Tensor::zeros(&[b, t, self.dim]);
        for (pos, &id) in ids.iter().enumerate() {
            let src = id * self.dim;
            let dst = pos * self.dim;
            out.data_mut()[dst..dst + self.dim]
                .copy_from_slice(&self.table.data()[src..src + self.dim]);
        }
        (
            out,
            EmbeddingCache {
                ids,
                batch: b,
                seq: t,
            },
        )
    }

    /// Backward pass: scatter-adds the upstream gradient into table rows.
    ///
    /// The gradient with respect to the (discrete) input is zero, so
    /// `grad_input` is `Some(zeros(B, T))` — a constant. Embedding usually
    /// sits first in a network, where `Network::backward` requests no input
    /// gradient at all (`need_input_grad = false`); like the other cheap
    /// layers this one ignores the flag and returns the zero tensor
    /// regardless, which callers are expected to drop (see
    /// `BackwardOutput::grad_input` for the contract).
    pub fn backward(
        &self,
        cache: &EmbeddingCache,
        grad_out: &Tensor,
        mode: GradMode,
    ) -> BackwardOutput {
        let (b, t) = (cache.batch, cache.seq);
        assert_eq!(
            grad_out.shape().dims(),
            &[b, t, self.dim],
            "embedding gradient shape mismatch"
        );
        let grad_input = Some(Tensor::zeros(&[b, t]));

        let example_grad = |ex: usize| -> Tensor {
            let mut g = Tensor::zeros(&[self.vocab, self.dim]);
            for ti in 0..t {
                let id = cache.ids[ex * t + ti];
                let src = (ex * t + ti) * self.dim;
                let dst = id * self.dim;
                for d in 0..self.dim {
                    g.data_mut()[dst + d] += grad_out.data()[src + d];
                }
            }
            g
        };

        let grads = match mode {
            GradMode::PerBatch => {
                let mut g = Tensor::zeros(&[self.vocab, self.dim]);
                for ex in 0..b {
                    g.add_assign(&example_grad(ex));
                }
                ParamGrads::PerBatch(vec![g])
            }
            GradMode::PerExample => {
                ParamGrads::PerExample(diva_tensor::parallel::par_map(b, |ex| {
                    vec![example_grad(ex)]
                }))
            }
            GradMode::NormOnly => ParamGrads::SqNorms(diva_tensor::parallel::par_map(b, |ex| {
                example_grad(ex).squared_norm()
            })),
        };
        BackwardOutput { grad_input, grads }
    }

    /// Immutable parameter views: `[table]`.
    pub fn params(&self) -> Vec<&Tensor> {
        vec![&self.table]
    }

    /// Mutable parameter views.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(data: &[f32], b: usize, t: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[b, t])
    }

    #[test]
    fn lookup_copies_table_rows() {
        let mut rng = DivaRng::seed_from_u64(30);
        let emb = Embedding::new(5, 3, &mut rng);
        let x = ids(&[0.0, 4.0, 2.0, 2.0], 2, 2);
        let (y, _) = emb.forward(&x);
        assert_eq!(y.shape().dims(), &[2, 2, 3]);
        assert_eq!(&y.data()[0..3], &emb.table.data()[0..3]);
        assert_eq!(&y.data()[3..6], &emb.table.data()[12..15]);
    }

    #[test]
    fn repeated_tokens_accumulate_gradient() {
        let mut rng = DivaRng::seed_from_u64(31);
        let emb = Embedding::new(4, 2, &mut rng);
        let x = ids(&[1.0, 1.0], 1, 2); // token 1 twice
        let (y, cache) = emb.forward(&x);
        let g = Tensor::full(y.shape().dims(), 1.0);
        let grads = emb
            .backward(&cache, &g, GradMode::PerBatch)
            .grads
            .expect_per_batch();
        // Row 1 receives gradient 2.0 per dim; all other rows zero.
        assert_eq!(grads[0].data()[2], 2.0);
        assert_eq!(grads[0].data()[3], 2.0);
        assert_eq!(grads[0].data()[0], 0.0);
        assert_eq!(grads[0].data()[6], 0.0);
    }

    #[test]
    fn per_example_grads_sum_to_batch() {
        let mut rng = DivaRng::seed_from_u64(32);
        let emb = Embedding::new(6, 3, &mut rng);
        let x = ids(&[0.0, 5.0, 2.0, 0.0, 1.0, 1.0], 3, 2);
        let (y, cache) = emb.forward(&x);
        let g = Tensor::uniform(y.shape().dims(), -1.0, 1.0, &mut rng);
        let batch = emb
            .backward(&cache, &g, GradMode::PerBatch)
            .grads
            .expect_per_batch();
        let per_ex = match emb.backward(&cache, &g, GradMode::PerExample).grads {
            ParamGrads::PerExample(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        let mut sum = Tensor::zeros(&[6, 3]);
        for ex in &per_ex {
            sum.add_assign(&ex[0]);
        }
        assert!(sum.max_abs_diff(&batch[0]) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "invalid token id")]
    fn out_of_range_token_panics() {
        let mut rng = DivaRng::seed_from_u64(33);
        let emb = Embedding::new(4, 2, &mut rng);
        let x = ids(&[4.0], 1, 1);
        let _ = emb.forward(&x);
    }

    #[test]
    fn norm_only_matches_per_example() {
        let mut rng = DivaRng::seed_from_u64(34);
        let emb = Embedding::new(5, 4, &mut rng);
        let x = ids(&[0.0, 3.0, 3.0, 1.0], 2, 2);
        let (y, cache) = emb.forward(&x);
        let g = Tensor::uniform(y.shape().dims(), -1.0, 1.0, &mut rng);
        let norms = match emb.backward(&cache, &g, GradMode::NormOnly).grads {
            ParamGrads::SqNorms(n) => n,
            other => panic!("unexpected {other:?}"),
        };
        let per_ex = match emb.backward(&cache, &g, GradMode::PerExample).grads {
            ParamGrads::PerExample(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        for (i, ex) in per_ex.iter().enumerate() {
            assert!((ex[0].squared_norm() - norms[i]).abs() < 1e-9);
        }
    }
}
