//! Accelerator-accurate numerics: the functional dataflow engines fed
//! BF16-quantized operands (the paper's "BF16 Mult, FP32 Add" format,
//! Table III) must all compute the *same* quantized product, stay within
//! the analytic bf16 error bound of the FP32 reference, and keep their
//! cycle counts unchanged (numerics never affect timing).
//!
//! Cases are drawn from a seeded generator (no proptest in the approved
//! dependency set), so every run checks the same deterministic sample.

use diva_pearray::{OsArray, OuterProductArray, Ppu, WsArray};
use diva_tensor::{matmul, DivaRng, Tensor, BF16_MAX_RELATIVE_ERROR};

fn operands(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = DivaRng::seed_from_u64(seed);
    (
        Tensor::uniform(&[m, k], -1.0, 1.0, &mut rng),
        Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng),
    )
}

/// All three engines agree bit-for-bit on quantized operands, and the
/// quantized result is within the composed bf16 bound of FP32.
#[test]
fn engines_agree_on_bf16_operands() {
    let mut gen = DivaRng::seed_from_u64(0xbf16);
    for case in 0..32 {
        let (m, k, n) = (1 + gen.index(19), 1 + gen.index(19), 1 + gen.index(19));
        let (a, b) = operands(m, k, n, 1000 + case);
        let (qa, qb) = (a.to_bf16(), b.to_bf16());

        let ws = WsArray::new(8, 8, 4).gemm(&qa, &qb);
        let os = OsArray::new(8, 8, 4).gemm(&qa, &qb);
        let op = OuterProductArray::new(8, 8, 4).gemm(&qa, &qb);
        // Same dataflow-independent result (FP32 accumulation is exact for
        // these magnitudes up to reassociation; tolerance covers that).
        assert!(ws.output.max_abs_diff(&os.output) < 1e-5);
        assert!(os.output.max_abs_diff(&op.output) < 1e-5);

        // Composed error bound vs the unquantized product: each operand
        // carries ≤ 2⁻⁸ relative error; |a|,|b| ≤ 1, so each of the K
        // product terms errs by ≤ 2·2⁻⁸ + 2⁻¹⁶.
        let exact = matmul(&a, &b);
        let bound = k as f32
            * (2.0 * BF16_MAX_RELATIVE_ERROR + BF16_MAX_RELATIVE_ERROR * BF16_MAX_RELATIVE_ERROR)
            + 1e-5;
        assert!(
            ws.output.max_abs_diff(&exact) <= bound,
            "bf16 error {} exceeds bound {bound} at ({m},{k},{n})",
            ws.output.max_abs_diff(&exact)
        );
    }
}

/// Quantization never changes cycle counts: timing is data-independent.
#[test]
fn timing_is_data_independent() {
    let mut gen = DivaRng::seed_from_u64(0x71e);
    for case in 0..32 {
        let (m, k, n) = (1 + gen.index(15), 1 + gen.index(15), 1 + gen.index(15));
        let (a, b) = operands(m, k, n, 2000 + case);
        let (qa, qb) = (a.to_bf16(), b.to_bf16());
        let arr = OuterProductArray::new(8, 8, 2);
        assert_eq!(arr.gemm(&a, &b).cycles, arr.gemm(&qa, &qb).cycles);
        let ws = WsArray::new(8, 8, 4);
        assert_eq!(ws.gemm(&a, &b).cycles, ws.gemm(&qa, &qb).cycles);
    }
}

/// The PPU's norm over a quantized tile equals the exact sum of squares
/// of that quantized tile (the squaring/accumulation is FP32-exact in
/// the PPU; quantization only perturbs the inputs).
#[test]
fn ppu_norms_are_exact_over_quantized_tiles() {
    let mut gen = DivaRng::seed_from_u64(0x99);
    for case in 0..32 {
        let rows = 1 + gen.index(23);
        let mut rng = DivaRng::seed_from_u64(3000 + case);
        let tile = Tensor::uniform(&[rows, 8], -2.0, 2.0, &mut rng).to_bf16();
        let run = Ppu::new(8, 4).sum_of_squares(&tile);
        assert!((run.value - tile.squared_norm()).abs() < 1e-6);
    }
}
