//! Output-stationary systolic array, simulated register-by-register
//! (paper Figure 3(b)).
//!
//! Both operands stream in from the edges — LHS rows from the west, RHS
//! columns from the north — skewed one cycle per row/column. Every PE
//! accumulates its output element in place over `K` cycles; the result is
//! then drained, either streamed to SRAM or forwarded to the PPU at `R`
//! rows per cycle (Section IV-C).

// Indexed loops below mirror hardware/tensor coordinates; iterator
// rewrites would obscure the (row, column, timestep) structure.
#![allow(clippy::needless_range_loop)]

use diva_tensor::Tensor;

use crate::run::GemmRun;

/// A functional output-stationary systolic array of `rows × cols` PEs.
#[derive(Clone, Debug)]
pub struct OsArray {
    rows: usize,
    cols: usize,
    drain_rows_per_cycle: usize,
}

impl OsArray {
    /// Creates an array.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or the drain rate exceeds the height.
    pub fn new(rows: usize, cols: usize, drain_rows_per_cycle: usize) -> Self {
        assert!(rows > 0 && cols > 0, "PE array must be non-empty");
        assert!(
            drain_rows_per_cycle > 0 && drain_rows_per_cycle <= rows,
            "drain rate must be in 1..=rows"
        );
        Self {
            rows,
            cols,
            drain_rows_per_cycle,
        }
    }

    /// Array height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cycles for the streaming (compute) phase of one `(M_t, K, N_t)` tile:
    /// the skewed operand streams take `K + PE_H + PE_W − 2` cycles to fully
    /// traverse the physical array.
    pub fn stream_cycles(&self, k: usize) -> u64 {
        (k + self.rows + self.cols - 2) as u64
    }

    /// Cycles to drain one tile of `m_t` output rows at `R` rows per cycle.
    pub fn drain_cycles(&self, m_t: usize) -> u64 {
        m_t.div_ceil(self.drain_rows_per_cycle) as u64
    }

    /// Runs one output tile: `a` is `(M_t, K)` with `M_t ≤ rows`, `b` is
    /// `(K, N_t)` with `N_t ≤ cols`, any `K`. Returns the product and the
    /// exact cycle count (stream + drain) from the register-level simulation.
    ///
    /// # Panics
    ///
    /// Panics if the tile exceeds the array.
    pub fn run_tile(&self, a: &Tensor, b: &Tensor) -> (Tensor, u64) {
        let (mt, k) = a.dims2();
        let (kb, nt) = b.dims2();
        assert_eq!(k, kb, "inner dimension mismatch");
        assert!(mt <= self.rows, "M tile {mt} exceeds {} PE rows", self.rows);
        assert!(nt <= self.cols, "N tile {nt} exceeds {} PE cols", self.cols);

        let (rows, cols) = (self.rows, self.cols);
        // West-moving operand registers (LHS) and north-moving (RHS).
        let mut a_reg = vec![vec![0.0f32; cols]; rows];
        let mut b_reg = vec![vec![0.0f32; cols]; rows];
        let mut acc = vec![vec![0.0f32; cols]; rows];

        let stream_window = self.stream_cycles(k);
        for cycle in 0..stream_window {
            let t = cycle as isize;
            let mut a_next = vec![vec![0.0f32; cols]; rows];
            let mut b_next = vec![vec![0.0f32; cols]; rows];
            for r in 0..rows {
                for c in 0..cols {
                    // LHS element a[r][ki] enters row r (west edge) at cycle
                    // ki + r and moves one column east per cycle.
                    let a_in = if c == 0 {
                        let ki = t - r as isize;
                        if r < mt && ki >= 0 && (ki as usize) < k {
                            a.data()[r * k + ki as usize]
                        } else {
                            0.0
                        }
                    } else {
                        a_reg[r][c - 1]
                    };
                    // RHS element b[ki][c] enters column c (north edge) at
                    // cycle ki + c and moves one row south per cycle.
                    let b_in = if r == 0 {
                        let ki = t - c as isize;
                        if c < nt && ki >= 0 && (ki as usize) < k {
                            b.data()[ki as usize * nt + c]
                        } else {
                            0.0
                        }
                    } else {
                        b_reg[r - 1][c]
                    };
                    a_next[r][c] = a_in;
                    b_next[r][c] = b_in;
                    acc[r][c] += a_in * b_in;
                }
            }
            a_reg = a_next;
            b_reg = b_next;
        }

        let mut out = Tensor::zeros(&[mt, nt]);
        for r in 0..mt {
            for c in 0..nt {
                out.data_mut()[r * nt + c] = acc[r][c];
            }
        }
        (out, stream_window + self.drain_cycles(mt))
    }

    /// Runs an arbitrary `(M, K) × (K, N)` GEMM by tiling over M and N
    /// (output tiles) and summing tile cycle counts.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn gemm(&self, a: &Tensor, b: &Tensor) -> GemmRun {
        let (m, k) = a.dims2();
        let (kb, n) = b.dims2();
        assert_eq!(k, kb, "inner dimension mismatch");
        let mut out = Tensor::zeros(&[m, n]);
        let mut cycles: u64 = 0;
        for m0 in (0..m).step_by(self.rows) {
            let mt = (m - m0).min(self.rows);
            let mut a_tile = Tensor::zeros(&[mt, k]);
            for r in 0..mt {
                let src = (m0 + r) * k;
                a_tile.data_mut()[r * k..(r + 1) * k].copy_from_slice(&a.data()[src..src + k]);
            }
            for n0 in (0..n).step_by(self.cols) {
                let nt = (n - n0).min(self.cols);
                let mut b_tile = Tensor::zeros(&[k, nt]);
                for kk in 0..k {
                    for c in 0..nt {
                        b_tile.data_mut()[kk * nt + c] = b.data()[kk * n + n0 + c];
                    }
                }
                let (tile_out, tile_cycles) = self.run_tile(&a_tile, &b_tile);
                cycles += tile_cycles;
                for r in 0..mt {
                    for c in 0..nt {
                        out.data_mut()[(m0 + r) * n + n0 + c] = tile_out.data()[r * nt + c];
                    }
                }
            }
        }
        let macs = (m * k * n) as u64;
        GemmRun::new(out, cycles, macs, (self.rows * self.cols) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_tensor::{matmul, DivaRng};

    #[test]
    fn single_tile_matches_reference() {
        let mut rng = DivaRng::seed_from_u64(5);
        let arr = OsArray::new(4, 4, 4);
        let a = Tensor::uniform(&[3, 7], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[7, 4], -1.0, 1.0, &mut rng);
        let (out, cycles) = arr.run_tile(&a, &b);
        assert!(out.max_abs_diff(&matmul(&a, &b)) < 1e-4);
        assert_eq!(cycles, arr.stream_cycles(7) + arr.drain_cycles(3));
    }

    #[test]
    fn tiled_gemm_matches_reference() {
        let mut rng = DivaRng::seed_from_u64(6);
        let arr = OsArray::new(4, 4, 2);
        let a = Tensor::uniform(&[9, 5], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[5, 7], -1.0, 1.0, &mut rng);
        let run = arr.gemm(&a, &b);
        assert!(run.output.max_abs_diff(&matmul(&a, &b)) < 1e-4);
    }

    #[test]
    fn small_k_pays_pipeline_overhead() {
        // With K = 1 the stream window is dominated by the skew through the
        // physical array: utilization collapses.
        let mut rng = DivaRng::seed_from_u64(7);
        let arr = OsArray::new(8, 8, 8);
        let a = Tensor::uniform(&[8, 1], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[1, 8], -1.0, 1.0, &mut rng);
        let run = arr.gemm(&a, &b);
        assert!(run.utilization < 0.1, "utilization {}", run.utilization);
    }
}
