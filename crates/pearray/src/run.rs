//! Result type shared by the functional GEMM engines.

use diva_tensor::Tensor;

/// The result of running a GEMM through a functional PE-array simulator.
#[derive(Clone, Debug)]
pub struct GemmRun {
    /// The numerical product `A × B`.
    pub output: Tensor,
    /// Total cycles consumed, including operand fill and output drain.
    pub cycles: u64,
    /// Useful multiply-accumulates performed (`M·K·N`).
    pub macs: u64,
    /// Compute utilization: `macs / (cycles × PE_count)` ∈ (0, 1].
    pub utilization: f64,
}

impl GemmRun {
    /// Builds a run summary, computing utilization from the raw counts.
    pub(crate) fn new(output: Tensor, cycles: u64, macs: u64, pe_count: u64) -> Self {
        let utilization = if cycles == 0 {
            0.0
        } else {
            macs as f64 / (cycles as f64 * pe_count as f64)
        };
        Self {
            output,
            cycles,
            macs,
            utilization,
        }
    }
}
