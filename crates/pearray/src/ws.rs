//! Weight-stationary systolic array, simulated register-by-register
//! (paper Figure 3(c) — the Google TPU baseline dataflow).
//!
//! Operation per weight tile:
//!
//! 1. **Fill**: up to `PE_H` rows of the RHS matrix are latched into the
//!    PEs at `fill_rows_per_cycle` rows per clock (8 for TPUv3, Table I).
//! 2. **Stream**: LHS rows enter from the left edge, skewed one cycle per
//!    array row. Partial sums flow down the columns; each output element
//!    exits the bottom edge after traversing all `PE_H` rows.
//!
//! The pathology the paper exploits: a GEMM with `K < PE_H` latches only
//! `K` of the `PE_H` PE rows, so at most `K × N` of the `PE_H × PE_W` MACs
//! do useful work each cycle.

// Indexed loops below mirror hardware/tensor coordinates; iterator
// rewrites would obscure the (row, column, timestep) structure.
#![allow(clippy::needless_range_loop)]

use diva_tensor::Tensor;

use crate::run::GemmRun;

/// A functional weight-stationary systolic array of `rows × cols` PEs.
#[derive(Clone, Debug)]
pub struct WsArray {
    rows: usize,
    cols: usize,
    fill_rows_per_cycle: usize,
}

impl WsArray {
    /// Creates an array.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(rows: usize, cols: usize, fill_rows_per_cycle: usize) -> Self {
        assert!(rows > 0 && cols > 0, "PE array must be non-empty");
        assert!(fill_rows_per_cycle > 0, "fill rate must be positive");
        Self {
            rows,
            cols,
            fill_rows_per_cycle,
        }
    }

    /// Array height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cycles to latch a `k`-row weight tile.
    pub fn fill_cycles(&self, k: usize) -> u64 {
        k.div_ceil(self.fill_rows_per_cycle) as u64
    }

    /// Cycles to stream `m` LHS rows through the full physical array
    /// (pipeline drains through all `PE_H` rows and `PE_W` columns).
    pub fn stream_cycles(&self, m: usize) -> u64 {
        (m + self.rows + self.cols - 2) as u64
    }

    /// Runs one weight tile: `a` is `(M, K_t)` with `K_t ≤ rows`, `b` is
    /// `(K_t, N_t)` with `N_t ≤ cols`. Returns the product and the exact
    /// cycle count measured by the register-level simulation.
    ///
    /// # Panics
    ///
    /// Panics if the tile exceeds the array.
    pub fn run_tile(&self, a: &Tensor, b: &Tensor) -> (Tensor, u64) {
        let (m, kt) = a.dims2();
        let (kb, nt) = b.dims2();
        assert_eq!(kt, kb, "inner dimension mismatch");
        assert!(kt <= self.rows, "K tile {kt} exceeds {} PE rows", self.rows);
        assert!(nt <= self.cols, "N tile {nt} exceeds {} PE cols", self.cols);

        let (rows, cols) = (self.rows, self.cols);
        // Latched weights, zero outside the Kt×Nt active region.
        let mut w = vec![vec![0.0f32; cols]; rows];
        for r in 0..kt {
            for c in 0..nt {
                w[r][c] = b.data()[r * nt + c];
            }
        }

        // Per-PE pipeline registers.
        let mut a_reg = vec![vec![0.0f32; cols]; rows];
        let mut p_reg = vec![vec![0.0f32; cols]; rows];
        let mut out = Tensor::zeros(&[m, nt]);
        let mut collected = 0usize;
        let total_outputs = m * nt;

        let mut cycle: u64 = 0;
        // The array stays occupied until the pipeline fully drains through
        // the *physical* array (the paper's (M + PE_H + PE_W − 2) stream
        // window), even when the active tile is narrower.
        let stream_window = self.stream_cycles(m);
        while cycle < stream_window {
            let t = cycle as isize;
            let mut a_next = vec![vec![0.0f32; cols]; rows];
            let mut p_next = vec![vec![0.0f32; cols]; rows];
            for r in 0..rows {
                for c in 0..cols {
                    // Activation arrives from the west (array edge for c=0,
                    // skewed so row r sees LHS column r of output-row m at
                    // cycle m + r).
                    let a_in = if c == 0 {
                        let mi = t - r as isize;
                        if r < kt && mi >= 0 && (mi as usize) < m {
                            a.data()[mi as usize * kt + r]
                        } else {
                            0.0
                        }
                    } else {
                        a_reg[r][c - 1]
                    };
                    // Partial sum arrives from the north.
                    let p_in = if r == 0 { 0.0 } else { p_reg[r - 1][c] };
                    a_next[r][c] = a_in;
                    p_next[r][c] = p_in + w[r][c] * a_in;
                }
            }
            // Outputs exit the south edge of each column; the value leaving
            // column c at cycle t belongs to LHS row m = t − (rows−1) − c.
            for c in 0..nt {
                let mi = t - (rows as isize - 1) - c as isize;
                if mi >= 0 && (mi as usize) < m {
                    out.data_mut()[mi as usize * nt + c] = p_next[rows - 1][c];
                    collected += 1;
                }
            }
            a_reg = a_next;
            p_reg = p_next;
            cycle += 1;
        }
        assert_eq!(
            collected, total_outputs,
            "WS simulation failed to drain all outputs within the stream window"
        );
        (out, self.fill_cycles(kt) + cycle)
    }

    /// Runs an arbitrary `(M, K) × (K, N)` GEMM by tiling over K and N
    /// (weight tiles), accumulating partial products, and summing the cycle
    /// counts of every tile pass.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn gemm(&self, a: &Tensor, b: &Tensor) -> GemmRun {
        let (m, k) = a.dims2();
        let (kb, n) = b.dims2();
        assert_eq!(k, kb, "inner dimension mismatch");
        let mut out = Tensor::zeros(&[m, n]);
        let mut cycles: u64 = 0;
        for k0 in (0..k).step_by(self.rows) {
            let kt = (k - k0).min(self.rows);
            // Slice A columns [k0, k0+kt).
            let mut a_tile = Tensor::zeros(&[m, kt]);
            for r in 0..m {
                for kk in 0..kt {
                    a_tile.data_mut()[r * kt + kk] = a.data()[r * k + k0 + kk];
                }
            }
            for n0 in (0..n).step_by(self.cols) {
                let nt = (n - n0).min(self.cols);
                let mut b_tile = Tensor::zeros(&[kt, nt]);
                for kk in 0..kt {
                    for c in 0..nt {
                        b_tile.data_mut()[kk * nt + c] = b.data()[(k0 + kk) * n + n0 + c];
                    }
                }
                let (tile_out, tile_cycles) = self.run_tile(&a_tile, &b_tile);
                cycles += tile_cycles;
                for r in 0..m {
                    for c in 0..nt {
                        out.data_mut()[r * n + n0 + c] += tile_out.data()[r * nt + c];
                    }
                }
            }
        }
        let macs = (m * k * n) as u64;
        GemmRun::new(out, cycles, macs, (self.rows * self.cols) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_tensor::{matmul, DivaRng};

    #[test]
    fn single_tile_matches_reference() {
        let mut rng = DivaRng::seed_from_u64(1);
        let arr = WsArray::new(4, 4, 4);
        let a = Tensor::uniform(&[5, 3], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[3, 4], -1.0, 1.0, &mut rng);
        let (out, _) = arr.run_tile(&a, &b);
        assert!(out.max_abs_diff(&matmul(&a, &b)) < 1e-4);
    }

    #[test]
    fn tile_cycles_follow_fill_plus_stream_formula() {
        let mut rng = DivaRng::seed_from_u64(2);
        for (rows, cols, m, k, n, fill) in [
            (4usize, 4usize, 7usize, 3usize, 4usize, 2usize),
            (8, 8, 1, 8, 8, 8),
            (8, 4, 16, 2, 3, 8),
        ] {
            let arr = WsArray::new(rows, cols, fill);
            let a = Tensor::uniform(&[m, k], -1.0, 1.0, &mut rng);
            let b = Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng);
            let (_, cycles) = arr.run_tile(&a, &b);
            let expected = arr.fill_cycles(k) + arr.stream_cycles(m);
            assert_eq!(
                cycles, expected,
                "cycle mismatch for array {rows}x{cols}, gemm ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn tiled_gemm_matches_reference() {
        let mut rng = DivaRng::seed_from_u64(3);
        let arr = WsArray::new(4, 4, 4);
        let a = Tensor::uniform(&[6, 10], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[10, 9], -1.0, 1.0, &mut rng);
        let run = arr.gemm(&a, &b);
        assert!(run.output.max_abs_diff(&matmul(&a, &b)) < 1e-4);
        assert!(run.utilization > 0.0 && run.utilization <= 1.0);
    }

    #[test]
    fn small_k_wastes_the_array() {
        // K = 1 latches a single PE row: utilization ≤ 1/rows.
        let mut rng = DivaRng::seed_from_u64(4);
        let arr = WsArray::new(8, 8, 8);
        let a = Tensor::uniform(&[64, 1], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[1, 8], -1.0, 1.0, &mut rng);
        let run = arr.gemm(&a, &b);
        assert!(
            run.utilization <= 1.0 / 8.0 + 1e-9,
            "utilization {} should be capped by K/rows",
            run.utilization
        );
    }
}
