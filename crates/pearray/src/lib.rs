//! Cycle-accurate *functional* PE-array simulators for the three dataflows
//! the paper studies (Figure 3 and Figure 9), plus the pipelined adder-tree
//! post-processing unit (Figures 11–12).
//!
//! These models execute the dataflows register-by-register: activations,
//! weights and partial sums physically move between PE latches each clock,
//! and the numerical output is checked against a reference GEMM. They serve
//! two purposes:
//!
//! 1. **Validation.** The fast analytic timing models in `diva-sim` are
//!    required (by tests) to agree *exactly* with the cycle counts measured
//!    here — our stand-in for the paper's validation of its simulator
//!    against real TPUv3 hardware.
//! 2. **Small-scale studies.** The microbenchmarks and examples use them to
//!    visualize utilization on small arrays.
//!
//! # Example
//!
//! ```
//! use diva_pearray::{OuterProductArray, WsArray};
//! use diva_tensor::{matmul, DivaRng, Tensor};
//!
//! let mut rng = DivaRng::seed_from_u64(1);
//! let a = Tensor::uniform(&[6, 2], -1.0, 1.0, &mut rng); // skinny K = 2
//! let b = Tensor::uniform(&[2, 8], -1.0, 1.0, &mut rng);
//!
//! let ws = WsArray::new(8, 8, 8).gemm(&a, &b);
//! let op = OuterProductArray::new(8, 8, 8).gemm(&a, &b);
//! assert!(ws.output.max_abs_diff(&matmul(&a, &b)) < 1e-4);
//! assert!(op.output.max_abs_diff(&matmul(&a, &b)) < 1e-4);
//! // The outer-product dataflow wins on small-K GEMMs:
//! assert!(op.utilization > ws.utilization);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod os;
mod outer;
mod ppu;
mod run;
mod tree;
mod ws;

pub use os::OsArray;
pub use outer::OuterProductArray;
pub use ppu::{Ppu, PpuRun};
pub use run::GemmRun;
pub use tree::AdderTree;
pub use ws::WsArray;
