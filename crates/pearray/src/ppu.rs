//! DiVa's post-processing unit (PPU): `R` pipelined adder trees that
//! consume output rows straight from the GEMM engine's drain path and
//! derive gradient L2 norms on the fly (paper Figures 11–12).
//!
//! Under the default configuration, the GEMM engine drains `R = 8` rows of
//! `PE_W = 128` FP32 values per clock; each row is squared element-wise and
//! fed to its own 7-level adder tree, so the PPU keeps pace with the drain
//! (`128/R = 16` cycles per 128×128 tile) and per-example gradients never
//! touch off-chip DRAM.

// Indexed loops below mirror hardware/tensor coordinates; iterator
// rewrites would obscure the (row, column, timestep) structure.
#![allow(clippy::needless_range_loop)]

use diva_tensor::Tensor;

use crate::tree::AdderTree;

/// Result of post-processing one drained output tile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PpuRun {
    /// The reduction result (Σx² for norm mode, Σx for sum mode).
    pub value: f64,
    /// Cycles consumed, including adder-tree pipeline latency.
    pub cycles: u64,
}

/// A functional PPU with `r` parallel adder trees of `width` lanes each.
#[derive(Clone, Debug)]
pub struct Ppu {
    width: usize,
    r: usize,
}

impl Ppu {
    /// Creates a PPU matching a `width`-column GEMM engine draining `r`
    /// rows per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two ≥ 2 or `r` is zero.
    pub fn new(width: usize, r: usize) -> Self {
        assert!(r > 0, "drain rate must be positive");
        // Validate width eagerly by constructing a tree.
        let _ = AdderTree::new(width);
        Self { width, r }
    }

    /// Lane width of each adder tree.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of parallel adder trees (= drain rows per cycle).
    pub fn r(&self) -> usize {
        self.r
    }

    /// Adder-tree pipeline latency in cycles.
    pub fn latency(&self) -> u64 {
        AdderTree::new(self.width).latency() as u64
    }

    /// Reduces a drained output tile to its **sum of squares** (the L2-norm
    /// contribution of a per-example weight-gradient tile, Equation 1).
    ///
    /// Rows wider than the tree are processed in `ceil(N_t / width)` passes;
    /// rows are consumed `r` at a time, mirroring the drain interface.
    pub fn sum_of_squares(&self, tile: &Tensor) -> PpuRun {
        self.reduce(tile, true)
    }

    /// Reduces a drained output tile to its plain sum (used by gradient
    /// reduction when the PPU assists vanilla DP-SGD).
    pub fn sum(&self, tile: &Tensor) -> PpuRun {
        self.reduce(tile, false)
    }

    fn reduce(&self, tile: &Tensor, square: bool) -> PpuRun {
        let (mt, nt) = tile.dims2();
        let col_passes = nt.div_ceil(self.width).max(1);
        // Build the row stream: each drained row, squared if requested and
        // zero-padded to the tree width.
        let mut trees: Vec<AdderTree> = (0..self.r).map(|_| AdderTree::new(self.width)).collect();
        let mut total = 0.0f64;
        let mut cycles: u64 = 0;
        for pass in 0..col_passes {
            let c0 = pass * self.width;
            let cw = (nt - c0).min(self.width);
            // Rows are drained r at a time.
            for row0 in (0..mt).step_by(self.r) {
                let group = (mt - row0).min(self.r);
                for (lane, tree) in trees.iter_mut().enumerate().take(group) {
                    let r_idx = row0 + lane;
                    let mut lanes = vec![0.0f32; self.width];
                    for c in 0..cw {
                        let v = tile.data()[r_idx * nt + c0 + c];
                        lanes[c] = if square { v * v } else { v };
                    }
                    if let Some(s) = tree.clock(Some(&lanes)) {
                        total += s;
                    }
                }
                cycles += 1;
            }
        }
        // Flush the pipelines.
        for _ in 0..self.latency() {
            for tree in &mut trees {
                if let Some(s) = tree.clock(None) {
                    total += s;
                }
            }
            cycles += 1;
        }
        PpuRun {
            value: total,
            cycles,
        }
    }

    /// Steady-state cycles to drain an `m_t`-row tile (excluding pipeline
    /// flush): `ceil(m_t / R) × ceil(n_t / width)`.
    pub fn drain_cycles(&self, m_t: usize, n_t: usize) -> u64 {
        (m_t.div_ceil(self.r) * n_t.div_ceil(self.width).max(1)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_tensor::DivaRng;

    #[test]
    fn sum_of_squares_matches_reference() {
        let mut rng = DivaRng::seed_from_u64(12);
        let tile = Tensor::uniform(&[16, 8], -2.0, 2.0, &mut rng);
        let ppu = Ppu::new(8, 4);
        let run = ppu.sum_of_squares(&tile);
        assert!((run.value - tile.squared_norm()).abs() < 1e-6);
    }

    #[test]
    fn plain_sum_matches_reference() {
        let mut rng = DivaRng::seed_from_u64(13);
        let tile = Tensor::uniform(&[10, 8], -1.0, 1.0, &mut rng);
        let ppu = Ppu::new(8, 2);
        let run = ppu.sum(&tile);
        assert!((run.value - tile.sum()).abs() < 1e-6);
    }

    #[test]
    fn wide_tiles_take_multiple_passes() {
        let mut rng = DivaRng::seed_from_u64(14);
        let tile = Tensor::uniform(&[4, 20], -1.0, 1.0, &mut rng);
        let ppu = Ppu::new(8, 4);
        let run = ppu.sum_of_squares(&tile);
        assert!((run.value - tile.squared_norm()).abs() < 1e-6);
        // 3 column passes × 1 row group + flush.
        assert_eq!(run.cycles, 3 + ppu.latency());
    }

    #[test]
    fn drain_keeps_pace_with_gemm_engine() {
        // Paper: 128/R cycles to drain a full 128×128 tile.
        let ppu = Ppu::new(128, 8);
        assert_eq!(ppu.drain_cycles(128, 128), 16);
    }

    #[test]
    fn throughput_cycles_scale_with_rows_over_r() {
        let mut rng = DivaRng::seed_from_u64(15);
        let tile = Tensor::uniform(&[32, 8], -1.0, 1.0, &mut rng);
        let ppu = Ppu::new(8, 4);
        let run = ppu.sum_of_squares(&tile);
        assert_eq!(run.cycles, 32 / 4 + ppu.latency());
    }
}
