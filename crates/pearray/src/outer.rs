//! DiVa's outer-product GEMM engine, simulated cycle-by-cycle
//! (paper Figure 9).
//!
//! Every clock, one column of the LHS matrix (length `M_t`) and one row of
//! the RHS matrix (length `N_t`) are broadcast over per-row and per-column
//! buses; all `M_t × N_t` PEs perform one MAC into their local accumulator.
//! After `K` broadcast cycles the output tile is complete and is drained at
//! `R` rows per cycle — either to SRAM or directly into the PPU for
//! on-the-fly gradient-norm derivation.
//!
//! The engine therefore sustains `M_t × N_t` MACs *every* cycle regardless
//! of K — the property that rescues DP-SGD's small-K per-example gradient
//! GEMMs (Section IV-B).

use diva_tensor::Tensor;

use crate::run::GemmRun;

/// A functional outer-product PE array of `rows × cols` PEs.
#[derive(Clone, Debug)]
pub struct OuterProductArray {
    rows: usize,
    cols: usize,
    drain_rows_per_cycle: usize,
}

impl OuterProductArray {
    /// Creates an array.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or the drain rate exceeds the height.
    pub fn new(rows: usize, cols: usize, drain_rows_per_cycle: usize) -> Self {
        assert!(rows > 0 && cols > 0, "PE array must be non-empty");
        assert!(
            drain_rows_per_cycle > 0 && drain_rows_per_cycle <= rows,
            "drain rate must be in 1..=rows"
        );
        Self {
            rows,
            cols,
            drain_rows_per_cycle,
        }
    }

    /// Array height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Broadcast (compute) cycles for a K-deep tile: exactly `K` — one
    /// outer product per clock.
    pub fn compute_cycles(&self, k: usize) -> u64 {
        k as u64
    }

    /// Cycles to drain `m_t` output rows at `R` rows per cycle.
    pub fn drain_cycles(&self, m_t: usize) -> u64 {
        m_t.div_ceil(self.drain_rows_per_cycle) as u64
    }

    /// Runs one output tile: `a` is `(M_t, K)` with `M_t ≤ rows`, `b` is
    /// `(K, N_t)` with `N_t ≤ cols`, any `K`.
    ///
    /// # Panics
    ///
    /// Panics if the tile exceeds the array.
    pub fn run_tile(&self, a: &Tensor, b: &Tensor) -> (Tensor, u64) {
        let (mt, k) = a.dims2();
        let (kb, nt) = b.dims2();
        assert_eq!(k, kb, "inner dimension mismatch");
        assert!(mt <= self.rows, "M tile {mt} exceeds {} PE rows", self.rows);
        assert!(nt <= self.cols, "N tile {nt} exceeds {} PE cols", self.cols);

        let mut acc = Tensor::zeros(&[mt, nt]);
        for ki in 0..k {
            // Broadcast LHS column ki and RHS row ki; all-to-all MAC.
            let lhs_col: Vec<f32> = (0..mt).map(|r| a.data()[r * k + ki]).collect();
            let rhs_row: Vec<f32> = (0..nt).map(|c| b.data()[ki * nt + c]).collect();
            diva_tensor::outer_product_accumulate(&mut acc, &lhs_col, &rhs_row);
        }
        (acc, self.compute_cycles(k) + self.drain_cycles(mt))
    }

    /// Runs an arbitrary `(M, K) × (K, N)` GEMM by tiling over M and N.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn gemm(&self, a: &Tensor, b: &Tensor) -> GemmRun {
        let (m, k) = a.dims2();
        let (kb, n) = b.dims2();
        assert_eq!(k, kb, "inner dimension mismatch");
        let mut out = Tensor::zeros(&[m, n]);
        let mut cycles: u64 = 0;
        for m0 in (0..m).step_by(self.rows) {
            let mt = (m - m0).min(self.rows);
            let mut a_tile = Tensor::zeros(&[mt, k]);
            for r in 0..mt {
                let src = (m0 + r) * k;
                a_tile.data_mut()[r * k..(r + 1) * k].copy_from_slice(&a.data()[src..src + k]);
            }
            for n0 in (0..n).step_by(self.cols) {
                let nt = (n - n0).min(self.cols);
                let mut b_tile = Tensor::zeros(&[k, nt]);
                for kk in 0..k {
                    for c in 0..nt {
                        b_tile.data_mut()[kk * nt + c] = b.data()[kk * n + n0 + c];
                    }
                }
                let (tile_out, tile_cycles) = self.run_tile(&a_tile, &b_tile);
                cycles += tile_cycles;
                for r in 0..mt {
                    for c in 0..nt {
                        out.data_mut()[(m0 + r) * n + n0 + c] = tile_out.data()[r * nt + c];
                    }
                }
            }
        }
        let macs = (m * k * n) as u64;
        GemmRun::new(out, cycles, macs, (self.rows * self.cols) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_tensor::{matmul, DivaRng};

    #[test]
    fn single_tile_matches_reference() {
        let mut rng = DivaRng::seed_from_u64(8);
        let arr = OuterProductArray::new(4, 4, 4);
        let a = Tensor::uniform(&[4, 9], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[9, 3], -1.0, 1.0, &mut rng);
        let (out, cycles) = arr.run_tile(&a, &b);
        assert!(out.max_abs_diff(&matmul(&a, &b)) < 1e-4);
        assert_eq!(cycles, 9 + 1); // K cycles + ceil(4/4) drain
    }

    #[test]
    fn tiled_gemm_matches_reference() {
        let mut rng = DivaRng::seed_from_u64(9);
        let arr = OuterProductArray::new(4, 4, 2);
        let a = Tensor::uniform(&[10, 6], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[6, 11], -1.0, 1.0, &mut rng);
        let run = arr.gemm(&a, &b);
        assert!(run.output.max_abs_diff(&matmul(&a, &b)) < 1e-4);
    }

    #[test]
    fn throughput_is_independent_of_k() {
        // The headline property: a full (rows × cols) tile sustains
        // rows·cols MACs per compute cycle for any K.
        let mut rng = DivaRng::seed_from_u64(10);
        let arr = OuterProductArray::new(8, 8, 8);
        for k in [1usize, 2, 16, 64] {
            let a = Tensor::uniform(&[8, k], -1.0, 1.0, &mut rng);
            let b = Tensor::uniform(&[k, 8], -1.0, 1.0, &mut rng);
            let run = arr.gemm(&a, &b);
            let compute_only_util = run.macs as f64 / ((k as f64 + 1.0) * 64.0);
            assert!(
                (compute_only_util - k as f64 / (k as f64 + 1.0)).abs() < 1e-9,
                "K={k}: utilization {compute_only_util}"
            );
        }
    }

    #[test]
    fn beats_ws_on_skinny_gemms() {
        let mut rng = DivaRng::seed_from_u64(11);
        let op = OuterProductArray::new(8, 8, 8);
        let ws = crate::WsArray::new(8, 8, 8);
        let a = Tensor::uniform(&[64, 2], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[2, 8], -1.0, 1.0, &mut rng);
        let op_run = op.gemm(&a, &b);
        let ws_run = ws.gemm(&a, &b);
        assert!(op_run.utilization > ws_run.utilization);
    }
}
