//! Pipelined multi-level adder tree — the reduction primitive of DiVa's
//! post-processing unit (paper Figure 11).
//!
//! A tree of width `W` (a power of two) has `log₂W` pipeline stages. One
//! `W`-wide vector is accepted every clock; its scalar sum emerges
//! `log₂W` cycles later. Input loading is O(1) per vector and output
//! generation is O(log₂ E) — the property the paper contrasts against
//! vector-unit reductions that need repeated permutations.

/// A pipelined binary adder tree of fixed width.
#[derive(Clone, Debug)]
pub struct AdderTree {
    width: usize,
    levels: usize,
    /// One pipeline register file per level; `pipeline[l]` holds the
    /// partial sums that have completed `l+1` reduction stages.
    pipeline: Vec<Option<Vec<f64>>>,
}

impl AdderTree {
    /// Creates a tree reducing vectors of `width` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two or is less than 2.
    pub fn new(width: usize) -> Self {
        assert!(
            width >= 2 && width.is_power_of_two(),
            "adder tree width must be a power of two ≥ 2, got {width}"
        );
        let levels = width.trailing_zeros() as usize;
        Self {
            width,
            levels,
            pipeline: vec![None; levels],
        }
    }

    /// The number of input lanes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pipeline depth in cycles (`log₂ width` — 7 for the 128-wide trees of
    /// DiVa's default PPU).
    pub fn latency(&self) -> usize {
        self.levels
    }

    /// Advances the pipeline by one clock, optionally injecting a new input
    /// vector, and returns the completed sum (if one drained this cycle).
    ///
    /// # Panics
    ///
    /// Panics if `input` is provided with the wrong number of lanes.
    pub fn clock(&mut self, input: Option<&[f32]>) -> Option<f64> {
        // Drain the last stage first, then shift every stage forward.
        let output = self.pipeline[self.levels - 1]
            .take()
            .map(|v| v.into_iter().sum());
        for l in (1..self.levels).rev() {
            if let Some(prev) = self.pipeline[l - 1].take() {
                self.pipeline[l] = Some(reduce_once(&prev));
            }
        }
        self.pipeline[0] = input.map(|v| {
            assert_eq!(v.len(), self.width, "input width mismatch");
            let doubles: Vec<f64> = v.iter().map(|&x| f64::from(x)).collect();
            reduce_once(&doubles)
        });
        // A 2-wide tree reduces in its single stage; output above already
        // handled wider trees. For levels == 1 the stage we just filled
        // will drain on the next clock, which is consistent.
        output
    }

    /// Convenience: reduces a stream of vectors, returning their sums in
    /// order and the total cycle count (`n_vectors + latency`).
    ///
    /// # Panics
    ///
    /// Panics if any vector has the wrong width.
    pub fn reduce_stream(&mut self, vectors: &[Vec<f32>]) -> (Vec<f64>, u64) {
        let mut sums = Vec::with_capacity(vectors.len());
        let mut cycles: u64 = 0;
        for v in vectors {
            if let Some(s) = self.clock(Some(v)) {
                sums.push(s);
            }
            cycles += 1;
        }
        while sums.len() < vectors.len() {
            if let Some(s) = self.clock(None) {
                sums.push(s);
            }
            cycles += 1;
        }
        (sums, cycles)
    }
}

/// One tree level: pairwise adds, halving the vector length.
fn reduce_once(v: &[f64]) -> Vec<f64> {
    v.chunks(2).map(|c| c.iter().sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_match_sequential_reduction() {
        let mut tree = AdderTree::new(8);
        let vectors: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..8).map(|j| (i * 8 + j) as f32).collect())
            .collect();
        let (sums, _) = tree.reduce_stream(&vectors);
        for (i, s) in sums.iter().enumerate() {
            let expected: f64 = vectors[i].iter().map(|&x| f64::from(x)).sum();
            assert!((s - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn throughput_is_one_vector_per_cycle() {
        let mut tree = AdderTree::new(16);
        let vectors: Vec<Vec<f32>> = (0..100).map(|_| vec![1.0; 16]).collect();
        let (sums, cycles) = tree.reduce_stream(&vectors);
        assert_eq!(sums.len(), 100);
        // n + latency cycles: fully pipelined.
        assert_eq!(cycles, 100 + tree.latency() as u64);
    }

    #[test]
    fn latency_is_log2_width() {
        assert_eq!(AdderTree::new(128).latency(), 7); // the paper's 7-level tree
        assert_eq!(AdderTree::new(2).latency(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_width_panics() {
        let _ = AdderTree::new(6);
    }
}
