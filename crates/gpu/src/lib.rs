//! Analytical GPU performance model for the paper's Figure 17 comparison
//! (DiVa vs NVIDIA V100 and A100 running JAX with auto-vectorization).
//!
//! We obviously cannot run CUDA here; instead a roofline-style model
//! captures the effects that decide the comparison:
//!
//! * **Peak throughput** per precision (tensor cores vs CUDA cores).
//! * **Tile quantization**: tensor-core GEMMs execute in coarse tiles, so
//!   skinny/odd shapes waste lanes (the irregular per-example gradient
//!   problem again, in GPU form).
//! * **SM occupancy**: a GEMM must produce enough thread blocks to fill
//!   all SMs; *batched* GEMMs (JAX `vmap` over examples) multiply the block
//!   count — which is why GPUs handle MobileNet's many micro-GEMMs
//!   relatively well (the paper's noted exception).
//! * **Memory roofline** and a per-kernel launch overhead.
//!
//! # Example
//!
//! ```
//! use diva_arch::GemmShape;
//! use diva_gpu::{GpuModel, Precision};
//!
//! let v100 = GpuModel::v100();
//! let t = v100.batched_gemm_seconds(GemmShape::new(512, 16, 512), 32, Precision::Fp16TensorCore);
//! assert!(t > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use diva_arch::GemmShape;

/// GEMM execution precision on the GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// FP32 on CUDA cores (tensor cores disabled) — the paper's "GPU(FP32)".
    Fp32,
    /// FP16 on tensor cores — the paper's "GPU(FP16)".
    Fp16TensorCore,
}

impl Precision {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Precision::Fp32 => "FP32",
            Precision::Fp16TensorCore => "FP16",
        }
    }
}

/// An analytical GPU device model.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuModel {
    /// Device name.
    pub name: String,
    /// FP32 CUDA-core peak, TFLOPS.
    pub fp32_tflops: f64,
    /// FP16 tensor-core peak, TFLOPS.
    pub fp16_tflops: f64,
    /// Memory bandwidth, bytes/second.
    pub mem_bw_bytes_per_sec: f64,
    /// Streaming multiprocessor count.
    pub sms: u64,
    /// Fixed kernel-launch + framework overhead per launched kernel,
    /// seconds (JAX/XLA dispatch).
    pub kernel_overhead_s: f64,
}

impl GpuModel {
    /// NVIDIA V100 (32 GB): 15.7 FP32 / 125 FP16-TC TFLOPS, 900 GB/s
    /// (paper Section VI-D).
    pub fn v100() -> Self {
        Self {
            name: "V100".into(),
            fp32_tflops: 15.7,
            fp16_tflops: 125.0,
            mem_bw_bytes_per_sec: 900.0e9,
            sms: 80,
            kernel_overhead_s: 5.0e-6,
        }
    }

    /// NVIDIA A100 (40 GB): 19.5 FP32 / 312 FP16-TC TFLOPS, 1555 GB/s.
    pub fn a100() -> Self {
        Self {
            name: "A100".into(),
            fp32_tflops: 19.5,
            fp16_tflops: 312.0,
            mem_bw_bytes_per_sec: 1555.0e9,
            sms: 108,
            kernel_overhead_s: 5.0e-6,
        }
    }

    /// Peak TFLOPS for the given precision.
    pub fn peak_tflops(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Fp32 => self.fp32_tflops,
            Precision::Fp16TensorCore => self.fp16_tflops,
        }
    }

    /// Tile-quantization efficiency for one GEMM: the fraction of lanes in
    /// the rounded-up tile grid doing useful work.
    pub fn tile_efficiency(&self, shape: GemmShape, precision: Precision) -> f64 {
        // Tensor cores schedule coarse (M, N) macro-tiles with K in steps
        // of 16; CUDA-core SGEMM tiles are finer grained.
        let (gm, gk, gn) = match precision {
            Precision::Fp16TensorCore => (64, 16, 64),
            Precision::Fp32 => (32, 1, 32),
        };
        let rounded = |v: u64, g: u64| v.div_ceil(g) * g;
        let useful = shape.macs() as f64;
        let padded = (rounded(shape.m, gm) * rounded(shape.k, gk) * rounded(shape.n, gn)) as f64;
        if padded == 0.0 {
            0.0
        } else {
            useful / padded
        }
    }

    /// SM occupancy for a batched GEMM: thread blocks (128×128 output
    /// tiles × batch count) over the SM count, capped at 1.
    pub fn occupancy(&self, shape: GemmShape, count: u64) -> f64 {
        let blocks = shape.m.div_ceil(128) * shape.n.div_ceil(128) * count;
        (blocks as f64 / self.sms as f64).min(1.0)
    }

    /// Time to execute `count` independent GEMMs of identical shape as one
    /// batched kernel (the JAX `vmap` lowering the paper's baseline uses).
    ///
    /// Roofline: `max(flops / effective_peak, bytes / bandwidth)` plus one
    /// kernel overhead.
    pub fn batched_gemm_seconds(&self, shape: GemmShape, count: u64, precision: Precision) -> f64 {
        if shape.is_empty() || count == 0 {
            return 0.0;
        }
        let eff = self.tile_efficiency(shape, precision) * self.occupancy(shape, count);
        let flops = (shape.flops() * count) as f64;
        let effective_peak = self.peak_tflops(precision) * 1e12 * eff.max(1e-6);
        let compute_s = flops / effective_peak;

        let in_bytes = match precision {
            Precision::Fp32 => 4,
            Precision::Fp16TensorCore => 2,
        };
        let bytes = count
            * (shape.lhs_elems() * in_bytes + shape.rhs_elems() * in_bytes + shape.out_elems() * 4);
        let mem_s = bytes as f64 / self.mem_bw_bytes_per_sec;
        compute_s.max(mem_s) + self.kernel_overhead_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_beats_v100_on_big_gemms() {
        let shape = GemmShape::new(4096, 4096, 4096);
        let v = GpuModel::v100().batched_gemm_seconds(shape, 1, Precision::Fp16TensorCore);
        let a = GpuModel::a100().batched_gemm_seconds(shape, 1, Precision::Fp16TensorCore);
        assert!(a < v);
    }

    #[test]
    fn tensor_cores_beat_fp32_on_aligned_shapes() {
        let shape = GemmShape::new(2048, 2048, 2048);
        let gpu = GpuModel::v100();
        let tc = gpu.batched_gemm_seconds(shape, 1, Precision::Fp16TensorCore);
        let fp32 = gpu.batched_gemm_seconds(shape, 1, Precision::Fp32);
        assert!(tc < fp32 / 3.0);
    }

    #[test]
    fn tile_quantization_punishes_skinny_k_on_tensor_cores() {
        let gpu = GpuModel::v100();
        // K = 1 wastes 15/16 of each tensor-core K-step.
        let skinny = gpu.tile_efficiency(GemmShape::new(1024, 1, 1024), Precision::Fp16TensorCore);
        let square =
            gpu.tile_efficiency(GemmShape::new(1024, 1024, 1024), Precision::Fp16TensorCore);
        assert!(skinny <= 1.0 / 16.0 + 1e-9);
        assert!(square > 0.99);
    }

    #[test]
    fn batching_restores_occupancy_for_micro_gemms() {
        let gpu = GpuModel::v100();
        let micro = GemmShape::new(9, 16, 1);
        assert!(gpu.occupancy(micro, 1) < 0.02);
        assert!((gpu.occupancy(micro, 16_384) - 1.0).abs() < 1e-12);
        // And batching as one kernel amortizes the launch overhead: 16384
        // micro-GEMMs cost far less than 16384 × single-GEMM time.
        let batched = gpu.batched_gemm_seconds(micro, 16_384, Precision::Fp16TensorCore);
        let serial = 16_384.0 * gpu.batched_gemm_seconds(micro, 1, Precision::Fp16TensorCore);
        assert!(batched < serial / 100.0);
    }

    #[test]
    fn memory_bound_shapes_hit_the_bandwidth_roof() {
        let gpu = GpuModel::a100();
        // A huge, K=1 outer product is pure memory traffic.
        let shape = GemmShape::new(8192, 1, 8192);
        let t = gpu.batched_gemm_seconds(shape, 1, Precision::Fp16TensorCore);
        let bytes = (shape.lhs_elems() * 2 + shape.rhs_elems() * 2 + shape.out_elems() * 4) as f64;
        let mem_floor = bytes / gpu.mem_bw_bytes_per_sec;
        assert!(t >= mem_floor);
    }

    #[test]
    fn empty_work_costs_nothing() {
        let gpu = GpuModel::v100();
        assert_eq!(
            gpu.batched_gemm_seconds(GemmShape::new(0, 5, 5), 1, Precision::Fp32),
            0.0
        );
        assert_eq!(
            gpu.batched_gemm_seconds(GemmShape::new(5, 5, 5), 0, Precision::Fp32),
            0.0
        );
    }
}
