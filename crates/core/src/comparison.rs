//! Comparison helpers used by the figure-regeneration harness.

/// A labelled normalized value (one bar of a paper figure).
#[derive(Clone, Debug, PartialEq)]
pub struct SpeedupRow {
    /// Model name.
    pub model: String,
    /// Design point / configuration label.
    pub config: String,
    /// The normalized value (speedup, normalized energy, ...).
    pub value: f64,
}

/// Geometric mean of a set of strictly positive values.
///
/// Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive (geomean is undefined there — this
/// is always a harness bug).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean of non-positive value {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Normalizes `values` so the entry at `baseline_idx` becomes 1.0.
///
/// # Panics
///
/// Panics if `baseline_idx` is out of bounds or the baseline is zero.
pub fn normalize_to(values: &[f64], baseline_idx: usize) -> Vec<f64> {
    let base = values[baseline_idx];
    assert!(base != 0.0, "cannot normalize to a zero baseline");
    values.iter().map(|v| v / base).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_reciprocal_pair_is_one() {
        assert!((geomean(&[4.0, 0.25]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_singleton_is_identity() {
        assert!((geomean(&[7.5]) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn normalization_sets_baseline_to_one() {
        let n = normalize_to(&[2.0, 4.0, 8.0], 1);
        assert_eq!(n, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }
}
