//! The accelerator design points evaluated in the paper's Figures 13–16.

use diva_arch::{AcceleratorConfig, Dataflow};

/// The four hardware design points the paper compares (Figure 13):
/// the WS systolic baseline, an OS systolic array with the PPU attached,
/// and DiVa with/without its PPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DesignPoint {
    /// Weight-stationary systolic array (Google TPUv3-like baseline).
    /// Cannot host a PPU (Section IV-C).
    WsBaseline,
    /// Output-stationary systolic array with PPU.
    OsWithPpu,
    /// DiVa's outer-product engine without the PPU (ablation).
    DivaNoPpu,
    /// Full DiVa: outer-product engine + PPU.
    Diva,
}

impl DesignPoint {
    /// All design points in the paper's presentation order.
    pub const ALL: [DesignPoint; 4] = [
        DesignPoint::WsBaseline,
        DesignPoint::OsWithPpu,
        DesignPoint::DivaNoPpu,
        DesignPoint::Diva,
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            DesignPoint::WsBaseline => "WS",
            DesignPoint::OsWithPpu => "OS+PPU",
            DesignPoint::DivaNoPpu => "DiVa w/o PPU",
            DesignPoint::Diva => "DiVa",
        }
    }

    /// The Table II-scale accelerator configuration of this design point.
    pub fn config(&self) -> AcceleratorConfig {
        match self {
            DesignPoint::WsBaseline => AcceleratorConfig::tpu_v3_like(Dataflow::WeightStationary),
            DesignPoint::OsWithPpu => AcceleratorConfig::tpu_v3_like(Dataflow::OutputStationary),
            DesignPoint::DivaNoPpu => {
                let mut cfg = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
                cfg.has_ppu = false;
                cfg
            }
            DesignPoint::Diva => AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct),
        }
    }
}

impl std::fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_validate() {
        for dp in DesignPoint::ALL {
            assert!(dp.config().validate().is_ok(), "{dp} config invalid");
        }
    }

    #[test]
    fn ppu_flags_match_design_points() {
        assert!(!DesignPoint::WsBaseline.config().has_ppu);
        assert!(DesignPoint::OsWithPpu.config().has_ppu);
        assert!(!DesignPoint::DivaNoPpu.config().has_ppu);
        assert!(DesignPoint::Diva.config().has_ppu);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = DesignPoint::ALL.iter().map(|d| d.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }
}
