//! The **design-point layer**: the paper's four Figure 13 hardware points
//! as named presets, generalized to "preset + named parameter overrides"
//! so any point of the design space is constructible — from Rust or from
//! a plain string — without new code.
//!
//! * [`DesignPoint`] is the closed preset set the paper evaluates.
//! * [`DesignSpec`] is an open point: a base preset plus `(parameter,
//!   value)` overrides resolved through the `diva_arch::params` registry,
//!   with a derived (or explicit) label. `DesignSpec::parse` accepts the
//!   `preset[:key=value,...]` string form the CLI and scenario layer use.
//!
//! Everything is fallible with [`ConfigError`] — no panics on bad input.

use diva_arch::{params, AcceleratorConfig, ConfigError, Dataflow};

/// The four hardware design points the paper compares (Figure 13):
/// the WS systolic baseline, an OS systolic array with the PPU attached,
/// and DiVa with/without its PPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DesignPoint {
    /// Weight-stationary systolic array (Google TPUv3-like baseline).
    /// Cannot host a PPU (Section IV-C).
    WsBaseline,
    /// Output-stationary systolic array with PPU.
    OsWithPpu,
    /// DiVa's outer-product engine without the PPU (ablation).
    DivaNoPpu,
    /// Full DiVa: outer-product engine + PPU.
    Diva,
}

impl DesignPoint {
    /// All design points in the paper's presentation order.
    pub const ALL: [DesignPoint; 4] = [
        DesignPoint::WsBaseline,
        DesignPoint::OsWithPpu,
        DesignPoint::DivaNoPpu,
        DesignPoint::Diva,
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            DesignPoint::WsBaseline => "WS",
            DesignPoint::OsWithPpu => "OS+PPU",
            DesignPoint::DivaNoPpu => "DiVa w/o PPU",
            DesignPoint::Diva => "DiVa",
        }
    }

    /// The Table II-scale accelerator configuration of this design point.
    pub fn config(&self) -> AcceleratorConfig {
        match self {
            DesignPoint::WsBaseline => AcceleratorConfig::tpu_v3_like(Dataflow::WeightStationary),
            DesignPoint::OsWithPpu => AcceleratorConfig::tpu_v3_like(Dataflow::OutputStationary),
            DesignPoint::DivaNoPpu => {
                let mut cfg = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
                cfg.has_ppu = false;
                cfg
            }
            DesignPoint::Diva => AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct),
        }
    }

    /// Parses a preset name, matched case-insensitively with punctuation
    /// ignored, so `"ws"`, `"os+ppu"`, `"diva-w/o-ppu"` and `"DiVa"` all
    /// resolve.
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnknownPreset`] listing the known presets.
    pub fn parse(name: &str) -> Result<Self, ConfigError> {
        let wanted = norm(name);
        DesignPoint::ALL
            .into_iter()
            .find(|p| norm(p.label()) == wanted || norm_alias(&wanted) == norm(p.label()))
            .ok_or_else(|| ConfigError::UnknownPreset {
                name: name.to_string(),
                available: DesignPoint::ALL
                    .iter()
                    .map(|p| p.label())
                    .collect::<Vec<_>>()
                    .join(", "),
            })
    }
}

use diva_arch::norm_label as norm;

/// Extra spellings accepted for preset names.
fn norm_alias(normed: &str) -> &str {
    match normed {
        "wsbaseline" | "baseline" => "ws",
        "os" | "osppu" => "osppu",
        "divanoppu" => "divawoppu",
        other => other,
    }
}

impl std::fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An open design point: a base preset plus named parameter overrides
/// (resolved through the `diva_arch::params` registry) and a derived or
/// explicit label.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignSpec {
    /// The preset the overrides start from.
    pub base: DesignPoint,
    /// `(parameter name, value string)` overrides, applied in order.
    pub overrides: Vec<(String, String)>,
    /// Explicit label; `None` derives one from base + overrides.
    pub name: Option<String>,
}

impl DesignSpec {
    /// A spec that is exactly the preset.
    pub fn preset(base: DesignPoint) -> Self {
        Self {
            base,
            overrides: Vec::new(),
            name: None,
        }
    }

    /// Adds a parameter override (builder style). The name is checked at
    /// [`Self::config`] / [`Self::parse`] time, not here.
    pub fn with(mut self, param: impl Into<String>, value: impl Into<String>) -> Self {
        self.overrides.push((param.into(), value.into()));
        self
    }

    /// Sets an explicit label.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// The display label: the explicit name if set, the bare preset label
    /// when there are no overrides, otherwise `"<preset> k=v ..."`.
    pub fn label(&self) -> String {
        if let Some(name) = &self.name {
            return name.clone();
        }
        if self.overrides.is_empty() {
            return self.base.label().to_string();
        }
        let pins: Vec<String> = self
            .overrides
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{} {}", self.base.label(), pins.join(" "))
    }

    /// The canonical `preset[:key=value,...]` string form: exactly what
    /// [`Self::parse`] accepts, with the preset's display label and the
    /// overrides in application order. This is the design-space
    /// explorer's candidate identity (journal cell key): two specs with
    /// the same base and the same ordered overrides produce
    /// byte-identical strings, and `parse(spec_string())` round-trips
    /// (modulo an explicit `name`, which is display-only).
    pub fn spec_string(&self) -> String {
        if self.overrides.is_empty() {
            return self.base.label().to_string();
        }
        let pins: Vec<String> = self
            .overrides
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}:{}", self.base.label(), pins.join(","))
    }

    /// Builds the validated configuration: preset, overrides in order,
    /// then [`AcceleratorConfig::validate`].
    ///
    /// # Errors
    ///
    /// Any [`ConfigError`] from an unknown parameter name, a malformed
    /// value, or a constraint the overridden configuration violates.
    pub fn config(&self) -> Result<AcceleratorConfig, ConfigError> {
        let mut cfg = self.base.config();
        params::apply_overrides(&mut cfg, &self.overrides)?;
        Ok(cfg)
    }

    /// Parses the `preset[:key=value,...]` string form, e.g. `"ws"`,
    /// `"diva:drain_rows=4"` or `"diva:sram_mib=8,ppu=false"`. Parameter
    /// names are checked against the registry immediately so typos fail
    /// here (with the available-name list), not at build time.
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnknownPreset`], [`ConfigError::MalformedSpec`] or
    /// [`ConfigError::UnknownParameter`].
    pub fn parse(spec: &str) -> Result<Self, ConfigError> {
        let (preset, rest) = match spec.split_once(':') {
            Some((p, r)) => (p, Some(r)),
            None => (spec, None),
        };
        let mut out = Self::preset(DesignPoint::parse(preset.trim())?);
        if let Some(rest) = rest {
            for pair in rest.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| ConfigError::MalformedSpec(spec.to_string()))?;
                let key = key.trim();
                if !params::is_param(key) {
                    return Err(ConfigError::UnknownParameter(key.to_string()));
                }
                out.overrides
                    .push((key.to_string(), value.trim().to_string()));
            }
        }
        Ok(out)
    }
}

impl std::fmt::Display for DesignSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl From<DesignPoint> for DesignSpec {
    fn from(point: DesignPoint) -> Self {
        Self::preset(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_validate() {
        for dp in DesignPoint::ALL {
            assert!(dp.config().validate().is_ok(), "{dp} config invalid");
        }
    }

    #[test]
    fn ppu_flags_match_design_points() {
        assert!(!DesignPoint::WsBaseline.config().has_ppu);
        assert!(DesignPoint::OsWithPpu.config().has_ppu);
        assert!(!DesignPoint::DivaNoPpu.config().has_ppu);
        assert!(DesignPoint::Diva.config().has_ppu);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = DesignPoint::ALL.iter().map(|d| d.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn preset_names_parse_with_aliases() {
        assert_eq!(DesignPoint::parse("ws").unwrap(), DesignPoint::WsBaseline);
        assert_eq!(DesignPoint::parse("WS").unwrap(), DesignPoint::WsBaseline);
        assert_eq!(
            DesignPoint::parse("baseline").unwrap(),
            DesignPoint::WsBaseline
        );
        assert_eq!(
            DesignPoint::parse("os+ppu").unwrap(),
            DesignPoint::OsWithPpu
        );
        assert_eq!(DesignPoint::parse("os").unwrap(), DesignPoint::OsWithPpu);
        assert_eq!(DesignPoint::parse("diva").unwrap(), DesignPoint::Diva);
        assert_eq!(
            DesignPoint::parse("diva-w/o-ppu").unwrap(),
            DesignPoint::DivaNoPpu
        );
        assert_eq!(
            DesignPoint::parse("diva-no-ppu").unwrap(),
            DesignPoint::DivaNoPpu
        );
        let err = DesignPoint::parse("tpu").unwrap_err();
        assert!(err.to_string().contains("DiVa"), "{err}");
    }

    #[test]
    fn spec_parse_builds_overridden_configs() {
        let spec = DesignSpec::parse("diva:drain_rows=4, sram_mib=8").unwrap();
        assert_eq!(spec.base, DesignPoint::Diva);
        let cfg = spec.config().unwrap();
        assert_eq!(cfg.drain_rows_per_cycle, 4);
        assert_eq!(cfg.sram_bytes, 8 << 20);
        assert_eq!(spec.label(), "DiVa drain_rows=4 sram_mib=8");
        // A bare preset keeps the paper's label.
        assert_eq!(DesignSpec::parse("ws").unwrap().label(), "WS");
        // Explicit names win.
        assert_eq!(
            DesignSpec::parse("diva:drain_rows=4")
                .unwrap()
                .named("fast-drain")
                .label(),
            "fast-drain"
        );
    }

    #[test]
    fn spec_parse_rejects_bad_input_without_panicking() {
        assert!(matches!(
            DesignSpec::parse("tpu:drain_rows=4"),
            Err(ConfigError::UnknownPreset { .. })
        ));
        assert!(matches!(
            DesignSpec::parse("diva:drain_rows"),
            Err(ConfigError::MalformedSpec(_))
        ));
        let err = DesignSpec::parse("diva:dram_rows=4").unwrap_err();
        assert!(matches!(err, ConfigError::UnknownParameter(_)));
        assert!(err.to_string().contains("drain_rows"), "{err}");
        // Out-of-range values surface at config() time as ConfigError.
        let spec = DesignSpec::parse("diva:drain_rows=4096").unwrap();
        assert_eq!(
            spec.config().unwrap_err(),
            ConfigError::InvalidDrainRate(4096)
        );
    }

    #[test]
    fn spec_string_round_trips_through_parse() {
        for dp in DesignPoint::ALL {
            let spec = DesignSpec::preset(dp).with("drain_rows", "4");
            let round = DesignSpec::parse(&spec.spec_string()).unwrap();
            assert_eq!(round.base, spec.base);
            assert_eq!(round.overrides, spec.overrides);
            assert_eq!(round.spec_string(), spec.spec_string());
        }
        assert_eq!(DesignSpec::preset(DesignPoint::Diva).spec_string(), "DiVa");
        assert_eq!(
            DesignSpec::preset(DesignPoint::WsBaseline)
                .with("sram_mib", "8")
                .with("ppu", "false")
                .spec_string(),
            "WS:sram_mib=8,ppu=false"
        );
    }

    #[test]
    fn spec_round_trips_presets() {
        for dp in DesignPoint::ALL {
            let spec = DesignSpec::parse(dp.label()).unwrap();
            assert_eq!(spec, DesignSpec::preset(dp));
            assert_eq!(spec.config().unwrap(), dp.config());
        }
    }
}
