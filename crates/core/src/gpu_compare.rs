//! The Figure 17 comparison: DiVa vs GPUs on DP-SGD's backpropagation
//! bottleneck GEMMs.
//!
//! The paper compares "those key GEMM operations that constitute DP-SGD's
//! backpropagation bottleneck stages" — the per-example weight-gradient
//! GEMMs — on DiVa against V100/A100 running JAX with auto-vectorization
//! (per-example gradients lowered to batched GEMM kernels).

use diva_arch::{Phase, TrainingOpKind};
use diva_gpu::{GpuModel, Precision};
use diva_workload::{Algorithm, ModelSpec};

use crate::accelerator::Accelerator;

/// The phases counted as "DP-SGD backpropagation bottleneck stages".
pub fn bottleneck_phases() -> [Phase; 2] {
    [Phase::BwdPerExampleGrad, Phase::BwdGradNorm]
}

/// One Figure 17 data point.
#[derive(Clone, Debug, PartialEq)]
pub struct BottleneckComparison {
    /// Model name.
    pub model: String,
    /// Device label ("V100 (FP32)", "DiVa (BF16)", ...).
    pub device: String,
    /// Time in seconds for the bottleneck GEMMs of one training step.
    pub seconds: f64,
}

/// Time for a GPU to execute the DP-SGD bottleneck GEMMs of one training
/// step of `model` at batch `batch`: every per-example weight-gradient GEMM
/// is dispatched as one batched kernel (the JAX `vmap` lowering).
pub fn bottleneck_gpu_seconds(
    model: &ModelSpec,
    batch: u64,
    gpu: &GpuModel,
    precision: Precision,
) -> f64 {
    let ops = model.lower(Algorithm::DpSgdReweighted, batch);
    ops.iter()
        .filter(|op| op.phase == Phase::BwdPerExampleGrad)
        .map(|op| match &op.kind {
            TrainingOpKind::Gemm { shape, count, .. } => {
                gpu.batched_gemm_seconds(*shape, *count, precision)
            }
            // Embedding scatter traffic: bandwidth-bound on the GPU too.
            TrainingOpKind::Vector {
                read_bytes,
                write_bytes,
                ..
            } => (*read_bytes + *write_bytes) as f64 / gpu.mem_bw_bytes_per_sec,
        })
        .sum()
}

/// Time for an accelerator design point to execute the same bottleneck
/// stages (per-example gradients + norm derivation).
pub fn bottleneck_accel_seconds(accel: &Accelerator, model: &ModelSpec, batch: u64) -> f64 {
    let report = accel.run(model, Algorithm::DpSgdReweighted, batch);
    let cycles: u64 = bottleneck_phases()
        .iter()
        .map(|&p| report.timing.phase_cycles(p))
        .sum();
    accel.simulator().cycles_to_seconds(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_point::DesignPoint;
    use diva_workload::zoo;

    #[test]
    fn diva_is_competitive_despite_lower_peak() {
        // Figure 17's point: DiVa (29.5 peak TFLOPS) lands in the same
        // league as V100 tensor cores (125 TFLOPS) on these GEMMs.
        let model = zoo::resnet50();
        let batch = 32;
        let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
        let t_diva = bottleneck_accel_seconds(&diva, &model, batch);
        let t_v100 =
            bottleneck_gpu_seconds(&model, batch, &GpuModel::v100(), Precision::Fp16TensorCore);
        let ratio = t_v100 / t_diva;
        assert!(
            ratio > 0.3 && ratio < 30.0,
            "DiVa vs V100 ratio {ratio} out of plausible band"
        );
    }

    #[test]
    fn fp32_is_slower_than_tensor_cores_for_bottleneck_gemms() {
        let model = zoo::bert_base();
        let fp32 = bottleneck_gpu_seconds(&model, 8, &GpuModel::v100(), Precision::Fp32);
        let fp16 = bottleneck_gpu_seconds(&model, 8, &GpuModel::v100(), Precision::Fp16TensorCore);
        assert!(fp16 < fp32);
    }

    #[test]
    fn bottleneck_time_is_a_fraction_of_total() {
        let model = zoo::vgg16();
        let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
        let total = diva.run(&model, Algorithm::DpSgdReweighted, 16).seconds;
        let bottleneck = bottleneck_accel_seconds(&diva, &model, 16);
        assert!(bottleneck > 0.0);
        assert!(bottleneck <= total);
    }
}
