//! Shared parsing for `--set`/`--sweep`-style parameter assignments.
//!
//! Both front ends over the scenario runner — the `diva-report` CLI and
//! the `diva-serve` HTTP service — accept design-space overrides as
//! `KEY=VALUE` (one override) and `KEY=V1,V2,...` (an ad-hoc sweep axis).
//! Before this module each front end split and validated the spec itself,
//! so the same typo produced differently-worded errors depending on the
//! entry point. These functions are the single path: split, trim,
//! validate the parameter name against the `diva_arch::params` registry,
//! and surface failures as [`ConfigError`] rendered through
//! [`config_message`] so every surface prints the identical text.

use diva_arch::{params, ConfigError};

/// Parses a `--set` assignment `KEY=VALUE` into a trimmed `(key, value)`
/// pair, validating `KEY` against the parameter registry.
///
/// # Errors
///
/// [`ConfigError::MalformedAssignment`] when the spec is not `KEY=VALUE`,
/// [`ConfigError::UnknownParameter`] when `KEY` is not registered (the
/// message lists every registered name).
pub fn parse_set_spec(spec: &str) -> Result<(String, String), ConfigError> {
    const USAGE: &str = "KEY=VALUE";
    let (key, value) = spec.split_once('=').ok_or_else(|| malformed(spec, USAGE))?;
    let (key, value) = (key.trim(), value.trim());
    if key.is_empty() || value.is_empty() {
        return Err(malformed(spec, USAGE));
    }
    check_param(key)?;
    Ok((key.to_string(), value.to_string()))
}

/// Parses a `--sweep` assignment `KEY=V1,V2,...` into a trimmed
/// `(key, values)` pair, validating `KEY` against the parameter registry.
/// Empty list entries are dropped; an all-empty list is malformed.
///
/// # Errors
///
/// Same taxonomy as [`parse_set_spec`].
pub fn parse_sweep_spec(spec: &str) -> Result<(String, Vec<String>), ConfigError> {
    const USAGE: &str = "KEY=V1,V2,...";
    let (key, values) = spec.split_once('=').ok_or_else(|| malformed(spec, USAGE))?;
    let key = key.trim();
    let values: Vec<String> = values
        .split(',')
        .map(str::trim)
        .filter(|v| !v.is_empty())
        .map(str::to_string)
        .collect();
    if key.is_empty() || values.is_empty() {
        return Err(malformed(spec, USAGE));
    }
    check_param(key)?;
    Ok((key.to_string(), values))
}

/// Renders a [`ConfigError`] as the one user-facing message both the CLI
/// and the HTTP service print, matching the framing the scenario runner
/// uses for registry-rejected overrides (`ScenarioError::Config`).
pub fn config_message(err: &ConfigError) -> String {
    format!("configuration error: {err}")
}

fn malformed(spec: &str, usage: &'static str) -> ConfigError {
    ConfigError::MalformedAssignment {
        spec: spec.to_string(),
        usage,
    }
}

fn check_param(key: &str) -> Result<(), ConfigError> {
    if params::is_param(key) {
        Ok(())
    } else {
        Err(ConfigError::UnknownParameter(key.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_spec_parses_and_trims() {
        assert_eq!(
            parse_set_spec(" sram_mib = 8 ").unwrap(),
            ("sram_mib".to_string(), "8".to_string())
        );
    }

    #[test]
    fn set_spec_rejects_malformed_and_unknown() {
        let err = parse_set_spec("sram_mib").unwrap_err();
        assert!(config_message(&err).contains("want KEY=VALUE"), "{err}");
        assert!(parse_set_spec("=8").is_err());
        assert!(parse_set_spec("sram_mib=").is_err());
        let err = parse_set_spec("sram_gb=8").unwrap_err();
        let msg = config_message(&err);
        assert!(msg.starts_with("configuration error: unknown parameter"));
        assert!(msg.contains("sram_mib"), "lists registry names: {msg}");
    }

    #[test]
    fn sweep_spec_parses_lists() {
        assert_eq!(
            parse_sweep_spec("drain_rows=2, 4,8,").unwrap(),
            (
                "drain_rows".to_string(),
                vec!["2".to_string(), "4".to_string(), "8".to_string()]
            )
        );
        assert!(parse_sweep_spec("drain_rows=,").is_err());
        assert!(parse_sweep_spec("nope=1,2").is_err());
    }
}
