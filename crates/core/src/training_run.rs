//! Whole-training-run estimation: the performance, energy and privacy
//! stacks joined into the question a practitioner actually asks —
//! *"what does it cost, in hours, joules and ε, to train this model
//! privately on this accelerator?"*
//!
//! This is the downstream workflow the paper motivates: DiVa's cheaper
//! DP-SGD steps let you train longer (more steps ⇒ better accuracy) inside
//! the same wall-clock budget, at the same privacy cost per step.

use diva_dp::{event_epsilon, AccountantKind, DpEvent};
use diva_workload::{Algorithm, ModelSpec};

use crate::accelerator::Accelerator;

/// A training-run specification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainingRunPlan {
    /// Number of examples in the training set (e.g. 50,000 for CIFAR-10).
    pub dataset_size: u64,
    /// Mini-batch size per step.
    pub batch: u64,
    /// Number of epochs.
    pub epochs: u64,
    /// DP noise multiplier σ (ignored for non-private training).
    pub noise_multiplier: f64,
    /// Target δ for the (ε, δ) report.
    pub delta: f64,
}

impl TrainingRunPlan {
    /// Total optimizer steps: `epochs × ⌈dataset / batch⌉`.
    pub fn steps(&self) -> u64 {
        self.epochs * self.dataset_size.div_ceil(self.batch)
    }

    /// The Poisson sampling rate `q = batch / dataset`.
    pub fn sampling_rate(&self) -> f64 {
        self.batch as f64 / self.dataset_size as f64
    }
}

/// The estimated cost of a training run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainingRunEstimate {
    /// Optimizer steps executed.
    pub steps: u64,
    /// Wall-clock seconds on the accelerator.
    pub seconds: f64,
    /// Total energy in joules.
    pub energy_joules: f64,
    /// Privacy cost ε at the plan's δ, under the PLD accountant — the
    /// tight number to publish (`None` for non-private training).
    pub epsilon: Option<f64>,
    /// ε under the classic RDP (moments) accountant, kept alongside for
    /// comparability with the literature; always ≥ `epsilon`.
    pub epsilon_rdp: Option<f64>,
}

impl TrainingRunEstimate {
    /// Wall-clock hours.
    pub fn hours(&self) -> f64 {
        self.seconds / 3600.0
    }

    /// Energy in watt-hours.
    pub fn watt_hours(&self) -> f64 {
        self.energy_joules / 3600.0
    }
}

impl Accelerator {
    /// Estimates the full cost of training `model` under `algorithm` per
    /// `plan`: one step is simulated and scaled by the step count; privacy
    /// is accounted through the `diva_dp` engine at the plan's sampling
    /// rate, under both the PLD (reported as `epsilon`) and RDP
    /// (`epsilon_rdp`) accountants.
    ///
    /// # Panics
    ///
    /// Panics if the plan is degenerate (zero batch/dataset/epochs, or a
    /// batch larger than the dataset), or — with the accounting error's
    /// message — if the accounting engine rejects the plan's privacy
    /// parameters (e.g. a non-finite σ or δ outside `(0, 1)`).
    pub fn estimate_training_run(
        &self,
        model: &ModelSpec,
        algorithm: Algorithm,
        plan: &TrainingRunPlan,
    ) -> TrainingRunEstimate {
        assert!(plan.batch > 0 && plan.dataset_size > 0 && plan.epochs > 0);
        assert!(
            plan.batch <= plan.dataset_size,
            "batch {} exceeds dataset {}",
            plan.batch,
            plan.dataset_size
        );
        let step = self.run(model, algorithm, plan.batch);
        let steps = plan.steps();
        let (epsilon, epsilon_rdp) = if algorithm.is_private() && plan.noise_multiplier > 0.0 {
            let event = DpEvent::dp_sgd(plan.sampling_rate(), plan.noise_multiplier, steps);
            let eps = |kind| match event_epsilon(kind, &event, plan.delta) {
                Ok(e) => e,
                Err(err) => panic!("privacy accounting failed for plan {plan:?}: {err}"),
            };
            (
                Some(eps(AccountantKind::Pld)),
                Some(eps(AccountantKind::Rdp)),
            )
        } else {
            (None, None)
        };
        TrainingRunEstimate {
            steps,
            seconds: step.seconds * steps as f64,
            energy_joules: step.energy.total() * steps as f64,
            epsilon,
            epsilon_rdp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_point::DesignPoint;
    use diva_workload::zoo;

    fn cifar_plan() -> TrainingRunPlan {
        TrainingRunPlan {
            dataset_size: 50_000,
            batch: 64,
            epochs: 10,
            noise_multiplier: 1.1,
            delta: 1e-5,
        }
    }

    #[test]
    fn private_runs_report_epsilon_sgd_does_not() {
        let model = zoo::squeezenet();
        let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
        let dp = diva.estimate_training_run(&model, Algorithm::DpSgdReweighted, &cifar_plan());
        let sgd = diva.estimate_training_run(&model, Algorithm::Sgd, &cifar_plan());
        assert!(dp.epsilon.is_some());
        assert!(sgd.epsilon.is_none());
        assert!(sgd.epsilon_rdp.is_none());
        let eps = dp.epsilon.unwrap();
        assert!(eps > 0.0 && eps < 50.0, "epsilon {eps}");
        // The published (PLD) epsilon is the tight one.
        let eps_rdp = dp.epsilon_rdp.unwrap();
        assert!(eps <= eps_rdp, "pld {eps} vs rdp {eps_rdp}");
    }

    #[test]
    fn diva_shrinks_the_wall_clock_not_the_privacy_cost() {
        // Same plan on WS and DiVa: ε identical (it is a property of the
        // algorithm), time and energy much lower on DiVa.
        let model = zoo::squeezenet();
        let plan = cifar_plan();
        let ws = Accelerator::from_design_point(DesignPoint::WsBaseline)
            .unwrap()
            .estimate_training_run(&model, Algorithm::DpSgdReweighted, &plan);
        let diva = Accelerator::from_design_point(DesignPoint::Diva)
            .unwrap()
            .estimate_training_run(&model, Algorithm::DpSgdReweighted, &plan);
        assert_eq!(ws.epsilon, diva.epsilon);
        assert_eq!(ws.steps, diva.steps);
        assert!(diva.seconds < ws.seconds);
        assert!(diva.energy_joules < ws.energy_joules);
    }

    #[test]
    fn epsilon_grows_with_epochs() {
        let model = zoo::lstm_small();
        let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
        let mut plan = cifar_plan();
        let e10 = diva
            .estimate_training_run(&model, Algorithm::DpSgd, &plan)
            .epsilon
            .unwrap();
        plan.epochs = 40;
        let e40 = diva
            .estimate_training_run(&model, Algorithm::DpSgd, &plan)
            .epsilon
            .unwrap();
        assert!(e40 > e10);
    }

    #[test]
    fn step_accounting_is_exact() {
        let plan = TrainingRunPlan {
            dataset_size: 1000,
            batch: 64,
            epochs: 3,
            noise_multiplier: 1.0,
            delta: 1e-5,
        };
        // ceil(1000/64) = 16 steps per epoch.
        assert_eq!(plan.steps(), 48);
        assert!((plan.sampling_rate() - 0.064).abs() < 1e-12);
    }
}
