//! **DiVa** — an accelerator for differentially private machine learning,
//! reproduced as a library (Park, Hwang, Yoon, Choi, Rhu; MICRO 2022).
//!
//! This crate assembles the paper's contribution from the substrate crates:
//!
//! * the **outer-product GEMM engine** (robust to the irregular, small-K
//!   per-example weight-gradient GEMMs of DP-SGD, Section IV-B),
//! * the **post-processing unit** (eight pipelined 7-level adder trees that
//!   derive gradient norms on the fly during output drain, Section IV-C),
//! * the **baseline accelerators** (weight- and output-stationary systolic
//!   arrays at Google TPUv3 scale, Table II),
//! * and the **evaluation machinery**: running a lowered training step of
//!   any zoo model on any design point yields cycle counts, per-phase
//!   breakdowns, DRAM traffic, utilization and energy.
//!
//! # Quickstart
//!
//! ```
//! use diva_core::{Accelerator, DesignPoint};
//! use diva_workload::{zoo, Algorithm};
//!
//! let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
//! let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();
//! let model = zoo::squeezenet();
//!
//! let fast = diva.run(&model, Algorithm::DpSgdReweighted, 32);
//! let slow = ws.run(&model, Algorithm::DpSgdReweighted, 32);
//! assert!(fast.seconds < slow.seconds); // the paper's headline result
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
mod comparison;
mod design_point;
mod gpu_compare;
pub mod spec;
mod training_run;

pub use accelerator::{Accelerator, RunReport};
pub use comparison::{geomean, normalize_to, SpeedupRow};
pub use design_point::{DesignPoint, DesignSpec};
pub use gpu_compare::{
    bottleneck_accel_seconds, bottleneck_gpu_seconds, bottleneck_phases, BottleneckComparison,
};
pub use training_run::{TrainingRunEstimate, TrainingRunPlan};

// Re-export the substrate types users need to drive the API.
pub use diva_arch::{params, AcceleratorConfig, ConfigError, Dataflow, GemmShape, Phase};
pub use diva_energy::{EnergyModel, EnergyReport};
pub use diva_sim::{Simulator, StepTiming};
pub use diva_workload::{Algorithm, ModelSpec};
