//! The assembled accelerator: simulator + energy model + reporting.

use diva_arch::{AcceleratorConfig, ConfigError, Phase};
use diva_energy::{EnergyModel, EnergyReport};
use diva_sim::{Simulator, StepTiming};
use diva_workload::{Algorithm, ModelSpec};

use crate::design_point::{DesignPoint, DesignSpec};

/// A fully configured accelerator that can execute (simulate) training
/// steps of any zoo model under any of the three training algorithms.
#[derive(Clone, Debug)]
pub struct Accelerator {
    name: String,
    simulator: Simulator,
    energy_model: EnergyModel,
}

/// The result of simulating one training step.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Accelerator name (design-point label).
    pub accelerator: String,
    /// Model name.
    pub model: String,
    /// Training algorithm.
    pub algorithm: Algorithm,
    /// Mini-batch size.
    pub batch: u64,
    /// Full per-op / per-phase timing.
    pub timing: StepTiming,
    /// Wall-clock seconds for one step at the configured frequency.
    pub seconds: f64,
    /// Energy breakdown for the step.
    pub energy: EnergyReport,
    /// Whole-step FLOPS utilization (the Figure 7 metric).
    pub flops_utilization: f64,
}

impl RunReport {
    /// Speedup of `self` relative to `baseline` (>1 means `self` is faster).
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        baseline.seconds / self.seconds
    }

    /// Energy of `baseline` relative to `self` (>1 means `self` uses less).
    pub fn energy_reduction_vs(&self, baseline: &RunReport) -> f64 {
        baseline.energy.total() / self.energy.total()
    }

    /// Cycles spent in one phase.
    pub fn phase_cycles(&self, phase: Phase) -> u64 {
        self.timing.phase_cycles(phase)
    }

    /// Per-phase FLOPS utilization.
    pub fn phase_utilization(&self, phase: Phase, pe_macs: u64) -> f64 {
        self.timing.phase_utilization(phase, pe_macs)
    }

    /// Flattens the report into a stable list of named numeric metrics —
    /// the bridge the scenario layer (`diva_bench::scenario`) turns into
    /// result cells and machine-readable report rows.
    ///
    /// The metric set is schema-stable: every phase of [`Phase::ALL`]
    /// contributes its `cycles_*` and `dram_bytes_*` entries even when
    /// zero, so columns never appear or vanish with the workload.
    pub fn flat_metrics(&self) -> Vec<(String, f64)> {
        let mut metrics: Vec<(String, f64)> = vec![
            ("seconds".into(), self.seconds),
            ("total_cycles".into(), self.timing.total_cycles() as f64),
            ("total_macs".into(), self.timing.total_macs() as f64),
            ("dram_bytes".into(), self.timing.total_dram_bytes() as f64),
            ("sram_bytes".into(), self.timing.total_sram_bytes() as f64),
            ("flops_utilization".into(), self.flops_utilization),
            ("energy_j".into(), self.energy.total()),
            ("energy_engine_j".into(), self.energy.engine_j),
            ("energy_ppu_j".into(), self.energy.ppu_j),
            ("energy_sram_j".into(), self.energy.sram_j),
            ("energy_dram_j".into(), self.energy.dram_j),
            ("energy_uncore_j".into(), self.energy.uncore_j),
        ];
        for phase in Phase::ALL {
            metrics.push((
                format!("cycles_{}", phase.slug()),
                self.timing.phase_cycles(phase) as f64,
            ));
            metrics.push((
                format!("dram_bytes_{}", phase.slug()),
                self.timing.phase_dram_bytes(phase) as f64,
            ));
        }
        metrics
    }
}

impl Accelerator {
    /// Builds one of the paper's design points at Table II scale.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the preset configuration fails
    /// validation (presets are valid by construction and pinned by tests,
    /// so in practice this is infallible — but the design-point layer is
    /// `Result` everywhere rather than panicking).
    pub fn from_design_point(point: DesignPoint) -> Result<Self, ConfigError> {
        Self::from_config(point.label(), point.config())
    }

    /// Builds an accelerator from a preset-plus-overrides [`DesignSpec`],
    /// named with the spec's label.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for an unknown parameter name, a
    /// malformed value, or an overridden configuration that fails
    /// validation.
    pub fn from_spec(spec: &DesignSpec) -> Result<Self, ConfigError> {
        Self::from_config(spec.label(), spec.config()?)
    }

    /// A copy of this accelerator with `(parameter, value)` overrides
    /// applied to its configuration (resolved through the
    /// `diva_arch::params` registry) — the scenario layer's config-axis
    /// materialization path. The name is preserved.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for an unknown parameter name, a
    /// malformed value, or an invalid resulting configuration.
    pub fn with_overrides<K: AsRef<str>, V: AsRef<str>>(
        &self,
        overrides: &[(K, V)],
    ) -> Result<Self, ConfigError> {
        let mut config = self.config().clone();
        diva_arch::params::apply_overrides(&mut config, overrides)?;
        Self::from_config(self.name.clone(), config)
    }

    /// Builds an accelerator from a custom configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is inconsistent.
    pub fn from_config(
        name: impl Into<String>,
        config: AcceleratorConfig,
    ) -> Result<Self, ConfigError> {
        Ok(Self {
            name: name.into(),
            simulator: Simulator::new(config)?,
            energy_model: EnergyModel::calibrated(),
        })
    }

    /// The accelerator's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying analytic simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.simulator
    }

    /// The underlying configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        self.simulator.config()
    }

    /// Simulates one training step of `model` under `algorithm` with
    /// mini-batch `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn run(&self, model: &ModelSpec, algorithm: Algorithm, batch: u64) -> RunReport {
        let ops = model.lower(algorithm, batch);
        let timing = self.simulator.time_step(&ops);
        let seconds = self.simulator.cycles_to_seconds(timing.total_cycles());
        let energy = self.energy_model.step_energy(self.config(), &timing);
        let flops_utilization = timing.flops_utilization(self.config().pe.macs());
        RunReport {
            accelerator: self.name.clone(),
            model: model.name.clone(),
            algorithm,
            batch,
            timing,
            seconds,
            energy,
            flops_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_workload::zoo;

    #[test]
    fn diva_beats_ws_on_dp_training() {
        // The headline claim, on a small model for test speed.
        let model = zoo::squeezenet();
        let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
        let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();
        let fast = diva.run(&model, Algorithm::DpSgdReweighted, 32);
        let slow = ws.run(&model, Algorithm::DpSgdReweighted, 32);
        let speedup = fast.speedup_vs(&slow);
        assert!(speedup > 1.5, "DiVa speedup only {speedup:.2}x");
    }

    #[test]
    fn ppu_matters() {
        let model = zoo::squeezenet();
        let full = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
        let ablated = Accelerator::from_design_point(DesignPoint::DivaNoPpu).unwrap();
        let with = full.run(&model, Algorithm::DpSgdReweighted, 32);
        let without = ablated.run(&model, Algorithm::DpSgdReweighted, 32);
        assert!(with.seconds < without.seconds);
        // The PPU specifically kills grad-norm time.
        assert_eq!(with.phase_cycles(Phase::BwdGradNorm), 0);
        assert!(without.phase_cycles(Phase::BwdGradNorm) > 0);
    }

    #[test]
    fn dp_sgd_slower_than_sgd_on_baseline() {
        let model = zoo::squeezenet();
        let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();
        let sgd = ws.run(&model, Algorithm::Sgd, 32);
        let dp = ws.run(&model, Algorithm::DpSgd, 32);
        let dpr = ws.run(&model, Algorithm::DpSgdReweighted, 32);
        assert!(dp.seconds > 2.0 * sgd.seconds);
        // The paper's Section III-B: DP-SGD(R) outperforms DP-SGD on the
        // baseline despite its second backprop pass.
        assert!(dpr.seconds < dp.seconds);
    }

    #[test]
    fn reports_are_self_consistent() {
        let model = zoo::lstm_small();
        let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
        let r = diva.run(&model, Algorithm::DpSgdReweighted, 16);
        assert_eq!(r.accelerator, "DiVa");
        assert_eq!(r.model, "LSTM-small");
        assert!(r.seconds > 0.0);
        assert!(r.energy.total() > 0.0);
        assert!(r.flops_utilization > 0.0 && r.flops_utilization <= 1.0);
        assert!((r.speedup_vs(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flat_metrics_are_schema_stable_and_consistent() {
        let model = zoo::lstm_small();
        let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
        let sgd = diva.run(&model, Algorithm::Sgd, 8);
        let dpr = diva.run(&model, Algorithm::DpSgdReweighted, 8);
        let keys = |r: &RunReport| -> Vec<String> {
            r.flat_metrics().into_iter().map(|(k, _)| k).collect()
        };
        // Same columns regardless of which phases the workload exercises.
        assert_eq!(keys(&sgd), keys(&dpr));
        let get = |r: &RunReport, k: &str| -> f64 {
            r.flat_metrics()
                .into_iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing metric {k}"))
        };
        assert_eq!(get(&dpr, "seconds"), dpr.seconds);
        assert_eq!(get(&dpr, "energy_j"), dpr.energy.total());
        assert_eq!(
            get(&dpr, "cycles_fwd"),
            dpr.phase_cycles(Phase::Forward) as f64
        );
        // SGD never runs the second activation-grad pass; the column still
        // exists and reads zero.
        assert_eq!(get(&sgd, "cycles_bwd_act_grad2"), 0.0);
    }

    #[test]
    fn custom_config_rejects_garbage() {
        let mut bad = DesignPoint::Diva.config();
        bad.sram_bytes = 0;
        assert!(Accelerator::from_config("broken", bad).is_err());
    }
}
