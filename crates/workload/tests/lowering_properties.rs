//! Property-style tests of the workload lowering and memory model over
//! random batch sizes and models. Cases are drawn from a seeded generator
//! (the approved dependency set has no proptest), so every run checks the
//! same deterministic sample of the space.

use diva_arch::{Phase, TrainingOpKind};
use diva_tensor::DivaRng;
use diva_workload::{zoo, Algorithm};

const CASES: usize = 16;

fn models() -> Vec<diva_workload::ModelSpec> {
    zoo::all_models()
}

/// Forward MACs scale exactly linearly with the batch size.
#[test]
fn forward_macs_linear_in_batch() {
    let models = models();
    let mut rng = DivaRng::seed_from_u64(0x10e1);
    for _ in 0..CASES {
        let model = &models[rng.index(9)];
        let b = 1 + rng.index(63) as u64;
        let fwd = |batch: u64| -> u64 {
            model
                .lower(Algorithm::Sgd, batch)
                .iter()
                .filter(|o| o.phase == Phase::Forward)
                .map(|o| o.macs())
                .sum()
        };
        assert_eq!(fwd(b) * 2, fwd(2 * b), "{} b={b}", model.name);
    }
}

/// Per-example GEMM *shapes* are batch-invariant; only counts scale.
#[test]
fn per_example_shapes_batch_invariant() {
    let models = models();
    let mut rng = DivaRng::seed_from_u64(0x10e2);
    for _ in 0..CASES {
        let model = &models[rng.index(9)];
        let b = 1 + rng.index(31) as u64;
        let shapes = |batch: u64| -> Vec<_> {
            model
                .lower(Algorithm::DpSgd, batch)
                .iter()
                .filter(|o| o.phase == Phase::BwdPerExampleGrad)
                .filter_map(|o| match &o.kind {
                    TrainingOpKind::Gemm { shape, .. } => Some(*shape),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(shapes(b), shapes(b + 1), "{} b={b}", model.name);
    }
}

/// Memory is monotone in batch size for every algorithm.
#[test]
fn memory_monotone_in_batch() {
    let models = models();
    let mut rng = DivaRng::seed_from_u64(0x10e3);
    for _ in 0..CASES {
        let model = &models[rng.index(9)];
        let b = 1 + rng.index(511) as u64;
        for alg in Algorithm::ALL {
            let small = model.memory_profile(alg, b).total();
            let big = model.memory_profile(alg, b + 1).total();
            assert!(big >= small, "{} {alg} b={b}", model.name);
        }
    }
}

/// Memory ordering: SGD ≤ DP-SGD(R) ≤ DP-SGD at any batch.
#[test]
fn memory_ordering_invariant() {
    let models = models();
    let mut rng = DivaRng::seed_from_u64(0x10e4);
    for _ in 0..CASES {
        let model = &models[rng.index(9)];
        let b = 1 + rng.index(255) as u64;
        let sgd = model.memory_profile(Algorithm::Sgd, b).total();
        let dpr = model.memory_profile(Algorithm::DpSgdReweighted, b).total();
        let dp = model.memory_profile(Algorithm::DpSgd, b).total();
        assert!(sgd <= dpr, "{} b={b}", model.name);
        assert!(dpr <= dp, "{} b={b}", model.name);
    }
}

/// The max-batch solver is exact: the reported batch fits, one more does
/// not.
#[test]
fn max_batch_is_tight() {
    let models = models();
    let mut rng = DivaRng::seed_from_u64(0x10e5);
    for _ in 0..CASES {
        let model = &models[rng.index(9)];
        let capacity_gb = 1 + rng.index(63) as u64;
        let cap = capacity_gb << 30;
        for alg in Algorithm::ALL {
            let b = model.max_batch(alg, cap);
            if b > 0 {
                assert!(model.memory_profile(alg, b).fits(cap));
                assert!(!model.memory_profile(alg, b + 1).fits(cap));
            } else {
                assert!(!model.memory_profile(alg, 1).fits(cap));
            }
        }
    }
}

/// The lowered op stream obeys phase ordering: forward ops precede all
/// backward ops; the weight update is last.
#[test]
fn phase_ordering_is_respected() {
    for model in models() {
        for alg in Algorithm::ALL {
            let ops = model.lower(alg, 8);
            let first_bwd = ops
                .iter()
                .position(|o| o.phase != Phase::Forward)
                .unwrap_or(ops.len());
            assert!(
                ops[..first_bwd].iter().all(|o| o.phase == Phase::Forward),
                "{} {alg}",
                model.name
            );
            assert!(
                ops[first_bwd..].iter().all(|o| o.phase != Phase::Forward),
                "{} {alg}: forward op after backward began",
                model.name
            );
            assert_eq!(
                ops.last().map(|o| o.phase),
                Some(Phase::WeightUpdate),
                "{} {alg}",
                model.name
            );
        }
    }
}
