//! Property-based tests of the workload lowering and memory model over
//! random batch sizes and models.

use diva_arch::{Phase, TrainingOpKind};
use diva_workload::{zoo, Algorithm};
use proptest::prelude::*;

fn models() -> Vec<diva_workload::ModelSpec> {
    zoo::all_models()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Forward MACs scale exactly linearly with the batch size.
    #[test]
    fn forward_macs_linear_in_batch(model_idx in 0usize..9, b in 1u64..64) {
        let model = &models()[model_idx];
        let fwd = |batch: u64| -> u64 {
            model
                .lower(Algorithm::Sgd, batch)
                .iter()
                .filter(|o| o.phase == Phase::Forward)
                .map(|o| o.macs())
                .sum()
        };
        prop_assert_eq!(fwd(b) * 2, fwd(2 * b));
    }

    /// Per-example GEMM *shapes* are batch-invariant; only counts scale.
    #[test]
    fn per_example_shapes_batch_invariant(model_idx in 0usize..9, b in 1u64..32) {
        let model = &models()[model_idx];
        let shapes = |batch: u64| -> Vec<_> {
            model
                .lower(Algorithm::DpSgd, batch)
                .iter()
                .filter(|o| o.phase == Phase::BwdPerExampleGrad)
                .filter_map(|o| match &o.kind {
                    TrainingOpKind::Gemm { shape, .. } => Some(*shape),
                    _ => None,
                })
                .collect()
        };
        prop_assert_eq!(shapes(b), shapes(b + 1));
    }

    /// Memory is monotone in batch size for every algorithm.
    #[test]
    fn memory_monotone_in_batch(model_idx in 0usize..9, b in 1u64..512) {
        let model = &models()[model_idx];
        for alg in Algorithm::ALL {
            let small = model.memory_profile(alg, b).total();
            let big = model.memory_profile(alg, b + 1).total();
            prop_assert!(big >= small, "{} {alg}", model.name);
        }
    }

    /// Memory ordering: SGD ≤ DP-SGD(R) ≤ DP-SGD at any batch.
    #[test]
    fn memory_ordering_invariant(model_idx in 0usize..9, b in 1u64..256) {
        let model = &models()[model_idx];
        let sgd = model.memory_profile(Algorithm::Sgd, b).total();
        let dpr = model.memory_profile(Algorithm::DpSgdReweighted, b).total();
        let dp = model.memory_profile(Algorithm::DpSgd, b).total();
        prop_assert!(sgd <= dpr);
        prop_assert!(dpr <= dp);
    }

    /// The max-batch solver is exact: the reported batch fits, one more
    /// does not.
    #[test]
    fn max_batch_is_tight(model_idx in 0usize..9, capacity_gb in 1u64..64) {
        let model = &models()[model_idx];
        let cap = capacity_gb << 30;
        for alg in Algorithm::ALL {
            let b = model.max_batch(alg, cap);
            if b > 0 {
                prop_assert!(model.memory_profile(alg, b).fits(cap));
                prop_assert!(!model.memory_profile(alg, b + 1).fits(cap));
            } else {
                prop_assert!(!model.memory_profile(alg, 1).fits(cap));
            }
        }
    }
}

/// The lowered op stream obeys phase ordering: forward ops precede all
/// backward ops; the weight update is last.
#[test]
fn phase_ordering_is_respected() {
    for model in models() {
        for alg in Algorithm::ALL {
            let ops = model.lower(alg, 8);
            let first_bwd = ops
                .iter()
                .position(|o| o.phase != Phase::Forward)
                .unwrap_or(ops.len());
            assert!(
                ops[..first_bwd].iter().all(|o| o.phase == Phase::Forward),
                "{} {alg}",
                model.name
            );
            assert!(
                ops[first_bwd..].iter().all(|o| o.phase != Phase::Forward),
                "{} {alg}: forward op after backward began",
                model.name
            );
            assert_eq!(
                ops.last().map(|o| o.phase),
                Some(Phase::WeightUpdate),
                "{} {alg}",
                model.name
            );
        }
    }
}
