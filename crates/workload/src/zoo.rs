//! The paper's nine benchmark models (Section V), defined at CIFAR-10 /
//! sequence-length-32 scale.
//!
//! CNNs take `3×32×32` inputs ("state-of-the-art DP-SGD algorithms for
//! computer vision are currently demonstrated with its efficacy over
//! CIFAR-10 datasets", Section V). ImageNet-style stems are adapted to
//! 32×32 in the usual way (3×3 stride-1 stem, no initial max-pool).
//! Batch-normalization parameters are omitted (negligible for both memory
//! and GEMM accounting; DP training replaces BN with group norm anyway).

use crate::layers::LayerSpec;
use crate::model::{ModelFamily, ModelSpec};

/// Sequence length used by BERT/LSTM benchmarks (paper Section VI-C's
/// baseline: 32).
pub const SEQ_LEN: usize = 32;

/// CIFAR class count.
const CLASSES: usize = 10;

/// All nine models in the paper's presentation order (Figure 4).
pub fn all_models() -> Vec<ModelSpec> {
    vec![
        vgg16(),
        resnet50(),
        resnet152(),
        squeezenet(),
        mobilenet(),
        bert_base(),
        bert_large(),
        lstm_small(),
        lstm_large(),
    ]
}

/// Incremental CNN builder tracking spatial extent and channel count.
struct CnnBuilder {
    layers: Vec<LayerSpec>,
    h: usize,
    w: usize,
    c: usize,
    next_id: usize,
    input_elems: u64,
}

impl CnnBuilder {
    fn new(channels: usize, side: usize) -> Self {
        Self {
            layers: Vec::new(),
            h: side,
            w: side,
            c: channels,
            next_id: 1,
            input_elems: (channels * side * side) as u64,
        }
    }

    fn id(&mut self, prefix: &str) -> String {
        let s = format!("{prefix}{}", self.next_id);
        self.next_id += 1;
        s
    }

    fn conv(&mut self, cout: usize, k: usize, stride: usize, pad: usize) -> &mut Self {
        let name = self.id("conv");
        self.layers.push(LayerSpec::Conv {
            name,
            cin: self.c,
            cout,
            k,
            stride,
            pad,
            in_h: self.h,
            in_w: self.w,
            groups: 1,
        });
        self.h = (self.h + 2 * pad - k) / stride + 1;
        self.w = (self.w + 2 * pad - k) / stride + 1;
        self.c = cout;
        self
    }

    fn dwconv(&mut self, k: usize, stride: usize, pad: usize) -> &mut Self {
        let name = self.id("dwconv");
        self.layers.push(LayerSpec::Conv {
            name,
            cin: self.c,
            cout: self.c,
            k,
            stride,
            pad,
            in_h: self.h,
            in_w: self.w,
            groups: self.c,
        });
        self.h = (self.h + 2 * pad - k) / stride + 1;
        self.w = (self.w + 2 * pad - k) / stride + 1;
        self
    }

    fn pool(&mut self, k: usize) -> &mut Self {
        self.h /= k;
        self.w /= k;
        let name = self.id("pool");
        self.layers.push(LayerSpec::Pool {
            name,
            channels: self.c,
            out_h: self.h,
            out_w: self.w,
        });
        self
    }

    fn global_pool(&mut self) -> &mut Self {
        self.h = 1;
        self.w = 1;
        let name = self.id("gap");
        self.layers.push(LayerSpec::Pool {
            name,
            channels: self.c,
            out_h: 1,
            out_w: 1,
        });
        self
    }

    fn fc(&mut self, out_f: usize) -> &mut Self {
        let in_f = self.c * self.h * self.w;
        let name = self.id("fc");
        self.layers.push(LayerSpec::Linear { name, in_f, out_f });
        self.c = out_f;
        self.h = 1;
        self.w = 1;
        self
    }

    fn finish(self, name: &str) -> ModelSpec {
        ModelSpec {
            name: name.to_string(),
            family: ModelFamily::Cnn,
            layers: self.layers,
            input_elems_per_example: self.input_elems,
        }
    }
}

/// VGG-16 (configuration D) with the 4096-wide classifier head attached to
/// the 1×1×512 CIFAR feature map.
pub fn vgg16() -> ModelSpec {
    vgg16_at(32)
}

/// VGG-16 at an arbitrary (power-of-two ≥ 32) input side — used by the
/// paper's Section VI-C image-size sensitivity study.
pub fn vgg16_at(side: usize) -> ModelSpec {
    let mut b = CnnBuilder::new(3, side);
    for &(reps, cout) in &[(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)] {
        for _ in 0..reps {
            b.conv(cout, 3, 1, 1);
        }
        b.pool(2);
    }
    b.fc(4096).fc(4096).fc(CLASSES);
    b.finish("VGG-16")
}

/// Bottleneck-block ResNet; `blocks` per stage, CIFAR 3×3 stem.
fn resnet(name: &str, blocks: [usize; 4]) -> ModelSpec {
    resnet_at(name, blocks, 32)
}

/// Bottleneck-block ResNet at an arbitrary input side.
fn resnet_at(name: &str, blocks: [usize; 4], side: usize) -> ModelSpec {
    let mut b = CnnBuilder::new(3, side);
    b.conv(64, 3, 1, 1); // CIFAR stem
    let widths = [64usize, 128, 256, 512];
    for (stage, (&n_blocks, &w)) in blocks.iter().zip(widths.iter()).enumerate() {
        for block in 0..n_blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            if block == 0 {
                // Projection shortcut runs in parallel; modeled as extra work.
                let cin = b.c;
                let (h, w_sp) = (b.h, b.w);
                b.conv(w, 1, 1, 0); // 1x1 reduce
                b.conv(w, 3, stride, 1); // 3x3
                b.conv(4 * w, 1, 1, 0); // 1x1 expand
                                        // Downsample shortcut from the block input.
                let name = b.id("conv");
                b.layers.push(LayerSpec::Conv {
                    name,
                    cin,
                    cout: 4 * w,
                    k: 1,
                    stride,
                    pad: 0,
                    in_h: h,
                    in_w: w_sp,
                    groups: 1,
                });
            } else {
                b.conv(w, 1, 1, 0);
                b.conv(w, 3, 1, 1);
                b.conv(4 * w, 1, 1, 0);
            }
        }
    }
    b.global_pool().fc(CLASSES);
    b.finish(name)
}

/// ResNet-50: bottleneck stages [3, 4, 6, 3].
pub fn resnet50() -> ModelSpec {
    resnet("ResNet-50", [3, 4, 6, 3])
}

/// ResNet-50 at an arbitrary input side (Section VI-C sensitivity).
pub fn resnet50_at(side: usize) -> ModelSpec {
    resnet_at("ResNet-50", [3, 4, 6, 3], side)
}

/// ResNet-152: bottleneck stages [3, 8, 36, 3].
pub fn resnet152() -> ModelSpec {
    resnet("ResNet-152", [3, 8, 36, 3])
}

/// ResNet-152 at an arbitrary input side (Section VI-C sensitivity).
pub fn resnet152_at(side: usize) -> ModelSpec {
    resnet_at("ResNet-152", [3, 8, 36, 3], side)
}

/// SqueezeNet v1.1 with fire modules, CIFAR stem.
pub fn squeezenet() -> ModelSpec {
    squeezenet_at(32)
}

/// SqueezeNet at an arbitrary input side (Section VI-C sensitivity).
pub fn squeezenet_at(side: usize) -> ModelSpec {
    let mut b = CnnBuilder::new(3, side);
    b.conv(64, 3, 1, 1).pool(2); // 16×16
    let fire = |b: &mut CnnBuilder, squeeze: usize, expand: usize| {
        b.conv(squeeze, 1, 1, 0); // squeeze 1×1
                                  // Expand 1×1 and 3×3 branches run on the squeezed tensor in
                                  // parallel; model them sequentially (channel concat afterwards).
        let cin = b.c;
        let (h, w) = (b.h, b.w);
        b.conv(expand, 1, 1, 0); // expand 1×1
        let name = b.id("conv");
        b.layers.push(LayerSpec::Conv {
            name,
            cin,
            cout: expand,
            k: 3,
            stride: 1,
            pad: 1,
            in_h: h,
            in_w: w,
            groups: 1,
        });
        b.c = 2 * expand; // concatenated output
    };
    fire(&mut b, 16, 64);
    fire(&mut b, 16, 64);
    b.pool(2); // 8×8
    fire(&mut b, 32, 128);
    fire(&mut b, 32, 128);
    b.pool(2); // 4×4
    fire(&mut b, 48, 192);
    fire(&mut b, 48, 192);
    fire(&mut b, 64, 256);
    fire(&mut b, 64, 256);
    b.conv(CLASSES, 1, 1, 0).global_pool();
    b.finish("SqueezeNet")
}

/// MobileNet v1 (width 1.0) with depthwise-separable blocks, CIFAR stem.
pub fn mobilenet() -> ModelSpec {
    mobilenet_at(32)
}

/// MobileNet at an arbitrary input side (Section VI-C sensitivity).
pub fn mobilenet_at(side: usize) -> ModelSpec {
    let mut b = CnnBuilder::new(3, side);
    b.conv(32, 3, 1, 1);
    // (stride of the depthwise conv, output channels of the pointwise conv)
    let blocks = [
        (1usize, 64usize),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (2, 1024),
        (1, 1024),
    ];
    for &(stride, cout) in &blocks {
        b.dwconv(3, stride, 1);
        b.conv(cout, 1, 1, 0);
    }
    b.global_pool().fc(CLASSES);
    b.finish("MobileNet")
}

/// A BERT encoder stack.
fn bert(name: &str, layers: usize, hidden: usize, heads: usize) -> ModelSpec {
    bert_with_seq(name, layers, hidden, heads, SEQ_LEN)
}

/// A BERT encoder stack with an explicit sequence length (Section VI-C).
fn bert_with_seq(
    name: &str,
    layers: usize,
    hidden: usize,
    heads: usize,
    seq_len: usize,
) -> ModelSpec {
    let mut specs = Vec::new();
    specs.push(LayerSpec::Embedding {
        name: "embed".into(),
        vocab: 30_522,
        dim: hidden,
        seq: seq_len,
    });
    let d_head = hidden / heads;
    for l in 0..layers {
        for proj in ["q", "k", "v"] {
            specs.push(LayerSpec::SeqLinear {
                name: format!("l{l}.{proj}"),
                in_f: hidden,
                out_f: hidden,
                seq: seq_len,
            });
        }
        specs.push(LayerSpec::Attention {
            name: format!("l{l}.attn"),
            heads,
            d_head,
            seq: seq_len,
        });
        specs.push(LayerSpec::SeqLinear {
            name: format!("l{l}.out"),
            in_f: hidden,
            out_f: hidden,
            seq: seq_len,
        });
        specs.push(LayerSpec::SeqLinear {
            name: format!("l{l}.ffn1"),
            in_f: hidden,
            out_f: 4 * hidden,
            seq: seq_len,
        });
        specs.push(LayerSpec::SeqLinear {
            name: format!("l{l}.ffn2"),
            in_f: 4 * hidden,
            out_f: hidden,
            seq: seq_len,
        });
    }
    ModelSpec {
        name: name.to_string(),
        family: ModelFamily::Transformer,
        layers: specs,
        input_elems_per_example: seq_len as u64,
    }
}

/// BERT-base: 12 layers, hidden 768, 12 heads.
pub fn bert_base() -> ModelSpec {
    bert("BERT-base", 12, 768, 12)
}

/// BERT-base with an explicit sequence length (Section VI-C sensitivity).
pub fn bert_base_with_seq(seq_len: usize) -> ModelSpec {
    bert_with_seq("BERT-base", 12, 768, 12, seq_len)
}

/// BERT-large: 24 layers, hidden 1024, 16 heads.
pub fn bert_large() -> ModelSpec {
    bert("BERT-large", 24, 1024, 16)
}

/// BERT-large with an explicit sequence length (Section VI-C sensitivity).
pub fn bert_large_with_seq(seq_len: usize) -> ModelSpec {
    bert_with_seq("BERT-large", 24, 1024, 16, seq_len)
}

/// An LSTM language-model stack: embedding → LSTM layers (each lowered to
/// its input-to-hidden and hidden-to-hidden gate GEMMs) → vocabulary head.
fn lstm(name: &str, vocab: usize, embed: usize, hidden: usize, lstm_layers: usize) -> ModelSpec {
    lstm_with_seq(name, vocab, embed, hidden, lstm_layers, SEQ_LEN)
}

/// An LSTM stack with an explicit sequence length (Section VI-C).
fn lstm_with_seq(
    name: &str,
    vocab: usize,
    embed: usize,
    hidden: usize,
    lstm_layers: usize,
    seq_len: usize,
) -> ModelSpec {
    let mut specs = Vec::new();
    specs.push(LayerSpec::Embedding {
        name: "embed".into(),
        vocab,
        dim: embed,
        seq: seq_len,
    });
    let mut in_f = embed;
    for l in 0..lstm_layers {
        specs.push(LayerSpec::SeqLinear {
            name: format!("lstm{l}.w_ih"),
            in_f,
            out_f: 4 * hidden,
            seq: seq_len,
        });
        specs.push(LayerSpec::SeqLinear {
            name: format!("lstm{l}.w_hh"),
            in_f: hidden,
            out_f: 4 * hidden,
            seq: seq_len,
        });
        in_f = hidden;
    }
    specs.push(LayerSpec::Linear {
        name: "head".into(),
        in_f: hidden,
        out_f: vocab,
    });
    ModelSpec {
        name: name.to_string(),
        family: ModelFamily::Rnn,
        layers: specs,
        input_elems_per_example: seq_len as u64,
    }
}

/// LSTM-small: character-level scale (vocab 128, 1×256 hidden), after the
/// Opacus char-LSTM example the paper cites.
pub fn lstm_small() -> ModelSpec {
    lstm("LSTM-small", 128, 64, 256, 1)
}

/// LSTM-small with an explicit sequence length (Section VI-C sensitivity).
pub fn lstm_small_with_seq(seq_len: usize) -> ModelSpec {
    lstm_with_seq("LSTM-small", 128, 64, 256, 1, seq_len)
}

/// LSTM-large: word-level scale (vocab 10k, 2×1024 hidden).
pub fn lstm_large() -> ModelSpec {
    lstm("LSTM-large", 10_000, 512, 1024, 2)
}

/// LSTM-large with an explicit sequence length (Section VI-C sensitivity).
pub fn lstm_large_with_seq(seq_len: usize) -> ModelSpec {
    lstm_with_seq("LSTM-large", 10_000, 512, 1024, 2, seq_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::Algorithm;

    #[test]
    fn zoo_has_nine_models_with_unique_names() {
        let models = all_models();
        assert_eq!(models.len(), 9);
        let mut names: Vec<_> = models.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn parameter_counts_are_in_published_ballparks() {
        let check = |m: &ModelSpec, lo: u64, hi: u64| {
            let p = m.params();
            assert!(
                (lo..=hi).contains(&p),
                "{} has {p} params, expected {lo}..={hi}",
                m.name
            );
        };
        check(&vgg16(), 30_000_000, 37_000_000); // CIFAR head variant
        check(&resnet50(), 22_000_000, 26_000_000);
        check(&resnet152(), 54_000_000, 61_000_000);
        check(&squeezenet(), 600_000, 1_100_000);
        check(&mobilenet(), 3_000_000, 3_600_000);
        check(&bert_base(), 104_000_000, 114_000_000);
        check(&bert_large(), 325_000_000, 345_000_000);
        check(&lstm_small(), 300_000, 450_000);
        check(&lstm_large(), 28_000_000, 33_000_000);
    }

    #[test]
    fn resnet152_is_deeper_than_resnet50() {
        assert!(resnet152().layers.len() > 2 * resnet50().layers.len());
    }

    #[test]
    fn cnn_spatial_dims_track_correctly() {
        // VGG: five pool stages take 32 → 1.
        let m = vgg16();
        let last_conv = m
            .layers
            .iter()
            .rev()
            .find_map(|l| match l {
                LayerSpec::Conv { in_h, .. } => Some(*in_h),
                _ => None,
            })
            .unwrap();
        assert_eq!(last_conv, 2); // last conv block operates at 2×2
    }

    #[test]
    fn mobilenet_has_depthwise_layers() {
        let m = mobilenet();
        let depthwise = m
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::Conv { groups, .. } if *groups > 1))
            .count();
        assert_eq!(depthwise, 13);
    }

    #[test]
    fn bert_models_lower_to_expected_gemm_counts() {
        let m = bert_base();
        let ops = m.lower(Algorithm::Sgd, 8);
        // 12 layers × (3 QKV + 2 attention + 1 out + 2 FFN) forward GEMM ops.
        let fwd = ops
            .iter()
            .filter(|o| o.phase == diva_arch::Phase::Forward)
            .count();
        assert_eq!(fwd, 12 * (3 + 2 + 1 + 2));
    }

    #[test]
    fn every_model_lowers_for_every_algorithm() {
        for m in all_models() {
            for alg in Algorithm::ALL {
                let ops = m.lower(alg, 4);
                assert!(!ops.is_empty(), "{} produced no ops for {alg}", m.name);
                let macs: u64 = ops.iter().map(|o| o.macs()).sum();
                assert!(macs > 0, "{} has zero MACs for {alg}", m.name);
            }
        }
    }

    #[test]
    fn dp_memory_exceeds_sgd_memory_everywhere() {
        for m in all_models() {
            let sgd = m.memory_profile(Algorithm::Sgd, 8).total();
            let dp = m.memory_profile(Algorithm::DpSgd, 8).total();
            let dpr = m.memory_profile(Algorithm::DpSgdReweighted, 8).total();
            assert!(dp > sgd, "{}", m.name);
            assert!(dpr <= dp, "{}", m.name);
        }
    }
}
