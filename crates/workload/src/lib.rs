//! DNN workload definitions for the DiVa reproduction: the paper's nine
//! benchmark models (Section V), their lowering to GEMM op graphs for the
//! three training algorithms (Figure 6 / Algorithm 1), and the memory
//! footprint model behind Figure 4 and the max-batch study (Section III-A).
//!
//! Models follow the paper's evaluation setting: CNNs take CIFAR-10-scale
//! `3×32×32` inputs; BERT and LSTM models use sequence length 32.
//!
//! # Example
//!
//! ```
//! use diva_workload::{zoo, Algorithm};
//!
//! let model = zoo::resnet50();
//! let ops = model.lower(Algorithm::DpSgdReweighted, 32);
//! assert!(!ops.is_empty());
//! let profile = model.memory_profile(Algorithm::DpSgd, 32);
//! assert!(profile.per_example_grad_bytes > profile.weight_bytes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layers;
mod memory;
mod model;
mod step;
pub mod zoo;

pub use layers::{LayerSpec, LoweredGemm};
pub use memory::MemoryProfile;
pub use model::ModelSpec;
pub use step::Algorithm;
