//! Lowering a training step to the ordered op list the simulator consumes —
//! the shape-level counterpart of the paper's Algorithm 1.

use diva_arch::{Phase, TrainingOp, VectorOpKind};

use crate::layers::LayerSpec;
use crate::model::ModelSpec;

/// FP32 bytes per gradient element (gradients and norms are accumulated in
/// 32-bit, per the paper's Table I footnote).
const GRAD_BYTES: u64 = 4;

/// The training algorithms characterized by the paper (Section III).
///
/// Shape-level mirror of `diva_dp::TrainingAlgorithm` (the functional
/// implementation); kept separate so the performance-model stack does not
/// depend on the numeric stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Non-private mini-batch SGD.
    Sgd,
    /// Vanilla DP-SGD (per-example gradients materialized).
    DpSgd,
    /// Reweighted DP-SGD(R) (two backprop passes, norms fused).
    DpSgdReweighted,
}

impl Algorithm {
    /// All algorithms in the paper's presentation order.
    pub const ALL: [Algorithm; 3] = [Algorithm::Sgd, Algorithm::DpSgd, Algorithm::DpSgdReweighted];

    /// The paper's display label.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Sgd => "SGD",
            Algorithm::DpSgd => "DP-SGD",
            Algorithm::DpSgdReweighted => "DP-SGD(R)",
        }
    }

    /// Whether the algorithm offers differential privacy.
    pub fn is_private(&self) -> bool {
        !matches!(self, Algorithm::Sgd)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Emits the GEMM ops of one phase for one layer.
fn push_gemms(
    ops: &mut Vec<TrainingOp>,
    gemms: &[crate::layers::LoweredGemm],
    phase: Phase,
    label: &str,
    ephemeral: bool,
) {
    for g in gemms {
        if g.shape.is_empty() || g.count == 0 {
            continue;
        }
        let op = if ephemeral {
            TrainingOp::gemm_batch_ephemeral(g.shape, g.count, phase, label)
        } else {
            TrainingOp::gemm_batch(g.shape, g.count, phase, label)
        };
        ops.push(op);
    }
}

/// Lowers one training step of `model` with mini-batch `batch` under
/// `algorithm` into the ordered op list (forward, backward, post-processing,
/// update) whose phases match the paper's Figure 5 / Figure 14 breakdowns.
pub fn lower_step(model: &ModelSpec, algorithm: Algorithm, batch: u64) -> Vec<TrainingOp> {
    assert!(batch > 0, "batch size must be positive");
    let mut ops = Vec::new();

    // ---- Forward propagation (all algorithms identical) ----
    for layer in &model.layers {
        push_gemms(
            &mut ops,
            &layer.forward_gemms(batch),
            Phase::Forward,
            layer.name(),
            false,
        );
    }

    // Backward pass runs last layer to first. The first layer needs no
    // input-activation gradient (there is no upstream layer).
    let bwd_layers: Vec<(usize, &LayerSpec)> = model.layers.iter().enumerate().rev().collect();

    match algorithm {
        Algorithm::Sgd => {
            for &(idx, layer) in &bwd_layers {
                if idx > 0 {
                    push_gemms(
                        &mut ops,
                        &layer.act_grad_gemms(batch),
                        Phase::BwdActGrad1,
                        layer.name(),
                        false,
                    );
                }
                push_gemms(
                    &mut ops,
                    &layer.per_batch_wgrad_gemms(batch),
                    Phase::BwdPerBatchGrad,
                    layer.name(),
                    false,
                );
            }
            push_weight_update(&mut ops, model);
        }
        Algorithm::DpSgd => {
            // Algorithm 1, DERIVE_DP_GRADIENTS: per-example gradients are
            // materialized (outputs persist), then norm → clip → reduce →
            // noise post-processing sweeps over B × |W| of gradient state.
            for &(idx, layer) in &bwd_layers {
                if idx > 0 {
                    push_gemms(
                        &mut ops,
                        &layer.act_grad_gemms(batch),
                        Phase::BwdActGrad1,
                        layer.name(),
                        false,
                    );
                }
                push_gemms(
                    &mut ops,
                    &layer.per_example_wgrad_gemms(batch),
                    Phase::BwdPerExampleGrad,
                    layer.name(),
                    false, // outputs persist: needed again for clip+reduce
                );
                push_embedding_wgrad(&mut ops, layer, batch, Phase::BwdPerExampleGrad);
            }
            // Per-layer norm derivation (fusable into drain when a PPU
            // exists — norms can be computed while the gradients stream
            // out, Section IV-C).
            for layer in model.layers.iter().filter(|l| l.has_params()) {
                let grad_bytes = batch * layer.params() * GRAD_BYTES;
                ops.push(TrainingOp::vector(
                    VectorOpKind::GradNorm,
                    grad_bytes,
                    batch * GRAD_BYTES,
                    true,
                    Phase::BwdGradNorm,
                    layer.name(),
                ));
            }
            // Clip: read + rewrite every per-example gradient (cannot fuse:
            // clip factors need the *global* norm across all layers).
            for layer in model.layers.iter().filter(|l| l.has_params()) {
                let grad_bytes = batch * layer.params() * GRAD_BYTES;
                ops.push(TrainingOp::vector(
                    VectorOpKind::GradClip,
                    grad_bytes,
                    grad_bytes,
                    false,
                    Phase::BwdGradClip,
                    layer.name(),
                ));
            }
            // Reduce B per-example gradients to one, then add noise.
            for layer in model.layers.iter().filter(|l| l.has_params()) {
                let grad_bytes = batch * layer.params() * GRAD_BYTES;
                let reduced = layer.params() * GRAD_BYTES;
                ops.push(TrainingOp::vector(
                    VectorOpKind::GradReduce,
                    grad_bytes,
                    reduced,
                    false,
                    Phase::BwdReduceNoise,
                    layer.name(),
                ));
                ops.push(TrainingOp::vector(
                    VectorOpKind::NoiseAdd,
                    reduced,
                    reduced,
                    false,
                    Phase::BwdReduceNoise,
                    layer.name(),
                ));
            }
            push_weight_update(&mut ops, model);
        }
        Algorithm::DpSgdReweighted => {
            // Algorithm 1, DERIVE_REWEIGHTED_DP_GRADIENTS.
            // 1st backprop: activation grads + *ephemeral* per-example
            // gradients that exist only long enough to produce norms.
            for &(idx, layer) in &bwd_layers {
                if idx > 0 {
                    push_gemms(
                        &mut ops,
                        &layer.act_grad_gemms(batch),
                        Phase::BwdActGrad1,
                        layer.name(),
                        false,
                    );
                }
                push_gemms(
                    &mut ops,
                    &layer.per_example_wgrad_gemms(batch),
                    Phase::BwdPerExampleGrad,
                    layer.name(),
                    true, // ephemeral: only the norm survives
                );
                push_embedding_wgrad(&mut ops, layer, batch, Phase::BwdPerExampleGrad);
            }
            for layer in model.layers.iter().filter(|l| l.has_params()) {
                let grad_bytes = batch * layer.params() * GRAD_BYTES;
                ops.push(TrainingOp::vector(
                    VectorOpKind::GradNorm,
                    grad_bytes,
                    batch * GRAD_BYTES,
                    true,
                    Phase::BwdGradNorm,
                    layer.name(),
                ));
            }
            // 2nd backprop: reweighted loss → activation grads again, then
            // per-batch weight gradients (clipping fused into the GEMM's K
            // reduction — no separate clip/reduce ops, the paper's key
            // optimization).
            for &(idx, layer) in &bwd_layers {
                if idx > 0 {
                    push_gemms(
                        &mut ops,
                        &layer.act_grad_gemms(batch),
                        Phase::BwdActGrad2,
                        layer.name(),
                        false,
                    );
                }
                push_gemms(
                    &mut ops,
                    &layer.per_batch_wgrad_gemms(batch),
                    Phase::BwdPerBatchGrad,
                    layer.name(),
                    false,
                );
                push_embedding_wgrad(&mut ops, layer, batch, Phase::BwdPerBatchGrad);
            }
            // Noise on the single reduced gradient.
            for layer in model.layers.iter().filter(|l| l.has_params()) {
                let reduced = layer.params() * GRAD_BYTES;
                ops.push(TrainingOp::vector(
                    VectorOpKind::NoiseAdd,
                    reduced,
                    reduced,
                    false,
                    Phase::BwdReduceNoise,
                    layer.name(),
                ));
            }
            push_weight_update(&mut ops, model);
        }
    }
    ops
}

/// Embedding layers produce gather/scatter gradient traffic instead of
/// GEMMs: per-example rows touched are `seq × dim`.
fn push_embedding_wgrad(ops: &mut Vec<TrainingOp>, layer: &LayerSpec, batch: u64, phase: Phase) {
    if let LayerSpec::Embedding { name, dim, seq, .. } = layer {
        // Scatter/accumulate traffic is the same whether the rows land in
        // per-example buffers or the shared table: B·L·D touched elements.
        let touched = batch * (*seq as u64) * (*dim as u64) * GRAD_BYTES;
        ops.push(TrainingOp::vector(
            VectorOpKind::GradReduce,
            touched,
            touched,
            false,
            phase,
            name.clone(),
        ));
    }
}

/// Weight update: read gradient + weight, write weight.
fn push_weight_update(ops: &mut Vec<TrainingOp>, model: &ModelSpec) {
    let w_bytes = model.params() * GRAD_BYTES;
    if w_bytes == 0 {
        return;
    }
    ops.push(TrainingOp::vector(
        VectorOpKind::WeightUpdate,
        2 * w_bytes,
        w_bytes,
        false,
        Phase::WeightUpdate,
        "update",
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelFamily;
    use diva_arch::TrainingOpKind;

    fn model() -> ModelSpec {
        ModelSpec {
            name: "toy".into(),
            family: ModelFamily::Cnn,
            layers: vec![
                LayerSpec::Conv {
                    name: "c1".into(),
                    cin: 3,
                    cout: 16,
                    k: 3,
                    stride: 1,
                    pad: 1,
                    in_h: 32,
                    in_w: 32,
                    groups: 1,
                },
                LayerSpec::Linear {
                    name: "fc".into(),
                    in_f: 16 * 32 * 32,
                    out_f: 10,
                },
            ],
            input_elems_per_example: 3 * 32 * 32,
        }
    }

    fn phase_count(ops: &[TrainingOp], phase: Phase) -> usize {
        ops.iter().filter(|o| o.phase == phase).count()
    }

    #[test]
    fn sgd_has_no_dp_phases() {
        let ops = lower_step(&model(), Algorithm::Sgd, 8);
        assert!(phase_count(&ops, Phase::BwdPerExampleGrad) == 0);
        assert!(phase_count(&ops, Phase::BwdGradNorm) == 0);
        assert!(phase_count(&ops, Phase::BwdGradClip) == 0);
        assert!(phase_count(&ops, Phase::Forward) > 0);
        assert!(phase_count(&ops, Phase::BwdPerBatchGrad) > 0);
    }

    #[test]
    fn dpsgd_has_clip_but_no_second_pass() {
        let ops = lower_step(&model(), Algorithm::DpSgd, 8);
        assert!(phase_count(&ops, Phase::BwdGradClip) > 0);
        assert!(phase_count(&ops, Phase::BwdPerExampleGrad) > 0);
        assert_eq!(phase_count(&ops, Phase::BwdActGrad2), 0);
        assert_eq!(phase_count(&ops, Phase::BwdPerBatchGrad), 0);
    }

    #[test]
    fn reweighted_has_second_pass_but_no_clip() {
        let ops = lower_step(&model(), Algorithm::DpSgdReweighted, 8);
        assert_eq!(phase_count(&ops, Phase::BwdGradClip), 0);
        assert!(phase_count(&ops, Phase::BwdActGrad2) > 0);
        assert!(phase_count(&ops, Phase::BwdPerBatchGrad) > 0);
        assert!(phase_count(&ops, Phase::BwdPerExampleGrad) > 0);
    }

    #[test]
    fn dpsgd_per_example_outputs_persist_reweighted_do_not() {
        let persist = |alg: Algorithm| -> Vec<bool> {
            lower_step(&model(), alg, 4)
                .iter()
                .filter(|o| o.phase == Phase::BwdPerExampleGrad)
                .filter_map(|o| match &o.kind {
                    TrainingOpKind::Gemm {
                        output_persists, ..
                    } => Some(*output_persists),
                    _ => None,
                })
                .collect()
        };
        assert!(persist(Algorithm::DpSgd).iter().all(|&p| p));
        assert!(persist(Algorithm::DpSgdReweighted).iter().all(|&p| !p));
    }

    #[test]
    fn first_layer_emits_no_act_grad() {
        let ops = lower_step(&model(), Algorithm::Sgd, 8);
        let act_grads: Vec<_> = ops
            .iter()
            .filter(|o| o.phase == Phase::BwdActGrad1)
            .collect();
        assert!(act_grads.iter().all(|o| o.label != "c1"));
    }

    #[test]
    fn forward_identical_across_algorithms() {
        let fwd = |alg| -> Vec<TrainingOp> {
            lower_step(&model(), alg, 16)
                .into_iter()
                .filter(|o| o.phase == Phase::Forward)
                .collect()
        };
        assert_eq!(fwd(Algorithm::Sgd), fwd(Algorithm::DpSgd));
        assert_eq!(fwd(Algorithm::Sgd), fwd(Algorithm::DpSgdReweighted));
    }

    #[test]
    fn reweighted_macs_exceed_sgd_macs() {
        // DP-SGD(R) runs backprop twice: strictly more GEMM work.
        let macs = |alg| -> u64 {
            lower_step(&model(), alg, 16)
                .iter()
                .map(TrainingOp::macs)
                .sum()
        };
        assert!(macs(Algorithm::DpSgdReweighted) > macs(Algorithm::Sgd));
    }
}
