//! Shape-level layer specifications and their GEMM lowering — the paper's
//! Figure 6 table, implemented.
//!
//! | layer kind            | forward `(M,K,N)`          | per-batch `G(W)`            | per-example `G(W)` (×B)   |
//! |-----------------------|-----------------------------|------------------------------|----------------------------|
//! | MLP                   | `(B, I, O)`                 | `(I, B, O)`                  | `(I, 1, O)`                |
//! | Convolution           | `(B·P·Q, C_in·R·S, C_out)`  | `(C_in·R·S, B·P·Q, C_out)`   | `(C_in·R·S, P·Q, C_out)`   |
//! | MLP, time-series (L)  | `(B·L, I, O)`               | `(I, B·L, O)`                | `(I, L, O)`                |
//!
//! Activation-gradient GEMMs transpose the weight operand:
//! `G(X) = G(Y) × Wᵀ` with `(M, K, N) = (B·…, O, I)`.

use diva_arch::GemmShape;

/// A shape-level description of one network layer.
///
/// Only information relevant to performance/memory modeling is kept: no
/// weights, no data — just dimensions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum LayerSpec {
    /// 2-D convolution (optionally grouped / depthwise).
    Conv {
        /// Layer name for reports.
        name: String,
        /// Input channels.
        cin: usize,
        /// Output channels.
        cout: usize,
        /// Square filter side (R = S = k).
        k: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// Input spatial height.
        in_h: usize,
        /// Input spatial width.
        in_w: usize,
        /// Channel groups (`cin` for depthwise convolution).
        groups: usize,
    },
    /// Fully-connected layer over per-example feature vectors.
    Linear {
        /// Layer name.
        name: String,
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
    },
    /// Fully-connected layer applied at every timestep of a length-`seq`
    /// sequence (BERT projections, LSTM gate GEMMs).
    SeqLinear {
        /// Layer name.
        name: String,
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
        /// Sequence length `L`.
        seq: usize,
    },
    /// Multi-head attention score/context GEMMs (no trainable weights —
    /// QKV/output projections are separate `SeqLinear` layers).
    Attention {
        /// Layer name.
        name: String,
        /// Number of heads.
        heads: usize,
        /// Per-head dimension.
        d_head: usize,
        /// Sequence length.
        seq: usize,
    },
    /// Embedding lookup. No GEMMs (gather/scatter), but its parameters
    /// dominate per-example gradient *memory* for LSTM models (frameworks
    /// materialize dense per-example embedding gradients).
    Embedding {
        /// Layer name.
        name: String,
        /// Vocabulary size.
        vocab: usize,
        /// Embedding dimension.
        dim: usize,
        /// Sequence length (rows gathered per example).
        seq: usize,
    },
    /// Pooling — no parameters, no GEMMs; tracked for activation memory.
    Pool {
        /// Layer name.
        name: String,
        /// Output channels (= input channels).
        channels: usize,
        /// Output spatial height.
        out_h: usize,
        /// Output spatial width.
        out_w: usize,
    },
}

/// GEMM work for one layer in one training phase, possibly replicated
/// (`count` independent instances).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LoweredGemm {
    /// The GEMM dimensions.
    pub shape: GemmShape,
    /// Number of independent instances (e.g. `B` for per-example gradients,
    /// `B × C` for depthwise per-example gradients).
    pub count: u64,
}

impl LayerSpec {
    /// The layer's display name.
    pub fn name(&self) -> &str {
        match self {
            LayerSpec::Conv { name, .. }
            | LayerSpec::Linear { name, .. }
            | LayerSpec::SeqLinear { name, .. }
            | LayerSpec::Attention { name, .. }
            | LayerSpec::Embedding { name, .. }
            | LayerSpec::Pool { name, .. } => name,
        }
    }

    /// Number of trainable parameters (weights only; biases and
    /// normalization parameters are negligible at this modeling scale and
    /// are omitted, as noted in DESIGN.md).
    pub fn params(&self) -> u64 {
        match self {
            LayerSpec::Conv {
                cin,
                cout,
                k,
                groups,
                ..
            } => (cin / groups * cout * k * k) as u64,
            LayerSpec::Linear { in_f, out_f, .. } => (in_f * out_f) as u64,
            LayerSpec::SeqLinear { in_f, out_f, .. } => (in_f * out_f) as u64,
            LayerSpec::Attention { .. } | LayerSpec::Pool { .. } => 0,
            LayerSpec::Embedding { vocab, dim, .. } => (vocab * dim) as u64,
        }
    }

    /// Output activation elements per example (stored for backprop).
    pub fn out_elems_per_example(&self) -> u64 {
        match self {
            LayerSpec::Conv {
                cout,
                k,
                stride,
                pad,
                in_h,
                in_w,
                ..
            } => {
                let (p, q) = conv_out_hw(*in_h, *in_w, *k, *stride, *pad);
                (cout * p * q) as u64
            }
            LayerSpec::Linear { out_f, .. } => *out_f as u64,
            LayerSpec::SeqLinear { out_f, seq, .. } => (out_f * seq) as u64,
            LayerSpec::Attention {
                heads, d_head, seq, ..
            } => {
                // Scores (h × L × L) plus context (L × h·d) activations.
                (heads * seq * seq + seq * heads * d_head) as u64
            }
            LayerSpec::Embedding { dim, seq, .. } => (dim * seq) as u64,
            LayerSpec::Pool {
                channels,
                out_h,
                out_w,
                ..
            } => (channels * out_h * out_w) as u64,
        }
    }

    /// Forward-propagation GEMMs for mini-batch size `b`.
    pub fn forward_gemms(&self, b: u64) -> Vec<LoweredGemm> {
        match self {
            LayerSpec::Conv {
                cin,
                cout,
                k,
                stride,
                pad,
                in_h,
                in_w,
                groups,
                ..
            } => {
                let (p, q) = conv_out_hw(*in_h, *in_w, *k, *stride, *pad);
                let (cin_g, cout_g) = (cin / groups, cout / groups);
                vec![LoweredGemm {
                    shape: GemmShape::new(
                        b * (p * q) as u64,
                        (cin_g * k * k) as u64,
                        cout_g as u64,
                    ),
                    count: *groups as u64,
                }]
            }
            LayerSpec::Linear { in_f, out_f, .. } => vec![LoweredGemm {
                shape: GemmShape::new(b, *in_f as u64, *out_f as u64),
                count: 1,
            }],
            LayerSpec::SeqLinear {
                in_f, out_f, seq, ..
            } => vec![LoweredGemm {
                shape: GemmShape::new(b * *seq as u64, *in_f as u64, *out_f as u64),
                count: 1,
            }],
            LayerSpec::Attention {
                heads, d_head, seq, ..
            } => vec![
                // Scores: (L, d) × (d, L) per head per example.
                LoweredGemm {
                    shape: GemmShape::new(*seq as u64, *d_head as u64, *seq as u64),
                    count: b * *heads as u64,
                },
                // Context: (L, L) × (L, d).
                LoweredGemm {
                    shape: GemmShape::new(*seq as u64, *seq as u64, *d_head as u64),
                    count: b * *heads as u64,
                },
            ],
            LayerSpec::Embedding { .. } | LayerSpec::Pool { .. } => Vec::new(),
        }
    }

    /// Input-activation-gradient GEMMs (`G(X) = G(Y)·Wᵀ`) for batch `b`.
    pub fn act_grad_gemms(&self, b: u64) -> Vec<LoweredGemm> {
        match self {
            LayerSpec::Conv {
                cin,
                cout,
                k,
                stride,
                pad,
                in_h,
                in_w,
                groups,
                ..
            } => {
                let (p, q) = conv_out_hw(*in_h, *in_w, *k, *stride, *pad);
                let (cin_g, cout_g) = (cin / groups, cout / groups);
                vec![LoweredGemm {
                    shape: GemmShape::new(
                        b * (p * q) as u64,
                        cout_g as u64,
                        (cin_g * k * k) as u64,
                    ),
                    count: *groups as u64,
                }]
            }
            LayerSpec::Linear { in_f, out_f, .. } => vec![LoweredGemm {
                shape: GemmShape::new(b, *out_f as u64, *in_f as u64),
                count: 1,
            }],
            LayerSpec::SeqLinear {
                in_f, out_f, seq, ..
            } => vec![LoweredGemm {
                shape: GemmShape::new(b * *seq as u64, *out_f as u64, *in_f as u64),
                count: 1,
            }],
            LayerSpec::Attention {
                heads, d_head, seq, ..
            } => vec![
                // d(scores) and d(values) from the context GEMM...
                LoweredGemm {
                    shape: GemmShape::new(*seq as u64, *d_head as u64, *seq as u64),
                    count: b * *heads as u64,
                },
                LoweredGemm {
                    shape: GemmShape::new(*seq as u64, *seq as u64, *d_head as u64),
                    count: b * *heads as u64,
                },
                // ...and dQ/dK from the scores GEMM.
                LoweredGemm {
                    shape: GemmShape::new(*seq as u64, *seq as u64, *d_head as u64),
                    count: 2 * b * *heads as u64,
                },
            ],
            LayerSpec::Embedding { .. } | LayerSpec::Pool { .. } => Vec::new(),
        }
    }

    /// Per-batch weight-gradient GEMMs (`G(W) = Xᵀ·G(Y)`, K reduces over the
    /// whole mini-batch).
    pub fn per_batch_wgrad_gemms(&self, b: u64) -> Vec<LoweredGemm> {
        match self {
            LayerSpec::Conv {
                cin,
                cout,
                k,
                stride,
                pad,
                in_h,
                in_w,
                groups,
                ..
            } => {
                let (p, q) = conv_out_hw(*in_h, *in_w, *k, *stride, *pad);
                let (cin_g, cout_g) = (cin / groups, cout / groups);
                vec![LoweredGemm {
                    shape: GemmShape::new(
                        (cin_g * k * k) as u64,
                        b * (p * q) as u64,
                        cout_g as u64,
                    ),
                    count: *groups as u64,
                }]
            }
            LayerSpec::Linear { in_f, out_f, .. } => vec![LoweredGemm {
                shape: GemmShape::new(*in_f as u64, b, *out_f as u64),
                count: 1,
            }],
            LayerSpec::SeqLinear {
                in_f, out_f, seq, ..
            } => vec![LoweredGemm {
                shape: GemmShape::new(*in_f as u64, b * *seq as u64, *out_f as u64),
                count: 1,
            }],
            LayerSpec::Attention { .. } | LayerSpec::Embedding { .. } | LayerSpec::Pool { .. } => {
                Vec::new()
            }
        }
    }

    /// Per-example weight-gradient GEMMs: `B` independent GEMMs whose K
    /// dimension no longer contains the batch — the irregular, small-K
    /// shapes that motivate DiVa (paper Figure 6 right, Section III-C).
    pub fn per_example_wgrad_gemms(&self, b: u64) -> Vec<LoweredGemm> {
        match self {
            LayerSpec::Conv {
                cin,
                cout,
                k,
                stride,
                pad,
                in_h,
                in_w,
                groups,
                ..
            } => {
                let (p, q) = conv_out_hw(*in_h, *in_w, *k, *stride, *pad);
                let (cin_g, cout_g) = (cin / groups, cout / groups);
                vec![LoweredGemm {
                    shape: GemmShape::new((cin_g * k * k) as u64, (p * q) as u64, cout_g as u64),
                    count: b * *groups as u64,
                }]
            }
            LayerSpec::Linear { in_f, out_f, .. } => vec![LoweredGemm {
                shape: GemmShape::new(*in_f as u64, 1, *out_f as u64),
                count: b,
            }],
            LayerSpec::SeqLinear {
                in_f, out_f, seq, ..
            } => vec![LoweredGemm {
                shape: GemmShape::new(*in_f as u64, *seq as u64, *out_f as u64),
                count: b,
            }],
            LayerSpec::Attention { .. } | LayerSpec::Embedding { .. } | LayerSpec::Pool { .. } => {
                Vec::new()
            }
        }
    }

    /// Whether the layer owns trainable parameters.
    pub fn has_params(&self) -> bool {
        self.params() > 0
    }
}

/// Convolution output spatial extent.
pub(crate) fn conv_out_hw(
    in_h: usize,
    in_w: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> (usize, usize) {
    (
        (in_h + 2 * pad - k) / stride + 1,
        (in_w + 2 * pad - k) / stride + 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> LayerSpec {
        LayerSpec::Conv {
            name: "conv".into(),
            cin: 64,
            cout: 128,
            k: 3,
            stride: 1,
            pad: 1,
            in_h: 16,
            in_w: 16,
            groups: 1,
        }
    }

    #[test]
    fn conv_lowering_matches_figure6() {
        let l = conv();
        let b = 32;
        let fwd = l.forward_gemms(b);
        assert_eq!(fwd[0].shape, GemmShape::new(32 * 256, 64 * 9, 128));
        let pb = l.per_batch_wgrad_gemms(b);
        assert_eq!(pb[0].shape, GemmShape::new(64 * 9, 32 * 256, 128));
        let pe = l.per_example_wgrad_gemms(b);
        assert_eq!(pe[0].shape, GemmShape::new(64 * 9, 256, 128));
        assert_eq!(pe[0].count, 32);
    }

    #[test]
    fn mlp_per_example_k_is_one() {
        let l = LayerSpec::Linear {
            name: "fc".into(),
            in_f: 768,
            out_f: 768,
        };
        let pe = l.per_example_wgrad_gemms(16);
        assert_eq!(pe[0].shape, GemmShape::new(768, 1, 768));
        assert_eq!(pe[0].count, 16);
    }

    #[test]
    fn seq_linear_per_example_k_is_seq_len() {
        let l = LayerSpec::SeqLinear {
            name: "qkv".into(),
            in_f: 768,
            out_f: 768,
            seq: 32,
        };
        let pe = l.per_example_wgrad_gemms(8);
        assert_eq!(pe[0].shape, GemmShape::new(768, 32, 768));
    }

    #[test]
    fn depthwise_conv_produces_per_channel_micro_gemms() {
        let l = LayerSpec::Conv {
            name: "dw".into(),
            cin: 512,
            cout: 512,
            k: 3,
            stride: 1,
            pad: 1,
            in_h: 4,
            in_w: 4,
            groups: 512,
        };
        let pe = l.per_example_wgrad_gemms(32);
        assert_eq!(pe[0].shape, GemmShape::new(9, 16, 1));
        assert_eq!(pe[0].count, 32 * 512);
        assert_eq!(l.params(), 512 * 9);
    }

    #[test]
    fn per_batch_k_scales_with_batch_but_per_example_does_not() {
        let l = conv();
        let pb8 = l.per_batch_wgrad_gemms(8)[0].shape.k;
        let pb64 = l.per_batch_wgrad_gemms(64)[0].shape.k;
        assert_eq!(pb64, 8 * pb8);
        let pe8 = l.per_example_wgrad_gemms(8)[0].shape.k;
        let pe64 = l.per_example_wgrad_gemms(64)[0].shape.k;
        assert_eq!(pe8, pe64);
    }

    #[test]
    fn attention_has_no_weight_gradients() {
        let l = LayerSpec::Attention {
            name: "attn".into(),
            heads: 12,
            d_head: 64,
            seq: 32,
        };
        assert!(l.per_batch_wgrad_gemms(8).is_empty());
        assert!(l.per_example_wgrad_gemms(8).is_empty());
        assert!(!l.forward_gemms(8).is_empty());
        assert_eq!(l.params(), 0);
    }

    #[test]
    fn total_macs_balance_forward_vs_wgrad() {
        // Per-batch weight-gradient MACs equal the sum over examples of
        // per-example MACs (they compute the same mathematical object).
        let l = conv();
        let b = 16;
        let pb: u64 = l
            .per_batch_wgrad_gemms(b)
            .iter()
            .map(|g| g.shape.macs() * g.count)
            .sum();
        let pe: u64 = l
            .per_example_wgrad_gemms(b)
            .iter()
            .map(|g| g.shape.macs() * g.count)
            .sum();
        assert_eq!(pb, pe);
    }
}
