//! Whole-model specifications.

use crate::layers::LayerSpec;
use crate::memory::MemoryProfile;
use crate::step::{lower_step, Algorithm};
use diva_arch::TrainingOp;

/// The model family, used for grouping in reports (paper figures group
/// CNNs / Transformers / RNNs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelFamily {
    /// Convolutional networks (CIFAR-10-scale inputs).
    Cnn,
    /// Transformer encoders (BERT).
    Transformer,
    /// Recurrent networks (LSTM).
    Rnn,
}

impl ModelFamily {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            ModelFamily::Cnn => "CNN",
            ModelFamily::Transformer => "Transformer",
            ModelFamily::Rnn => "RNN",
        }
    }
}

/// A shape-level model description: an ordered list of [`LayerSpec`]s plus
/// bookkeeping for the memory model.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelSpec {
    /// Model name as used in the paper's figures (e.g. "ResNet-50").
    pub name: String,
    /// Model family.
    pub family: ModelFamily,
    /// Layers in forward order.
    pub layers: Vec<LayerSpec>,
    /// Input elements per example (3·32·32 for CIFAR-scale CNNs).
    pub input_elems_per_example: u64,
}

impl ModelSpec {
    /// Total trainable parameters.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(LayerSpec::params).sum()
    }

    /// Parameters of the largest single layer (bounds DP-SGD(R)'s transient
    /// per-example gradient buffer).
    pub fn max_layer_params(&self) -> u64 {
        self.layers.iter().map(LayerSpec::params).max().unwrap_or(0)
    }

    /// Total stored activation elements per example (inputs of every layer
    /// retained for backpropagation).
    pub fn activation_elems_per_example(&self) -> u64 {
        self.input_elems_per_example
            + self
                .layers
                .iter()
                .map(LayerSpec::out_elems_per_example)
                .sum::<u64>()
    }

    /// Lowers one training step to the ordered op list executed by the
    /// simulator (paper Algorithm 1, expressed as GEMM + vector ops).
    pub fn lower(&self, algorithm: Algorithm, batch: u64) -> Vec<TrainingOp> {
        lower_step(self, algorithm, batch)
    }

    /// The memory footprint of training at the given batch size
    /// (paper Figure 4 breakdown).
    pub fn memory_profile(&self, algorithm: Algorithm, batch: u64) -> MemoryProfile {
        MemoryProfile::compute(self, algorithm, batch)
    }

    /// Largest batch size whose footprint fits in `capacity_bytes`
    /// (paper Section III-A; TPUv3 has 16 GB).
    ///
    /// Returns 0 if even batch 1 does not fit.
    pub fn max_batch(&self, algorithm: Algorithm, capacity_bytes: u64) -> u64 {
        if !self.memory_profile(algorithm, 1).fits(capacity_bytes) {
            return 0;
        }
        // Exponential probe then binary search.
        let mut lo = 1u64;
        let mut hi = 2u64;
        while self.memory_profile(algorithm, hi).fits(capacity_bytes) {
            lo = hi;
            hi *= 2;
            if hi > 1 << 24 {
                return lo; // cap the search; batches beyond 16M are absurd
            }
        }
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.memory_profile(algorithm, mid).fits(capacity_bytes) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Largest *power-of-two* batch that fits (the convention the paper's
    /// Section III-A numbers use, e.g. 8192 / 32 for ResNet-152).
    pub fn max_batch_pow2(&self, algorithm: Algorithm, capacity_bytes: u64) -> u64 {
        let exact = self.max_batch(algorithm, capacity_bytes);
        if exact == 0 {
            0
        } else {
            1u64 << exact.ilog2()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> ModelSpec {
        ModelSpec {
            name: "tiny".into(),
            family: ModelFamily::Cnn,
            layers: vec![
                LayerSpec::Conv {
                    name: "c1".into(),
                    cin: 3,
                    cout: 8,
                    k: 3,
                    stride: 1,
                    pad: 1,
                    in_h: 8,
                    in_w: 8,
                    groups: 1,
                },
                LayerSpec::Linear {
                    name: "fc".into(),
                    in_f: 8 * 8 * 8,
                    out_f: 10,
                },
            ],
            input_elems_per_example: 3 * 8 * 8,
        }
    }

    #[test]
    fn param_accounting() {
        let m = tiny_model();
        assert_eq!(m.params(), 3 * 8 * 9 + 512 * 10);
        assert_eq!(m.max_layer_params(), 512 * 10);
    }

    #[test]
    fn activation_accounting_includes_input() {
        let m = tiny_model();
        assert_eq!(m.activation_elems_per_example(), (3 * 64) + (8 * 64) + 10);
    }

    #[test]
    fn max_batch_monotone_in_capacity() {
        let m = tiny_model();
        let small = m.max_batch(Algorithm::DpSgd, 10 << 20);
        let large = m.max_batch(Algorithm::DpSgd, 100 << 20);
        assert!(large >= small);
        assert!(small >= 1);
    }

    #[test]
    fn max_batch_pow2_rounds_down() {
        let m = tiny_model();
        let exact = m.max_batch(Algorithm::Sgd, 50 << 20);
        let pow2 = m.max_batch_pow2(Algorithm::Sgd, 50 << 20);
        assert!(pow2 <= exact);
        assert!(pow2 * 2 > exact);
        assert!(pow2.is_power_of_two());
    }

    #[test]
    fn zero_capacity_means_zero_batch() {
        assert_eq!(tiny_model().max_batch(Algorithm::DpSgd, 1024), 0);
    }
}
