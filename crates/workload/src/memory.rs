//! Training memory footprint model — the paper's Figure 4 breakdown and
//! the Section III-A max-batch study.
//!
//! Categories match the paper's legend: weights, activations, per-batch
//! weight gradients, per-example weight gradients, and "else" (optimizer
//! state, input staging, workspace).

use crate::model::ModelSpec;
use crate::step::Algorithm;

/// Bytes per stored activation element (BF16 on TPU-class hardware).
const ACT_BYTES: u64 = 2;
/// Bytes per weight / gradient element (FP32 master copies).
const PARAM_BYTES: u64 = 4;

/// A training-step memory footprint, broken down by the paper's Figure 4
/// categories.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryProfile {
    /// Model weights.
    pub weight_bytes: u64,
    /// Stored activations (forward tensors retained for backprop), scaling
    /// with the mini-batch size.
    pub activation_bytes: u64,
    /// Per-batch weight gradients (same size as the weights).
    pub per_batch_grad_bytes: u64,
    /// Per-example weight gradients: `B × |W|` for DP-SGD; a transient
    /// single-layer buffer for DP-SGD(R); zero for SGD.
    pub per_example_grad_bytes: u64,
    /// Everything else: optimizer state, staged input batch, workspace.
    pub other_bytes: u64,
}

impl MemoryProfile {
    /// Computes the footprint for one model/algorithm/batch combination.
    pub fn compute(model: &ModelSpec, algorithm: Algorithm, batch: u64) -> Self {
        let params = model.params();
        let weight_bytes = params * PARAM_BYTES;
        let activation_bytes = model.activation_elems_per_example() * batch * ACT_BYTES;
        let per_batch_grad_bytes = params * PARAM_BYTES;
        let per_example_grad_bytes = match algorithm {
            Algorithm::Sgd => 0,
            // Algorithm 1 line 19: every layer's per-example gradients are
            // alive simultaneously (needed for the global norm, then
            // clip + reduce).
            Algorithm::DpSgd => batch * params * PARAM_BYTES,
            // DP-SGD(R): gradients exist one layer at a time during the
            // norm pass; the peak is the largest layer (Section II-C).
            Algorithm::DpSgdReweighted => batch * model.max_layer_params() * PARAM_BYTES,
        };
        // Optimizer momentum + the staged input mini-batch.
        let other_bytes = params * PARAM_BYTES + model.input_elems_per_example * batch * ACT_BYTES;
        Self {
            weight_bytes,
            activation_bytes,
            per_batch_grad_bytes,
            per_example_grad_bytes,
            other_bytes,
        }
    }

    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.weight_bytes
            + self.activation_bytes
            + self.per_batch_grad_bytes
            + self.per_example_grad_bytes
            + self.other_bytes
    }

    /// Whether the footprint fits a device capacity.
    pub fn fits(&self, capacity_bytes: u64) -> bool {
        self.total() <= capacity_bytes
    }

    /// Fraction of the total taken by per-example gradients (the paper
    /// reports an average of ~78% for DP-SGD).
    pub fn per_example_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.per_example_grad_bytes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::LayerSpec;
    use crate::model::ModelFamily;

    fn model() -> ModelSpec {
        ModelSpec {
            name: "m".into(),
            family: ModelFamily::Cnn,
            layers: vec![
                LayerSpec::Conv {
                    name: "c".into(),
                    cin: 16,
                    cout: 32,
                    k: 3,
                    stride: 1,
                    pad: 1,
                    in_h: 16,
                    in_w: 16,
                    groups: 1,
                },
                LayerSpec::Linear {
                    name: "fc".into(),
                    in_f: 32 * 256,
                    out_f: 10,
                },
            ],
            input_elems_per_example: 16 * 256,
        }
    }

    #[test]
    fn dpsgd_per_example_grads_scale_with_batch() {
        let m = model();
        let p8 = m.memory_profile(Algorithm::DpSgd, 8);
        let p16 = m.memory_profile(Algorithm::DpSgd, 16);
        assert_eq!(p16.per_example_grad_bytes, 2 * p8.per_example_grad_bytes);
        assert_eq!(p8.per_example_grad_bytes, 8 * m.params() * 4);
    }

    #[test]
    fn sgd_has_no_per_example_grads() {
        let p = model().memory_profile(Algorithm::Sgd, 64);
        assert_eq!(p.per_example_grad_bytes, 0);
    }

    #[test]
    fn reweighted_uses_single_layer_buffer() {
        let m = model();
        let p = m.memory_profile(Algorithm::DpSgdReweighted, 8);
        assert_eq!(p.per_example_grad_bytes, 8 * m.max_layer_params() * 4);
        let full = m.memory_profile(Algorithm::DpSgd, 8);
        assert!(p.per_example_grad_bytes < full.per_example_grad_bytes);
    }

    #[test]
    fn totals_are_consistent() {
        let p = model().memory_profile(Algorithm::DpSgd, 4);
        assert_eq!(
            p.total(),
            p.weight_bytes
                + p.activation_bytes
                + p.per_batch_grad_bytes
                + p.per_example_grad_bytes
                + p.other_bytes
        );
        assert!(p.fits(p.total()));
        assert!(!p.fits(p.total() - 1));
    }

    #[test]
    fn per_example_fraction_dominates_for_dpsgd_at_scale() {
        // With a reasonably large batch, per-example gradients dominate the
        // footprint — the paper's ~78% observation.
        let p = model().memory_profile(Algorithm::DpSgd, 64);
        assert!(
            p.per_example_fraction() > 0.5,
            "{}",
            p.per_example_fraction()
        );
    }
}
