//! The `DpEvent` algebra: mechanism invocations as a composable value
//! type, evaluated by interchangeable accountants.
//!
//! A [`DpEvent`] describes *what was released* — a Gaussian mechanism
//! invocation, a Laplace one, a Poisson-subsampled wrapper, or a
//! (self-)composition of other events — without fixing *how* its privacy
//! cost is bounded. Accountants implementing the [`Accountant`] trait walk
//! the tree and accumulate their own internal state: the Rényi-DP
//! accountant ([`RdpEventAccountant`]) keeps per-order RDP totals, the PLD
//! accountant ([`crate::PldAccountant`]) keeps a discretized privacy-loss
//! distribution composed by FFT convolution. Evaluating one event tree
//! under both yields two comparable (ε, δ) bounds — the cross-check
//! invariant the property suite enforces is `ε_PLD ≤ ε_RDP` (PLD is exact
//! up to discretization; RDP-to-DP conversion is lossy).

use crate::accountant::{log_sum_exp, subsampled_gaussian_rdp};
use crate::error::AccountError;
use crate::pld::PldAccountant;

/// One differential-privacy event: a mechanism invocation or a composition
/// of other events.
#[derive(Clone, Debug, PartialEq)]
pub enum DpEvent {
    /// The Gaussian mechanism at sensitivity 1 with standard deviation
    /// `noise_multiplier`.
    Gaussian {
        /// Noise standard deviation σ relative to an L2 sensitivity of 1.
        noise_multiplier: f64,
    },
    /// The Laplace mechanism at sensitivity 1 with the given scale `b`.
    Laplace {
        /// Noise scale `b` relative to an L1 sensitivity of 1.
        scale: f64,
    },
    /// Poisson subsampling at rate `sampling_rate` around an inner event
    /// (one DP-SGD step is `PoissonSampled { q, Gaussian { σ } }`).
    PoissonSampled {
        /// Inclusion probability `q ∈ (0, 1]` of each example.
        sampling_rate: f64,
        /// The mechanism run on the sampled batch.
        event: Box<DpEvent>,
    },
    /// A heterogeneous sequence of events, composed adaptively.
    Composed {
        /// The events in composition order.
        events: Vec<DpEvent>,
    },
    /// `count` adaptive repetitions of one event (e.g. the steps of a
    /// training run).
    SelfComposed {
        /// The repeated event.
        event: Box<DpEvent>,
        /// Number of repetitions.
        count: u64,
    },
}

impl DpEvent {
    /// A Gaussian mechanism event.
    pub fn gaussian(noise_multiplier: f64) -> Self {
        Self::Gaussian { noise_multiplier }
    }

    /// A Laplace mechanism event.
    pub fn laplace(scale: f64) -> Self {
        Self::Laplace { scale }
    }

    /// Poisson subsampling around `event` at rate `sampling_rate`.
    pub fn poisson_sampled(sampling_rate: f64, event: DpEvent) -> Self {
        Self::PoissonSampled {
            sampling_rate,
            event: Box::new(event),
        }
    }

    /// A heterogeneous composition of `events`.
    pub fn composed(events: Vec<DpEvent>) -> Self {
        Self::Composed { events }
    }

    /// `count` repetitions of `event`.
    pub fn self_composed(event: DpEvent, count: u64) -> Self {
        Self::SelfComposed {
            event: Box::new(event),
            count,
        }
    }

    /// The event of a DP-SGD training run: `steps` repetitions of the
    /// Poisson-subsampled Gaussian mechanism at rate `q` and noise
    /// multiplier σ.
    pub fn dp_sgd(sampling_rate: f64, noise_multiplier: f64, steps: u64) -> Self {
        Self::self_composed(
            Self::poisson_sampled(sampling_rate, Self::gaussian(noise_multiplier)),
            steps,
        )
    }

    /// Validates every parameter in the tree.
    ///
    /// # Errors
    ///
    /// [`AccountError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<(), AccountError> {
        match self {
            Self::Gaussian { noise_multiplier } => {
                if !(noise_multiplier.is_finite() && *noise_multiplier > 0.0) {
                    return Err(AccountError::InvalidParameter(format!(
                        "noise multiplier must be positive and finite, got {noise_multiplier}"
                    )));
                }
            }
            Self::Laplace { scale } => {
                if !(scale.is_finite() && *scale > 0.0) {
                    return Err(AccountError::InvalidParameter(format!(
                        "Laplace scale must be positive and finite, got {scale}"
                    )));
                }
            }
            Self::PoissonSampled {
                sampling_rate,
                event,
            } => {
                if !(sampling_rate.is_finite() && *sampling_rate > 0.0 && *sampling_rate <= 1.0) {
                    return Err(AccountError::InvalidParameter(format!(
                        "sampling rate must be in (0, 1], got {sampling_rate}"
                    )));
                }
                event.validate()?;
            }
            Self::Composed { events } => {
                for e in events {
                    e.validate()?;
                }
            }
            Self::SelfComposed { event, .. } => event.validate()?,
        }
        Ok(())
    }
}

/// A privacy accountant: composes [`DpEvent`]s into internal state and
/// answers ε(δ) / δ(ε) queries about everything composed so far.
pub trait Accountant {
    /// A short stable name for reports ("rdp" / "pld").
    fn name(&self) -> &'static str;

    /// Composes `count` repetitions of `event` into the accountant.
    ///
    /// # Errors
    ///
    /// Invalid parameters or an event tree this accountant has no bound
    /// for; the accountant state is unspecified after an error (discard it).
    fn compose(&mut self, event: &DpEvent, count: u64) -> Result<(), AccountError>;

    /// The smallest ε such that everything composed so far is (ε, δ)-DP.
    ///
    /// # Errors
    ///
    /// `delta` outside `(0, 1)`, or a query with no finite answer.
    fn epsilon(&self, delta: f64) -> Result<f64, AccountError>;

    /// The smallest δ such that everything composed so far is (ε, δ)-DP.
    ///
    /// # Errors
    ///
    /// `epsilon` negative or non-finite.
    fn delta(&self, epsilon: f64) -> Result<f64, AccountError>;
}

/// Which accountant evaluates an event tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccountantKind {
    /// Rényi-DP (moments accountant): cheap, composition is addition of
    /// per-order totals; the (ε, δ) conversion is an upper bound with
    /// slack.
    Rdp,
    /// Privacy-loss-distribution accounting with FFT composition: near
    /// exact (the only looseness is the discretization grid), tighter
    /// than RDP on every DP-SGD configuration we track.
    Pld,
}

impl AccountantKind {
    /// A fresh accountant of this kind with default options.
    pub fn accountant(self) -> Box<dyn Accountant> {
        match self {
            Self::Rdp => Box::new(RdpEventAccountant::new()),
            Self::Pld => Box::new(PldAccountant::new()),
        }
    }

    /// The stable lowercase name ("rdp" / "pld").
    pub fn label(self) -> &'static str {
        match self {
            Self::Rdp => "rdp",
            Self::Pld => "pld",
        }
    }

    /// Parses a case-insensitive accountant name.
    ///
    /// # Errors
    ///
    /// [`AccountError::InvalidParameter`] for anything but "rdp"/"pld".
    pub fn parse(name: &str) -> Result<Self, AccountError> {
        match name.to_ascii_lowercase().as_str() {
            "rdp" => Ok(Self::Rdp),
            "pld" => Ok(Self::Pld),
            other => Err(AccountError::InvalidParameter(format!(
                "unknown accountant {other:?} (expected \"rdp\" or \"pld\")"
            ))),
        }
    }
}

/// One-shot ε query: composes `event` once into a fresh accountant of
/// `kind` and returns ε at `delta`.
///
/// # Errors
///
/// Propagates composition and query errors from the accountant.
pub fn event_epsilon(
    kind: AccountantKind,
    event: &DpEvent,
    delta: f64,
) -> Result<f64, AccountError> {
    let mut acc = kind.accountant();
    acc.compose(event, 1)?;
    acc.epsilon(delta)
}

/// The Rényi-DP accountant over [`DpEvent`] trees: accumulates per-order
/// RDP totals on the integer grid α ∈ [2, 256] (the same grid as the
/// legacy [`crate::RdpAccountant`]) and converts to (ε, δ) via
/// `ε = min_α [RDP(α) + ln(1/δ)/(α−1)]`.
#[derive(Clone, Debug)]
pub struct RdpEventAccountant {
    orders: Vec<u32>,
    totals: Vec<f64>,
    composed_any: bool,
}

impl Default for RdpEventAccountant {
    fn default() -> Self {
        Self::new()
    }
}

impl RdpEventAccountant {
    /// An empty accountant on the default order grid α ∈ [2, 256].
    pub fn new() -> Self {
        let orders: Vec<u32> = (2..=256).collect();
        let totals = vec![0.0; orders.len()];
        Self {
            orders,
            totals,
            composed_any: false,
        }
    }

    /// The accumulated RDP of one `event` at order `alpha`.
    fn event_rdp(event: &DpEvent, alpha: u32) -> Result<f64, AccountError> {
        match event {
            DpEvent::Gaussian { noise_multiplier } => {
                Ok(f64::from(alpha) / (2.0 * noise_multiplier * noise_multiplier))
            }
            DpEvent::Laplace { scale } => Ok(laplace_rdp(alpha, *scale)),
            DpEvent::PoissonSampled {
                sampling_rate,
                event,
            } => match event.as_ref() {
                DpEvent::Gaussian { noise_multiplier } => Ok(subsampled_gaussian_rdp(
                    *sampling_rate,
                    *noise_multiplier,
                    alpha,
                )),
                other => Err(AccountError::UnsupportedEvent(format!(
                    "RDP accountant has no subsampled bound for {other:?} \
                     (only Poisson-subsampled Gaussian is supported)"
                ))),
            },
            DpEvent::Composed { events } => {
                let mut total = 0.0;
                for e in events {
                    total += Self::event_rdp(e, alpha)?;
                }
                Ok(total)
            }
            DpEvent::SelfComposed { event, count } => {
                Ok(*count as f64 * Self::event_rdp(event, alpha)?)
            }
        }
    }

    /// ε at `delta` if the accumulated totals were scaled by `factor` —
    /// the batch-ε fast path (per-order RDP composes linearly, so ε at
    /// many step counts reuses one per-order evaluation).
    pub(crate) fn epsilon_scaled(&self, factor: f64, delta: f64) -> Result<f64, AccountError> {
        check_delta(delta)?;
        if !self.composed_any || factor == 0.0 {
            return Ok(0.0);
        }
        let ln_inv_delta = (1.0 / delta).ln();
        Ok(self
            .orders
            .iter()
            .zip(&self.totals)
            .map(|(&alpha, &rdp)| factor * rdp + ln_inv_delta / (f64::from(alpha) - 1.0))
            .fold(f64::INFINITY, f64::min))
    }
}

impl Accountant for RdpEventAccountant {
    fn name(&self) -> &'static str {
        "rdp"
    }

    fn compose(&mut self, event: &DpEvent, count: u64) -> Result<(), AccountError> {
        event.validate()?;
        if count == 0 {
            return Ok(());
        }
        // Validate the whole tree is supported before mutating any total,
        // so a failed compose leaves consistent state.
        let per_order: Vec<f64> = self
            .orders
            .iter()
            .map(|&alpha| Self::event_rdp(event, alpha))
            .collect::<Result<_, _>>()?;
        for (total, rdp) in self.totals.iter_mut().zip(per_order) {
            *total += count as f64 * rdp;
        }
        self.composed_any = true;
        Ok(())
    }

    fn epsilon(&self, delta: f64) -> Result<f64, AccountError> {
        self.epsilon_scaled(1.0, delta)
    }

    fn delta(&self, epsilon: f64) -> Result<f64, AccountError> {
        check_epsilon(epsilon)?;
        if !self.composed_any {
            return Ok(0.0);
        }
        // δ = min_α exp((α−1)·(RDP(α) − ε)), clamped to [0, 1].
        let ln_delta = self
            .orders
            .iter()
            .zip(&self.totals)
            .map(|(&alpha, &rdp)| (f64::from(alpha) - 1.0) * (rdp - epsilon))
            .fold(f64::INFINITY, f64::min);
        Ok(ln_delta.exp().min(1.0))
    }
}

/// RDP of the Laplace mechanism at sensitivity 1 and scale `b`
/// (Mironov, CSF'17, Table II), evaluated in log space so large `(α−1)/b`
/// cannot overflow:
///
/// ```text
/// RDP(α) = 1/(α−1) · ln[ α/(2α−1)·e^{(α−1)/b} + (α−1)/(2α−1)·e^{−α/b} ]
/// ```
fn laplace_rdp(alpha: u32, b: f64) -> f64 {
    let a = f64::from(alpha);
    let t1 = (a / (2.0 * a - 1.0)).ln() + (a - 1.0) / b;
    let t2 = ((a - 1.0) / (2.0 * a - 1.0)).ln() - a / b;
    (log_sum_exp(&[t1, t2]) / (a - 1.0)).max(0.0)
}

pub(crate) fn check_delta(delta: f64) -> Result<(), AccountError> {
    if !(delta.is_finite() && delta > 0.0 && delta < 1.0) {
        return Err(AccountError::InvalidParameter(format!(
            "delta must be in (0, 1), got {delta}"
        )));
    }
    Ok(())
}

pub(crate) fn check_epsilon(epsilon: f64) -> Result<(), AccountError> {
    if !(epsilon.is_finite() && epsilon >= 0.0) {
        return Err(AccountError::InvalidParameter(format!(
            "epsilon must be non-negative and finite, got {epsilon}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RdpAccountant;

    #[test]
    fn dp_sgd_event_matches_legacy_accountant() {
        let (q, sigma, steps, delta) = (0.01, 1.1, 1_000u64, 1e-5);
        let legacy = RdpAccountant::new(q, sigma).epsilon(steps, delta);
        let event = DpEvent::dp_sgd(q, sigma, steps);
        let eps = event_epsilon(AccountantKind::Rdp, &event, delta).unwrap();
        assert!(
            (eps - legacy).abs() < 1e-12,
            "event {eps} vs legacy {legacy}"
        );
    }

    #[test]
    fn composed_and_self_composed_agree() {
        let step = DpEvent::poisson_sampled(0.02, DpEvent::gaussian(1.0));
        let seq = DpEvent::composed(vec![step.clone(); 5]);
        let rep = DpEvent::self_composed(step, 5);
        let e1 = event_epsilon(AccountantKind::Rdp, &seq, 1e-5).unwrap();
        let e2 = event_epsilon(AccountantKind::Rdp, &rep, 1e-5).unwrap();
        assert!((e1 - e2).abs() < 1e-12);
    }

    #[test]
    fn gaussian_event_uses_closed_form() {
        // Plain Gaussian RDP(α) = α/(2σ²); at σ = 2, steps = 1 the best
        // order balances noise against the delta term.
        let mut acc = RdpEventAccountant::new();
        acc.compose(&DpEvent::gaussian(2.0), 1).unwrap();
        let eps = acc.epsilon(1e-5).unwrap();
        let expected = (2u32..=256)
            .map(|a| f64::from(a) / 8.0 + (1e5f64).ln() / (f64::from(a) - 1.0))
            .fold(f64::INFINITY, f64::min);
        assert!((eps - expected).abs() < 1e-12);
    }

    #[test]
    fn laplace_rdp_limits_to_pure_epsilon() {
        // As α → ∞, Laplace RDP approaches the pure-DP ε = 1/b.
        let b = 0.5;
        let r = laplace_rdp(256, b);
        assert!(r <= 1.0 / b + 1e-9, "rdp {r} exceeds pure eps {}", 1.0 / b);
        assert!(r > 0.8 / b, "rdp {r} far below pure eps {}", 1.0 / b);
    }

    #[test]
    fn subsampled_laplace_is_unsupported() {
        let event = DpEvent::poisson_sampled(0.1, DpEvent::laplace(1.0));
        let mut acc = RdpEventAccountant::new();
        let err = acc.compose(&event, 1).unwrap_err();
        assert!(matches!(err, AccountError::UnsupportedEvent(_)));
    }

    #[test]
    fn invalid_parameters_are_typed_errors() {
        for event in [
            DpEvent::gaussian(0.0),
            DpEvent::gaussian(f64::NAN),
            DpEvent::laplace(-1.0),
            DpEvent::poisson_sampled(1.5, DpEvent::gaussian(1.0)),
            DpEvent::poisson_sampled(0.0, DpEvent::gaussian(1.0)),
        ] {
            assert!(matches!(
                event.validate(),
                Err(AccountError::InvalidParameter(_))
            ));
        }
        let mut acc = RdpEventAccountant::new();
        acc.compose(&DpEvent::gaussian(1.0), 1).unwrap();
        assert!(acc.epsilon(0.0).is_err());
        assert!(acc.epsilon(1.0).is_err());
        assert!(acc.delta(-1.0).is_err());
    }

    #[test]
    fn empty_accountant_spends_nothing() {
        let acc = RdpEventAccountant::new();
        assert_eq!(acc.epsilon(1e-5).unwrap(), 0.0);
        assert_eq!(acc.delta(1.0).unwrap(), 0.0);
    }

    #[test]
    fn kind_parsing_round_trips() {
        assert_eq!(AccountantKind::parse("RDP").unwrap(), AccountantKind::Rdp);
        assert_eq!(AccountantKind::parse("pld").unwrap(), AccountantKind::Pld);
        assert!(AccountantKind::parse("moments").is_err());
        assert_eq!(AccountantKind::Pld.label(), "pld");
    }
}
