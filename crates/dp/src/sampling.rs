//! Poisson subsampling — the sampling scheme the RDP accountant actually
//! analyzes.
//!
//! DP-SGD's privacy analysis (and our [`crate::RdpAccountant`]) assumes each
//! example joins the mini-batch *independently* with probability `q`, not
//! fixed-size shuffled batches. Frameworks often approximate; this module
//! provides the real thing so the algorithmic reproduction is faithful.

use diva_tensor::{DivaRng, Tensor};

use crate::synthetic::Dataset;

/// Draws a Poisson-subsampled mini-batch: every example of `dataset` is
/// included independently with probability `q`.
///
/// Returns `None` when the draw selects no examples (expected with
/// probability `(1-q)^N`; DP-SGD treats that step as a noise-only update,
/// which callers can implement by skipping).
///
/// # Panics
///
/// Panics if `q` is outside `(0, 1]`.
pub fn poisson_sample(
    dataset: &Dataset,
    q: f64,
    rng: &mut DivaRng,
) -> Option<(Tensor, Vec<usize>)> {
    assert!(
        q > 0.0 && q <= 1.0,
        "sampling rate must be in (0,1], got {q}"
    );
    let selected: Vec<usize> = (0..dataset.len())
        .filter(|_| f64::from(rng.uniform(0.0, 1.0)) < q)
        .collect();
    if selected.is_empty() {
        return None;
    }
    let dims = dataset.inputs.shape().dims();
    let stride: usize = dims[1..].iter().product();
    let mut data = Vec::with_capacity(selected.len() * stride);
    let mut labels = Vec::with_capacity(selected.len());
    for &i in &selected {
        data.extend_from_slice(&dataset.inputs.data()[i * stride..(i + 1) * stride]);
        labels.push(dataset.labels[i]);
    }
    let mut batch_dims = vec![selected.len()];
    batch_dims.extend_from_slice(&dims[1..]);
    Some((Tensor::from_vec(data, &batch_dims), labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::make_blobs;

    #[test]
    fn sample_sizes_concentrate_around_qn() {
        let mut rng = DivaRng::seed_from_u64(40);
        let ds = make_blobs(1000, 4, 2, 0.1, &mut rng);
        let q = 0.1;
        let mut total = 0usize;
        let trials = 200;
        for _ in 0..trials {
            if let Some((x, labels)) = poisson_sample(&ds, q, &mut rng) {
                assert_eq!(x.shape().dim(0), labels.len());
                total += labels.len();
            }
        }
        let mean = total as f64 / trials as f64;
        // E[|batch|] = qN = 100; allow generous sampling slack.
        assert!((mean - 100.0).abs() < 10.0, "mean batch size {mean}");
    }

    #[test]
    fn q_one_selects_everything() {
        let mut rng = DivaRng::seed_from_u64(41);
        let ds = make_blobs(50, 3, 2, 0.1, &mut rng);
        let (x, labels) = poisson_sample(&ds, 1.0, &mut rng).expect("q=1 cannot be empty");
        assert_eq!(labels.len(), 50);
        assert_eq!(x.data(), ds.inputs.data());
        assert_eq!(labels, ds.labels);
    }

    #[test]
    fn tiny_q_often_returns_none() {
        let mut rng = DivaRng::seed_from_u64(42);
        let ds = make_blobs(5, 3, 2, 0.1, &mut rng);
        let nones = (0..200)
            .filter(|_| poisson_sample(&ds, 1e-3, &mut rng).is_none())
            .count();
        assert!(
            nones > 150,
            "expected mostly empty draws, got {nones} empties"
        );
    }

    #[test]
    fn samples_preserve_example_label_pairing() {
        let mut rng = DivaRng::seed_from_u64(43);
        let ds = make_blobs(100, 4, 4, 0.01, &mut rng);
        // With tight clusters, the dominant coordinate identifies the class.
        if let Some((x, labels)) = poisson_sample(&ds, 0.5, &mut rng) {
            for (row, &label) in (0..labels.len()).zip(&labels) {
                let features = &x.data()[row * 4..(row + 1) * 4];
                let argmax = features
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                assert_eq!(argmax, label, "row {row} mismatched");
            }
        }
    }
}
