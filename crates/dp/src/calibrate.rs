//! Noise calibration: analytical Gaussian-mechanism calibration (Balle &
//! Wang, ICML'18) and accountant-driven σ search for DP-SGD.
//!
//! The classic Gaussian calibration `σ = √(2 ln(1.25/δ))/ε` is a
//! sufficient condition that over-noises by 20–40% in common regimes and
//! is vacuous for ε > 1. The analytical calibration instead inverts the
//! *exact* Gaussian hockey-stick divergence
//!
//! ```text
//! δ(ε, σ) = Φ(1/(2σ) − εσ) − e^ε · Φ(−1/(2σ) − εσ)
//! ```
//!
//! which is monotone decreasing in σ, so a bisection recovers the optimal
//! σ for any (ε, δ). The same bisection pattern, with a full accountant
//! (RDP or PLD) as the oracle, calibrates the DP-SGD noise multiplier in
//! [`calibrate_noise`].
//!
//! The normal CDF is built on an in-tree `erfc` (regularized incomplete
//! gamma, series + continued fraction — the classic `gser`/`gcf` split),
//! keeping the zero-external-dependency invariant.

use crate::error::AccountError;
use crate::event::{event_epsilon, AccountantKind, DpEvent};

/// ln Γ(1/2) = ln √π, the normalizer of the incomplete-gamma forms below.
const LN_GAMMA_HALF: f64 = 0.572_364_942_924_700_1;

/// The complementary error function `erfc(x) = 2/√π ∫_x^∞ e^{−t²} dt`,
/// accurate to ~1e-14 relative over the f64 range.
///
/// For `x ≥ 0`, `erfc(x) = Q(1/2, x²)`, the upper regularized incomplete
/// gamma function, computed by its series for small arguments and by a
/// continued fraction (modified Lentz) otherwise; `erfc(−x) = 2 − erfc(x)`.
pub(crate) fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let a = x * x;
    if a < 1.5 {
        // P(1/2, a) by series: P = e^{−a} a^{1/2} / Γ(1/2) · Σ_{n≥0} aⁿ /
        // ((1/2)(3/2)⋯(1/2+n)); erfc = 1 − P.
        if a == 0.0 {
            return 1.0;
        }
        let mut ap = 0.5;
        let mut term = 1.0 / 0.5;
        let mut sum = term;
        for _ in 0..200 {
            ap += 1.0;
            term *= a / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-17 {
                break;
            }
        }
        1.0 - sum * (-a + 0.5 * a.ln() - LN_GAMMA_HALF).exp()
    } else {
        // Q(1/2, a) by continued fraction (modified Lentz):
        // Q = e^{−a} a^{1/2} / Γ(1/2) · 1/(a+1/2− 1·1/2/(a+3/2− …)).
        let tiny = 1e-300;
        let mut b = a + 0.5;
        let mut c = 1.0 / tiny;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..200 {
            let an = -(i as f64) * (i as f64 - 0.5);
            b += 2.0;
            d = an * d + b;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + an / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-17 {
                break;
            }
        }
        (-a + 0.5 * a.ln() - LN_GAMMA_HALF).exp() * h
    }
}

/// The standard normal CDF `Φ(x) = ½·erfc(−x/√2)`.
pub(crate) fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

fn check_sigma(sigma: f64) -> Result<(), AccountError> {
    if !(sigma.is_finite() && sigma > 0.0) {
        return Err(AccountError::InvalidParameter(format!(
            "noise multiplier must be positive and finite, got {sigma}"
        )));
    }
    Ok(())
}

fn check_target(epsilon: f64, delta: f64) -> Result<(), AccountError> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(AccountError::InvalidParameter(format!(
            "target epsilon must be positive and finite, got {epsilon}"
        )));
    }
    if !(delta.is_finite() && delta > 0.0 && delta < 1.0) {
        return Err(AccountError::InvalidParameter(format!(
            "delta must be in (0, 1), got {delta}"
        )));
    }
    Ok(())
}

/// The exact δ of the Gaussian mechanism at sensitivity 1, noise `σ` and
/// budget `ε` (Balle & Wang 2018, Theorem 5):
/// `δ = Φ(1/(2σ) − εσ) − e^ε·Φ(−1/(2σ) − εσ)`.
///
/// # Errors
///
/// σ must be positive and finite; ε must be non-negative and finite.
pub fn gaussian_delta(sigma: f64, epsilon: f64) -> Result<f64, AccountError> {
    check_sigma(sigma)?;
    if !(epsilon.is_finite() && epsilon >= 0.0) {
        return Err(AccountError::InvalidParameter(format!(
            "epsilon must be non-negative and finite, got {epsilon}"
        )));
    }
    let a = 1.0 / (2.0 * sigma);
    let d = norm_cdf(a - epsilon * sigma) - epsilon.exp() * norm_cdf(-a - epsilon * sigma);
    Ok(d.clamp(0.0, 1.0))
}

/// The smallest ε at which the Gaussian mechanism with noise `σ` is
/// (ε, δ)-DP, by bisection on the exact [`gaussian_delta`] curve.
///
/// # Errors
///
/// Invalid arguments, or δ already met at ε = 0 is fine (returns 0);
/// never fails for valid inputs since δ(ε) → 0 as ε → ∞.
pub fn gaussian_epsilon(sigma: f64, delta: f64) -> Result<f64, AccountError> {
    check_sigma(sigma)?;
    if !(delta.is_finite() && delta > 0.0 && delta < 1.0) {
        return Err(AccountError::InvalidParameter(format!(
            "delta must be in (0, 1), got {delta}"
        )));
    }
    if gaussian_delta(sigma, 0.0)? <= delta {
        return Ok(0.0);
    }
    // δ(ε) is strictly decreasing; bracket then bisect.
    let mut hi = 1.0f64;
    while gaussian_delta(sigma, hi)? > delta {
        hi *= 2.0;
        if hi > 1e9 {
            return Err(AccountError::UnachievableTarget(format!(
                "delta {delta} unreachable at sigma {sigma} below epsilon 1e9"
            )));
        }
    }
    let mut lo = 0.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if gaussian_delta(sigma, mid)? > delta {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= 1e-12 * hi.max(1.0) {
            break;
        }
    }
    Ok(hi)
}

/// The optimal Gaussian noise multiplier for an (ε, δ) target at
/// sensitivity 1 — the analytical calibration of Balle & Wang 2018,
/// inverting the exact [`gaussian_delta`] by bisection. Always at or
/// below [`classic_gaussian_sigma`], and valid for every ε > 0.
///
/// # Errors
///
/// Invalid (ε, δ), or a target outside the bisection bracket
/// `σ ∈ [10⁻⁶, 10⁹]`.
pub fn gaussian_sigma(epsilon: f64, delta: f64) -> Result<f64, AccountError> {
    check_target(epsilon, delta)?;
    // δ(ε, σ) is strictly decreasing in σ.
    let (mut lo, mut hi) = (1e-6f64, 1e9f64);
    if gaussian_delta(lo, epsilon)? <= delta {
        return Ok(lo);
    }
    if gaussian_delta(hi, epsilon)? > delta {
        return Err(AccountError::UnachievableTarget(format!(
            "({epsilon}, {delta})-DP needs sigma above 1e9"
        )));
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if gaussian_delta(mid, epsilon)? > delta {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= 1e-12 * hi {
            break;
        }
    }
    Ok(hi)
}

/// The classic sufficient-condition calibration
/// `σ = √(2 ln(1.25/δ))/ε` (Dwork & Roth 2014). Kept for comparison —
/// [`gaussian_sigma`] dominates it everywhere it applies, and unlike it
/// stays meaningful for ε ≥ 1.
///
/// # Errors
///
/// Invalid (ε, δ).
pub fn classic_gaussian_sigma(epsilon: f64, delta: f64) -> Result<f64, AccountError> {
    check_target(epsilon, delta)?;
    Ok((2.0 * (1.25 / delta).ln()).sqrt() / epsilon)
}

/// The DP-SGD noise multiplier that meets `(target_epsilon, delta)` after
/// `steps` Poisson-subsampled steps at sampling rate `q`, under the given
/// accountant — the generalization of [`calibrate_sigma`] to both
/// accountants. ε(σ) is monotone decreasing, so a bisection over
/// `σ ∈ [0.2, 1000]` converges to ~4 significant digits.
///
/// # Errors
///
/// Invalid arguments, or a target no σ in the bracket reaches
/// ([`AccountError::UnachievableTarget`]).
pub fn calibrate_noise(
    kind: AccountantKind,
    target_epsilon: f64,
    delta: f64,
    sampling_rate: f64,
    steps: u64,
) -> Result<f64, AccountError> {
    check_target(target_epsilon, delta)?;
    if steps == 0 {
        return Err(AccountError::InvalidParameter(
            "steps must be positive".into(),
        ));
    }
    let eps_at = |sigma: f64| -> Result<f64, AccountError> {
        event_epsilon(kind, &DpEvent::dp_sgd(sampling_rate, sigma, steps), delta)
    };
    let (mut lo, mut hi) = (0.2f64, 1000.0f64);
    // Validates q as a side effect of the first evaluation.
    if eps_at(lo)? <= target_epsilon {
        return Ok(lo);
    }
    if eps_at(hi)? > target_epsilon {
        return Err(AccountError::UnachievableTarget(format!(
            "epsilon {target_epsilon} at delta {delta} needs sigma above 1000 \
             for q {sampling_rate}, {steps} steps"
        )));
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if eps_at(mid)? > target_epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= 1e-4 * hi {
            break;
        }
    }
    Ok(hi)
}

/// The noise multiplier meeting `(target_epsilon, delta)` under the RDP
/// accountant — the legacy entry point, now returning a typed error
/// instead of panicking on bad arguments or unreachable targets.
///
/// # Errors
///
/// See [`calibrate_noise`].
pub fn calibrate_sigma(
    target_epsilon: f64,
    delta: f64,
    sampling_rate: f64,
    steps: u64,
) -> Result<f64, AccountError> {
    calibrate_noise(
        AccountantKind::Rdp,
        target_epsilon,
        delta,
        sampling_rate,
        steps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accountant::RdpAccountant;

    #[test]
    fn erfc_matches_reference_values() {
        // Abramowitz & Stegun / mpmath references.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.479_500_122_186_953_4),
            (1.0, 0.157_299_207_050_285_13),
            (2.0, 0.004_677_734_981_047_266),
            (3.0, 2.209_049_699_858_544e-5),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!(
                (got - want).abs() < 1e-13 * want.max(1e-30) + 1e-16,
                "erfc({x}) = {got}, want {want}"
            );
            // Reflection: erfc(−x) = 2 − erfc(x).
            assert!((erfc(-x) - (2.0 - want)).abs() < 1e-13);
        }
    }

    #[test]
    fn norm_cdf_sanity() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((norm_cdf(1.96) - 0.975_002_104_851_780_2).abs() < 1e-12);
        assert!((norm_cdf(-1.96) - 0.024_997_895_148_219_8).abs() < 1e-12);
    }

    #[test]
    fn analytic_sigma_round_trips_through_delta() {
        for (eps, delta) in [(0.5, 1e-5), (1.0, 1e-6), (4.0, 1e-5)] {
            let sigma = gaussian_sigma(eps, delta).unwrap();
            let d = gaussian_delta(sigma, eps).unwrap();
            assert!(
                (d - delta).abs() < 1e-9 * delta,
                "eps {eps}: delta {d} vs target {delta}"
            );
        }
    }

    #[test]
    fn analytic_beats_classic_calibration() {
        for (eps, delta) in [(0.3, 1e-5), (0.9, 1e-6), (0.5, 1e-7)] {
            let analytic = gaussian_sigma(eps, delta).unwrap();
            let classic = classic_gaussian_sigma(eps, delta).unwrap();
            assert!(
                analytic < classic,
                "eps {eps}: analytic {analytic} vs classic {classic}"
            );
        }
    }

    #[test]
    fn gaussian_epsilon_inverts_delta() {
        let sigma = 1.2;
        let eps = gaussian_epsilon(sigma, 1e-5).unwrap();
        let d = gaussian_delta(sigma, eps).unwrap();
        assert!((d - 1e-5).abs() < 1e-12, "delta {d}");
    }

    #[test]
    fn calibration_inverts_epsilon() {
        // σ from the calibrator must reproduce the target ε (within the
        // bisection tolerance) when fed back through the accountant.
        let (target, delta, q, steps) = (2.0, 1e-5, 0.01, 60 * 234);
        let sigma = calibrate_sigma(target, delta, q, steps).unwrap();
        let eps = RdpAccountant::new(q, sigma).epsilon(steps, delta);
        assert!(
            eps <= target,
            "calibrated eps {eps} exceeds target {target}"
        );
        assert!(
            eps > target * 0.97,
            "calibrated eps {eps} overshoots target {target}"
        );
    }

    #[test]
    fn pld_calibration_needs_less_noise() {
        let (target, delta, q, steps) = (2.0, 1e-5, 0.01, 2_000);
        let rdp = calibrate_noise(AccountantKind::Rdp, target, delta, q, steps).unwrap();
        let pld = calibrate_noise(AccountantKind::Pld, target, delta, q, steps).unwrap();
        assert!(pld <= rdp, "pld sigma {pld} vs rdp sigma {rdp}");
    }

    #[test]
    fn bad_targets_are_typed_errors() {
        assert!(matches!(
            calibrate_sigma(0.0, 1e-5, 0.01, 100),
            Err(AccountError::InvalidParameter(_))
        ));
        assert!(matches!(
            calibrate_sigma(2.0, 1.5, 0.01, 100),
            Err(AccountError::InvalidParameter(_))
        ));
        assert!(matches!(
            calibrate_sigma(2.0, 1e-5, 0.01, 0),
            Err(AccountError::InvalidParameter(_))
        ));
        // An absurdly tight target exceeds the sigma bracket.
        assert!(matches!(
            calibrate_sigma(1e-6, 1e-12, 0.5, 1_000_000),
            Err(AccountError::UnachievableTarget(_))
        ));
        assert!(matches!(
            gaussian_sigma(-1.0, 1e-5),
            Err(AccountError::InvalidParameter(_))
        ));
    }
}
