//! Privacy-loss-distribution (PLD) accounting with FFT composition.
//!
//! A PLD is the distribution of the privacy loss `L(x) = ln(P(x)/Q(x))`
//! for `x ~ P`, where `(P, Q)` is a dominating pair of output
//! distributions for the mechanism. Composition of mechanisms is addition
//! of independent losses — convolution of their PLDs — and both (ε, δ)
//! queries are expectations over the loss ([Sommer et al., PETS'19;
//! Koskela et al., AISTATS'20]):
//!
//! ```text
//! δ(ε) = Σ_{ℓ > ε} p(ℓ)·(1 − e^{ε−ℓ}) + m_∞
//! ```
//!
//! where `m_∞` is the probability that `Q` cannot cover `P` at all.
//!
//! # Discretization contract
//!
//! Losses live on the uniform grid `k·Δ` (`Δ =`
//! [`PldOptions::discretization`]); construction rounds each mechanism's
//! continuous loss **to the nearest** grid point, so per-step rounding is
//! zero-mean to first order and the error after `k` compositions grows
//! like `O(√k·Δ)` rather than the `O(k·Δ)` of ceiling rounding (the same
//! tradeoff the PRV accountant of Gopi et al., NeurIPS'21 makes). Tail
//! truncation *is* one-sided pessimistic: upper-tail mass moves into
//! `m_∞` (inflating δ), lower-tail mass moves up into the lowest kept
//! bucket. The result is a near-exact estimate — tight enough that the
//! property suite can assert `ε_PLD ≤ ε_RDP` across the whole grid — not
//! a certified upper bound at machine precision.
//!
//! Subsampled mechanisms are asymmetric: both adjacency directions
//! (add and remove) are tracked and every query takes the max, so the
//! reported (ε, δ) holds for both neighbor relations.
//!
//! Everything here is single-threaded and deterministic — accounting
//! inherits the workspace's thread-count bit-stability guarantee.

use diva_tensor::fft::convolve;

use crate::calibrate::norm_cdf;
use crate::error::AccountError;
use crate::event::{check_delta, check_epsilon, Accountant, DpEvent};

/// Hard cap on the number of grid buckets a composed PLD may hold; beyond
/// this the engine reports [`AccountError::GridOverflow`] instead of
/// allocating unboundedly.
const MAX_BINS: usize = 1 << 21;

/// Tuning knobs for PLD construction and composition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PldOptions {
    /// Grid spacing Δ of the discretized loss (default `1e-3`): ε error
    /// after `k` compositions is O(√k·Δ).
    pub discretization: f64,
    /// Probability mass truncated per tail per operation (default
    /// `1e-12`); truncation is pessimistic, adding at most this much to δ
    /// per composition. Keep well below the δ you plan to query.
    pub tail_mass: f64,
}

impl Default for PldOptions {
    fn default() -> Self {
        Self {
            discretization: 1e-3,
            tail_mass: 1e-12,
        }
    }
}

impl PldOptions {
    fn validate(&self) -> Result<(), AccountError> {
        if !(self.discretization.is_finite()
            && self.discretization > 0.0
            && self.discretization <= 1.0)
        {
            return Err(AccountError::InvalidParameter(format!(
                "discretization must be in (0, 1], got {}",
                self.discretization
            )));
        }
        if !(self.tail_mass.is_finite() && self.tail_mass > 0.0 && self.tail_mass < 1e-3) {
            return Err(AccountError::InvalidParameter(format!(
                "tail_mass must be in (0, 1e-3), got {}",
                self.tail_mass
            )));
        }
        Ok(())
    }

    /// The z-score whose upper Gaussian tail is safely below `tail_mass`
    /// (`Φc(z) ≤ ½e^{−z²/2}`; the +1 is slack for mixture weights).
    fn tail_z(&self) -> f64 {
        (2.0 * (1.0 / self.tail_mass).ln()).sqrt() + 1.0
    }
}

/// One direction of a discretized privacy-loss distribution: a PMF over
/// losses `(min_index + i)·Δ` plus the infinite-loss mass.
#[derive(Clone, Debug)]
pub struct Pld {
    grid: f64,
    min_index: i64,
    pmf: Vec<f64>,
    infinity_mass: f64,
}

impl Pld {
    /// The identity element of composition: all mass at loss 0.
    pub fn identity(grid: f64) -> Self {
        Self {
            grid,
            min_index: 0,
            pmf: vec![1.0],
            infinity_mass: 0.0,
        }
    }

    fn loss(&self, i: usize) -> f64 {
        (self.min_index + i as i64) as f64 * self.grid
    }

    /// The truncated infinite-loss mass (a floor on every δ this PLD can
    /// report).
    pub fn infinity_mass(&self) -> f64 {
        self.infinity_mass
    }

    /// The PLD of the Gaussian mechanism at sensitivity 1: the loss is
    /// itself Gaussian with mean `1/(2σ²)` and standard deviation `1/σ`
    /// (symmetric — one direction covers both adjacencies).
    ///
    /// # Errors
    ///
    /// Invalid σ or options.
    pub fn gaussian(noise_multiplier: f64, opts: &PldOptions) -> Result<Self, AccountError> {
        opts.validate()?;
        if !(noise_multiplier.is_finite() && noise_multiplier > 0.0) {
            return Err(AccountError::InvalidParameter(format!(
                "noise multiplier must be positive and finite, got {noise_multiplier}"
            )));
        }
        let mu = 1.0 / (2.0 * noise_multiplier * noise_multiplier);
        let s = 1.0 / noise_multiplier;
        let z = opts.tail_z();
        let delta_x = opts.discretization;
        let k_lo = ((mu - z * s) / delta_x).round() as i64;
        let k_hi = ((mu + z * s) / delta_x).round() as i64;
        let n = usize::try_from(k_hi - k_lo + 1).unwrap_or(usize::MAX);
        if n > MAX_BINS {
            return Err(AccountError::GridOverflow(format!(
                "Gaussian PLD needs {n} buckets at discretization {delta_x}"
            )));
        }
        let mut pmf = Vec::with_capacity(n);
        for k in k_lo..=k_hi {
            // Bucket k covers ((k−½)Δ, (k+½)Δ]; the lowest bucket absorbs
            // the whole lower tail (rounding those losses up: pessimistic).
            let hi_edge = norm_cdf(((k as f64 + 0.5) * delta_x - mu) / s);
            let lo_edge = if k == k_lo {
                0.0
            } else {
                norm_cdf(((k as f64 - 0.5) * delta_x - mu) / s)
            };
            pmf.push((hi_edge - lo_edge).max(0.0));
        }
        // Upper tail → infinity mass (pessimistic).
        let infinity_mass = 1.0 - norm_cdf(((k_hi as f64 + 0.5) * delta_x - mu) / s);
        let mut pld = Self {
            grid: delta_x,
            min_index: k_lo,
            pmf,
            infinity_mass: infinity_mass.max(0.0),
        };
        pld.trim_zeros();
        Ok(pld)
    }

    /// The add-direction PLD of the Poisson-subsampled Gaussian: upper
    /// distribution `P = (1−q)·N(0,σ²) + q·N(1,σ²)`, lower `Q = N(0,σ²)`.
    /// The loss `ln((1−q) + q·e^{(2x−1)/(2σ²)})` is increasing in `x` and
    /// unbounded above, so the upper tail lands in the infinity mass.
    ///
    /// # Errors
    ///
    /// Invalid q, σ or options.
    pub fn subsampled_gaussian_up(
        q: f64,
        noise_multiplier: f64,
        opts: &PldOptions,
    ) -> Result<Self, AccountError> {
        check_subsampled(q, noise_multiplier, opts)?;
        let sigma = noise_multiplier;
        let z = opts.tail_z();
        let delta_x = opts.discretization;
        // Mixture quantile bracket: mass below −zσ and above 1 + zσ under
        // P is each ≤ Φc(z) ≤ tail_mass.
        let x_lo = -z * sigma;
        let x_hi = 1.0 + z * sigma;
        let loss = |x: f64| (q * ((2.0 * x - 1.0) / (2.0 * sigma * sigma)).exp_m1()).ln_1p();
        // Inverse of the loss, −∞ for ℓ at/below the asymptote ln(1−q).
        let x_of = |l: f64| {
            let r = l.exp_m1() / q;
            if r <= -1.0 {
                f64::NEG_INFINITY
            } else {
                0.5 + sigma * sigma * r.ln_1p()
            }
        };
        let cdf = |x: f64| {
            if x == f64::NEG_INFINITY {
                0.0
            } else {
                (1.0 - q) * norm_cdf(x / sigma) + q * norm_cdf((x - 1.0) / sigma)
            }
        };
        let k_lo = (loss(x_lo) / delta_x).round() as i64;
        let k_hi = (loss(x_hi) / delta_x).round() as i64;
        let n = usize::try_from(k_hi - k_lo + 1).unwrap_or(usize::MAX);
        if n > MAX_BINS {
            return Err(AccountError::GridOverflow(format!(
                "subsampled-Gaussian PLD needs {n} buckets at discretization {delta_x}"
            )));
        }
        let mut pmf = Vec::with_capacity(n);
        for k in k_lo..=k_hi {
            let hi_edge = cdf(x_of((k as f64 + 0.5) * delta_x));
            let lo_edge = if k == k_lo {
                0.0
            } else {
                cdf(x_of((k as f64 - 0.5) * delta_x))
            };
            pmf.push((hi_edge - lo_edge).max(0.0));
        }
        let infinity_mass = (1.0 - cdf(x_of((k_hi as f64 + 0.5) * delta_x))).max(0.0);
        let mut pld = Self {
            grid: delta_x,
            min_index: k_lo,
            pmf,
            infinity_mass,
        };
        pld.trim_zeros();
        Ok(pld)
    }

    /// The remove-direction PLD of the Poisson-subsampled Gaussian: upper
    /// `Q = N(0,σ²)`, lower `P` the mixture. The loss
    /// `−ln((1−q) + q·e^{(2x−1)/(2σ²)})` is decreasing in `x` and bounded
    /// above by `−ln(1−q)`, so no infinity mass arises.
    ///
    /// # Errors
    ///
    /// Invalid q, σ or options.
    pub fn subsampled_gaussian_down(
        q: f64,
        noise_multiplier: f64,
        opts: &PldOptions,
    ) -> Result<Self, AccountError> {
        check_subsampled(q, noise_multiplier, opts)?;
        let sigma = noise_multiplier;
        let z = opts.tail_z();
        let delta_x = opts.discretization;
        let loss = |x: f64| -((q * ((2.0 * x - 1.0) / (2.0 * sigma * sigma)).exp_m1()).ln_1p());
        // Inverse: x(ℓ) = ½ + σ²·ln1p(expm1(−ℓ)/q); −∞ once ℓ reaches the
        // supremum −ln(1−q).
        let x_of = |l: f64| {
            let r = (-l).exp_m1() / q;
            if r <= -1.0 {
                f64::NEG_INFINITY
            } else {
                0.5 + sigma * sigma * r.ln_1p()
            }
        };
        // x ~ N(0, σ²); mass above x is what falls into losses below ℓ(x).
        let sf = |x: f64| {
            if x == f64::NEG_INFINITY {
                1.0
            } else {
                norm_cdf(-x / sigma)
            }
        };
        // Lowest losses come from the largest x: bracket at x_hi = zσ.
        let k_lo = (loss(z * sigma) / delta_x).round() as i64;
        // The supremum −ln(1−q) bounds the top bucket.
        let k_hi = (-(1.0 - q).ln() / delta_x).round() as i64;
        let n = usize::try_from(k_hi - k_lo + 1).unwrap_or(usize::MAX);
        if n > MAX_BINS {
            return Err(AccountError::GridOverflow(format!(
                "subsampled-Gaussian PLD needs {n} buckets at discretization {delta_x}"
            )));
        }
        let mut pmf = Vec::with_capacity(n);
        for k in k_lo..=k_hi {
            // Bucket k's losses ((k−½)Δ, (k+½)Δ] map to x ∈ [x((k+½)Δ),
            // x((k−½)Δ)); the lowest bucket absorbs everything below
            // (pessimistic: their loss rounds up), the highest everything
            // above (x → −∞, bounded loss — no infinity mass).
            let hi_mass = if k == k_lo {
                1.0
            } else {
                sf(x_of((k as f64 - 0.5) * delta_x))
            };
            let lo_mass = sf(x_of((k as f64 + 0.5) * delta_x));
            pmf.push((lo_mass - hi_mass).max(0.0));
        }
        let mut pld = Self {
            grid: delta_x,
            min_index: k_lo,
            pmf,
            infinity_mass: 0.0,
        };
        pld.trim_zeros();
        Ok(pld)
    }

    /// The PLD of the Laplace mechanism at sensitivity 1 and scale `b`
    /// (symmetric): atoms of mass ½ at `+1/b` and `½e^{−1/b}` at `−1/b`,
    /// with the continuous part `ℓ = (1−2x)/b` for `x ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Invalid scale or options, or a scale so small the grid overflows.
    pub fn laplace(scale: f64, opts: &PldOptions) -> Result<Self, AccountError> {
        opts.validate()?;
        if !(scale.is_finite() && scale > 0.0) {
            return Err(AccountError::InvalidParameter(format!(
                "Laplace scale must be positive and finite, got {scale}"
            )));
        }
        let b = scale;
        let delta_x = opts.discretization;
        let k_hi = (1.0 / (b * delta_x)).round() as i64;
        let k_lo = -k_hi;
        let n = usize::try_from(k_hi - k_lo + 1).unwrap_or(usize::MAX);
        if n > MAX_BINS {
            return Err(AccountError::GridOverflow(format!(
                "Laplace PLD needs {n} buckets at discretization {delta_x} (scale {b})"
            )));
        }
        let mut pmf = vec![0.0; n];
        // Atoms: x ≤ 0 has loss exactly +1/b (mass ½ under Lap(0, b));
        // x ≥ 1 has loss exactly −1/b (mass ½e^{−1/b}).
        pmf[(k_hi - k_lo) as usize] += 0.5;
        pmf[0] += 0.5 * (-1.0 / b).exp();
        // Continuous part on x ∈ (0, 1): CDF F(x) = 1 − ½e^{−x/b},
        // x(ℓ) = (1 − bℓ)/2 decreasing in ℓ.
        let cdf = |x: f64| 1.0 - 0.5 * (-x / b).exp();
        for (i, slot) in pmf.iter_mut().enumerate() {
            let k = k_lo + i as i64;
            let x_hi = ((1.0 - b * (k as f64 - 0.5) * delta_x) / 2.0).clamp(0.0, 1.0);
            let x_lo = ((1.0 - b * (k as f64 + 0.5) * delta_x) / 2.0).clamp(0.0, 1.0);
            *slot += (cdf(x_hi) - cdf(x_lo)).max(0.0);
        }
        let mut pld = Self {
            grid: delta_x,
            min_index: k_lo,
            pmf,
            infinity_mass: 0.0,
        };
        pld.trim_zeros();
        Ok(pld)
    }

    /// Composes two PLDs (independent losses add ⇒ PMFs convolve; the
    /// convolution routes through `diva_tensor::fft` past the small-size
    /// cutoff). Tails are re-truncated to `opts.tail_mass` afterwards.
    ///
    /// # Errors
    ///
    /// Mismatched grids or a result exceeding the bucket cap.
    pub fn compose_with(&self, other: &Pld, opts: &PldOptions) -> Result<Self, AccountError> {
        if self.grid != other.grid {
            return Err(AccountError::InvalidParameter(format!(
                "cannot compose PLDs on different grids ({} vs {})",
                self.grid, other.grid
            )));
        }
        let n = self.pmf.len() + other.pmf.len() - 1;
        if n > MAX_BINS {
            return Err(AccountError::GridOverflow(format!(
                "composition needs {n} buckets (cap {MAX_BINS}); coarsen the discretization"
            )));
        }
        let mut pmf = convolve(&self.pmf, &other.pmf);
        // FFT round-off can leave ~1e-17-scale negatives; they are not
        // probability mass.
        for v in &mut pmf {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let mut out = Self {
            grid: self.grid,
            min_index: self.min_index + other.min_index,
            pmf,
            infinity_mass: 1.0 - (1.0 - self.infinity_mass) * (1.0 - other.infinity_mass),
        };
        out.truncate_tails(opts.tail_mass);
        Ok(out)
    }

    /// `count`-fold self-composition by binary exponentiation (≤ 2·log₂
    /// convolutions).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::compose_with`] errors.
    pub fn self_compose(&self, count: u64, opts: &PldOptions) -> Result<Self, AccountError> {
        let mut result = Self::identity(self.grid);
        let mut base = self.clone();
        let mut n = count;
        while n > 0 {
            if n & 1 == 1 {
                result = result.compose_with(&base, opts)?;
            }
            n >>= 1;
            if n > 0 {
                base = base.compose_with(&base, opts)?;
            }
        }
        Ok(result)
    }

    /// The hockey-stick divergence δ(ε) of this direction.
    pub fn delta_at(&self, epsilon: f64) -> f64 {
        let mut delta = self.infinity_mass;
        for (i, &p) in self.pmf.iter().enumerate() {
            let l = self.loss(i);
            if l > epsilon {
                delta += p * (1.0 - (epsilon - l).exp());
            }
        }
        delta.clamp(0.0, 1.0)
    }

    /// The smallest ε ≥ 0 with δ(ε) ≤ `delta`, solved in closed form on
    /// the grid segment containing the crossing (so `delta_at(epsilon_at(δ))
    /// ≈ δ` to round-off when the answer is positive).
    ///
    /// # Errors
    ///
    /// [`AccountError::NoFiniteAnswer`] if `delta` does not exceed the
    /// infinity mass.
    pub fn epsilon_at(&self, delta: f64) -> Result<f64, AccountError> {
        if delta <= self.infinity_mass {
            return Err(AccountError::NoFiniteAnswer(format!(
                "delta {delta} is at or below the PLD's truncated infinity mass {} — \
                 no finite epsilon reaches it (tighten PldOptions::tail_mass)",
                self.infinity_mass
            )));
        }
        if self.delta_at(0.0) <= delta {
            return Ok(0.0);
        }
        // On ε ∈ [ℓ_{j−1}, ℓ_j): δ(ε) = A_j − e^ε·B_j + m_∞ with suffix
        // sums A_j = Σ_{i≥j} p_i, B_j = Σ_{i≥j} p_i e^{−ℓ_i}. Walk from
        // the top until the segment brackets `delta`, then invert exactly.
        let mut a = 0.0f64;
        let mut b = 0.0f64;
        for j in (0..self.pmf.len()).rev() {
            a += self.pmf[j];
            b += self.pmf[j] * (-self.loss(j)).exp();
            let left = if j == 0 {
                f64::NEG_INFINITY
            } else {
                self.loss(j - 1)
            };
            let delta_left = a - left.exp() * b + self.infinity_mass;
            if delta_left >= delta {
                let num = a + self.infinity_mass - delta;
                if num <= 0.0 || b <= 0.0 {
                    return Ok(left.max(0.0));
                }
                let eps = (num / b).ln();
                // Clamp into the segment against round-off at its edges.
                let right = self.loss(j);
                return Ok(eps.clamp(left.min(right), right).max(0.0));
            }
        }
        Ok(0.0)
    }

    /// Drops (pessimistically) up to `tail` mass from each end: the upper
    /// tail becomes infinity mass, the lower tail collapses into the
    /// lowest kept bucket.
    fn truncate_tails(&mut self, tail: f64) {
        // Upper tail → infinity mass.
        let mut cum = 0.0;
        let mut hi = self.pmf.len();
        while hi > 1 && cum + self.pmf[hi - 1] <= tail {
            cum += self.pmf[hi - 1];
            hi -= 1;
        }
        if hi < self.pmf.len() {
            self.infinity_mass += cum;
            self.pmf.truncate(hi);
        }
        // Lower tail → lowest kept bucket.
        let mut cum = 0.0;
        let mut lo = 0usize;
        while lo + 1 < self.pmf.len() && cum + self.pmf[lo] <= tail {
            cum += self.pmf[lo];
            lo += 1;
        }
        if lo > 0 {
            self.pmf.drain(..lo);
            self.pmf[0] += cum;
            self.min_index += lo as i64;
        }
        self.trim_zeros();
    }

    /// Strips exactly-zero buckets from both ends (a no-cost tightening).
    fn trim_zeros(&mut self) {
        let hi = self.pmf.iter().rposition(|&p| p > 0.0).map_or(1, |i| i + 1);
        self.pmf.truncate(hi.max(1));
        let lo = self.pmf.iter().position(|&p| p > 0.0).unwrap_or(0);
        if lo > 0 {
            self.pmf.drain(..lo);
            self.min_index += lo as i64;
        }
    }
}

fn check_subsampled(q: f64, sigma: f64, opts: &PldOptions) -> Result<(), AccountError> {
    opts.validate()?;
    if !(q.is_finite() && q > 0.0 && q < 1.0) {
        return Err(AccountError::InvalidParameter(format!(
            "subsampled-Gaussian PLD needs sampling rate in (0, 1), got {q} \
             (q = 1 is the plain Gaussian)"
        )));
    }
    if !(sigma.is_finite() && sigma > 0.0) {
        return Err(AccountError::InvalidParameter(format!(
            "noise multiplier must be positive and finite, got {sigma}"
        )));
    }
    Ok(())
}

/// The per-step PLD(s) of one event: `(up, Some(down))` for asymmetric
/// mechanisms (subsampled), `(pld, None)` for symmetric ones.
pub(crate) fn event_step_plds(
    event: &DpEvent,
    opts: &PldOptions,
) -> Result<(Pld, Option<Pld>), AccountError> {
    match event {
        DpEvent::Gaussian { noise_multiplier } => {
            Ok((Pld::gaussian(*noise_multiplier, opts)?, None))
        }
        DpEvent::Laplace { scale } => Ok((Pld::laplace(*scale, opts)?, None)),
        DpEvent::PoissonSampled {
            sampling_rate,
            event,
        } => match event.as_ref() {
            DpEvent::Gaussian { noise_multiplier } => {
                if (*sampling_rate - 1.0).abs() < f64::EPSILON {
                    Ok((Pld::gaussian(*noise_multiplier, opts)?, None))
                } else {
                    Ok((
                        Pld::subsampled_gaussian_up(*sampling_rate, *noise_multiplier, opts)?,
                        Some(Pld::subsampled_gaussian_down(
                            *sampling_rate,
                            *noise_multiplier,
                            opts,
                        )?),
                    ))
                }
            }
            other => Err(AccountError::UnsupportedEvent(format!(
                "PLD accountant has no subsampled dominating pair for {other:?} \
                 (only Poisson-subsampled Gaussian is supported)"
            ))),
        },
        // Composite events are flattened by the accountant's `compose`
        // walk before reaching here.
        other => Err(AccountError::UnsupportedEvent(format!(
            "event_step_plds expects a leaf mechanism, got {other:?}"
        ))),
    }
}

/// The PLD accountant: composes [`DpEvent`] trees into one discretized
/// PLD per adjacency direction and answers ε(δ)/δ(ε) by the hockey-stick
/// divergence. Tighter than [`crate::RdpEventAccountant`] on every
/// supported event (the property suite pins the invariant).
#[derive(Clone, Debug)]
pub struct PldAccountant {
    opts: PldOptions,
    up: Pld,
    /// Diverges from `up` once an asymmetric (subsampled) event composes;
    /// `None` while everything composed so far is symmetric.
    down: Option<Pld>,
}

impl Default for PldAccountant {
    fn default() -> Self {
        Self::new()
    }
}

impl PldAccountant {
    /// A fresh accountant with the default discretization.
    pub fn new() -> Self {
        Self::with_options(PldOptions::default()).expect("default PldOptions validate")
    }

    /// A fresh accountant with explicit options.
    ///
    /// # Errors
    ///
    /// Invalid options.
    pub fn with_options(opts: PldOptions) -> Result<Self, AccountError> {
        opts.validate()?;
        Ok(Self {
            opts,
            up: Pld::identity(opts.discretization),
            down: None,
        })
    }

    /// The options this accountant composes with.
    pub fn options(&self) -> PldOptions {
        self.opts
    }

    /// The composed PLD per adjacency direction (`down` is `None` while
    /// everything composed so far is symmetric) — the batch API's entry
    /// into prefix reuse.
    pub(crate) fn directions(&self) -> (&Pld, Option<&Pld>) {
        (&self.up, self.down.as_ref())
    }

    fn compose_step(
        &mut self,
        up_step: &Pld,
        down_step: Option<&Pld>,
        count: u64,
    ) -> Result<(), AccountError> {
        let up_pow = up_step.self_compose(count, &self.opts)?;
        if down_step.is_some() && self.down.is_none() {
            // The symmetric prefix is shared; fork it before diverging.
            self.down = Some(self.up.clone());
        }
        self.up = self.up.compose_with(&up_pow, &self.opts)?;
        if let Some(down) = self.down.as_mut() {
            let step = down_step.unwrap_or(up_step);
            let down_pow = step.self_compose(count, &self.opts)?;
            *down = down.compose_with(&down_pow, &self.opts)?;
        }
        Ok(())
    }

    fn compose_walk(&mut self, event: &DpEvent, count: u64) -> Result<(), AccountError> {
        if count == 0 {
            return Ok(());
        }
        match event {
            DpEvent::Composed { events } => {
                for e in events {
                    self.compose_walk(e, count)?;
                }
                Ok(())
            }
            DpEvent::SelfComposed { event, count: k } => {
                let total = count.checked_mul(*k).ok_or_else(|| {
                    AccountError::InvalidParameter(format!(
                        "composition count overflow: {count} × {k}"
                    ))
                })?;
                self.compose_walk(event, total)
            }
            leaf => {
                let (up, down) = event_step_plds(leaf, &self.opts)?;
                self.compose_step(&up, down.as_ref(), count)
            }
        }
    }
}

impl Accountant for PldAccountant {
    fn name(&self) -> &'static str {
        "pld"
    }

    fn compose(&mut self, event: &DpEvent, count: u64) -> Result<(), AccountError> {
        event.validate()?;
        self.compose_walk(event, count)
    }

    fn epsilon(&self, delta: f64) -> Result<f64, AccountError> {
        check_delta(delta)?;
        let eps_up = self.up.epsilon_at(delta)?;
        match &self.down {
            None => Ok(eps_up),
            Some(down) => Ok(eps_up.max(down.epsilon_at(delta)?)),
        }
    }

    fn delta(&self, epsilon: f64) -> Result<f64, AccountError> {
        check_epsilon(epsilon)?;
        let d_up = self.up.delta_at(epsilon);
        match &self.down {
            None => Ok(d_up),
            Some(down) => Ok(d_up.max(down.delta_at(epsilon))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::gaussian_delta;
    use crate::event::{event_epsilon, AccountantKind};

    fn opts() -> PldOptions {
        PldOptions::default()
    }

    #[test]
    fn gaussian_pld_mass_sums_to_one() {
        let pld = Pld::gaussian(1.0, &opts()).unwrap();
        let total: f64 = pld.pmf.iter().sum::<f64>() + pld.infinity_mass;
        assert!((total - 1.0).abs() < 1e-9, "total mass {total}");
    }

    #[test]
    fn gaussian_pld_delta_matches_analytic_formula() {
        // The hockey-stick of the Gaussian PLD must reproduce the exact
        // Balle–Wang δ(ε) up to discretization.
        for sigma in [0.8, 1.5, 3.0] {
            let pld = Pld::gaussian(sigma, &opts()).unwrap();
            for eps in [0.25, 1.0, 2.0] {
                let got = pld.delta_at(eps);
                let want = gaussian_delta(sigma, eps).unwrap();
                assert!(
                    (got - want).abs() < 1e-4 * want.max(1e-6) + 1e-9,
                    "sigma {sigma} eps {eps}: pld {got} vs analytic {want}"
                );
            }
        }
    }

    #[test]
    fn subsampled_pld_mass_sums_to_one_both_directions() {
        for (q, sigma) in [(0.01, 1.0), (0.1, 0.8), (0.004, 2.0)] {
            let up = Pld::subsampled_gaussian_up(q, sigma, &opts()).unwrap();
            let down = Pld::subsampled_gaussian_down(q, sigma, &opts()).unwrap();
            let up_total: f64 = up.pmf.iter().sum::<f64>() + up.infinity_mass;
            let down_total: f64 = down.pmf.iter().sum::<f64>() + down.infinity_mass;
            assert!((up_total - 1.0).abs() < 1e-9, "up {up_total}");
            assert!((down_total - 1.0).abs() < 1e-9, "down {down_total}");
        }
    }

    #[test]
    fn laplace_pld_matches_pure_dp() {
        // The Laplace mechanism is (1/b, 0)-DP: δ(1/b) = 0 and ε(δ) ≤ 1/b.
        let b = 0.8;
        let pld = Pld::laplace(b, &opts()).unwrap();
        assert!(pld.delta_at(1.0 / b + 1e-6) < 1e-12);
        let eps = pld.epsilon_at(1e-9).unwrap();
        assert!(eps <= 1.0 / b + 1e-6, "eps {eps} vs pure {}", 1.0 / b);
    }

    #[test]
    fn composition_shifts_epsilon_up() {
        let base = Pld::gaussian(2.0, &opts()).unwrap();
        let twice = base.compose_with(&base, &opts()).unwrap();
        let e1 = base.epsilon_at(1e-5).unwrap();
        let e2 = twice.epsilon_at(1e-5).unwrap();
        assert!(e2 > e1, "{e2} vs {e1}");
    }

    #[test]
    fn self_compose_matches_sequential() {
        let base = Pld::gaussian(1.5, &opts()).unwrap();
        let seq = base
            .compose_with(&base, &opts())
            .unwrap()
            .compose_with(&base, &opts())
            .unwrap();
        let pow = base.self_compose(3, &opts()).unwrap();
        let e_seq = seq.epsilon_at(1e-5).unwrap();
        let e_pow = pow.epsilon_at(1e-5).unwrap();
        assert!(
            (e_seq - e_pow).abs() < 1e-6 * e_seq.max(1.0),
            "{e_seq} vs {e_pow}"
        );
    }

    #[test]
    fn delta_epsilon_round_trip_is_exact_on_a_segment() {
        let pld = Pld::gaussian(1.0, &opts())
            .unwrap()
            .self_compose(10, &opts())
            .unwrap();
        for delta in [1e-4, 1e-6, 1e-8] {
            let eps = pld.epsilon_at(delta).unwrap();
            assert!(eps > 0.0);
            let back = pld.delta_at(eps);
            assert!(
                (back - delta).abs() < 1e-9 * delta.max(1e-12) + 1e-14,
                "delta {delta} -> eps {eps} -> {back}"
            );
        }
    }

    #[test]
    fn delta_below_infinity_mass_is_a_typed_error() {
        let mut pld = Pld::gaussian(1.0, &opts()).unwrap();
        pld.infinity_mass = 1e-3;
        assert!(matches!(
            pld.epsilon_at(1e-4),
            Err(AccountError::NoFiniteAnswer(_))
        ));
    }

    #[test]
    fn accountant_q_one_routes_to_plain_gaussian() {
        let eps_sub =
            event_epsilon(AccountantKind::Pld, &DpEvent::dp_sgd(1.0, 2.0, 4), 1e-5).unwrap();
        let eps_plain = event_epsilon(
            AccountantKind::Pld,
            &DpEvent::self_composed(DpEvent::gaussian(2.0), 4),
            1e-5,
        )
        .unwrap();
        assert_eq!(eps_sub, eps_plain);
    }

    #[test]
    fn empty_accountant_spends_nothing() {
        let acc = PldAccountant::new();
        assert_eq!(acc.epsilon(1e-5).unwrap(), 0.0);
        assert_eq!(acc.delta(1.0).unwrap(), 0.0);
    }

    #[test]
    fn grid_mismatch_is_rejected() {
        let a = Pld::gaussian(1.0, &opts()).unwrap();
        let b = Pld::gaussian(
            1.0,
            &PldOptions {
                discretization: 2e-3,
                ..opts()
            },
        )
        .unwrap();
        assert!(matches!(
            a.compose_with(&b, &opts()),
            Err(AccountError::InvalidParameter(_))
        ));
    }
}
