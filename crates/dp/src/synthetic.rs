//! Synthetic dataset generators.
//!
//! The paper's performance evaluation depends only on tensor *shapes*
//! (CIFAR-10-sized images, length-32 sequences), and its algorithmic claims
//! (DP-SGD ≡ DP-SGD(R), clipping behaviour, convergence under noise) are
//! dataset-agnostic. These generators produce separable Gaussian-cluster
//! data in the same shapes, keeping the repository fully offline.

use diva_tensor::{DivaRng, Tensor};

/// A labelled dataset: batched inputs plus integer class labels.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Batched input tensor; first dimension is the example index.
    pub inputs: Tensor,
    /// Class label per example.
    pub labels: Vec<usize>,
    /// Number of distinct classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies examples `[start, start+count)` into a contiguous mini-batch.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the dataset.
    pub fn batch(&self, start: usize, count: usize) -> (Tensor, Vec<usize>) {
        assert!(start + count <= self.len(), "batch range out of bounds");
        let dims = self.inputs.shape().dims();
        let stride: usize = dims[1..].iter().product();
        let data = self.inputs.data()[start * stride..(start + count) * stride].to_vec();
        let mut batch_dims = vec![count];
        batch_dims.extend_from_slice(&dims[1..]);
        (
            Tensor::from_vec(data, &batch_dims),
            self.labels[start..start + count].to_vec(),
        )
    }
}

/// Generates `n` points in `d` dimensions from `classes` Gaussian clusters.
///
/// Cluster centers are placed on coordinate axes at distance 2; `spread` is
/// the within-cluster standard deviation (small spread = separable data).
///
/// # Panics
///
/// Panics if `classes == 0` or `classes > d`.
pub fn make_blobs(n: usize, d: usize, classes: usize, spread: f32, rng: &mut DivaRng) -> Dataset {
    assert!(classes > 0, "need at least one class");
    assert!(classes <= d, "need at least as many dimensions as classes");
    let mut data = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes;
        for dim in 0..d {
            let center = if dim == class { 2.0 } else { 0.0 };
            data.push(center + rng.gaussian(0.0, f64::from(spread)) as f32);
        }
        labels.push(class);
    }
    Dataset {
        inputs: Tensor::from_vec(data, &[n, d]),
        labels,
        classes,
    }
}

/// Generates `n` single-channel `side × side` images from `classes` clusters
/// (each class lights up a different image quadrant pattern).
///
/// # Panics
///
/// Panics if `classes == 0` or `side < 2`.
pub fn make_image_blobs(
    n: usize,
    side: usize,
    classes: usize,
    spread: f32,
    rng: &mut DivaRng,
) -> Dataset {
    assert!(classes > 0, "need at least one class");
    assert!(side >= 2, "image side must be at least 2");
    let mut data = Vec::with_capacity(n * side * side);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes;
        for r in 0..side {
            for c in 0..side {
                // Class k brightens pixels where (r*k + c) is even — a
                // cheap, class-dependent spatial pattern.
                let on = (r * (class + 1) + c).is_multiple_of(2);
                let base = if on { 1.0 } else { -1.0 };
                data.push(base + rng.gaussian(0.0, f64::from(spread)) as f32);
            }
        }
        labels.push(class);
    }
    Dataset {
        inputs: Tensor::from_vec(data, &[n, 1, side, side]),
        labels,
        classes,
    }
}

/// Generates `n` sequences of length `t` with `d` features from `classes`
/// clusters (class determines the frequency of a sinusoidal carrier).
///
/// # Panics
///
/// Panics if `classes == 0` or `t == 0`.
pub fn make_sequence_blobs(
    n: usize,
    t: usize,
    d: usize,
    classes: usize,
    spread: f32,
    rng: &mut DivaRng,
) -> Dataset {
    assert!(classes > 0, "need at least one class");
    assert!(t > 0, "sequence length must be positive");
    let mut data = Vec::with_capacity(n * t * d);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes;
        let freq = (class + 1) as f32;
        for step in 0..t {
            let phase = freq * step as f32 * std::f32::consts::PI / t as f32;
            for dim in 0..d {
                let carrier = (phase + dim as f32).sin();
                data.push(carrier + rng.gaussian(0.0, f64::from(spread)) as f32);
            }
        }
        labels.push(class);
    }
    Dataset {
        inputs: Tensor::from_vec(data, &[n, t, d]),
        labels,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_shapes_and_labels() {
        let mut rng = DivaRng::seed_from_u64(1);
        let ds = make_blobs(10, 4, 2, 0.1, &mut rng);
        assert_eq!(ds.inputs.shape().dims(), &[10, 4]);
        assert_eq!(ds.len(), 10);
        assert!(ds.labels.iter().all(|&l| l < 2));
    }

    #[test]
    fn batches_are_contiguous_slices() {
        let mut rng = DivaRng::seed_from_u64(2);
        let ds = make_blobs(10, 3, 3, 0.1, &mut rng);
        let (x, labels) = ds.batch(4, 3);
        assert_eq!(x.shape().dims(), &[3, 3]);
        assert_eq!(labels, ds.labels[4..7]);
        assert_eq!(x.data(), &ds.inputs.data()[12..21]);
    }

    #[test]
    fn image_blobs_are_nchw() {
        let mut rng = DivaRng::seed_from_u64(3);
        let ds = make_image_blobs(4, 8, 2, 0.05, &mut rng);
        assert_eq!(ds.inputs.shape().dims(), &[4, 1, 8, 8]);
    }

    #[test]
    fn sequence_blobs_are_btf() {
        let mut rng = DivaRng::seed_from_u64(4);
        let ds = make_sequence_blobs(6, 12, 5, 3, 0.05, &mut rng);
        assert_eq!(ds.inputs.shape().dims(), &[6, 12, 5]);
    }

    #[test]
    fn classes_are_balanced() {
        let mut rng = DivaRng::seed_from_u64(5);
        let ds = make_blobs(30, 5, 3, 0.1, &mut rng);
        for class in 0..3 {
            assert_eq!(ds.labels.iter().filter(|&&l| l == class).count(), 10);
        }
    }
}
