//! Typed errors for the privacy-accounting engine.
//!
//! Continues the no-panic direction established by the scenario layer's
//! `ScenarioError`: invalid arguments, unachievable calibration targets
//! and unsupported event trees surface as values the caller can match on
//! (and `diva-report` maps onto its existing exit-code taxonomy), not as
//! `assert!` aborts.

use std::fmt;

/// An error from an accountant, a calibration search, or PLD construction.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AccountError {
    /// An argument is outside its domain (sampling rate, noise multiplier,
    /// δ, target ε, discretization, …).
    InvalidParameter(String),
    /// A calibration target that no noise multiplier in the search bracket
    /// can reach.
    UnachievableTarget(String),
    /// The event tree contains a mechanism this accountant has no bound
    /// for (e.g. Poisson subsampling around a non-Gaussian mechanism).
    UnsupportedEvent(String),
    /// The query has no finite answer — e.g. ε(δ) with δ at or below the
    /// PLD's truncated infinity mass.
    NoFiniteAnswer(String),
    /// A composition outgrew the discretization grid's size cap; coarsen
    /// `PldOptions::discretization` or reduce the composition count.
    GridOverflow(String),
}

impl fmt::Display for AccountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Self::UnachievableTarget(msg) => write!(f, "unachievable target: {msg}"),
            Self::UnsupportedEvent(msg) => write!(f, "unsupported event: {msg}"),
            Self::NoFiniteAnswer(msg) => write!(f, "no finite answer: {msg}"),
            Self::GridOverflow(msg) => write!(f, "PLD grid overflow: {msg}"),
        }
    }
}

impl std::error::Error for AccountError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_the_variant() {
        let e = AccountError::UnachievableTarget("eps 0.001 needs sigma > 1000".into());
        assert_eq!(
            e.to_string(),
            "unachievable target: eps 0.001 needs sigma > 1000"
        );
        let e = AccountError::UnsupportedEvent("subsampled Laplace".into());
        assert!(e.to_string().starts_with("unsupported event:"));
    }
}
