//! Vectorized ε queries: one event, many composition counts.
//!
//! Privacy dashboards and the epsilon-throughput bench ask the same
//! question at every step count of a training run: "what is ε after `k`
//! steps?" Answering each count independently repeats almost all of the
//! work — the RDP accountant's per-order totals scale linearly with the
//! count, and PLD powers of one base distribution share their binary
//! decomposition. [`batch_epsilons`] exploits both:
//!
//! - **RDP**: the event tree is evaluated once per order; each count is
//!   then a scale-and-minimize over the cached totals (O(orders) per
//!   count).
//! - **PLD**: counts are processed in ascending order, maintaining a
//!   running composed prefix; each step multiplies in the *difference*
//!   `count − previous` via a shared cache of binary powers `base^(2^i)`,
//!   so `m` counts up to `K` cost O(log K + m·log K) convolutions instead
//!   of `m` independent `O(log K)` exponentiations over ever-larger grids.
//!
//! Results are returned in the caller's input order; internally counts
//! are sorted, so the output is bitwise independent of input order (and,
//! like all accounting, of thread count).

use crate::error::AccountError;
use crate::event::{check_delta, Accountant, AccountantKind, DpEvent, RdpEventAccountant};
use crate::pld::{Pld, PldAccountant, PldOptions};

/// ε at `delta` after `count` repetitions of `event`, for every count in
/// `counts`, in input order. Equivalent to calling
/// [`crate::event_epsilon`] on `SelfComposed { event, count }` per entry,
/// but sharing work across the batch (see the module docs).
///
/// A count of `0` yields ε = 0.
///
/// # Errors
///
/// Propagates validation, composition and query errors from the
/// underlying accountant; the first error aborts the batch.
pub fn batch_epsilons(
    kind: AccountantKind,
    event: &DpEvent,
    counts: &[u64],
    delta: f64,
) -> Result<Vec<f64>, AccountError> {
    check_delta(delta)?;
    event.validate()?;
    if counts.is_empty() {
        return Ok(Vec::new());
    }
    match kind {
        AccountantKind::Rdp => batch_rdp(event, counts, delta),
        AccountantKind::Pld => batch_pld(event, counts, delta),
    }
}

fn batch_rdp(event: &DpEvent, counts: &[u64], delta: f64) -> Result<Vec<f64>, AccountError> {
    let mut acc = RdpEventAccountant::new();
    acc.compose(event, 1)?;
    counts
        .iter()
        .map(|&k| acc.epsilon_scaled(k as f64, delta))
        .collect()
}

/// Shared cache of `base^(2^i)` PLDs, grown lazily.
struct BinaryPowers {
    powers: Vec<Pld>,
    opts: PldOptions,
}

impl BinaryPowers {
    fn new(base: Pld, opts: PldOptions) -> Self {
        Self {
            powers: vec![base],
            opts,
        }
    }

    /// `base^n` assembled from the cached squarings.
    fn pow(&mut self, mut n: u64) -> Result<Pld, AccountError> {
        let mut result = Pld::identity(self.opts.discretization);
        let mut i = 0usize;
        while n > 0 {
            if i >= self.powers.len() {
                let last = &self.powers[self.powers.len() - 1];
                let squared = last.compose_with(last, &self.opts)?;
                self.powers.push(squared);
            }
            if n & 1 == 1 {
                result = result.compose_with(&self.powers[i], &self.opts)?;
            }
            n >>= 1;
            i += 1;
        }
        Ok(result)
    }
}

fn batch_pld(event: &DpEvent, counts: &[u64], delta: f64) -> Result<Vec<f64>, AccountError> {
    let opts = PldOptions::default();
    let mut acc = PldAccountant::with_options(opts)?;
    acc.compose(event, 1)?;
    let (up_base, down_base) = acc.directions();
    let mut dirs: Vec<BinaryPowers> = Vec::with_capacity(2);
    dirs.push(BinaryPowers::new(up_base.clone(), opts));
    if let Some(down) = down_base {
        dirs.push(BinaryPowers::new(down.clone(), opts));
    }

    // Sort counts (keeping original positions) so each prefix extends the
    // previous one; equal counts reuse the same ε without recomposing.
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by_key(|&i| counts[i]);

    let mut out = vec![0.0f64; counts.len()];
    let mut prefixes: Vec<Pld> = dirs
        .iter()
        .map(|_| Pld::identity(opts.discretization))
        .collect();
    let mut at = 0u64;
    let mut last_eps = 0.0f64;
    for &idx in &order {
        let k = counts[idx];
        if k > at {
            let diff = k - at;
            for (prefix, powers) in prefixes.iter_mut().zip(dirs.iter_mut()) {
                let step = powers.pow(diff)?;
                *prefix = prefix.compose_with(&step, &powers.opts)?;
            }
            at = k;
            last_eps = prefixes
                .iter()
                .map(|p| p.epsilon_at(delta))
                .try_fold(0.0f64, |m, e| e.map(|e| m.max(e)))?;
        }
        out[idx] = if k == 0 { 0.0 } else { last_eps };
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::event_epsilon;

    #[test]
    fn batch_matches_one_shot_queries_rdp() {
        let event = DpEvent::poisson_sampled(0.01, DpEvent::gaussian(1.0));
        let counts = [100u64, 1_000, 4_000];
        let batch = batch_epsilons(AccountantKind::Rdp, &event, &counts, 1e-5).unwrap();
        for (i, &k) in counts.iter().enumerate() {
            let single = event_epsilon(
                AccountantKind::Rdp,
                &DpEvent::self_composed(event.clone(), k),
                1e-5,
            )
            .unwrap();
            assert!(
                (batch[i] - single).abs() < 1e-12,
                "count {k}: batch {} vs single {single}",
                batch[i]
            );
        }
    }

    #[test]
    fn batch_matches_one_shot_queries_pld() {
        let event = DpEvent::poisson_sampled(0.01, DpEvent::gaussian(1.0));
        let counts = [200u64, 800];
        let batch = batch_epsilons(AccountantKind::Pld, &event, &counts, 1e-5).unwrap();
        for (i, &k) in counts.iter().enumerate() {
            let single = event_epsilon(
                AccountantKind::Pld,
                &DpEvent::self_composed(event.clone(), k),
                1e-5,
            )
            .unwrap();
            // Prefix reuse takes a different (but equally valid) truncation
            // path than one-shot binary exponentiation; agreement is up to
            // discretization error, not bitwise.
            assert!(
                (batch[i] - single).abs() < 1e-3 * single.max(1.0),
                "count {k}: batch {} vs single {single}",
                batch[i]
            );
        }
    }

    #[test]
    fn batch_is_input_order_invariant() {
        let event = DpEvent::poisson_sampled(0.02, DpEvent::gaussian(1.2));
        let a = batch_epsilons(AccountantKind::Pld, &event, &[500, 100, 300], 1e-5).unwrap();
        let b = batch_epsilons(AccountantKind::Pld, &event, &[100, 300, 500], 1e-5).unwrap();
        assert_eq!(a[0], b[2]);
        assert_eq!(a[1], b[0]);
        assert_eq!(a[2], b[1]);
    }

    #[test]
    fn zero_and_duplicate_counts() {
        let event = DpEvent::gaussian(2.0);
        let eps = batch_epsilons(AccountantKind::Pld, &event, &[0, 5, 5, 0], 1e-5).unwrap();
        assert_eq!(eps[0], 0.0);
        assert_eq!(eps[3], 0.0);
        assert!(eps[1] > 0.0);
        assert_eq!(eps[1], eps[2]);
    }

    #[test]
    fn empty_batch_is_empty() {
        let event = DpEvent::gaussian(1.0);
        assert!(batch_epsilons(AccountantKind::Rdp, &event, &[], 1e-5)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn epsilon_is_monotone_in_count() {
        let event = DpEvent::poisson_sampled(0.01, DpEvent::gaussian(1.0));
        let counts: Vec<u64> = (1..=8).map(|i| i * 250).collect();
        for kind in [AccountantKind::Rdp, AccountantKind::Pld] {
            let eps = batch_epsilons(kind, &event, &counts, 1e-5).unwrap();
            for w in eps.windows(2) {
                assert!(w[0] <= w[1] + 1e-12, "{kind:?}: {} > {}", w[0], w[1]);
            }
        }
    }
}
