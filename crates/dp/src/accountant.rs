//! Rényi differential privacy accounting for the subsampled Gaussian
//! mechanism (the "moments accountant" lineage: Abadi et al. CCS'16,
//! Mironov et al. 2019).
//!
//! DP-SGD's output at each step is the Gaussian mechanism applied to a
//! Poisson-subsampled sum of clipped per-example gradients. Its Rényi
//! divergence at integer order `α` is upper-bounded by
//!
//! ```text
//! RDP(α) = 1/(α−1) · ln Σ_{k=0}^{α} C(α,k)·(1−q)^{α−k}·q^k·exp((k²−k)/(2σ²))
//! ```
//!
//! where `q` is the sampling rate and `σ` the noise multiplier. RDP composes
//! additively over `T` steps, and converts to (ε, δ)-DP via
//! `ε = min_α [ T·RDP(α) + ln(1/δ)/(α−1) ]`.

/// Privacy accountant for DP-SGD based on Rényi differential privacy.
///
/// # Example
///
/// ```
/// use diva_dp::RdpAccountant;
/// let acc = RdpAccountant::new(0.01, 1.1);
/// let eps = acc.epsilon(1_000, 1e-5);
/// assert!(eps > 0.0 && eps < 5.0);
/// ```
#[derive(Clone, Debug)]
pub struct RdpAccountant {
    sampling_rate: f64,
    noise_multiplier: f64,
    orders: Vec<u32>,
}

impl RdpAccountant {
    /// Creates an accountant for sampling rate `q = B/N` and noise
    /// multiplier `σ`, with the default integer order grid `α ∈ [2, 256]`.
    ///
    /// # Panics
    ///
    /// Panics if `q ∉ (0, 1]` or `σ ≤ 0`.
    pub fn new(sampling_rate: f64, noise_multiplier: f64) -> Self {
        assert!(
            sampling_rate > 0.0 && sampling_rate <= 1.0,
            "sampling rate must be in (0, 1], got {sampling_rate}"
        );
        assert!(
            noise_multiplier > 0.0 && noise_multiplier.is_finite(),
            "noise multiplier must be positive, got {noise_multiplier}"
        );
        Self {
            sampling_rate,
            noise_multiplier,
            orders: (2..=256).collect(),
        }
    }

    /// The sampling rate `q`.
    pub fn sampling_rate(&self) -> f64 {
        self.sampling_rate
    }

    /// The noise multiplier `σ`.
    pub fn noise_multiplier(&self) -> f64 {
        self.noise_multiplier
    }

    /// The per-step RDP at integer order `α`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 2`.
    pub fn rdp_at(&self, alpha: u32) -> f64 {
        subsampled_gaussian_rdp(self.sampling_rate, self.noise_multiplier, alpha)
    }

    /// The (ε, δ) privacy cost after `steps` compositions, minimized over
    /// the order grid.
    ///
    /// # Panics
    ///
    /// Panics if `delta ∉ (0, 1)`.
    pub fn epsilon(&self, steps: u64, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let ln_inv_delta = (1.0 / delta).ln();
        self.orders
            .iter()
            .map(|&alpha| {
                let rdp = self.rdp_at(alpha) * steps as f64;
                rdp + ln_inv_delta / (f64::from(alpha) - 1.0)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// The order that achieves the reported ε (useful for diagnostics).
    pub fn best_order(&self, steps: u64, delta: f64) -> u32 {
        let ln_inv_delta = (1.0 / delta).ln();
        self.orders
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let ea = self.rdp_at(a) * steps as f64 + ln_inv_delta / (f64::from(a) - 1.0);
                let eb = self.rdp_at(b) * steps as f64 + ln_inv_delta / (f64::from(b) - 1.0);
                ea.partial_cmp(&eb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(2)
    }
}

/// The per-step RDP of the Poisson-subsampled Gaussian mechanism at
/// integer order `α` — the shared bound behind both [`RdpAccountant`] and
/// the event-tree accountant in [`crate::event`].
///
/// # Panics
///
/// Panics if `alpha < 2` (the bound below is for integer orders ≥ 2).
pub(crate) fn subsampled_gaussian_rdp(q: f64, sigma: f64, alpha: u32) -> f64 {
    assert!(alpha >= 2, "RDP orders start at 2");
    if (q - 1.0).abs() < f64::EPSILON {
        // No subsampling: plain Gaussian mechanism, RDP(α) = α/(2σ²).
        return f64::from(alpha) / (2.0 * sigma * sigma);
    }
    // log-sum-exp over k of:
    //   ln C(α,k) + (α−k)·ln(1−q) + k·ln q + (k²−k)/(2σ²)
    let a = f64::from(alpha);
    let terms: Vec<f64> = (0..=alpha)
        .map(|k| {
            let kf = f64::from(k);
            ln_binomial(alpha, k)
                + (a - kf) * (1.0 - q).ln()
                + kf * q.ln()
                + (kf * kf - kf) / (2.0 * sigma * sigma)
        })
        .collect();
    let log_sum = log_sum_exp(&terms);
    (log_sum / (a - 1.0)).max(0.0)
}

/// `ln C(n, k)` computed by summing logarithms (exact enough for n ≤ 10⁴).
fn ln_binomial(n: u32, k: u32) -> f64 {
    let k = k.min(n - k.min(n));
    let mut acc = 0.0f64;
    for i in 0..k {
        acc += (f64::from(n - i)).ln() - (f64::from(i + 1)).ln();
    }
    acc
}

/// Numerically stable `ln Σ exp(xᵢ)` (shared with the event accountant).
pub(crate) fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_batch_matches_gaussian_closed_form() {
        // q = 1 degenerates to the plain Gaussian mechanism: RDP(α) = α/(2σ²).
        let acc = RdpAccountant::new(1.0, 2.0);
        for alpha in [2u32, 8, 64] {
            let expected = f64::from(alpha) / (2.0 * 4.0);
            assert!((acc.rdp_at(alpha) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn alpha_two_matches_closed_form() {
        // RDP(2) = ln(1 + q²(e^{1/σ²} − 1)).
        let (q, sigma) = (0.02, 1.3);
        let acc = RdpAccountant::new(q, sigma);
        let expected = (1.0 + q * q * ((1.0 / (sigma * sigma)).exp() - 1.0)).ln();
        assert!((acc.rdp_at(2) - expected).abs() < 1e-9);
    }

    #[test]
    fn epsilon_grows_with_steps() {
        let acc = RdpAccountant::new(0.01, 1.1);
        let e1 = acc.epsilon(100, 1e-5);
        let e2 = acc.epsilon(1_000, 1e-5);
        let e3 = acc.epsilon(10_000, 1e-5);
        assert!(e1 < e2 && e2 < e3, "{e1} {e2} {e3}");
    }

    #[test]
    fn epsilon_shrinks_with_noise() {
        let steps = 1_000;
        let e_low = RdpAccountant::new(0.01, 0.8).epsilon(steps, 1e-5);
        let e_high = RdpAccountant::new(0.01, 2.0).epsilon(steps, 1e-5);
        assert!(e_high < e_low);
    }

    #[test]
    fn epsilon_shrinks_with_sampling_rate() {
        let steps = 1_000;
        let e_small_q = RdpAccountant::new(0.001, 1.1).epsilon(steps, 1e-5);
        let e_large_q = RdpAccountant::new(0.1, 1.1).epsilon(steps, 1e-5);
        assert!(e_small_q < e_large_q);
    }

    #[test]
    fn epsilon_in_literature_ballpark() {
        // A canonical MNIST-like configuration: q = 256/60000, σ = 1.1,
        // 60 epochs. Published DP-SGD results report ε ≈ 2–4 at δ = 1e-5.
        let q = 256.0 / 60_000.0;
        let steps = (60_000 / 256) * 60;
        let eps = RdpAccountant::new(q, 1.1).epsilon(steps as u64, 1e-5);
        assert!((1.0..6.0).contains(&eps), "epsilon {eps} outside ballpark");
    }

    #[test]
    fn ln_binomial_small_values() {
        assert!((ln_binomial(5, 2) - (10.0f64).ln()).abs() < 1e-12);
        assert!((ln_binomial(10, 0)).abs() < 1e-12);
        assert!((ln_binomial(10, 10)).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_is_stable() {
        let v = log_sum_exp(&[-1000.0, -1000.0]);
        assert!((v - (-1000.0 + (2.0f64).ln())).abs() < 1e-9);
    }
}
