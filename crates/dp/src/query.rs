//! The serving-layer ε query: one DP-SGD training configuration in, the
//! accountant's ε (and optionally an ε-vs-steps curve) out.
//!
//! This is the typed surface `diva-serve`'s `POST /epsilon` endpoint and
//! any other front end share: a [`EpsilonQuery`] names the sampling rate,
//! noise multiplier, step count, δ and accountant; [`answer_epsilon_query`]
//! builds the corresponding [`DpEvent`] tree and evaluates it through
//! [`event_epsilon`] (the headline number) and [`batch_epsilons`] (the
//! curve, sharing composition prefixes across step counts). Everything is
//! deterministic and thread-count independent, so answers are cacheable
//! byte-for-byte.

use crate::batch::batch_epsilons;
use crate::error::AccountError;
use crate::event::{event_epsilon, AccountantKind, DpEvent};

/// One ε query: the DP-SGD training configuration of
/// [`DpEvent::dp_sgd`] plus the δ target and the accountant to evaluate
/// it under.
#[derive(Clone, Debug, PartialEq)]
pub struct EpsilonQuery {
    /// Which accountant answers.
    pub accountant: AccountantKind,
    /// Poisson inclusion probability `q ∈ (0, 1]` per step.
    pub sampling_rate: f64,
    /// Gaussian noise multiplier σ (sensitivity-1 scale).
    pub noise_multiplier: f64,
    /// Number of training steps composed.
    pub steps: u64,
    /// The δ at which ε is reported.
    pub delta: f64,
    /// Optional extra step counts for an ε-vs-steps curve (empty for a
    /// single-number answer). Order is preserved in the answer.
    pub step_counts: Vec<u64>,
}

/// The answer to an [`EpsilonQuery`].
#[derive(Clone, Debug, PartialEq)]
pub struct EpsilonAnswer {
    /// ε at [`EpsilonQuery::delta`] after [`EpsilonQuery::steps`] steps.
    pub epsilon: f64,
    /// `(step count, ε)` for every requested curve point, in request
    /// order.
    pub curve: Vec<(u64, f64)>,
}

/// Evaluates `query` under its accountant.
///
/// # Errors
///
/// [`AccountError::InvalidParameter`] for a zero step count or
/// out-of-domain q/σ/δ; otherwise whatever the accountant reports.
pub fn answer_epsilon_query(query: &EpsilonQuery) -> Result<EpsilonAnswer, AccountError> {
    if query.steps == 0 {
        return Err(AccountError::InvalidParameter(
            "steps must be at least 1".to_string(),
        ));
    }
    let step = DpEvent::poisson_sampled(
        query.sampling_rate,
        DpEvent::gaussian(query.noise_multiplier),
    );
    step.validate()?;
    let run = DpEvent::self_composed(step.clone(), query.steps);
    let epsilon = event_epsilon(query.accountant, &run, query.delta)?;
    let curve = if query.step_counts.is_empty() {
        Vec::new()
    } else {
        let epsilons = batch_epsilons(query.accountant, &step, &query.step_counts, query.delta)?;
        query.step_counts.iter().copied().zip(epsilons).collect()
    };
    Ok(EpsilonAnswer { epsilon, curve })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_query(kind: AccountantKind) -> EpsilonQuery {
        EpsilonQuery {
            accountant: kind,
            sampling_rate: 0.01,
            noise_multiplier: 1.1,
            steps: 1000,
            delta: 1e-5,
            step_counts: Vec::new(),
        }
    }

    #[test]
    fn answer_matches_event_epsilon() {
        for kind in [AccountantKind::Rdp, AccountantKind::Pld] {
            let q = base_query(kind);
            let answer = answer_epsilon_query(&q).unwrap();
            let direct = event_epsilon(kind, &DpEvent::dp_sgd(0.01, 1.1, 1000), 1e-5).unwrap();
            assert_eq!(answer.epsilon.to_bits(), direct.to_bits());
            assert!(answer.curve.is_empty());
        }
    }

    #[test]
    fn curve_matches_batch_epsilons_in_request_order() {
        let mut q = base_query(AccountantKind::Pld);
        q.step_counts = vec![1000, 100, 500];
        let answer = answer_epsilon_query(&q).unwrap();
        let step = DpEvent::poisson_sampled(0.01, DpEvent::gaussian(1.1));
        let direct = batch_epsilons(AccountantKind::Pld, &step, &[1000, 100, 500], 1e-5).unwrap();
        let counts: Vec<u64> = answer.curve.iter().map(|(c, _)| *c).collect();
        let eps: Vec<f64> = answer.curve.iter().map(|(_, e)| *e).collect();
        assert_eq!(counts, vec![1000, 100, 500]);
        assert_eq!(eps, direct);
        // The headline number agrees with the curve at the full step
        // count (batch and one-shot paths compose in different orders —
        // the same 1e-3 agreement bound the compute_backend bench pins).
        assert!((answer.epsilon - direct[0]).abs() / direct[0] < 1e-3);
    }

    #[test]
    fn invalid_parameters_are_typed() {
        let mut q = base_query(AccountantKind::Rdp);
        q.steps = 0;
        assert!(matches!(
            answer_epsilon_query(&q),
            Err(AccountError::InvalidParameter(_))
        ));
        let mut q = base_query(AccountantKind::Rdp);
        q.sampling_rate = 1.5;
        assert!(answer_epsilon_query(&q).is_err());
    }
}
