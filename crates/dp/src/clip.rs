//! Per-example gradient clipping (Algorithm 1 lines 22–23).

/// Summary statistics of one clipping pass, useful for monitoring training.
#[derive(Clone, Debug, PartialEq)]
pub struct ClipSummary {
    /// Per-example scale factors `1 / max(1, nᵢ / C)`.
    pub factors: Vec<f64>,
    /// Per-example gradient L2 norms before clipping.
    pub norms: Vec<f64>,
    /// Number of examples whose gradient was actually clipped (`nᵢ > C`).
    pub clipped_count: usize,
    /// Median pre-clip norm (0 for an empty batch).
    pub median_norm: f64,
}

/// Computes per-example clip factors from squared gradient norms.
///
/// Given per-example *squared* L2 norms `sq_norms` and the clipping bound
/// `C`, returns `wᵢ = 1 / max(1, nᵢ / C)` so that `wᵢ · gᵢ` has norm at most
/// `C` (paper Algorithm 1 line 23).
///
/// # Panics
///
/// Panics if `clip_norm` is not strictly positive or a squared norm is
/// negative/NaN.
pub fn clip_factors(sq_norms: &[f64], clip_norm: f64) -> ClipSummary {
    assert!(
        clip_norm > 0.0 && clip_norm.is_finite(),
        "clip norm must be positive and finite, got {clip_norm}"
    );
    let mut factors = Vec::with_capacity(sq_norms.len());
    let mut norms = Vec::with_capacity(sq_norms.len());
    let mut clipped_count = 0;
    for &sq in sq_norms {
        assert!(sq >= 0.0, "negative squared norm {sq}");
        let n = sq.sqrt();
        norms.push(n);
        if n > clip_norm {
            clipped_count += 1;
            factors.push(clip_norm / n);
        } else {
            factors.push(1.0);
        }
    }
    let median_norm = median(&norms);
    ClipSummary {
        factors,
        norms,
        clipped_count,
        median_norm,
    }
}

fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_clamp_to_clip_norm() {
        let summary = clip_factors(&[4.0, 0.25, 1.0], 1.0);
        // norms are 2.0, 0.5, 1.0
        assert_eq!(summary.factors, vec![0.5, 1.0, 1.0]);
        assert_eq!(summary.clipped_count, 1);
    }

    #[test]
    fn clipped_norm_never_exceeds_bound() {
        let c = 0.7;
        for sq in [0.0, 0.01, 0.49, 0.5, 100.0, 1e8] {
            let s = clip_factors(&[sq], c);
            let clipped = s.norms[0] * s.factors[0];
            assert!(clipped <= c + 1e-12, "clipped norm {clipped} exceeds {c}");
        }
    }

    #[test]
    fn unclipped_examples_are_untouched() {
        let s = clip_factors(&[0.36], 1.0); // norm 0.6 < 1.0
        assert_eq!(s.factors[0], 1.0);
        assert_eq!(s.clipped_count, 0);
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(clip_factors(&[1.0, 4.0, 9.0], 10.0).median_norm, 2.0);
        assert_eq!(clip_factors(&[1.0, 9.0], 10.0).median_norm, 2.0);
        assert_eq!(clip_factors(&[], 1.0).median_norm, 0.0);
    }

    #[test]
    #[should_panic(expected = "clip norm must be positive")]
    fn zero_clip_norm_panics() {
        let _ = clip_factors(&[1.0], 0.0);
    }
}
