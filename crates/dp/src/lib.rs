//! Differential-privacy machinery for DP-SGD training, reproducing the
//! algorithms the DiVa paper characterizes (Algorithm 1):
//!
//! * **Vanilla DP-SGD** (Abadi et al., CCS'16): per-example gradients →
//!   per-example L2 norms → clip → reduce → Gaussian noise.
//! * **Reweighted DP-SGD(R)** (Lee & Kifer, PoPETs'21): a first
//!   backpropagation computes per-example gradient *norms only*; the loss is
//!   then reweighted by the clip factors and a second backpropagation
//!   produces the already-clipped per-batch gradient. Mathematically
//!   identical output, ~B× smaller gradient memory.
//!
//! Plus the supporting cast: the Gaussian mechanism, a Rényi-DP privacy
//! accountant for the subsampled Gaussian mechanism with σ calibration, and
//! synthetic dataset generators used by tests and examples.
//!
//! # Example
//!
//! ```
//! use diva_dp::{DpSgdConfig, TrainingAlgorithm};
//!
//! let cfg = DpSgdConfig {
//!     algorithm: TrainingAlgorithm::DpSgdReweighted,
//!     clip_norm: 1.0,
//!     noise_multiplier: 1.1,
//!     learning_rate: 0.1,
//! };
//! assert!(cfg.is_private());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accountant;
mod clip;
mod mechanism;
mod optimizer;
mod sampling;
mod synthetic;

pub use accountant::{calibrate_sigma, RdpAccountant};
pub use clip::{clip_factors, ClipSummary};
pub use mechanism::GaussianMechanism;
pub use optimizer::{ClipMode, DpSgdConfig, DpTrainer, StepReport, TrainingAlgorithm};
pub use sampling::poisson_sample;
pub use synthetic::{make_blobs, make_image_blobs, make_sequence_blobs, Dataset};
