//! Differential-privacy machinery for DP-SGD training, reproducing the
//! algorithms the DiVa paper characterizes (Algorithm 1):
//!
//! * **Vanilla DP-SGD** (Abadi et al., CCS'16): per-example gradients →
//!   per-example L2 norms → clip → reduce → Gaussian noise.
//! * **Reweighted DP-SGD(R)** (Lee & Kifer, PoPETs'21): a first
//!   backpropagation computes per-example gradient *norms only*; the loss is
//!   then reweighted by the clip factors and a second backpropagation
//!   produces the already-clipped per-batch gradient. Mathematically
//!   identical output, ~B× smaller gradient memory.
//!
//! Plus a production-scale privacy-accounting engine:
//!
//! * a [`DpEvent`] algebra describing what was released (Gaussian /
//!   Laplace / Poisson-subsampled / composed), evaluated by
//!   interchangeable [`Accountant`]s;
//! * the Rényi-DP (moments) accountant — cheap, composable, slightly
//!   loose in its (ε, δ) conversion;
//! * a privacy-loss-distribution ([`PldAccountant`]) accountant with
//!   FFT-based composition — near exact, tighter than RDP on every
//!   tracked configuration (the property suite pins `ε_PLD ≤ ε_RDP`);
//! * analytical Gaussian calibration (Balle & Wang 2018,
//!   [`gaussian_sigma`]) and accountant-driven DP-SGD noise search
//!   ([`calibrate_noise`]);
//! * a vectorized batch-ε API ([`batch_epsilons`]) reusing composition
//!   prefixes across step counts;
//!
//! and the supporting cast: the Gaussian mechanism and synthetic dataset
//! generators used by tests and examples.
//!
//! Execution: a [`DpTrainer`] owns a `diva_tensor::Backend` (thread-count
//! configuration) and installs it around every step, so all GEMMs and
//! per-example fan-outs of a step run on the workspace-wide keep-alive
//! pool at the trainer's width; selecting a backend with
//! [`DpTrainer::with_backend`] prewarms that pool to the chosen width.
//! See `ARCHITECTURE.md` at the workspace root.
//!
//! # Example
//!
//! ```
//! use diva_dp::{DpSgdConfig, TrainingAlgorithm};
//!
//! let cfg = DpSgdConfig {
//!     algorithm: TrainingAlgorithm::DpSgdReweighted,
//!     clip_norm: 1.0,
//!     noise_multiplier: 1.1,
//!     learning_rate: 0.1,
//! };
//! assert!(cfg.is_private());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Compiles and runs the workspace README's Rust code blocks (the
/// quick-start) as doc-tests, so the README cannot drift from the API.
#[cfg(doctest)]
#[doc = include_str!("../../../README.md")]
pub struct ReadmeDoctests;

mod accountant;
mod batch;
mod calibrate;
mod clip;
mod error;
mod event;
mod mechanism;
mod optimizer;
mod pld;
mod query;
mod sampling;
mod synthetic;

pub use accountant::RdpAccountant;
pub use batch::batch_epsilons;
pub use calibrate::{
    calibrate_noise, calibrate_sigma, classic_gaussian_sigma, gaussian_delta, gaussian_epsilon,
    gaussian_sigma,
};
pub use clip::{clip_factors, ClipSummary};
pub use error::AccountError;
pub use event::{event_epsilon, Accountant, AccountantKind, DpEvent, RdpEventAccountant};
pub use mechanism::GaussianMechanism;
pub use optimizer::{
    ClipMode, DpSgdConfig, DpTrainer, DpTrainerBuilder, PrivacySpent, StepReport, TrainingAlgorithm,
};
pub use pld::{Pld, PldAccountant, PldOptions};
pub use query::{answer_epsilon_query, EpsilonAnswer, EpsilonQuery};
pub use sampling::poisson_sample;
pub use synthetic::{make_blobs, make_image_blobs, make_sequence_blobs, Dataset};
