//! Training-step drivers for SGD, DP-SGD and DP-SGD(R) — a faithful
//! implementation of the paper's Algorithm 1, plus two practitioner
//! extensions: per-layer clipping (Opacus-style) and microbatch
//! accumulation (large effective batches under DP-SGD's memory limits,
//! the workaround the paper's Section III-A motivates).

use diva_nn::{GradMode, Network, NetworkGrads};
use diva_tensor::{softmax_cross_entropy, Backend, DivaRng, Tensor};

use crate::clip::{clip_factors, ClipSummary};
use crate::error::AccountError;
use crate::event::{event_epsilon, AccountantKind, DpEvent};
use crate::mechanism::GaussianMechanism;

/// The three training algorithms the paper characterizes (Section III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrainingAlgorithm {
    /// Non-private mini-batch SGD (paper Figure 2(a)).
    Sgd,
    /// Vanilla DP-SGD: materializes all per-example weight gradients
    /// (Algorithm 1, `DERIVE_DP_GRADIENTS`).
    DpSgd,
    /// Reweighted DP-SGD(R): two backpropagation passes, per-example norms
    /// only (Algorithm 1, `DERIVE_REWEIGHTED_DP_GRADIENTS`).
    DpSgdReweighted,
}

impl TrainingAlgorithm {
    /// All three algorithms, in the paper's presentation order.
    pub const ALL: [TrainingAlgorithm; 3] = [
        TrainingAlgorithm::Sgd,
        TrainingAlgorithm::DpSgd,
        TrainingAlgorithm::DpSgdReweighted,
    ];

    /// The paper's display name for the algorithm.
    pub fn label(&self) -> &'static str {
        match self {
            TrainingAlgorithm::Sgd => "SGD",
            TrainingAlgorithm::DpSgd => "DP-SGD",
            TrainingAlgorithm::DpSgdReweighted => "DP-SGD(R)",
        }
    }
}

impl std::fmt::Display for TrainingAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How per-example gradients are clipped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ClipMode {
    /// One global bound `C` on the whole per-example gradient vector
    /// (Algorithm 1 line 23).
    #[default]
    Flat,
    /// Per-layer bounds `C_l = C/√L` with `Σ C_l² = C²` (same sensitivity,
    /// different geometry; only expressible with materialized per-example
    /// gradients, so it requires vanilla DP-SGD).
    PerLayer,
}

/// Hyper-parameters for a [`DpTrainer`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DpSgdConfig {
    /// Which gradient-derivation algorithm to run.
    pub algorithm: TrainingAlgorithm,
    /// Max per-example gradient L2 norm `C` (ignored by plain SGD).
    pub clip_norm: f64,
    /// Noise multiplier `σ` (ignored by plain SGD).
    pub noise_multiplier: f64,
    /// SGD learning rate `η`.
    pub learning_rate: f32,
}

impl DpSgdConfig {
    /// Returns `true` when the configuration trains with privacy (DP-SGD or
    /// DP-SGD(R)).
    pub fn is_private(&self) -> bool {
        self.algorithm != TrainingAlgorithm::Sgd
    }
}

impl Default for DpSgdConfig {
    fn default() -> Self {
        Self {
            algorithm: TrainingAlgorithm::DpSgdReweighted,
            clip_norm: 1.0,
            noise_multiplier: 1.1,
            learning_rate: 0.1,
        }
    }
}

/// Diagnostics from one training step.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Mean cross-entropy loss over the mini-batch.
    pub mean_loss: f64,
    /// Clipping statistics (`None` for plain SGD; for per-layer clipping,
    /// norms are whole-gradient norms and `clipped_count` counts examples
    /// clipped in *any* layer).
    pub clip: Option<ClipSummary>,
    /// L2 norm of the final (averaged, noised) update direction.
    pub update_norm: f64,
}

/// The privacy cost of a training run, reported under both accountants.
///
/// `epsilon` (from the PLD accountant — near exact) is the number to
/// publish; `epsilon_rdp` is the classic moments-accountant bound, kept so
/// results remain comparable with the literature and with earlier releases
/// of this workspace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacySpent {
    /// ε under the PLD accountant (the tighter default).
    pub epsilon: f64,
    /// ε under the RDP (moments) accountant.
    pub epsilon_rdp: f64,
    /// The δ both ε values are reported at.
    pub delta: f64,
}

/// Builder for [`DpTrainer`]: hyper-parameters, clip mode and compute
/// backend in one fluent chain (replaces the deprecated two-argument
/// `DpTrainer::with_clip_mode`).
///
/// # Example
///
/// ```
/// use diva_dp::{ClipMode, DpTrainer, TrainingAlgorithm};
/// use diva_tensor::Backend;
///
/// let trainer = DpTrainer::builder()
///     .algorithm(TrainingAlgorithm::DpSgd)
///     .clip_norm(0.5)
///     .noise_multiplier(1.3)
///     .learning_rate(0.2)
///     .clip_mode(ClipMode::PerLayer)
///     .backend(Backend::serial())
///     .build();
/// assert_eq!(trainer.clip_mode(), ClipMode::PerLayer);
/// ```
#[derive(Clone, Debug)]
pub struct DpTrainerBuilder {
    config: DpSgdConfig,
    clip_mode: ClipMode,
    backend: Option<Backend>,
}

impl DpTrainerBuilder {
    /// Replaces the whole configuration at once.
    pub fn config(mut self, config: DpSgdConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the gradient-derivation algorithm.
    pub fn algorithm(mut self, algorithm: TrainingAlgorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Sets the max per-example gradient L2 norm `C`.
    pub fn clip_norm(mut self, clip_norm: f64) -> Self {
        self.config.clip_norm = clip_norm;
        self
    }

    /// Sets the noise multiplier `σ`.
    pub fn noise_multiplier(mut self, noise_multiplier: f64) -> Self {
        self.config.noise_multiplier = noise_multiplier;
        self
    }

    /// Sets the SGD learning rate `η`.
    pub fn learning_rate(mut self, learning_rate: f32) -> Self {
        self.config.learning_rate = learning_rate;
        self
    }

    /// Sets the clipping mode ([`ClipMode::Flat`] by default).
    pub fn clip_mode(mut self, clip_mode: ClipMode) -> Self {
        self.clip_mode = clip_mode;
        self
    }

    /// Selects the compute backend (thread count) every step runs under;
    /// prewarms the shared keep-alive pool to that width at [`Self::build`]
    /// time. When not set, the trainer defaults to [`Backend::auto`]
    /// *without* prewarming — workers spawn lazily at the first parallel
    /// region, so a trainer that is immediately narrowed (the bench
    /// sweep's serial arm) never parks a core-count of idle workers.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Builds the trainer.
    ///
    /// # Panics
    ///
    /// Panics if [`ClipMode::PerLayer`] is combined with DP-SGD(R) (the
    /// reweighted algorithm expresses clipping as a single per-example
    /// loss scale, which cannot encode per-layer factors), or if the
    /// configuration is private and `clip_norm` / `noise_multiplier` are
    /// invalid.
    pub fn build(self) -> DpTrainer {
        if let Some(backend) = self.backend {
            backend.prewarm();
        }
        DpTrainer::assemble(
            self.config,
            self.clip_mode,
            self.backend.unwrap_or_default(),
        )
    }
}

/// A stateless training-step driver: owns the hyper-parameters, borrows the
/// network and RNG per step.
///
/// # Example
///
/// One private training step end to end (the README quick-start — the
/// README's own copy is also compiled as a doc-test via
/// `ReadmeDoctests` in `lib.rs`, so the two cannot drift):
///
/// ```
/// use diva_dp::{DpSgdConfig, DpTrainer, TrainingAlgorithm};
/// use diva_nn::{Layer, Network};
/// use diva_tensor::{DivaRng, Tensor};
///
/// let mut rng = DivaRng::seed_from_u64(0);
/// let mut net = Network::new(vec![
///     Layer::dense(4, 16, true, &mut rng),
///     Layer::relu(),
///     Layer::dense(16, 2, true, &mut rng),
/// ]);
/// let trainer = DpTrainer::new(DpSgdConfig {
///     algorithm: TrainingAlgorithm::DpSgdReweighted,
///     clip_norm: 1.0,
///     noise_multiplier: 1.1,
///     learning_rate: 0.1,
/// });
/// let x = Tensor::uniform(&[8, 4], -1.0, 1.0, &mut rng);
/// let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
/// let report = trainer.step(&mut net, &x, &labels, &mut rng);
/// assert!(report.mean_loss.is_finite());
/// assert_eq!(report.clip.unwrap().factors.len(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct DpTrainer {
    config: DpSgdConfig,
    clip_mode: ClipMode,
    mechanism: GaussianMechanism,
    backend: Backend,
}

impl DpTrainer {
    /// Starts a [`DpTrainerBuilder`] with the default configuration
    /// ([`DpSgdConfig::default`], flat clipping, auto backend).
    pub fn builder() -> DpTrainerBuilder {
        DpTrainerBuilder {
            config: DpSgdConfig::default(),
            clip_mode: ClipMode::Flat,
            backend: None,
        }
    }

    /// Creates a trainer with flat (whole-gradient) clipping.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is private and `clip_norm` or
    /// `noise_multiplier` are invalid.
    pub fn new(config: DpSgdConfig) -> Self {
        Self::assemble(config, ClipMode::Flat, Backend::auto())
    }

    /// Creates a trainer with an explicit [`ClipMode`].
    ///
    /// # Panics
    ///
    /// Panics if `ClipMode::PerLayer` is combined with DP-SGD(R): the
    /// reweighted algorithm expresses clipping as a single per-example loss
    /// scale, which cannot encode per-layer factors.
    #[deprecated(
        since = "0.1.0",
        note = "use `DpTrainer::builder().config(..).clip_mode(..).build()` instead"
    )]
    pub fn with_clip_mode(config: DpSgdConfig, clip_mode: ClipMode) -> Self {
        Self::assemble(config, clip_mode, Backend::auto())
    }

    /// The one construction path behind [`Self::new`],
    /// [`DpTrainerBuilder::build`] and the deprecated `with_clip_mode`.
    fn assemble(config: DpSgdConfig, clip_mode: ClipMode, backend: Backend) -> Self {
        assert!(
            !(clip_mode == ClipMode::PerLayer
                && config.algorithm == TrainingAlgorithm::DpSgdReweighted),
            "per-layer clipping requires materialized per-example gradients (vanilla DP-SGD)"
        );
        let mechanism = if config.is_private() {
            GaussianMechanism::new(config.noise_multiplier, config.clip_norm)
        } else {
            // Unused for SGD; any valid mechanism will do.
            GaussianMechanism::new(0.0, 1.0)
        };
        // No prewarm here: the default backend is full-width auto, and a
        // caller may immediately narrow it (`.with_backend(Backend::serial())`
        // — the bench sweep's serial arm), which must not leave a core-count
        // of permanently parked workers behind. `with_backend` and
        // `DpTrainerBuilder::backend` prewarm the width actually chosen; a
        // trainer left on auto spawns workers lazily at its first parallel
        // region.
        Self {
            config,
            clip_mode,
            mechanism,
            backend,
        }
    }

    /// Selects the compute backend (thread count) every step of this
    /// trainer runs under; `Backend::auto()` is the default. Benches use
    /// this to sweep serial vs. parallel execution of the same step.
    ///
    /// Prewarms the shared keep-alive pool to the new backend's width
    /// (`diva_tensor::parallel`), so trainer, benches and figure binaries
    /// all draw from the same parked worker set.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        backend.prewarm();
        self.backend = backend;
        self
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &DpSgdConfig {
        &self.config
    }

    /// The clipping mode.
    pub fn clip_mode(&self) -> ClipMode {
        self.clip_mode
    }

    /// The compute backend steps execute under.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The privacy spent by `steps` steps of this trainer at Poisson
    /// sampling rate `sampling_rate`, reported at `delta` under both the
    /// PLD (tight, published as `epsilon`) and RDP accountants.
    ///
    /// # Errors
    ///
    /// [`AccountError::InvalidParameter`] if the trainer is non-private
    /// (plain SGD spends no budget but has no meaningful ε to report), has
    /// a zero noise multiplier, or the arguments are out of domain.
    pub fn privacy_spent(
        &self,
        sampling_rate: f64,
        steps: u64,
        delta: f64,
    ) -> Result<PrivacySpent, AccountError> {
        if !self.config.is_private() {
            return Err(AccountError::InvalidParameter(
                "plain SGD has no privacy guarantee to account".into(),
            ));
        }
        let event = DpEvent::dp_sgd(sampling_rate, self.config.noise_multiplier, steps);
        Ok(PrivacySpent {
            epsilon: event_epsilon(AccountantKind::Pld, &event, delta)?,
            epsilon_rdp: event_epsilon(AccountantKind::Rdp, &event, delta)?,
            delta,
        })
    }

    /// Runs one training step on a classification mini-batch, updating the
    /// network in place.
    ///
    /// `x` is the batched input (first dimension = batch), `labels` the
    /// integer class targets. Returns step diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if batch dimensions are inconsistent.
    pub fn step(
        &self,
        net: &mut Network,
        x: &Tensor,
        labels: &[usize],
        rng: &mut DivaRng,
    ) -> StepReport {
        let b = x.shape().dim(0);
        let (mut grads, loss, clip) = self.backend.install(|| self.clipped_sum(net, x, labels));
        if self.config.is_private() {
            self.mechanism.add_noise_to_grads(&mut grads, rng);
        }
        // Average over the mini-batch: Algorithm 1 line 24 / 41 multiplies
        // the (noised) sum by 1/B; for SGD this is the usual mean gradient.
        scale_grads(&mut grads, 1.0 / b as f32);
        let update_norm = grad_norm(&grads);
        net.apply_update(&grads, self.config.learning_rate);
        StepReport {
            mean_loss: loss,
            clip,
            update_norm,
        }
    }

    /// Runs one *logical* training step over several microbatches
    /// (gradient accumulation): each microbatch contributes its clipped
    /// per-example gradient sum; noise is added once, to the total.
    ///
    /// This is how practitioners reach SGD-scale effective batches under
    /// DP-SGD's per-example memory blow-up (the paper's Section III-A
    /// problem): peak memory scales with the *microbatch*, privacy and the
    /// update with the *total* batch. Equivalent to [`Self::step`] on the
    /// concatenated batch (clipping is per-example, so splitting is exact).
    ///
    /// # Panics
    ///
    /// Panics if `microbatches` is empty or any batch is malformed.
    pub fn step_accumulated(
        &self,
        net: &mut Network,
        microbatches: &[(Tensor, Vec<usize>)],
        rng: &mut DivaRng,
    ) -> StepReport {
        assert!(!microbatches.is_empty(), "need at least one microbatch");
        let mut total_examples = 0usize;
        let mut acc: Option<NetworkGrads> = None;
        let mut loss_weighted = 0.0f64;
        let mut clip_acc: Option<ClipSummary> = None;
        for (x, labels) in microbatches {
            let b = x.shape().dim(0);
            total_examples += b;
            let (grads, loss, clip) = self.backend.install(|| self.clipped_sum(net, x, labels));
            loss_weighted += loss * b as f64;
            match &mut acc {
                None => acc = Some(grads),
                Some(a) => a.accumulate(&grads),
            }
            clip_acc = merge_clip(clip_acc, clip);
        }
        let mut grads = acc.expect("at least one microbatch");
        if self.config.is_private() {
            self.mechanism.add_noise_to_grads(&mut grads, rng);
        }
        scale_grads(&mut grads, 1.0 / total_examples as f32);
        let update_norm = grad_norm(&grads);
        net.apply_update(&grads, self.config.learning_rate);
        StepReport {
            mean_loss: loss_weighted / total_examples as f64,
            clip: clip_acc,
            update_norm,
        }
    }

    /// Computes the (clipped, for private algorithms) *sum* of per-example
    /// gradients for one mini-batch, without noise, averaging, or updates.
    fn clipped_sum(
        &self,
        net: &Network,
        x: &Tensor,
        labels: &[usize],
    ) -> (NetworkGrads, f64, Option<ClipSummary>) {
        let b = x.shape().dim(0);
        assert_eq!(b, labels.len(), "batch size mismatch with labels");
        assert!(b > 0, "empty mini-batch");

        let (logits, caches) = net.forward(x);
        let loss = softmax_cross_entropy(&logits, labels);

        match self.config.algorithm {
            TrainingAlgorithm::Sgd => {
                let g = net.backward(&caches, &loss.grad_logits, GradMode::PerBatch);
                (g, loss.mean_loss, None)
            }
            TrainingAlgorithm::DpSgd => {
                // Algorithm 1 lines 16–25: full per-example gradients.
                let per_ex = net.backward(&caches, &loss.grad_logits, GradMode::PerExample);
                match self.clip_mode {
                    ClipMode::Flat => {
                        let summary =
                            clip_factors(&per_ex.per_example_sq_norms(), self.config.clip_norm);
                        let reduced = per_ex.weighted_reduce(&summary.factors);
                        (reduced, loss.mean_loss, Some(summary))
                    }
                    ClipMode::PerLayer => {
                        let layer_norms = per_ex.per_layer_sq_norms();
                        let n_param_layers =
                            layer_norms.iter().filter(|l| !l.is_empty()).count().max(1);
                        let c_l = self.config.clip_norm / (n_param_layers as f64).sqrt();
                        let weights: Vec<Vec<f64>> = layer_norms
                            .iter()
                            .map(|norms| clip_factors(norms, c_l).factors)
                            .collect();
                        let reduced = per_ex.weighted_reduce_per_layer(&weights);
                        // Report whole-gradient norms and any-layer clips.
                        let mut summary =
                            clip_factors(&per_ex.per_example_sq_norms(), self.config.clip_norm);
                        summary.clipped_count = (0..b)
                            .filter(|&i| weights.iter().any(|w| !w.is_empty() && w[i] < 1.0))
                            .count();
                        (reduced, loss.mean_loss, Some(summary))
                    }
                }
            }
            TrainingAlgorithm::DpSgdReweighted => {
                // Algorithm 1 lines 28–42: first pass derives norms only...
                let norm_pass = net.backward(&caches, &loss.grad_logits, GradMode::NormOnly);
                let summary =
                    clip_factors(&norm_pass.per_example_sq_norms(), self.config.clip_norm);
                // ...then the loss gradient is reweighted per example and a
                // second per-batch pass yields the clipped, reduced gradient
                // in one shot (clipping fused into backprop — the key to
                // DP-SGD(R)'s memory savings and fewer post-processing ops).
                // Both passes run against the same `caches`, which is what
                // makes the conv patch-reuse pay twice: the shared im2col
                // buffer and the GEMM operands packed during the norm pass
                // (diva_tensor::PatchBuffer / PackCache) are reused verbatim
                // by the reweighted pass, and neither pass derives the
                // first layer's dead input gradient.
                let g = net.backward_reweighted(&caches, &loss.grad_logits, &summary.factors);
                (g, loss.mean_loss, Some(summary))
            }
        }
    }
}

fn scale_grads(grads: &mut NetworkGrads, s: f32) {
    for layer in &mut grads.layers {
        if let diva_nn::ParamGrads::PerBatch(tensors) = layer {
            for t in tensors {
                t.scale(s);
            }
        }
    }
}

fn grad_norm(grads: &NetworkGrads) -> f64 {
    grads
        .flatten_per_batch()
        .iter()
        .map(|&v| f64::from(v) * f64::from(v))
        .sum::<f64>()
        .sqrt()
}

fn merge_clip(a: Option<ClipSummary>, b: Option<ClipSummary>) -> Option<ClipSummary> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(mut a), Some(b)) => {
            a.factors.extend(b.factors);
            a.norms.extend(b.norms);
            a.clipped_count += b.clipped_count;
            // Recompute the median over the union.
            let mut sorted = a.norms.clone();
            sorted.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
            let mid = sorted.len() / 2;
            a.median_norm = if sorted.is_empty() {
                0.0
            } else if sorted.len() % 2 == 0 {
                (sorted[mid - 1] + sorted[mid]) / 2.0
            } else {
                sorted[mid]
            };
            Some(a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_nn::Layer;

    fn mlp(rng: &mut DivaRng) -> Network {
        Network::new(vec![
            Layer::dense(4, 8, true, rng),
            Layer::relu(),
            Layer::dense(8, 2, true, rng),
        ])
    }

    fn batch(rng: &mut DivaRng, b: usize) -> (Tensor, Vec<usize>) {
        let x = Tensor::uniform(&[b, 4], -1.0, 1.0, rng);
        let labels = (0..b).map(|i| i % 2).collect();
        (x, labels)
    }

    /// The paper's central algorithmic identity: with the same noise draw,
    /// DP-SGD and DP-SGD(R) produce the same model update.
    #[test]
    fn dpsgd_and_reweighted_are_equivalent() {
        let mut rng = DivaRng::seed_from_u64(100);
        let net0 = mlp(&mut rng);
        let (x, labels) = batch(&mut rng, 6);

        let run = |alg: TrainingAlgorithm| {
            let mut net = net0.clone();
            let trainer = DpTrainer::new(DpSgdConfig {
                algorithm: alg,
                clip_norm: 0.5,
                noise_multiplier: 1.3,
                learning_rate: 0.2,
            });
            let mut step_rng = DivaRng::seed_from_u64(999);
            trainer.step(&mut net, &x, &labels, &mut step_rng);
            net
        };
        let a = run(TrainingAlgorithm::DpSgd);
        let b = run(TrainingAlgorithm::DpSgdReweighted);
        for (la, lb) in a.layers().iter().zip(b.layers()) {
            for (pa, pb) in la.params().iter().zip(lb.params()) {
                assert!(
                    pa.max_abs_diff(pb) < 1e-4,
                    "DP-SGD and DP-SGD(R) diverged: {}",
                    pa.max_abs_diff(pb)
                );
            }
        }
    }

    #[test]
    fn dpsgd_with_huge_clip_and_zero_noise_matches_sgd() {
        let mut rng = DivaRng::seed_from_u64(101);
        let net0 = mlp(&mut rng);
        let (x, labels) = batch(&mut rng, 4);
        let run = |alg: TrainingAlgorithm, clip: f64, sigma: f64| {
            let mut net = net0.clone();
            let trainer = DpTrainer::new(DpSgdConfig {
                algorithm: alg,
                clip_norm: clip,
                noise_multiplier: sigma,
                learning_rate: 0.1,
            });
            let mut step_rng = DivaRng::seed_from_u64(1);
            trainer.step(&mut net, &x, &labels, &mut step_rng);
            net
        };
        let sgd = run(TrainingAlgorithm::Sgd, 1.0, 0.0);
        let dp = run(TrainingAlgorithm::DpSgd, 1e9, 0.0);
        for (la, lb) in sgd.layers().iter().zip(dp.layers()) {
            for (pa, pb) in la.params().iter().zip(lb.params()) {
                assert!(pa.max_abs_diff(pb) < 1e-5);
            }
        }
    }

    #[test]
    fn clipping_report_is_populated_for_private_training() {
        let mut rng = DivaRng::seed_from_u64(102);
        let mut net = mlp(&mut rng);
        let (x, labels) = batch(&mut rng, 5);
        let trainer = DpTrainer::new(DpSgdConfig {
            algorithm: TrainingAlgorithm::DpSgdReweighted,
            clip_norm: 1e-3, // absurdly small: everything clips
            noise_multiplier: 0.0,
            learning_rate: 0.1,
        });
        let report = trainer.step(&mut net, &x, &labels, &mut rng);
        let clip = report.clip.expect("private step must report clipping");
        assert_eq!(clip.clipped_count, 5);
        assert!(clip.factors.iter().all(|&f| f < 1.0));
    }

    #[test]
    fn sgd_training_converges_on_separable_data() {
        let mut rng = DivaRng::seed_from_u64(103);
        let mut net = mlp(&mut rng);
        let trainer = DpTrainer::new(DpSgdConfig {
            algorithm: TrainingAlgorithm::Sgd,
            clip_norm: 1.0,
            noise_multiplier: 0.0,
            learning_rate: 0.5,
        });
        // Linearly separable blobs along the first coordinate.
        let mut losses = Vec::new();
        for _ in 0..60 {
            let b = 16;
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for i in 0..b {
                let class = i % 2;
                let center = if class == 0 { -1.0 } else { 1.0 };
                for d in 0..4 {
                    let jitter = rng.uniform(-0.2, 0.2);
                    data.push(if d == 0 { center + jitter } else { jitter });
                }
                labels.push(class);
            }
            let x = Tensor::from_vec(data, &[b, 4]);
            losses.push(trainer.step(&mut net, &x, &labels, &mut rng).mean_loss);
        }
        assert!(
            losses.last().unwrap() < &0.1,
            "final loss {:?}",
            losses.last()
        );
    }

    #[test]
    fn dp_training_converges_with_modest_noise() {
        let mut rng = DivaRng::seed_from_u64(104);
        let mut net = mlp(&mut rng);
        let trainer = DpTrainer::new(DpSgdConfig {
            algorithm: TrainingAlgorithm::DpSgdReweighted,
            clip_norm: 1.0,
            noise_multiplier: 0.5,
            learning_rate: 0.5,
        });
        let mut final_loss = f64::INFINITY;
        for _ in 0..80 {
            let b = 32;
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for i in 0..b {
                let class = i % 2;
                let center = if class == 0 { -1.0 } else { 1.0 };
                for d in 0..4 {
                    let jitter = rng.uniform(-0.2, 0.2);
                    data.push(if d == 0 { center + jitter } else { jitter });
                }
                labels.push(class);
            }
            let x = Tensor::from_vec(data, &[b, 4]);
            final_loss = trainer.step(&mut net, &x, &labels, &mut rng).mean_loss;
        }
        assert!(
            final_loss < 0.4,
            "DP training failed to converge: {final_loss}"
        );
    }

    /// Microbatch accumulation must equal one big step on the concatenated
    /// batch (clipping is per-example, so the split is exact; the noise is
    /// drawn once either way).
    #[test]
    fn accumulated_step_equals_concatenated_step() {
        let mut rng = DivaRng::seed_from_u64(105);
        let net0 = mlp(&mut rng);
        let (x1, l1) = batch(&mut rng, 3);
        let (x2, l2) = batch(&mut rng, 5);
        // Concatenate.
        let mut data = x1.data().to_vec();
        data.extend_from_slice(x2.data());
        let x_all = Tensor::from_vec(data, &[8, 4]);
        let mut l_all = l1.clone();
        l_all.extend_from_slice(&l2);

        let trainer = DpTrainer::new(DpSgdConfig {
            algorithm: TrainingAlgorithm::DpSgd,
            clip_norm: 0.7,
            noise_multiplier: 1.0,
            learning_rate: 0.2,
        });
        let mut net_a = net0.clone();
        let mut rng_a = DivaRng::seed_from_u64(55);
        trainer.step(&mut net_a, &x_all, &l_all, &mut rng_a);

        let mut net_b = net0.clone();
        let mut rng_b = DivaRng::seed_from_u64(55);
        trainer.step_accumulated(&mut net_b, &[(x1, l1), (x2, l2)], &mut rng_b);

        for (la, lb) in net_a.layers().iter().zip(net_b.layers()) {
            for (pa, pb) in la.params().iter().zip(lb.params()) {
                assert!(
                    pa.max_abs_diff(pb) < 1e-5,
                    "accumulated step diverged: {}",
                    pa.max_abs_diff(pb)
                );
            }
        }
    }

    /// Per-layer clipping bounds each layer's contribution and preserves
    /// the overall sensitivity (Σ C_l² = C²).
    #[test]
    fn per_layer_clipping_bounds_each_layer() {
        let mut rng = DivaRng::seed_from_u64(106);
        let mut net = mlp(&mut rng);
        let (x, labels) = batch(&mut rng, 4);
        let c = 1e-2; // tiny bound: everything clips
        let trainer = DpTrainer::builder()
            .algorithm(TrainingAlgorithm::DpSgd)
            .clip_norm(c)
            .noise_multiplier(0.0)
            .learning_rate(0.0) // no update: we inspect the report only
            .clip_mode(ClipMode::PerLayer)
            .build();
        let report = trainer.step(&mut net, &x, &labels, &mut rng);
        let clip = report.clip.expect("clipping expected");
        assert_eq!(clip.clipped_count, 4);
        // The final update (before lr) has norm at most C (since the sum of
        // per-example gradients each bounded by C, divided by B).
        assert!(report.update_norm <= c + 1e-9);
    }

    #[test]
    #[should_panic(expected = "per-layer clipping requires")]
    fn per_layer_clipping_rejects_reweighted() {
        let _ = DpTrainer::builder()
            .algorithm(TrainingAlgorithm::DpSgdReweighted)
            .clip_mode(ClipMode::PerLayer)
            .build();
    }

    /// The deprecated two-argument constructor must keep behaving exactly
    /// like the builder until it is removed.
    #[test]
    fn deprecated_with_clip_mode_matches_builder() {
        let cfg = DpSgdConfig {
            algorithm: TrainingAlgorithm::DpSgd,
            clip_norm: 0.7,
            noise_multiplier: 1.0,
            learning_rate: 0.2,
        };
        #[allow(deprecated)]
        let legacy = DpTrainer::with_clip_mode(cfg, ClipMode::PerLayer);
        let built = DpTrainer::builder()
            .config(cfg)
            .clip_mode(ClipMode::PerLayer)
            .build();
        assert_eq!(legacy.config(), built.config());
        assert_eq!(legacy.clip_mode(), built.clip_mode());
        assert_eq!(legacy.backend(), built.backend());
    }

    /// The trainer's privacy report routes through the accounting engine:
    /// PLD at or below RDP, both positive, and non-private configs refuse.
    #[test]
    fn privacy_spent_reports_both_accountants() {
        let trainer = DpTrainer::new(DpSgdConfig::default());
        let spent = trainer.privacy_spent(0.01, 500, 1e-5).unwrap();
        assert!(spent.epsilon > 0.0);
        assert!(
            spent.epsilon <= spent.epsilon_rdp,
            "pld {} vs rdp {}",
            spent.epsilon,
            spent.epsilon_rdp
        );
        assert_eq!(spent.delta, 1e-5);

        let sgd = DpTrainer::new(DpSgdConfig {
            algorithm: TrainingAlgorithm::Sgd,
            ..DpSgdConfig::default()
        });
        assert!(matches!(
            sgd.privacy_spent(0.01, 500, 1e-5),
            Err(crate::AccountError::InvalidParameter(_))
        ));
    }

    /// Builder defaults mirror `DpTrainer::new(DpSgdConfig::default())`.
    #[test]
    fn builder_defaults_match_new() {
        let a = DpTrainer::new(DpSgdConfig::default());
        let b = DpTrainer::builder().build();
        assert_eq!(a.config(), b.config());
        assert_eq!(a.clip_mode(), b.clip_mode());
        assert_eq!(a.backend(), b.backend());
    }

    /// With a generous bound, per-layer and flat clipping agree (nothing
    /// clips in either mode).
    #[test]
    fn per_layer_equals_flat_when_nothing_clips() {
        let mut rng = DivaRng::seed_from_u64(107);
        let net0 = mlp(&mut rng);
        let (x, labels) = batch(&mut rng, 4);
        let cfg = DpSgdConfig {
            algorithm: TrainingAlgorithm::DpSgd,
            clip_norm: 1e6,
            noise_multiplier: 0.0,
            learning_rate: 0.3,
        };
        let mut net_a = net0.clone();
        let mut net_b = net0.clone();
        let mut r1 = DivaRng::seed_from_u64(1);
        let mut r2 = DivaRng::seed_from_u64(1);
        let flat = DpTrainer::builder().config(cfg).build();
        let per_layer = DpTrainer::builder()
            .config(cfg)
            .clip_mode(ClipMode::PerLayer)
            .build();
        flat.step(&mut net_a, &x, &labels, &mut r1);
        per_layer.step(&mut net_b, &x, &labels, &mut r2);
        for (la, lb) in net_a.layers().iter().zip(net_b.layers()) {
            for (pa, pb) in la.params().iter().zip(lb.params()) {
                assert!(pa.max_abs_diff(pb) < 1e-6);
            }
        }
    }
}
