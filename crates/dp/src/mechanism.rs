//! The Gaussian mechanism: `g + N(0, σ²C²I)` (Algorithm 1 line 24).

use diva_nn::{NetworkGrads, ParamGrads};
use diva_tensor::DivaRng;

/// The Gaussian mechanism used by DP-SGD: adds isotropic noise with standard
/// deviation `noise_multiplier × clip_norm` to a (clipped, summed) gradient.
///
/// # Example
///
/// ```
/// use diva_dp::GaussianMechanism;
/// use diva_tensor::DivaRng;
///
/// let mech = GaussianMechanism::new(1.1, 1.0);
/// let mut rng = DivaRng::seed_from_u64(0);
/// let mut grad = vec![0.0f32; 4];
/// mech.add_noise(&mut grad, &mut rng);
/// assert!(grad.iter().any(|&v| v != 0.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaussianMechanism {
    noise_multiplier: f64,
    clip_norm: f64,
}

impl GaussianMechanism {
    /// Creates a mechanism with noise multiplier σ and sensitivity bound C.
    ///
    /// # Panics
    ///
    /// Panics if either argument is negative or non-finite.
    pub fn new(noise_multiplier: f64, clip_norm: f64) -> Self {
        assert!(
            noise_multiplier >= 0.0 && noise_multiplier.is_finite(),
            "invalid noise multiplier {noise_multiplier}"
        );
        assert!(
            clip_norm > 0.0 && clip_norm.is_finite(),
            "invalid clip norm {clip_norm}"
        );
        Self {
            noise_multiplier,
            clip_norm,
        }
    }

    /// The noise standard deviation `σ·C`.
    pub fn noise_std(&self) -> f64 {
        self.noise_multiplier * self.clip_norm
    }

    /// Adds `N(0, (σC)²)` noise to every coordinate of a flat gradient.
    pub fn add_noise(&self, grad: &mut [f32], rng: &mut DivaRng) {
        let std = self.noise_std();
        if std == 0.0 {
            return;
        }
        for g in grad {
            *g += rng.gaussian(0.0, std) as f32;
        }
    }

    /// Adds noise to every per-batch tensor of a [`NetworkGrads`].
    ///
    /// The noise is drawn in deterministic iteration order (layer order,
    /// parameter order, row-major), so two calls with identically seeded
    /// generators produce identical noise — the property the DP-SGD ≡
    /// DP-SGD(R) equivalence tests rely on.
    ///
    /// # Panics
    ///
    /// Panics if any layer gradient is per-example (noise is only ever added
    /// after reduction).
    pub fn add_noise_to_grads(&self, grads: &mut NetworkGrads, rng: &mut DivaRng) {
        let std = self.noise_std();
        if std == 0.0 {
            return;
        }
        for layer in &mut grads.layers {
            match layer {
                ParamGrads::None => {}
                ParamGrads::PerBatch(tensors) => {
                    for t in tensors {
                        for v in t.data_mut() {
                            *v += rng.gaussian(0.0, std) as f32;
                        }
                    }
                }
                other => panic!("noise must be added after reduction, got {other:?}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let mech = GaussianMechanism::new(0.0, 1.0);
        let mut rng = DivaRng::seed_from_u64(1);
        let mut g = vec![1.0f32, 2.0, 3.0];
        mech.add_noise(&mut g, &mut rng);
        assert_eq!(g, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn noise_std_scales_with_clip_norm() {
        assert_eq!(GaussianMechanism::new(2.0, 3.0).noise_std(), 6.0);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mech = GaussianMechanism::new(1.0, 1.0);
        let mut a = vec![0.0f32; 16];
        let mut b = vec![0.0f32; 16];
        mech.add_noise(&mut a, &mut DivaRng::seed_from_u64(7));
        mech.add_noise(&mut b, &mut DivaRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn empirical_std_is_close() {
        let mech = GaussianMechanism::new(1.5, 2.0); // std 3.0
        let mut rng = DivaRng::seed_from_u64(42);
        let mut g = vec![0.0f32; 100_000];
        mech.add_noise(&mut g, &mut rng);
        let mean: f64 = g.iter().map(|&v| f64::from(v)).sum::<f64>() / g.len() as f64;
        let var: f64 = g
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / g.len() as f64;
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std was {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "invalid noise multiplier")]
    fn negative_sigma_panics() {
        let _ = GaussianMechanism::new(-1.0, 1.0);
    }
}
