//! Dataflow taxonomy and the training-step operation vocabulary.

use std::fmt;

use crate::gemm::GemmShape;

/// GEMM-engine dataflows studied by the paper (Figure 3, Section IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Weight-stationary systolic array (Google TPU style): RHS latched into
    /// the PEs, LHS streamed through. The paper's baseline.
    WeightStationary,
    /// Output-stationary systolic array: operands streamed from two edges,
    /// outputs accumulate in place.
    OutputStationary,
    /// DiVa's outer-product dataflow: one LHS column and one RHS row
    /// broadcast per cycle, all-to-all multiplied; `M×N` MACs per cycle
    /// regardless of K.
    OuterProduct,
}

impl Dataflow {
    /// All three dataflows in the paper's presentation order.
    pub const ALL: [Dataflow; 3] = [
        Dataflow::WeightStationary,
        Dataflow::OutputStationary,
        Dataflow::OuterProduct,
    ];

    /// Short display label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Dataflow::WeightStationary => "WS",
            Dataflow::OutputStationary => "OS",
            Dataflow::OuterProduct => "DiVa",
        }
    }

    /// Whether outputs remain stationary in the PEs (true for OS and
    /// outer-product), enabling direct drain into the PPU (Section IV-C).
    pub fn is_output_stationary(&self) -> bool {
        matches!(self, Dataflow::OutputStationary | Dataflow::OuterProduct)
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Training-step phases, matching the stacked-bar legend of the paper's
/// Figures 5 and 14.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Forward propagation.
    Forward,
    /// Backprop: input-activation gradients, first (or only) pass.
    BwdActGrad1,
    /// Backprop: per-example weight gradients.
    BwdPerExampleGrad,
    /// Backprop: per-example gradient L2 norm derivation.
    BwdGradNorm,
    /// Backprop: input-activation gradients, second pass (DP-SGD(R) only).
    BwdActGrad2,
    /// Backprop: per-batch weight gradients.
    BwdPerBatchGrad,
    /// Gradient clipping (vanilla DP-SGD only; fused away in DP-SGD(R)).
    BwdGradClip,
    /// Gradient reduction across examples plus noise addition.
    BwdReduceNoise,
    /// Weight update (`w ← w − ηg`); small, shown for completeness.
    WeightUpdate,
}

impl Phase {
    /// All phases in presentation order.
    pub const ALL: [Phase; 9] = [
        Phase::Forward,
        Phase::BwdActGrad1,
        Phase::BwdPerExampleGrad,
        Phase::BwdGradNorm,
        Phase::BwdActGrad2,
        Phase::BwdPerBatchGrad,
        Phase::BwdGradClip,
        Phase::BwdReduceNoise,
        Phase::WeightUpdate,
    ];

    /// The paper's legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Forward => "Fwdprop",
            Phase::BwdActGrad1 => "Bwd(activation grad, 1st pass)",
            Phase::BwdPerExampleGrad => "Bwd(per-example grad)",
            Phase::BwdGradNorm => "Bwd(grad norm)",
            Phase::BwdActGrad2 => "Bwd(activation grad, 2nd pass)",
            Phase::BwdPerBatchGrad => "Bwd(per-batch grad)",
            Phase::BwdGradClip => "Bwd(grad clip)",
            Phase::BwdReduceNoise => "Bwd(reduce/noise)",
            Phase::WeightUpdate => "Weight update",
        }
    }

    /// A stable machine-readable identifier, used as a metric-name suffix
    /// in the scenario/report JSON schema (`diva-scenario/v1`).
    pub fn slug(&self) -> &'static str {
        match self {
            Phase::Forward => "fwd",
            Phase::BwdActGrad1 => "bwd_act_grad1",
            Phase::BwdPerExampleGrad => "bwd_per_example_grad",
            Phase::BwdGradNorm => "bwd_grad_norm",
            Phase::BwdActGrad2 => "bwd_act_grad2",
            Phase::BwdPerBatchGrad => "bwd_per_batch_grad",
            Phase::BwdGradClip => "bwd_grad_clip",
            Phase::BwdReduceNoise => "bwd_reduce_noise",
            Phase::WeightUpdate => "weight_update",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Non-GEMM (vector) operations of DP-SGD's gradient post-processing
/// (paper Section III-C: "memory-bound gradient norm derivation").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VectorOpKind {
    /// Square-and-reduce for L2 norms (Algorithm 1 line 22).
    GradNorm,
    /// Scale each per-example gradient by its clip factor (line 23).
    GradClip,
    /// Sum per-example gradients into one set (line 24).
    GradReduce,
    /// Add Gaussian noise to the reduced gradient (line 24).
    NoiseAdd,
    /// Apply the weight update.
    WeightUpdate,
}

impl VectorOpKind {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            VectorOpKind::GradNorm => "grad-norm",
            VectorOpKind::GradClip => "grad-clip",
            VectorOpKind::GradReduce => "grad-reduce",
            VectorOpKind::NoiseAdd => "noise-add",
            VectorOpKind::WeightUpdate => "weight-update",
        }
    }
}

/// One schedulable operation of a lowered training step.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TrainingOpKind {
    /// `count` independent GEMMs of identical shape (per-example weight
    /// gradients lower to `B` GEMMs; everything else has `count == 1`).
    Gemm {
        /// The `(M, K, N)` dimensions of each GEMM.
        shape: GemmShape,
        /// How many independent instances execute back-to-back.
        count: u64,
        /// Whether the output tensor must survive the op (be written back).
        ///
        /// `false` for DP-SGD(R)'s per-example weight gradients, which are
        /// only needed transiently for norm derivation: an output-stationary
        /// engine with a PPU can then avoid off-chip write-back entirely
        /// (paper Section IV-C). Engines without that capability must still
        /// spill the tensor.
        output_persists: bool,
    },
    /// A bandwidth-bound vector operation touching `read_bytes` of input and
    /// producing `write_bytes` of output.
    Vector {
        /// Which post-processing operation this is.
        kind: VectorOpKind,
        /// Bytes that must be read (from SRAM or DRAM, decided by the
        /// timing model's placement logic).
        read_bytes: u64,
        /// Bytes written.
        write_bytes: u64,
        /// Whether the operand is a per-example weight-gradient tensor,
        /// which a PPU-equipped output-stationary engine can consume
        /// on-the-fly during drain (paper Section IV-C).
        fusable_into_drain: bool,
    },
}

/// A [`TrainingOpKind`] tagged with the phase it belongs to (for latency
/// breakdowns) and a human-readable origin label (layer name).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TrainingOp {
    /// The operation itself.
    pub kind: TrainingOpKind,
    /// Reporting phase.
    pub phase: Phase,
    /// Originating layer (or pseudo-op) label, for debugging.
    pub label: String,
}

impl TrainingOp {
    /// Creates a single GEMM op whose output persists.
    pub fn gemm(shape: GemmShape, phase: Phase, label: impl Into<String>) -> Self {
        Self {
            kind: TrainingOpKind::Gemm {
                shape,
                count: 1,
                output_persists: true,
            },
            phase,
            label: label.into(),
        }
    }

    /// Creates a batched GEMM op (`count` identical, independent GEMMs)
    /// whose outputs persist.
    pub fn gemm_batch(
        shape: GemmShape,
        count: u64,
        phase: Phase,
        label: impl Into<String>,
    ) -> Self {
        Self {
            kind: TrainingOpKind::Gemm {
                shape,
                count,
                output_persists: true,
            },
            phase,
            label: label.into(),
        }
    }

    /// Creates a batched GEMM op whose outputs are transient (consumed
    /// on-the-fly when the hardware allows, e.g. DP-SGD(R) per-example
    /// gradients feeding norm derivation).
    pub fn gemm_batch_ephemeral(
        shape: GemmShape,
        count: u64,
        phase: Phase,
        label: impl Into<String>,
    ) -> Self {
        Self {
            kind: TrainingOpKind::Gemm {
                shape,
                count,
                output_persists: false,
            },
            phase,
            label: label.into(),
        }
    }

    /// Creates a vector op.
    pub fn vector(
        kind: VectorOpKind,
        read_bytes: u64,
        write_bytes: u64,
        fusable_into_drain: bool,
        phase: Phase,
        label: impl Into<String>,
    ) -> Self {
        Self {
            kind: TrainingOpKind::Vector {
                kind,
                read_bytes,
                write_bytes,
                fusable_into_drain,
            },
            phase,
            label: label.into(),
        }
    }

    /// Total MACs if this is a GEMM op, else 0.
    pub fn macs(&self) -> u64 {
        match &self.kind {
            TrainingOpKind::Gemm { shape, count, .. } => shape.macs() * count,
            TrainingOpKind::Vector { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataflow_labels_match_paper() {
        assert_eq!(Dataflow::WeightStationary.label(), "WS");
        assert_eq!(Dataflow::OuterProduct.label(), "DiVa");
    }

    #[test]
    fn output_stationarity() {
        assert!(!Dataflow::WeightStationary.is_output_stationary());
        assert!(Dataflow::OutputStationary.is_output_stationary());
        assert!(Dataflow::OuterProduct.is_output_stationary());
    }

    #[test]
    fn batched_gemm_macs_scale_with_count() {
        let op = TrainingOp::gemm_batch(
            GemmShape::new(8, 2, 8),
            32,
            Phase::BwdPerExampleGrad,
            "conv1",
        );
        assert_eq!(op.macs(), 8 * 2 * 8 * 32);
    }

    #[test]
    fn vector_ops_have_no_macs() {
        let op = TrainingOp::vector(
            VectorOpKind::GradNorm,
            1024,
            4,
            true,
            Phase::BwdGradNorm,
            "norm",
        );
        assert_eq!(op.macs(), 0);
    }

    #[test]
    fn phase_order_matches_paper_legend() {
        assert_eq!(Phase::ALL[0], Phase::Forward);
        assert!(Phase::Forward < Phase::BwdReduceNoise);
    }
}
