//! GEMM shapes and numeric data types.

use std::fmt;

/// The `(M, K, N)` dimensions of a GEMM: `(M,K) × (K,N) → (M,N)`
/// (paper Figure 3(a)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of the LHS matrix and of the output.
    pub m: u64,
    /// The contraction (inner-product) dimension.
    pub k: u64,
    /// Columns of the RHS matrix and of the output.
    pub n: u64,
}

impl GemmShape {
    /// Creates a GEMM shape.
    pub fn new(m: u64, k: u64, n: u64) -> Self {
        Self { m, k, n }
    }

    /// Multiply-accumulate operations required: `M·K·N`.
    pub fn macs(&self) -> u64 {
        self.m * self.k * self.n
    }

    /// Floating-point operations (2 per MAC, the usual convention).
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }

    /// Number of LHS elements (`M·K`).
    pub fn lhs_elems(&self) -> u64 {
        self.m * self.k
    }

    /// Number of RHS elements (`K·N`).
    pub fn rhs_elems(&self) -> u64 {
        self.k * self.n
    }

    /// Number of output elements (`M·N`).
    pub fn out_elems(&self) -> u64 {
        self.m * self.n
    }

    /// Returns `true` for degenerate shapes with any zero dimension.
    pub fn is_empty(&self) -> bool {
        self.m == 0 || self.k == 0 || self.n == 0
    }

    /// The shape of the transposed product `Bᵀ×Aᵀ = (N, K, M)` — useful when
    /// an engine prefers the wider operand on a particular edge.
    pub fn transposed(&self) -> Self {
        Self {
            m: self.n,
            k: self.k,
            n: self.m,
        }
    }

    /// Arithmetic intensity in MACs per input/output element moved once
    /// (`MKN / (MK + KN + MN)`), a roofline-style irregularity indicator.
    pub fn arithmetic_intensity(&self) -> f64 {
        let denom = (self.lhs_elems() + self.rhs_elems() + self.out_elems()) as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.macs() as f64 / denom
        }
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.m, self.k, self.n)
    }
}

/// Numeric storage formats used by the modeled accelerators.
///
/// Per the paper's Table I footnote: LHS/RHS matrices are 16-bit
/// (BF16), accumulation and outputs are 32-bit (FP32).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// bfloat16 (2 bytes): GEMM input operands.
    Bf16,
    /// IEEE half precision (2 bytes): GPU tensor-core inputs.
    Fp16,
    /// IEEE single precision (4 bytes): accumulators and outputs.
    Fp32,
}

impl DataType {
    /// Size of one element in bytes.
    pub fn bytes(&self) -> u64 {
        match self {
            DataType::Bf16 | DataType::Fp16 => 2,
            DataType::Fp32 => 4,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            DataType::Bf16 => "BF16",
            DataType::Fp16 => "FP16",
            DataType::Fp32 => "FP32",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_and_flops() {
        let g = GemmShape::new(4, 2, 4);
        assert_eq!(g.macs(), 32);
        assert_eq!(g.flops(), 64);
    }

    #[test]
    fn transpose_swaps_m_and_n() {
        let g = GemmShape::new(3, 5, 7).transposed();
        assert_eq!(g, GemmShape::new(7, 5, 3));
    }

    #[test]
    fn intensity_is_low_for_skinny_gemms() {
        // Per-example MLP weight gradient: K = 1 outer product.
        let skinny = GemmShape::new(1024, 1, 1024);
        let square = GemmShape::new(1024, 1024, 1024);
        assert!(skinny.arithmetic_intensity() < 1.0);
        assert!(square.arithmetic_intensity() > 100.0);
    }

    #[test]
    fn datatype_sizes() {
        assert_eq!(DataType::Bf16.bytes(), 2);
        assert_eq!(DataType::Fp16.bytes(), 2);
        assert_eq!(DataType::Fp32.bytes(), 4);
    }

    #[test]
    fn empty_detection() {
        assert!(GemmShape::new(0, 5, 5).is_empty());
        assert!(!GemmShape::new(1, 1, 1).is_empty());
    }
}
