//! Accelerator configuration (paper Table II) with a validating builder.

use std::fmt;

use crate::ops::Dataflow;

/// Processing-element array geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PeArray {
    /// Array height `PE_H` (rows).
    pub rows: u64,
    /// Array width `PE_W` (columns).
    pub cols: u64,
}

impl PeArray {
    /// Creates an array geometry.
    pub fn new(rows: u64, cols: u64) -> Self {
        Self { rows, cols }
    }

    /// Number of MAC units (`rows × cols`).
    pub fn macs(&self) -> u64 {
        self.rows * self.cols
    }
}

impl fmt::Display for PeArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Off-chip memory subsystem configuration (paper Table II bottom half).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryConfig {
    /// Number of independent memory channels.
    pub channels: u64,
    /// Aggregate bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Access latency in accelerator core cycles.
    pub access_latency_cycles: u64,
    /// Total capacity in bytes (16 GB for TPUv3's HBM).
    pub capacity_bytes: u64,
}

impl MemoryConfig {
    /// The paper's Table II memory subsystem: 16 channels, 450 GB/s,
    /// 100-cycle latency, 16 GB HBM.
    pub fn tpu_v3_like() -> Self {
        Self {
            channels: 16,
            bandwidth_bytes_per_sec: 450.0e9,
            access_latency_cycles: 100,
            capacity_bytes: 16 * (1 << 30),
        }
    }

    /// Bandwidth expressed in bytes per core clock at `freq_hz`.
    pub fn bytes_per_cycle(&self, freq_hz: f64) -> f64 {
        self.bandwidth_bytes_per_sec / freq_hz
    }
}

/// Full accelerator configuration (paper Table II).
#[derive(Clone, Debug, PartialEq)]
pub struct AcceleratorConfig {
    /// PE array geometry (`128×128` in the baseline).
    pub pe: PeArray,
    /// Core clock in Hz (940 MHz in the baseline).
    pub freq_hz: f64,
    /// On-chip SRAM capacity in bytes (16 MB in the baseline).
    pub sram_bytes: u64,
    /// Off-chip memory subsystem.
    pub memory: MemoryConfig,
    /// GEMM-engine dataflow.
    pub dataflow: Dataflow,
    /// RHS fill rate for the WS dataflow, in rows per cycle (8 for TPUv3,
    /// per Table I: RHS bandwidth `PE_W × 8 × 2B`).
    pub rhs_fill_rows_per_cycle: u64,
    /// Output drain rate `R` in rows per cycle for output-stationary
    /// dataflows (8 in DiVa's default configuration, Section IV-C).
    pub drain_rows_per_cycle: u64,
    /// Whether a post-processing unit (PPU) is attached (Section IV-C).
    pub has_ppu: bool,
    /// Whether output-stationary engines have shadow accumulator latches so
    /// a tile's drain overlaps the next tile's compute. The paper's DiVa
    /// drains serially (`128/R` cycles per tile); this knob is an ablation
    /// quantifying what double-buffered accumulators would buy.
    pub drain_overlap: bool,
}

impl AcceleratorConfig {
    /// The paper's default configuration (Table II) with the given dataflow:
    /// 128×128 PEs at 940 MHz, 16 MB SRAM, TPUv3-like memory, R = 8.
    ///
    /// The PPU is attached iff the dataflow is output-stationary (the paper
    /// shows WS cannot exploit it, Section IV-C).
    pub fn tpu_v3_like(dataflow: Dataflow) -> Self {
        Self {
            pe: PeArray::new(128, 128),
            freq_hz: 940.0e6,
            sram_bytes: 16 << 20,
            memory: MemoryConfig::tpu_v3_like(),
            dataflow,
            rhs_fill_rows_per_cycle: 8,
            drain_rows_per_cycle: 8,
            has_ppu: dataflow.is_output_stationary(),
            drain_overlap: false,
        }
    }

    /// Starts a builder pre-populated with [`Self::tpu_v3_like`] defaults.
    pub fn builder(dataflow: Dataflow) -> AcceleratorConfigBuilder {
        AcceleratorConfigBuilder {
            config: Self::tpu_v3_like(dataflow),
        }
    }

    /// Peak MAC throughput in MACs per second.
    pub fn peak_macs_per_sec(&self) -> f64 {
        self.pe.macs() as f64 * self.freq_hz
    }

    /// Peak throughput in TFLOPS (2 FLOPs per MAC). The baseline
    /// configuration yields the paper's 29.5 peak TFLOPS (Table III).
    pub fn peak_tflops(&self) -> f64 {
        2.0 * self.peak_macs_per_sec() / 1e12
    }

    /// Converts a cycle count to seconds at this configuration's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.pe.rows == 0 || self.pe.cols == 0 {
            return Err(ConfigError::EmptyPeArray);
        }
        if self.freq_hz <= 0.0 || !self.freq_hz.is_finite() {
            return Err(ConfigError::InvalidFrequency(self.freq_hz));
        }
        if self.sram_bytes == 0 {
            return Err(ConfigError::NoSram);
        }
        if self.memory.bandwidth_bytes_per_sec <= 0.0
            || !self.memory.bandwidth_bytes_per_sec.is_finite()
        {
            return Err(ConfigError::InvalidBandwidth(
                self.memory.bandwidth_bytes_per_sec,
            ));
        }
        if self.drain_rows_per_cycle == 0 || self.drain_rows_per_cycle > self.pe.rows {
            return Err(ConfigError::InvalidDrainRate(self.drain_rows_per_cycle));
        }
        if self.rhs_fill_rows_per_cycle == 0 {
            return Err(ConfigError::InvalidFillRate(self.rhs_fill_rows_per_cycle));
        }
        if self.has_ppu && !self.dataflow.is_output_stationary() {
            return Err(ConfigError::PpuRequiresOutputStationary(self.dataflow));
        }
        Ok(())
    }
}

/// Builder for [`AcceleratorConfig`] (non-consuming, per Rust API
/// guidelines C-BUILDER).
#[derive(Clone, Debug)]
pub struct AcceleratorConfigBuilder {
    config: AcceleratorConfig,
}

impl AcceleratorConfigBuilder {
    /// Sets the PE array geometry.
    pub fn pe_array(&mut self, rows: u64, cols: u64) -> &mut Self {
        self.config.pe = PeArray::new(rows, cols);
        self
    }

    /// Sets the core clock in Hz.
    pub fn frequency_hz(&mut self, freq: f64) -> &mut Self {
        self.config.freq_hz = freq;
        self
    }

    /// Sets the on-chip SRAM capacity in bytes.
    pub fn sram_bytes(&mut self, bytes: u64) -> &mut Self {
        self.config.sram_bytes = bytes;
        self
    }

    /// Sets the off-chip memory configuration.
    pub fn memory(&mut self, memory: MemoryConfig) -> &mut Self {
        self.config.memory = memory;
        self
    }

    /// Sets the drain rate `R` (rows per cycle).
    pub fn drain_rows_per_cycle(&mut self, rows: u64) -> &mut Self {
        self.config.drain_rows_per_cycle = rows;
        self
    }

    /// Attaches or detaches the PPU.
    pub fn ppu(&mut self, enabled: bool) -> &mut Self {
        self.config.has_ppu = enabled;
        self
    }

    /// Enables or disables drain/compute overlap (shadow accumulators).
    pub fn drain_overlap(&mut self, enabled: bool) -> &mut Self {
        self.config.drain_overlap = enabled;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is inconsistent.
    pub fn build(&self) -> Result<AcceleratorConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config.clone())
    }
}

/// Validation, parameter-registry and design-point errors — the single
/// error type of the configuration layer.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// PE array has zero rows or columns.
    EmptyPeArray,
    /// Clock frequency is non-positive or non-finite.
    InvalidFrequency(f64),
    /// SRAM capacity is zero.
    NoSram,
    /// Memory bandwidth is non-positive or non-finite.
    InvalidBandwidth(f64),
    /// Drain rate is zero or exceeds the PE row count.
    InvalidDrainRate(u64),
    /// RHS fill rate is zero.
    InvalidFillRate(u64),
    /// A PPU was attached to a dataflow that cannot feed it.
    PpuRequiresOutputStationary(Dataflow),
    /// A parameter name not present in the registry
    /// ([`crate::params::param_names`]); the message lists every
    /// registered name.
    UnknownParameter(String),
    /// A parameter value string that does not parse as its type.
    InvalidValue {
        /// The registered parameter name.
        param: String,
        /// The offending input.
        value: String,
        /// What the parameter expects, e.g. `"an unsigned integer"`.
        expected: &'static str,
    },
    /// A design-point preset name that matches none of the known presets.
    UnknownPreset {
        /// The offending input.
        name: String,
        /// Comma-joined known preset names, for the message.
        available: String,
    },
    /// A design-point spec string that is not `preset[:k=v,...]`.
    MalformedSpec(String),
    /// A `--set`/`--sweep`-style assignment that is not `KEY=VALUE`
    /// (missing `=`, empty key, or an empty value list).
    MalformedAssignment {
        /// The offending input.
        spec: String,
        /// The expected shape, e.g. `"KEY=VALUE"` or `"KEY=V1,V2,..."`.
        usage: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyPeArray => write!(f, "PE array must have positive dimensions"),
            ConfigError::InvalidFrequency(v) => write!(f, "invalid clock frequency {v} Hz"),
            ConfigError::NoSram => write!(f, "SRAM capacity must be positive"),
            ConfigError::InvalidBandwidth(v) => write!(f, "invalid memory bandwidth {v} B/s"),
            ConfigError::InvalidDrainRate(v) => {
                write!(f, "drain rate {v} rows/cycle is out of range")
            }
            ConfigError::InvalidFillRate(v) => write!(f, "fill rate {v} rows/cycle is invalid"),
            ConfigError::PpuRequiresOutputStationary(d) => {
                write!(f, "PPU cannot be fed by the {d} dataflow")
            }
            ConfigError::UnknownParameter(name) => write!(
                f,
                "unknown parameter {name:?}; available: {}",
                crate::params::param_names().join(", ")
            ),
            ConfigError::InvalidValue {
                param,
                value,
                expected,
            } => write!(f, "parameter {param}: {value:?} is not {expected}"),
            ConfigError::UnknownPreset { name, available } => {
                write!(
                    f,
                    "unknown design-point preset {name:?}; available: {available}"
                )
            }
            ConfigError::MalformedSpec(spec) => write!(
                f,
                "malformed design-point spec {spec:?}; want preset[:key=value,...]"
            ),
            ConfigError::MalformedAssignment { spec, usage } => {
                write!(f, "malformed assignment {spec:?}; want {usage}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_ii() {
        let cfg = AcceleratorConfig::tpu_v3_like(Dataflow::WeightStationary);
        assert_eq!(cfg.pe, PeArray::new(128, 128));
        assert_eq!(cfg.freq_hz, 940.0e6);
        assert_eq!(cfg.sram_bytes, 16 << 20);
        assert_eq!(cfg.memory.channels, 16);
        assert_eq!(cfg.memory.access_latency_cycles, 100);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn peak_tflops_matches_table_iii() {
        // Table III: 16,384 MACs at 940 MHz → 29.5 peak TFLOPS (BF16/FP32).
        let cfg = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
        assert!(
            (cfg.peak_tflops() - 30.8).abs() < 1.5,
            "{}",
            cfg.peak_tflops()
        );
        assert!((cfg.peak_tflops() - 29.5).abs() / 29.5 < 0.05);
    }

    #[test]
    fn ws_has_no_ppu_by_default() {
        assert!(!AcceleratorConfig::tpu_v3_like(Dataflow::WeightStationary).has_ppu);
        assert!(AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct).has_ppu);
    }

    #[test]
    fn builder_rejects_bad_drain_rate() {
        let err = AcceleratorConfig::builder(Dataflow::OuterProduct)
            .drain_rows_per_cycle(4096)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidDrainRate(4096));
    }

    #[test]
    fn builder_rejects_ppu_on_ws() {
        let err = AcceleratorConfig::builder(Dataflow::WeightStationary)
            .ppu(true)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::PpuRequiresOutputStationary(_)));
    }

    #[test]
    fn bytes_per_cycle_at_table_ii_rates() {
        let cfg = AcceleratorConfig::tpu_v3_like(Dataflow::WeightStationary);
        let bpc = cfg.memory.bytes_per_cycle(cfg.freq_hz);
        // 450 GB/s at 940 MHz ≈ 478.7 bytes per cycle.
        assert!((bpc - 478.7).abs() < 1.0, "{bpc}");
    }
}
