//! The **parameter registry** over [`AcceleratorConfig`]: every Table II
//! knob under a stable string name with a typed get/set/parse/format
//! implementation.
//!
//! This is the substrate of the design-space exploration layer: the
//! `diva-report` CLI's `--set key=value` / `--sweep key=v1,v2` flags, the
//! preset+override design points in `diva-core`, and the `dse_*` scenario
//! family all resolve parameter names through this table, so a new
//! hardware question never needs new Rust code.
//!
//! Contract:
//!
//! * Names are stable (they appear in CLI invocations, scripts and JSON
//!   artifacts). The registered set is [`param_names`].
//! * [`set_param`] parses the *string* form and assigns; it never panics
//!   and reports unknown names / malformed values as [`ConfigError`]s
//!   (range constraints are enforced by [`AcceleratorConfig::validate`]
//!   when the config is built into a simulator).
//! * [`get_param`] → [`ParamValue::format`] → [`set_param`] round-trips
//!   bit-exactly: the formatted string parses back to the identical value.
//!
//! # Example
//!
//! ```
//! use diva_arch::{params, AcceleratorConfig, Dataflow};
//!
//! let mut cfg = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
//! params::set_param(&mut cfg, "drain_rows", "4").unwrap();
//! assert_eq!(cfg.drain_rows_per_cycle, 4);
//! assert_eq!(params::get_param(&cfg, "sram_mib").unwrap().format(), "16");
//! assert!(params::set_param(&mut cfg, "typo", "1").is_err());
//! ```

use std::fmt;

use crate::config::{AcceleratorConfig, ConfigError};
use crate::ops::Dataflow;

/// The typed value of one registered parameter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParamValue {
    /// An unsigned integer (PE geometry, channel counts, rates).
    U64(u64),
    /// A float in the parameter's display unit (MHz, MiB, GB/s).
    F64(f64),
    /// A boolean toggle (PPU, drain overlap).
    Bool(bool),
    /// A GEMM-engine dataflow.
    Flow(Dataflow),
}

impl ParamValue {
    /// The canonical string form; [`set_param`] parses it back to the
    /// bit-identical value (`f64` `Display` is round-trip precise).
    pub fn format(&self) -> String {
        match self {
            ParamValue::U64(v) => v.to_string(),
            ParamValue::F64(v) => format!("{v}"),
            ParamValue::Bool(v) => v.to_string(),
            ParamValue::Flow(d) => flow_slug(*d).to_string(),
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.format())
    }
}

/// The stable lowercase identifier of a dataflow (parseable by
/// [`set_param`] on `"dataflow"`).
fn flow_slug(d: Dataflow) -> &'static str {
    match d {
        Dataflow::WeightStationary => "ws",
        Dataflow::OutputStationary => "os",
        Dataflow::OuterProduct => "diva",
    }
}

/// One registry entry: stable name, human description, typed accessors.
pub struct ParamSpec {
    /// The stable parameter name (`"pe.rows"`, `"drain_rows"`, …).
    pub name: &'static str,
    /// One-line description shown by CLI help and docs.
    pub doc: &'static str,
    /// Reads the current value.
    pub get: fn(&AcceleratorConfig) -> ParamValue,
    /// Parses the string form and assigns (no range validation — that is
    /// [`AcceleratorConfig::validate`]'s job).
    pub set: fn(&mut AcceleratorConfig, &str) -> Result<(), ConfigError>,
}

macro_rules! invalid {
    ($name:expr, $value:expr, $expected:expr) => {
        ConfigError::InvalidValue {
            param: $name.to_string(),
            value: $value.to_string(),
            expected: $expected,
        }
    };
}

fn parse_u64(name: &'static str, s: &str) -> Result<u64, ConfigError> {
    s.trim()
        .parse::<u64>()
        .map_err(|_| invalid!(name, s, "an unsigned integer"))
}

fn parse_f64(name: &'static str, s: &str) -> Result<f64, ConfigError> {
    let v = s
        .trim()
        .parse::<f64>()
        .map_err(|_| invalid!(name, s, "a finite number"))?;
    if !v.is_finite() {
        return Err(invalid!(name, s, "a finite number"));
    }
    Ok(v)
}

fn parse_bool(name: &'static str, s: &str) -> Result<bool, ConfigError> {
    match s.trim().to_ascii_lowercase().as_str() {
        "true" | "1" | "yes" | "on" => Ok(true),
        "false" | "0" | "no" | "off" => Ok(false),
        _ => Err(invalid!(name, s, "a boolean (true/false)")),
    }
}

fn parse_flow(s: &str) -> Result<Dataflow, ConfigError> {
    match crate::norm_label(s).as_str() {
        "ws" | "weightstationary" => Ok(Dataflow::WeightStationary),
        "os" | "outputstationary" => Ok(Dataflow::OutputStationary),
        "diva" | "op" | "outerproduct" => Ok(Dataflow::OuterProduct),
        _ => Err(invalid!("dataflow", s, "one of ws, os, diva")),
    }
}

const MIB: f64 = (1u64 << 20) as f64;

/// The registry: every Table II knob of [`AcceleratorConfig`].
pub const PARAMS: &[ParamSpec] = &[
    ParamSpec {
        name: "pe.rows",
        doc: "PE array height PE_H (rows)",
        get: |c| ParamValue::U64(c.pe.rows),
        set: |c, s| {
            c.pe.rows = parse_u64("pe.rows", s)?;
            Ok(())
        },
    },
    ParamSpec {
        name: "pe.cols",
        doc: "PE array width PE_W (columns)",
        get: |c| ParamValue::U64(c.pe.cols),
        set: |c, s| {
            c.pe.cols = parse_u64("pe.cols", s)?;
            Ok(())
        },
    },
    ParamSpec {
        name: "freq_mhz",
        doc: "core clock in MHz (Table II: 940)",
        get: |c| ParamValue::F64(c.freq_hz / 1e6),
        set: |c, s| {
            c.freq_hz = parse_f64("freq_mhz", s)? * 1e6;
            Ok(())
        },
    },
    ParamSpec {
        name: "sram_mib",
        doc: "on-chip SRAM capacity in MiB (Table II: 16)",
        get: |c| ParamValue::F64(c.sram_bytes as f64 / MIB),
        set: |c, s| {
            let v = parse_f64("sram_mib", s)?;
            if v < 0.0 {
                return Err(invalid!("sram_mib", s, "a non-negative MiB count"));
            }
            c.sram_bytes = (v * MIB).round() as u64;
            Ok(())
        },
    },
    ParamSpec {
        name: "mem.bandwidth_gbps",
        doc: "aggregate DRAM bandwidth in GB/s (Table II: 450)",
        get: |c| ParamValue::F64(c.memory.bandwidth_bytes_per_sec / 1e9),
        set: |c, s| {
            c.memory.bandwidth_bytes_per_sec = parse_f64("mem.bandwidth_gbps", s)? * 1e9;
            Ok(())
        },
    },
    ParamSpec {
        name: "mem.channels",
        doc: "memory channel count (Table II: 16; bookkeeping only — the analytic \
              model prices aggregate bandwidth, so sweeping this alone is inert)",
        get: |c| ParamValue::U64(c.memory.channels),
        set: |c, s| {
            c.memory.channels = parse_u64("mem.channels", s)?;
            Ok(())
        },
    },
    ParamSpec {
        name: "mem.latency_cycles",
        doc: "DRAM access latency in core cycles (Table II: 100)",
        get: |c| ParamValue::U64(c.memory.access_latency_cycles),
        set: |c, s| {
            c.memory.access_latency_cycles = parse_u64("mem.latency_cycles", s)?;
            Ok(())
        },
    },
    ParamSpec {
        name: "dataflow",
        doc: "GEMM-engine dataflow: ws, os or diva (outer-product)",
        get: |c| ParamValue::Flow(c.dataflow),
        set: |c, s| {
            c.dataflow = parse_flow(s)?;
            Ok(())
        },
    },
    ParamSpec {
        name: "rhs_fill_rows",
        doc: "WS RHS fill rate in rows/cycle (Table I: 8)",
        get: |c| ParamValue::U64(c.rhs_fill_rows_per_cycle),
        set: |c, s| {
            c.rhs_fill_rows_per_cycle = parse_u64("rhs_fill_rows", s)?;
            Ok(())
        },
    },
    ParamSpec {
        name: "drain_rows",
        doc: "output drain rate R in rows/cycle (Section IV-C: 8)",
        get: |c| ParamValue::U64(c.drain_rows_per_cycle),
        set: |c, s| {
            c.drain_rows_per_cycle = parse_u64("drain_rows", s)?;
            Ok(())
        },
    },
    ParamSpec {
        name: "ppu",
        doc: "post-processing unit attached (requires an output-stationary dataflow)",
        get: |c| ParamValue::Bool(c.has_ppu),
        set: |c, s| {
            c.has_ppu = parse_bool("ppu", s)?;
            Ok(())
        },
    },
    ParamSpec {
        name: "drain_overlap",
        doc: "shadow-accumulator drain/compute overlap (ablation knob)",
        get: |c| ParamValue::Bool(c.drain_overlap),
        set: |c, s| {
            c.drain_overlap = parse_bool("drain_overlap", s)?;
            Ok(())
        },
    },
];

/// All registered parameter names, in registry order.
pub fn param_names() -> Vec<&'static str> {
    PARAMS.iter().map(|p| p.name).collect()
}

/// Whether `name` is a registered parameter.
pub fn is_param(name: &str) -> bool {
    PARAMS.iter().any(|p| p.name == name)
}

fn spec(name: &str) -> Result<&'static ParamSpec, ConfigError> {
    PARAMS
        .iter()
        .find(|p| p.name == name)
        .ok_or_else(|| ConfigError::UnknownParameter(name.to_string()))
}

/// Reads parameter `name` from `cfg`.
///
/// # Errors
///
/// [`ConfigError::UnknownParameter`] when `name` is not registered.
pub fn get_param(cfg: &AcceleratorConfig, name: &str) -> Result<ParamValue, ConfigError> {
    Ok((spec(name)?.get)(cfg))
}

/// Parses `value` and assigns parameter `name` on `cfg`. Range
/// constraints (zero-sized arrays, PPU-on-WS, …) are *not* checked here;
/// run [`AcceleratorConfig::validate`] — or build the config into a
/// simulator — afterwards.
///
/// # Errors
///
/// [`ConfigError::UnknownParameter`] for an unregistered name (the
/// message lists every registered one), [`ConfigError::InvalidValue`] for
/// an unparseable value.
pub fn set_param(cfg: &mut AcceleratorConfig, name: &str, value: &str) -> Result<(), ConfigError> {
    (spec(name)?.set)(cfg, value)
}

/// The canonical registry string of a configuration: every registered
/// parameter as `name=value` (canonical [`ParamValue::format`] form)
/// joined by commas, in registry order. Two configurations that agree on
/// every registered knob produce byte-identical keys, however they were
/// constructed — this is the design-space explorer's memoization key.
pub fn config_key(cfg: &AcceleratorConfig) -> String {
    let parts: Vec<String> = PARAMS
        .iter()
        .map(|p| format!("{}={}", p.name, (p.get)(cfg).format()))
        .collect();
    parts.join(",")
}

/// Applies `(name, value)` string pairs in order, then validates the
/// result — the one-call form behind preset+override design points and
/// the CLI's `--set`/`--sweep`.
///
/// # Errors
///
/// The first [`ConfigError`] from parsing, assignment or validation.
pub fn apply_overrides<K: AsRef<str>, V: AsRef<str>>(
    cfg: &mut AcceleratorConfig,
    overrides: &[(K, V)],
) -> Result<(), ConfigError> {
    for (name, value) in overrides {
        set_param(cfg, name.as_ref(), value.as_ref())?;
    }
    cfg.validate()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> AcceleratorConfig {
        AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct)
    }

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let mut names = param_names();
        assert_eq!(names.len(), 12);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12, "duplicate parameter names");
        for p in PARAMS {
            assert!(!p.doc.is_empty(), "{} has no doc", p.name);
        }
    }

    /// The satellite contract: for every registered name,
    /// set → get → format → parse round-trips bit-exactly.
    #[test]
    fn every_param_round_trips_bit_exactly() {
        let samples: &[(&str, &[&str])] = &[
            ("pe.rows", &["1", "64", "256"]),
            ("pe.cols", &["16", "128"]),
            ("freq_mhz", &["940", "700", "1537.5"]),
            ("sram_mib", &["16", "2.5", "64"]),
            ("mem.bandwidth_gbps", &["450", "225.5", "1800"]),
            ("mem.channels", &["1", "16", "32"]),
            ("mem.latency_cycles", &["100", "250"]),
            ("dataflow", &["ws", "os", "diva"]),
            ("rhs_fill_rows", &["8", "16"]),
            ("drain_rows", &["2", "8", "128"]),
            ("ppu", &["true", "false"]),
            ("drain_overlap", &["false", "true"]),
        ];
        // Every registered name has a sample set.
        assert_eq!(samples.len(), PARAMS.len());
        for (name, values) in samples {
            assert!(is_param(name), "{name} not registered");
            for v in *values {
                let mut cfg = base();
                set_param(&mut cfg, name, v).unwrap_or_else(|e| panic!("{name}={v}: {e}"));
                let got = get_param(&cfg, name).unwrap();
                let formatted = got.format();
                let mut cfg2 = base();
                set_param(&mut cfg2, name, &formatted).unwrap();
                let reparsed = get_param(&cfg2, name).unwrap();
                assert_eq!(
                    got, reparsed,
                    "{name}: {v:?} → {got:?} → {formatted:?} → {reparsed:?}"
                );
            }
        }
    }

    #[test]
    fn config_key_is_construction_independent() {
        // Same knobs, different construction paths → identical keys.
        let mut a = base();
        apply_overrides(&mut a, &[("sram_mib", "8"), ("drain_rows", "4")]).unwrap();
        let mut b = base();
        apply_overrides(&mut b, &[("drain_rows", "4"), ("sram_mib", "8")]).unwrap();
        assert_eq!(config_key(&a), config_key(&b));
        // A no-op override keeps the key identical to the base's.
        let mut c = base();
        apply_overrides(&mut c, &[("drain_rows", "8")]).unwrap();
        assert_eq!(config_key(&c), config_key(&base()));
        // Every registered knob appears, and a changed knob changes the key.
        let key = config_key(&a);
        for p in PARAMS {
            assert!(key.contains(p.name), "{key} missing {}", p.name);
        }
        assert_ne!(config_key(&a), config_key(&base()));
    }

    #[test]
    fn unknown_names_error_and_list_the_registry() {
        let mut cfg = base();
        let err = set_param(&mut cfg, "dram_rows", "8").unwrap_err();
        assert!(matches!(err, ConfigError::UnknownParameter(_)));
        let msg = err.to_string();
        assert!(msg.contains("dram_rows"), "{msg}");
        assert!(msg.contains("drain_rows"), "lists available names: {msg}");
        assert!(get_param(&cfg, "nope").is_err());
        // The failed set left the config untouched.
        assert_eq!(cfg, base());
    }

    #[test]
    fn malformed_values_are_config_errors_not_panics() {
        let mut cfg = base();
        for (name, bad) in [
            ("pe.rows", "-3"),
            ("pe.rows", "many"),
            ("freq_mhz", "fast"),
            ("freq_mhz", "inf"),
            ("sram_mib", "-1"),
            ("dataflow", "systolic"),
            ("ppu", "maybe"),
            ("drain_rows", "8.5"),
        ] {
            let err = set_param(&mut cfg, name, bad).unwrap_err();
            assert!(
                matches!(err, ConfigError::InvalidValue { .. }),
                "{name}={bad}: {err:?}"
            );
            assert!(err.to_string().contains(name), "{err}");
        }
    }

    #[test]
    fn out_of_range_values_fail_validation_not_assignment() {
        let mut cfg = base();
        set_param(&mut cfg, "drain_rows", "4096").unwrap();
        assert_eq!(
            cfg.validate().unwrap_err(),
            ConfigError::InvalidDrainRate(4096)
        );
        let mut cfg = base();
        assert!(apply_overrides(&mut cfg, &[("sram_mib", "0")]).is_err());
    }

    #[test]
    fn apply_overrides_rejects_inconsistent_combinations() {
        let mut cfg = base();
        // Switching DiVa's engine to WS while the PPU stays attached is
        // inconsistent; the validation step reports it.
        let err = apply_overrides(&mut cfg, &[("dataflow", "ws")]).unwrap_err();
        assert!(matches!(err, ConfigError::PpuRequiresOutputStationary(_)));
        // Dropping the PPU first makes the same retarget valid.
        let mut cfg = base();
        apply_overrides(&mut cfg, &[("ppu", "false"), ("dataflow", "ws")]).unwrap();
        assert_eq!(cfg.dataflow, Dataflow::WeightStationary);
    }

    #[test]
    fn unit_conversions_match_the_raw_fields() {
        let mut cfg = base();
        apply_overrides(
            &mut cfg,
            &[
                ("sram_mib", "8"),
                ("freq_mhz", "700"),
                ("mem.bandwidth_gbps", "900"),
                ("pe.rows", "64"),
                ("pe.cols", "64"),
            ],
        )
        .unwrap();
        assert_eq!(cfg.sram_bytes, 8 << 20);
        assert_eq!(cfg.freq_hz, 700.0e6);
        assert_eq!(cfg.memory.bandwidth_bytes_per_sec, 900.0e9);
        assert_eq!(cfg.pe.macs(), 4096);
    }
}
