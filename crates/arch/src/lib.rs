//! Hardware architecture description for the DiVa reproduction.
//!
//! This crate is the shared vocabulary of the simulator stack: PE-array
//! geometry, dataflows (paper Figure 3 / Section IV), memory-system
//! configuration (paper Table II), SRAM bandwidth requirements (paper
//! Table I), GEMM shapes (paper Figure 6) and the taxonomy of training-step
//! operations whose latencies the paper breaks down (Figures 5 and 14).
//!
//! # Example
//!
//! ```
//! use diva_arch::{AcceleratorConfig, Dataflow};
//!
//! let cfg = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
//! assert_eq!(cfg.pe.rows, 128);
//! assert_eq!(cfg.pe.macs(), 16_384);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod config;
mod gemm;
mod ops;

pub use bandwidth::{sram_bandwidth, SramBandwidth};
pub use config::{AcceleratorConfig, AcceleratorConfigBuilder, ConfigError, MemoryConfig, PeArray};
pub use gemm::{DataType, GemmShape};
pub use ops::{Dataflow, Phase, TrainingOp, TrainingOpKind, VectorOpKind};
