//! Hardware architecture description for the DiVa reproduction.
//!
//! This crate is the shared vocabulary of the simulator stack: PE-array
//! geometry, dataflows (paper Figure 3 / Section IV), memory-system
//! configuration (paper Table II), SRAM bandwidth requirements (paper
//! Table I), GEMM shapes (paper Figure 6) and the taxonomy of training-step
//! operations whose latencies the paper breaks down (Figures 5 and 14).
//!
//! # Example
//!
//! ```
//! use diva_arch::{AcceleratorConfig, Dataflow};
//!
//! let cfg = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
//! assert_eq!(cfg.pe.rows, 128);
//! assert_eq!(cfg.pe.macs(), 16_384);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod config;
mod gemm;
mod ops;
pub mod params;

pub use bandwidth::{sram_bandwidth, SramBandwidth};
pub use config::{AcceleratorConfig, AcceleratorConfigBuilder, ConfigError, MemoryConfig, PeArray};
pub use gemm::{DataType, GemmShape};
pub use ops::{Dataflow, Phase, TrainingOp, TrainingOpKind, VectorOpKind};
pub use params::{ParamSpec, ParamValue};

/// Normalizes a label for lenient matching: lowercased ASCII
/// alphanumerics only, so `"DiVa w/o PPU"` → `"divawoppu"`. The single
/// implementation behind dataflow/preset parsing here and in
/// `diva_core`, and the scenario layer's CLI label filters.
pub fn norm_label(label: &str) -> String {
    label
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}
