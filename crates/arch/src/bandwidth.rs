//! On-chip SRAM bandwidth requirements per dataflow — the paper's Table I.
//!
//! All figures are steady-state bytes per clock for a `PE_H × PE_W` array,
//! assuming 16-bit (2 B) input operands and 32-bit (4 B) outputs:
//!
//! | operand | Systolic WS         | Systolic OS & Outer-product |
//! |---------|---------------------|------------------------------|
//! | LHS in  | `PE_H × 2B`         | `PE_H × 2B`                  |
//! | RHS in  | `PE_W × 8 × 2B`     | `PE_W × 2B`                  |
//! | Output  | `PE_W × 4B`         | `PE_W × 8 × 4B`              |

use crate::config::PeArray;
use crate::ops::Dataflow;

/// SRAM read/write bandwidth requirements in bytes per clock (paper Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SramBandwidth {
    /// LHS input-matrix read bandwidth.
    pub lhs_read: u64,
    /// RHS input-matrix read bandwidth.
    pub rhs_read: u64,
    /// Output write bandwidth.
    pub output_write: u64,
}

impl SramBandwidth {
    /// Total bytes per clock.
    pub fn total(&self) -> u64 {
        self.lhs_read + self.rhs_read + self.output_write
    }
}

/// Computes the Table I SRAM bandwidth requirement for a dataflow.
///
/// `fill_rows` is the WS RHS fill rate (8 for TPUv3); `drain_rows` is the
/// OS/outer-product output drain rate `R` (8 for DiVa).
pub fn sram_bandwidth(
    dataflow: Dataflow,
    pe: PeArray,
    fill_rows: u64,
    drain_rows: u64,
) -> SramBandwidth {
    const IN_BYTES: u64 = 2; // BF16 operands
    const OUT_BYTES: u64 = 4; // FP32 accumulator outputs
    match dataflow {
        Dataflow::WeightStationary => SramBandwidth {
            lhs_read: pe.rows * IN_BYTES,
            rhs_read: pe.cols * fill_rows * IN_BYTES,
            output_write: pe.cols * OUT_BYTES,
        },
        Dataflow::OutputStationary | Dataflow::OuterProduct => SramBandwidth {
            lhs_read: pe.rows * IN_BYTES,
            rhs_read: pe.cols * IN_BYTES,
            output_write: pe.cols * drain_rows * OUT_BYTES,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PE: PeArray = PeArray {
        rows: 128,
        cols: 128,
    };

    #[test]
    fn ws_matches_table_i() {
        let bw = sram_bandwidth(Dataflow::WeightStationary, PE, 8, 8);
        assert_eq!(bw.lhs_read, 128 * 2);
        assert_eq!(bw.rhs_read, 128 * 8 * 2);
        assert_eq!(bw.output_write, 128 * 4);
        // Table I total: (2·PE_H + 20·PE_W) bytes.
        assert_eq!(bw.total(), 2 * 128 + 20 * 128);
    }

    #[test]
    fn os_and_outer_product_match_table_i() {
        for df in [Dataflow::OutputStationary, Dataflow::OuterProduct] {
            let bw = sram_bandwidth(df, PE, 8, 8);
            assert_eq!(bw.lhs_read, 128 * 2);
            assert_eq!(bw.rhs_read, 128 * 2);
            assert_eq!(bw.output_write, 128 * 8 * 4);
            // Table I total: (2·PE_H + 34·PE_W) bytes.
            assert_eq!(bw.total(), 2 * 128 + 34 * 128);
        }
    }

    #[test]
    fn outer_product_needs_more_sram_bandwidth_than_ws() {
        // The design-overhead trade-off the paper quantifies in IV-D.
        let ws = sram_bandwidth(Dataflow::WeightStationary, PE, 8, 8);
        let op = sram_bandwidth(Dataflow::OuterProduct, PE, 8, 8);
        assert!(op.total() > ws.total());
    }
}
