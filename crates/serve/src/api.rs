//! Typed request/response layer: flat-JSON request bodies in, canonical
//! cache keys and deterministic JSON documents out.
//!
//! Request bodies follow the workspace's flat-JSON convention (one
//! object, string and numeric values — the same shape
//! [`diva_bench::perf::parse_flat_json_object`] scans), so `/run` bodies
//! read like the `diva-report` command line they replace:
//!
//! ```json
//! {"scenario": "fig13", "models": "mobilenet,squeezenet",
//!  "points": "ws,diva", "set.sram_mib": "8", "sweep.drain_rows": "2,4"}
//! ```
//!
//! `/run` responses are produced by the same
//! [`scenario::run_with`] → [`json::to_json`] pipeline `diva-report
//! --json` writes, so a served document is byte-identical to the CLI
//! artifact for the same cell — the property the memo cache's perfect-hit
//! semantics and the e2e suite both lean on.

use diva_bench::explore::{
    self as explore_engine, ExploreConfig, Knob, Objective, SearchSpace, Strategy, Workload,
};
use diva_bench::perf::{json_string, parse_flat_json_object};
use diva_bench::scenario::{
    self, compare::compare_docs, json, norm_label, RunOptions, ScenarioError,
};
use diva_dp::{answer_epsilon_query, AccountError, AccountantKind, EpsilonAnswer, EpsilonQuery};
use std::fmt::Write as _;

use crate::http::HttpError;

/// One API-level failure: a status code, a stable kind slug, and the
/// user-facing message. Rendered as `{"error": kind, "message": ...}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status.
    pub status: u16,
    /// Stable machine-readable slug (`"unknown-scenario"`, `"config"`...).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
}

impl ApiError {
    /// Builds an error.
    pub fn new(status: u16, kind: &str, message: impl Into<String>) -> Self {
        Self {
            status,
            kind: kind.to_string(),
            message: message.into(),
        }
    }

    /// A 400 with kind `"bad-request"`.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, "bad-request", message)
    }

    /// The JSON error body.
    pub fn body(&self) -> Vec<u8> {
        format!(
            "{{\"error\": {}, \"message\": {}}}\n",
            json_string(&self.kind),
            json_string(&self.message)
        )
        .into_bytes()
    }

    /// Maps the scenario engine's taxonomy onto statuses: unknown
    /// scenario is the caller's 404, malformed options/config are 400s,
    /// everything else (cells failed without `keep_going`, journal, io)
    /// is a 500 that still names the failure kind.
    pub fn from_scenario(err: &ScenarioError) -> Self {
        let (status, kind) = match err {
            ScenarioError::UnknownScenario { .. } => (404, "unknown-scenario"),
            ScenarioError::InvalidOptions(_) => (400, "invalid-options"),
            ScenarioError::Config(_) => (400, "config"),
            ScenarioError::Definition(_) => (500, "definition"),
            ScenarioError::CellsFailed { .. } => (500, "cells-failed"),
            ScenarioError::Journal(_) => (500, "journal"),
            ScenarioError::Io { .. } => (500, "io"),
            ScenarioError::Parse(_) => (500, "parse"),
        };
        Self::new(status, kind, err.to_string())
    }

    /// Maps accounting errors: every one is a caller error (bad q, σ, δ,
    /// or an unanswerable query) — 400 with kind `"account"`.
    pub fn from_account(err: &AccountError) -> Self {
        Self::new(400, "account", err.to_string())
    }

    /// Maps protocol-level failures onto their status/kind.
    pub fn from_http(err: &HttpError) -> Self {
        Self::new(err.status(), err.kind(), err.message())
    }
}

/// How a `/run` request wants to be executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Let the server decide by estimated grid size (the default).
    Auto,
    /// Force a synchronous response.
    Sync,
    /// Force `202 + /jobs/{id}`.
    Job,
}

/// A parsed `/run` request: the canonical scenario name, runner options,
/// and execution mode.
#[derive(Clone, Debug)]
pub struct RunRequest {
    /// Registry-canonical scenario name.
    pub scenario: String,
    /// The options handed to [`scenario::run_with`].
    pub opts: RunOptions,
    /// Sync/job routing.
    pub mode: RunMode,
}

fn split_list(raw: &str) -> Vec<String> {
    raw.split([',', '|'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn config_error(e: &diva_arch::ConfigError) -> ApiError {
    ApiError::new(400, "config", diva_core::spec::config_message(e))
}

/// Formats a numeric body value the way its JSON literal reads (integers
/// without a trailing `.0`).
fn num_string(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parses a `/run` body.
///
/// # Errors
///
/// 400 for malformed JSON, unknown fields, malformed `set.*`/`sweep.*`
/// assignments or unregistered parameter names (the same message the CLI
/// prints); 404 for an unknown scenario.
pub fn parse_run_request(body: &[u8]) -> Result<RunRequest, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    let record = parse_flat_json_object(text)
        .map_err(|e| ApiError::bad_request(format!("malformed JSON body: {e}")))?;

    let mut scenario_name: Option<String> = None;
    let mut opts = RunOptions::default();
    let mut mode = RunMode::Auto;

    for (key, value) in &record.tags {
        match key.as_str() {
            "scenario" => scenario_name = Some(value.clone()),
            "models" => opts.filters.push(("model".to_string(), split_list(value))),
            "points" => opts.filters.push(("point".to_string(), split_list(value))),
            "algs" => opts
                .filters
                .push(("algorithm".to_string(), split_list(value))),
            "batch" => {
                opts.batch_override = Some(parse_batches(value)?);
            }
            "mode" => {
                mode = match value.as_str() {
                    "auto" => RunMode::Auto,
                    "sync" => RunMode::Sync,
                    "job" => RunMode::Job,
                    other => {
                        return Err(ApiError::bad_request(format!(
                            "unknown mode {other:?} (want auto, sync or job)"
                        )))
                    }
                };
            }
            "keep_going" => {
                opts.keep_going = match value.as_str() {
                    "true" | "yes" | "on" | "1" => true,
                    "false" | "no" | "off" | "0" => false,
                    other => {
                        return Err(ApiError::bad_request(format!(
                            "keep_going wants a boolean, got {other:?}"
                        )))
                    }
                };
            }
            _ if key.starts_with("axis.") => {
                let axis = &key["axis.".len()..];
                if axis.is_empty() {
                    return Err(ApiError::bad_request("axis.NAME wants a non-empty NAME"));
                }
                opts.filters.push((axis.to_string(), split_list(value)));
            }
            _ if key.starts_with("set.") => {
                let spec = format!("{}={}", &key["set.".len()..], value);
                let (k, v) =
                    diva_core::spec::parse_set_spec(&spec).map_err(|e| config_error(&e))?;
                opts.set_overrides.push((k, v));
            }
            _ if key.starts_with("sweep.") => {
                let spec = format!("{}={}", &key["sweep.".len()..], value);
                let (k, vs) =
                    diva_core::spec::parse_sweep_spec(&spec).map_err(|e| config_error(&e))?;
                opts.sweeps.push((k, vs));
            }
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown field {other:?}; known fields: scenario, models, points, algs, \
                     axis.NAME, batch, set.KEY, sweep.KEY, keep_going, max_retries, mode"
                )))
            }
        }
    }
    for (key, value) in &record.metrics {
        match key.as_str() {
            "batch" => opts.batch_override = Some(parse_batches(&num_string(*value))?),
            "max_retries" => {
                if *value < 0.0 || value.fract() != 0.0 {
                    return Err(ApiError::bad_request(format!(
                        "max_retries wants a non-negative integer, got {value}"
                    )));
                }
                opts.max_retries = *value as u32;
            }
            "keep_going" => opts.keep_going = *value != 0.0,
            _ if key.starts_with("set.") => {
                let spec = format!("{}={}", &key["set.".len()..], num_string(*value));
                let (k, v) =
                    diva_core::spec::parse_set_spec(&spec).map_err(|e| config_error(&e))?;
                opts.set_overrides.push((k, v));
            }
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown numeric field {other:?}"
                )))
            }
        }
    }

    let requested = scenario_name
        .ok_or_else(|| ApiError::bad_request("missing required field \"scenario\""))?;
    // Canonicalize through the registry so differently-spelled names
    // share one cache entry; unknown names are the 404.
    let info = scenario::find(&requested).ok_or_else(|| {
        ApiError::from_scenario(&ScenarioError::UnknownScenario {
            name: requested.clone(),
            available: scenario::list().iter().map(|s| s.to_string()).collect(),
        })
    })?;
    Ok(RunRequest {
        scenario: info.name.to_string(),
        opts,
        mode,
    })
}

fn parse_batches(raw: &str) -> Result<Vec<u64>, ApiError> {
    let batches: Result<Vec<u64>, _> = split_list(raw).iter().map(|b| b.parse()).collect();
    let batches =
        batches.map_err(|e| ApiError::bad_request(format!("batch wants integers: {e}")))?;
    if batches.is_empty() || batches.contains(&0) {
        return Err(ApiError::bad_request("batch wants positive integers"));
    }
    Ok(batches)
}

/// The canonical cache key of a `/run` request: scenario plus every
/// result-shaping option, in option order (filter order is semantic —
/// the runner honors the first filter per axis — so keys preserve it).
/// `mode` is excluded: sync and job execution share one cache entry.
pub fn run_cache_key(req: &RunRequest) -> String {
    let mut key = format!("run;scenario={}", req.scenario);
    for (axis, labels) in &req.opts.filters {
        let _ = write!(key, ";filter:{axis}={}", labels.join(","));
    }
    if let Some(batches) = &req.opts.batch_override {
        let joined: Vec<String> = batches.iter().map(u64::to_string).collect();
        let _ = write!(key, ";batch={}", joined.join(","));
    }
    for (k, v) in &req.opts.set_overrides {
        let _ = write!(key, ";set:{k}={v}");
    }
    for (k, vs) in &req.opts.sweeps {
        let _ = write!(key, ";sweep:{k}={}", vs.join(","));
    }
    if req.opts.keep_going {
        key.push_str(";keep_going");
    }
    if req.opts.max_retries > 0 {
        let _ = write!(key, ";max_retries={}", req.opts.max_retries);
    }
    key
}

/// Estimates the grid size of `req` without evaluating anything: the
/// product of per-axis visible label counts (after the first filter per
/// axis, mirroring the runner), the batch override, and injected sweep
/// axes. Used to route grid-sized requests to the job queue.
pub fn estimate_cells(req: &RunRequest) -> usize {
    let Some(info) = scenario::find(&req.scenario) else {
        return 0;
    };
    let exp = (info.build)();
    let mut cells: usize = 1;
    for axis in &exp.axes {
        let batch_override = req
            .opts
            .batch_override
            .as_ref()
            .filter(|_| axis.name == "batch");
        let count = if let Some(batches) = batch_override {
            batches.len()
        } else if let Some((_, labels)) = req.opts.filters.iter().find(|(a, _)| *a == axis.name) {
            let wanted: Vec<String> = labels.iter().map(|l| norm_label(l)).collect();
            axis.values
                .iter()
                .filter(|v| wanted.contains(&norm_label(&v.label)))
                .count()
        } else {
            axis.values.len()
        };
        cells = cells.saturating_mul(count);
    }
    for (_, values) in &req.opts.sweeps {
        cells = cells.saturating_mul(values.len());
    }
    cells
}

/// Runs the scenario and renders the `diva-scenario/v1` document —
/// byte-identical to what `diva-report --json` writes for the same
/// options.
///
/// # Errors
///
/// The mapped [`ScenarioError`] taxonomy (see
/// [`ApiError::from_scenario`]).
pub fn execute_run(req: &RunRequest) -> Result<Vec<u8>, ApiError> {
    let result =
        scenario::run_with(&req.scenario, &req.opts).map_err(|e| ApiError::from_scenario(&e))?;
    Ok(json::to_json(&result).into_bytes())
}

/// A parsed `/explore` request: the search handed to the design-space
/// explorer, plus execution routing.
#[derive(Clone, Debug)]
pub struct ExploreRequest {
    /// The search [`explore_engine::explore`] runs. Served searches never
    /// journal (`journal_dir` stays `None`) — resumability belongs to the
    /// CLI; the server's idempotence comes from the memo cache instead.
    pub config: ExploreConfig,
    /// Sync/job routing. Defaults to [`RunMode::Job`]: a search is
    /// grid-sized by construction, so `/explore` answers `202 +
    /// /jobs/{id}` unless the body forces `"mode": "sync"`.
    pub mode: RunMode,
}

/// Parses an `/explore` body. All fields are optional — an empty object
/// runs the default 6-knob search around the DiVa preset.
///
/// String fields: `strategy` (`grid`/`random`/`halving`), `objectives`
/// (comma list of `latency`/`energy`/`area`), `workloads` (comma list of
/// `model@batch`), `base` (preset name), `mode`, and repeatable
/// `knob.NAME` entries (`"knob.pe.rows": "64|128"`) which together
/// replace the default knob grid. Numeric fields: `budget`, `seed`,
/// `batch_size`.
///
/// # Errors
///
/// 400 for malformed JSON, unknown fields, unknown strategy/objective/
/// workload/preset names, unregistered knob parameters, or non-integer
/// numeric fields.
pub fn parse_explore_request(body: &[u8]) -> Result<ExploreRequest, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    let record = parse_flat_json_object(text)
        .map_err(|e| ApiError::bad_request(format!("malformed JSON body: {e}")))?;

    let mut config = ExploreConfig::new(SearchSpace::default_space());
    let mut knobs: Vec<Knob> = Vec::new();
    let mut mode = RunMode::Job;

    for (key, value) in &record.tags {
        match key.as_str() {
            "strategy" => {
                config.strategy = Strategy::parse(value).map_err(ApiError::bad_request)?
            }
            "objectives" => {
                config.objectives = Objective::parse_list(value).map_err(ApiError::bad_request)?;
            }
            "workloads" => {
                let parsed: Result<Vec<Workload>, String> = split_list(value)
                    .iter()
                    .map(|w| Workload::parse(w))
                    .collect();
                config.workloads = parsed.map_err(ApiError::bad_request)?;
                if config.workloads.is_empty() {
                    return Err(ApiError::bad_request(
                        "workloads wants at least one model@batch",
                    ));
                }
            }
            "base" => {
                config.space.base =
                    diva_core::DesignPoint::parse(value).map_err(|e| config_error(&e))?;
            }
            "mode" => {
                mode = match value.as_str() {
                    "sync" => RunMode::Sync,
                    "job" => RunMode::Job,
                    other => {
                        return Err(ApiError::bad_request(format!(
                            "unknown mode {other:?} (want sync or job)"
                        )))
                    }
                };
            }
            _ if key.starts_with("knob.") => {
                let name = &key["knob.".len()..];
                knobs.push(Knob::parse(&format!("{name}={value}")).map_err(ApiError::bad_request)?);
            }
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown field {other:?}; known fields: strategy, budget, seed, \
                     batch_size, objectives, workloads, base, knob.NAME, mode"
                )))
            }
        }
    }
    let int_field = |value: f64, name: &str| -> Result<u64, ApiError> {
        if value < 0.0 || value.fract() != 0.0 {
            return Err(ApiError::bad_request(format!(
                "{name} wants a non-negative integer, got {value}"
            )));
        }
        Ok(value as u64)
    };
    for (key, value) in &record.metrics {
        match key.as_str() {
            "budget" => config.budget = int_field(*value, "budget")? as usize,
            "seed" => config.seed = int_field(*value, "seed")?,
            "batch_size" => config.batch_size = int_field(*value, "batch_size")? as usize,
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown numeric field {other:?}; known numeric fields: budget, seed, \
                     batch_size"
                )))
            }
        }
    }
    if !knobs.is_empty() {
        config.space.knobs = knobs;
    }
    Ok(ExploreRequest { config, mode })
}

/// The canonical cache key of an `/explore` request: everything that
/// shapes the candidate sequence or a point's metrics, in a fixed field
/// order (knob order is semantic — it fixes the grid odometer and the
/// random choice order — so keys preserve it). `mode` is excluded: sync
/// and job execution share one cache entry.
pub fn explore_cache_key(req: &ExploreRequest) -> String {
    let cfg = &req.config;
    let mut key = format!(
        "explore;base={};strategy={};seed={};budget={};batch={}",
        cfg.space.base.label(),
        cfg.strategy.slug(),
        cfg.seed,
        cfg.budget,
        cfg.batch_size
    );
    for k in &cfg.space.knobs {
        let _ = write!(key, ";knob:{}={}", k.param, k.values.join("|"));
    }
    for w in &cfg.workloads {
        let _ = write!(key, ";workload={}", w.spec_string());
    }
    for o in &cfg.objectives {
        let _ = write!(key, ";objective={}", o.metric());
    }
    key
}

/// Runs the search and renders the `diva-explore/v1` frontier document —
/// byte-identical to what `diva-explore --json` writes for the same
/// configuration.
///
/// # Errors
///
/// The mapped [`ScenarioError`] taxonomy (an ill-formed search is a 400
/// `invalid-options`).
pub fn execute_explore(req: &ExploreRequest) -> Result<Vec<u8>, ApiError> {
    let result = explore_engine::explore(&req.config).map_err(|e| ApiError::from_scenario(&e))?;
    Ok(explore_engine::render::render_json(&result).into_bytes())
}

/// A parsed `/epsilon` request: the base query evaluated under one or
/// more accountants.
#[derive(Clone, Debug, PartialEq)]
pub struct EpsilonRequest {
    /// The accountants to answer under, in response order.
    pub kinds: Vec<AccountantKind>,
    /// Poisson sampling rate q.
    pub sampling_rate: f64,
    /// Noise multiplier σ.
    pub noise_multiplier: f64,
    /// Composed step count.
    pub steps: u64,
    /// The δ target.
    pub delta: f64,
    /// Optional ε-vs-steps curve points.
    pub step_counts: Vec<u64>,
}

/// Parses an `/epsilon` body: `q`, `sigma` and `steps` are required
/// numbers; `delta` defaults to `1e-5`; `accountant` defaults to
/// `"pld,rdp"` (both engines); `step_counts` is an optional list.
///
/// # Errors
///
/// 400 for malformed JSON, missing/invalid fields or unknown accountant
/// names.
pub fn parse_epsilon_request(body: &[u8]) -> Result<EpsilonRequest, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    let record = parse_flat_json_object(text)
        .map_err(|e| ApiError::bad_request(format!("malformed JSON body: {e}")))?;
    let known_tags = ["accountant", "step_counts"];
    let known_metrics = ["q", "sigma", "steps", "delta"];
    for (key, _) in &record.tags {
        if !known_tags.contains(&key.as_str()) {
            return Err(ApiError::bad_request(format!(
                "unknown field {key:?}; known fields: q, sigma, steps, delta, accountant, \
                 step_counts"
            )));
        }
    }
    for (key, _) in &record.metrics {
        if !known_metrics.contains(&key.as_str()) {
            return Err(ApiError::bad_request(format!(
                "unknown numeric field {key:?}"
            )));
        }
    }
    let need = |key: &str| {
        record
            .metric_value(key)
            .ok_or_else(|| ApiError::bad_request(format!("missing required number {key:?}")))
    };
    let steps_raw = need("steps")?;
    if steps_raw < 1.0 || steps_raw.fract() != 0.0 {
        return Err(ApiError::bad_request(format!(
            "steps wants a positive integer, got {steps_raw}"
        )));
    }
    let kinds = match record.tag_value("accountant") {
        None => vec![AccountantKind::Pld, AccountantKind::Rdp],
        Some(raw) => {
            let mut kinds = Vec::new();
            for name in split_list(raw) {
                kinds.push(AccountantKind::parse(&name).map_err(|e| ApiError::from_account(&e))?);
            }
            if kinds.is_empty() {
                return Err(ApiError::bad_request("accountant wants at least one name"));
            }
            kinds
        }
    };
    let step_counts = match record.tag_value("step_counts") {
        None => Vec::new(),
        Some(raw) => {
            let parsed: Result<Vec<u64>, _> = split_list(raw).iter().map(|v| v.parse()).collect();
            parsed.map_err(|e| ApiError::bad_request(format!("step_counts wants integers: {e}")))?
        }
    };
    Ok(EpsilonRequest {
        kinds,
        sampling_rate: need("q")?,
        noise_multiplier: need("sigma")?,
        steps: steps_raw as u64,
        delta: record.metric_value("delta").unwrap_or(1e-5),
        step_counts,
    })
}

/// The canonical cache key of an `/epsilon` request.
pub fn epsilon_cache_key(req: &EpsilonRequest) -> String {
    let kinds: Vec<&str> = req.kinds.iter().map(|k| k.label()).collect();
    let counts: Vec<String> = req.step_counts.iter().map(u64::to_string).collect();
    format!(
        "epsilon;kinds={};q={};sigma={};steps={};delta={};counts={}",
        kinds.join(","),
        req.sampling_rate,
        req.noise_multiplier,
        req.steps,
        req.delta,
        counts.join(",")
    )
}

/// Answers the query under every requested accountant and renders the
/// `diva-epsilon/v1` document (flat records, parseable by
/// [`diva_bench::perf::parse_perf_json`]).
///
/// # Errors
///
/// 400 with kind `"account"` carrying the accountant's typed message.
pub fn execute_epsilon(req: &EpsilonRequest) -> Result<Vec<u8>, ApiError> {
    let mut answers: Vec<(AccountantKind, EpsilonAnswer)> = Vec::new();
    for &kind in &req.kinds {
        let answer = answer_epsilon_query(&EpsilonQuery {
            accountant: kind,
            sampling_rate: req.sampling_rate,
            noise_multiplier: req.noise_multiplier,
            steps: req.steps,
            delta: req.delta,
            step_counts: req.step_counts.clone(),
        })
        .map_err(|e| ApiError::from_account(&e))?;
        answers.push((kind, answer));
    }
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"diva-epsilon/v1\",");
    let _ = writeln!(out, "  \"q\": {},", req.sampling_rate);
    let _ = writeln!(out, "  \"sigma\": {},", req.noise_multiplier);
    let _ = writeln!(out, "  \"steps\": {},", req.steps);
    let _ = writeln!(out, "  \"delta\": {},", req.delta);
    out.push_str("  \"records\": [\n");
    let mut rows: Vec<String> = Vec::new();
    for (kind, answer) in &answers {
        rows.push(format!(
            "    {{\"name\": \"epsilon\", \"accountant\": {}, \"epsilon\": {}}}",
            json_string(kind.label()),
            answer.epsilon
        ));
        for (count, eps) in &answer.curve {
            rows.push(format!(
                "    {{\"name\": \"epsilon_curve\", \"accountant\": {}, \"steps\": {count}, \
                 \"epsilon\": {eps}}}",
                json_string(kind.label()),
            ));
        }
    }
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    Ok(out.into_bytes())
}

/// Parses and gates a `/compare` body: two `diva-scenario/v1` documents
/// joined by a `\n---\n` separator line, gated at `tolerance`. Returns
/// `(passed, rendered report document)`.
///
/// # Errors
///
/// 400 for a missing separator or unparseable documents.
pub fn execute_compare(body: &[u8], tolerance: f64) -> Result<(bool, Vec<u8>), ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    let (doc_a, doc_b) = text.split_once("\n---\n").ok_or_else(|| {
        ApiError::bad_request(
            "compare wants two diva-scenario/v1 documents separated by a \"---\" line",
        )
    })?;
    let report = compare_docs(doc_a, doc_b, tolerance)
        .map_err(|e| ApiError::new(400, "parse", format!("parse error: {e}")))?;
    let passed = report.passed();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"diva-compare/v1\",");
    let _ = writeln!(out, "  \"scenario\": {},", json_string(&report.scenario));
    let _ = writeln!(out, "  \"passed\": {passed},");
    let _ = writeln!(out, "  \"matched\": {},", report.matched);
    let _ = writeln!(out, "  \"violations\": {},", report.violations().len());
    let _ = writeln!(out, "  \"report\": {}", json_string(&report.render()));
    out.push_str("}\n");
    Ok((passed, out.into_bytes()))
}

/// Renders the `/scenarios` document: every registry entry with its axis
/// shape and summary, then every `--set`/`--sweep` parameter with its
/// DiVa-preset default — one flat `records` array. The registry is
/// static, so the server builds this once.
pub fn scenarios_document() -> Vec<u8> {
    let mut rows: Vec<String> = Vec::new();
    for info in scenario::registry::REGISTRY {
        let exp = (info.build)();
        let axes: Vec<String> = exp
            .axes
            .iter()
            .map(|a| format!("{}({})", a.name, a.values.len()))
            .collect();
        rows.push(format!(
            "    {{\"name\": {}, \"kind\": \"scenario\", \"axes\": {}, \"summary\": {}}}",
            json_string(info.name),
            json_string(&axes.join(" x ")),
            json_string(info.summary)
        ));
    }
    let default = diva_core::DesignPoint::Diva.config();
    for p in diva_arch::params::PARAMS {
        rows.push(format!(
            "    {{\"name\": {}, \"kind\": \"param\", \"default\": {}, \"doc\": {}}}",
            json_string(p.name),
            json_string(&(p.get)(&default).format()),
            json_string(p.doc)
        ));
    }
    let mut out = String::from("{\n  \"schema\": \"diva-scenarios/v1\",\n  \"records\": [\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_parses_filters_overrides_and_mode() {
        let req = parse_run_request(
            br#"{"scenario": "FIG13", "models": "mobilenet,squeezenet", "points": "ws|diva",
                 "axis.algorithm": "dp-sgd-r", "batch": "32,64", "set.sram_mib": "8",
                 "sweep.drain_rows": "2,4", "keep_going": "true", "max_retries": 1,
                 "mode": "sync"}"#,
        )
        .unwrap();
        assert_eq!(req.scenario, "fig13", "canonicalized through the registry");
        assert_eq!(req.mode, RunMode::Sync);
        assert_eq!(req.opts.filters.len(), 3);
        assert_eq!(req.opts.filters[0].1, vec!["mobilenet", "squeezenet"]);
        assert_eq!(req.opts.filters[1].1, vec!["ws", "diva"]);
        assert_eq!(req.opts.batch_override, Some(vec![32, 64]));
        assert_eq!(
            req.opts.set_overrides,
            vec![("sram_mib".to_string(), "8".to_string())]
        );
        assert_eq!(req.opts.sweeps[0].0, "drain_rows");
        assert!(req.opts.keep_going);
        assert_eq!(req.opts.max_retries, 1);
    }

    #[test]
    fn run_request_errors_are_typed() {
        let err = parse_run_request(b"{\"models\": \"x\"}").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("scenario"));

        let err = parse_run_request(b"{\"scenario\": \"nope\"}").unwrap_err();
        assert_eq!((err.status, err.kind.as_str()), (404, "unknown-scenario"));
        assert!(err.message.contains("fig13"), "lists the registry");

        let err =
            parse_run_request(b"{\"scenario\": \"fig13\", \"set.sram_gb\": \"8\"}").unwrap_err();
        assert_eq!((err.status, err.kind.as_str()), (400, "config"));
        // The shared diva_core::spec path: identical words to the CLI.
        assert_eq!(
            err.message,
            diva_core::spec::config_message(&diva_arch::ConfigError::UnknownParameter(
                "sram_gb".to_string()
            ))
        );

        let err = parse_run_request(b"{\"scenario\": \"fig13\", \"bogus\": \"x\"}").unwrap_err();
        assert!(err.message.contains("unknown field"));

        assert!(parse_run_request(b"not json").is_err());
    }

    #[test]
    fn cache_key_is_order_preserving_and_mode_free() {
        let a = parse_run_request(
            br#"{"scenario": "fig13", "models": "a", "points": "b", "mode": "sync"}"#,
        )
        .unwrap();
        let b = parse_run_request(
            br#"{"scenario": "fig13", "models": "a", "points": "b", "mode": "job"}"#,
        )
        .unwrap();
        assert_eq!(run_cache_key(&a), run_cache_key(&b));
        let c =
            parse_run_request(br#"{"scenario": "fig13", "points": "b", "models": "a"}"#).unwrap();
        assert_ne!(
            run_cache_key(&a),
            run_cache_key(&c),
            "filter order is semantic (first filter per axis wins)"
        );
    }

    #[test]
    fn cell_estimate_honors_filters_sweeps_and_batch() {
        let full = parse_run_request(b"{\"scenario\": \"fig13\"}").unwrap();
        let filtered = parse_run_request(
            br#"{"scenario": "fig13", "models": "squeezenet", "points": "ws,diva",
                 "sweep.drain_rows": "2,4", "batch": "32,64"}"#,
        )
        .unwrap();
        let full_cells = estimate_cells(&full);
        let filtered_cells = estimate_cells(&filtered);
        assert!(full_cells > 0 && filtered_cells > 0);
        assert!(filtered_cells < full_cells * 4, "filters shrink the grid");
        // 1 model x 2 points x 2 sweep values x 2 batches x other axes.
        assert_eq!(filtered_cells % (2 * 2 * 2), 0);
    }

    #[test]
    fn explore_request_defaults_and_overrides() {
        let req = parse_explore_request(b"{}").unwrap();
        assert_eq!(req.mode, RunMode::Job, "searches default to the job queue");
        assert_eq!(req.config.space.knobs.len(), 6, "default knob grid");
        assert_eq!(req.config.budget, 64);

        let req = parse_explore_request(
            br#"{"strategy": "halving", "budget": 10, "seed": 7, "batch_size": 4,
                 "objectives": "latency,area", "workloads": "squeezenet@8",
                 "base": "ws", "knob.pe.rows": "64|128",
                 "knob.freq_mhz": "470|940", "mode": "sync"}"#,
        )
        .unwrap();
        assert_eq!(req.mode, RunMode::Sync);
        assert_eq!(req.config.strategy, Strategy::Halving);
        assert_eq!(
            (req.config.budget, req.config.seed, req.config.batch_size),
            (10, 7, 4)
        );
        assert_eq!(
            req.config.objectives,
            vec![Objective::Latency, Objective::Area]
        );
        assert_eq!(req.config.workloads.len(), 1);
        assert_eq!(req.config.space.base, diva_core::DesignPoint::WsBaseline);
        assert_eq!(
            req.config.space.knobs.len(),
            2,
            "knob.* replaces the default grid"
        );
        assert_eq!(req.config.space.knobs[0].param, "pe.rows");
        assert!(
            req.config.journal_dir.is_none(),
            "served searches never journal"
        );
    }

    #[test]
    fn explore_request_errors_are_typed() {
        for body in [
            br#"{"strategy": "annealing"}"#.as_slice(),
            br#"{"objectives": "speed"}"#.as_slice(),
            br#"{"workloads": "gpt4@8"}"#.as_slice(),
            br#"{"base": "gpu"}"#.as_slice(),
            br#"{"knob.sram_gb": "8|16"}"#.as_slice(),
            br#"{"budget": 1.5}"#.as_slice(),
            br#"{"mode": "auto"}"#.as_slice(),
            br#"{"bogus": "x"}"#.as_slice(),
        ] {
            let err = parse_explore_request(body).unwrap_err();
            assert_eq!(err.status, 400, "{}", String::from_utf8_lossy(body));
        }
    }

    #[test]
    fn explore_cache_key_is_mode_free_and_knob_order_preserving() {
        let sync = parse_explore_request(br#"{"knob.pe.rows": "64|128", "mode": "sync"}"#).unwrap();
        let job = parse_explore_request(br#"{"knob.pe.rows": "64|128", "mode": "job"}"#).unwrap();
        assert_eq!(explore_cache_key(&sync), explore_cache_key(&job));
        let a = parse_explore_request(br#"{"knob.pe.rows": "64|128", "knob.sram_mib": "8|16"}"#)
            .unwrap();
        let b = parse_explore_request(br#"{"knob.sram_mib": "8|16", "knob.pe.rows": "64|128"}"#)
            .unwrap();
        assert_ne!(
            explore_cache_key(&a),
            explore_cache_key(&b),
            "knob order fixes the candidate sequence"
        );
    }

    #[test]
    fn explore_document_matches_the_cli_renderer() {
        let body = br#"{"strategy": "grid", "budget": 4, "batch_size": 2,
                        "workloads": "squeezenet@4", "knob.pe.rows": "64|128",
                        "knob.drain_rows": "4|8"}"#;
        let req = parse_explore_request(body).unwrap();
        let served = execute_explore(&req).unwrap();
        let direct = explore_engine::explore(&req.config).unwrap();
        assert_eq!(
            served,
            explore_engine::render::render_json(&direct).into_bytes(),
            "served /explore document differs from diva-explore --json bytes"
        );
        let text = String::from_utf8(served).unwrap();
        assert!(text.contains("\"schema\": \"diva-explore/v1\""), "{text}");
    }

    #[test]
    fn epsilon_request_defaults_and_validation() {
        let req = parse_epsilon_request(br#"{"q": 0.01, "sigma": 1.1, "steps": 1000}"#).unwrap();
        assert_eq!(req.kinds, vec![AccountantKind::Pld, AccountantKind::Rdp]);
        assert_eq!(req.delta, 1e-5);
        assert!(req.step_counts.is_empty());

        let req = parse_epsilon_request(
            br#"{"accountant": "rdp", "q": 0.02, "sigma": 1.5, "steps": 500,
                 "delta": 0.000001, "step_counts": "100,250,500"}"#,
        )
        .unwrap();
        assert_eq!(req.kinds, vec![AccountantKind::Rdp]);
        assert_eq!(req.step_counts, vec![100, 250, 500]);

        assert!(parse_epsilon_request(b"{\"q\": 0.01, \"sigma\": 1.1}").is_err());
        assert!(parse_epsilon_request(
            br#"{"accountant": "magic", "q": 0.01, "sigma": 1.1, "steps": 10}"#
        )
        .is_err());
        assert!(
            parse_epsilon_request(br#"{"q": 0.01, "sigma": 1.1, "steps": 10, "nonsense": 1}"#)
                .is_err()
        );
    }

    #[test]
    fn epsilon_document_matches_direct_queries() {
        let req = parse_epsilon_request(
            br#"{"q": 0.01, "sigma": 1.1, "steps": 200, "step_counts": "100,200"}"#,
        )
        .unwrap();
        let doc = String::from_utf8(execute_epsilon(&req).unwrap()).unwrap();
        let records = diva_bench::perf::parse_perf_json(&doc).unwrap();
        // 2 accountants x (1 headline + 2 curve points).
        assert_eq!(records.len(), 6);
        let headline = |label: &str| {
            records
                .iter()
                .find(|r| r.name == "epsilon" && r.tag_value("accountant") == Some(label))
                .and_then(|r| r.metric_value("epsilon"))
                .unwrap()
        };
        let direct = diva_dp::event_epsilon(
            AccountantKind::Pld,
            &diva_dp::DpEvent::dp_sgd(0.01, 1.1, 200),
            1e-5,
        )
        .unwrap();
        assert!((headline("pld") - direct).abs() < 1e-12);
        assert!(headline("pld") <= headline("rdp"), "PLD is tighter");
    }

    #[test]
    fn compare_self_diff_passes_and_split_is_required() {
        let result = scenario::run_with(
            "dp_accounting",
            &RunOptions::default()
                .filter("q", &["0.01"])
                .filter("sigma", &["1"]),
        )
        .unwrap();
        let doc = json::to_json(&result);
        let body = format!("{doc}---\n{doc}");
        let (passed, report) = execute_compare(body.as_bytes(), 0.05).unwrap();
        assert!(passed, "{}", String::from_utf8_lossy(&report));
        assert!(execute_compare(doc.as_bytes(), 0.05).is_err());
    }

    #[test]
    fn scenarios_document_lists_registry_and_params() {
        let doc = String::from_utf8(scenarios_document()).unwrap();
        let records = diva_bench::perf::parse_perf_json(&doc).unwrap();
        assert!(records.iter().any(|r| r.name == "fig13"));
        assert!(records
            .iter()
            .any(|r| r.name == "drain_rows" && r.tag_value("kind") == Some("param")));
    }
}
