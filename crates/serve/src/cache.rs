//! The response memo cache: perfect-hit memoization with single-flight
//! de-duplication and an LRU byte budget.
//!
//! Every cacheable response in this service is a pure function of its
//! canonical request key — scenario cells are deterministic and
//! thread-count-bit-identical, accounting answers are closed-form — so a
//! cache hit can return the stored bytes verbatim ("perfect hit": no
//! revalidation, no TTL). Two concerns shape the implementation:
//!
//! * **Single-flight**: when N requests race on the same cold key, the
//!   first becomes the *leader* and computes; the rest park on a
//!   [`Condvar`] and share the leader's result (including its error).
//!   An expensive grid is evaluated exactly once no matter how many
//!   clients ask for it concurrently.
//! * **Byte budget**: entries are evicted least-recently-used once the
//!   stored bytes exceed the budget. A single result larger than the
//!   whole budget is returned but not stored.
//!
//! Errors are *never* stored (a failed computation is retried by the
//! next request); they are only shared with the followers of the flight
//! that produced them.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// How a request was satisfied, for the stats endpoint and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the store without computing.
    Hit,
    /// This request led the computation.
    Miss,
    /// Joined an in-flight computation started by another request.
    Joined,
}

/// Point-in-time cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the store.
    pub hits: u64,
    /// Requests that led a computation.
    pub misses: u64,
    /// Requests that joined an in-flight computation.
    pub joined: u64,
    /// Computations that completed successfully.
    pub computed: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Bytes currently stored.
    pub bytes: usize,
}

struct Flight<E> {
    done: Mutex<Option<Result<Arc<[u8]>, E>>>,
    cv: Condvar,
}

struct Entry {
    bytes: Arc<[u8]>,
    last_used: u64,
}

struct Inner<E> {
    entries: HashMap<String, Entry>,
    inflight: HashMap<String, Arc<Flight<E>>>,
    tick: u64,
    stored_bytes: usize,
    stats: CacheStats,
}

/// A keyed byte cache with single-flight computation. `E` is the shared
/// error type (cloned to every follower of a failed flight).
pub struct MemoCache<E> {
    inner: Mutex<Inner<E>>,
    budget_bytes: usize,
}

impl<E: Clone> MemoCache<E> {
    /// An empty cache storing at most `budget_bytes` of response bytes.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                inflight: HashMap::new(),
                tick: 0,
                stored_bytes: 0,
                stats: CacheStats::default(),
            }),
            budget_bytes,
        }
    }

    /// Returns the stored bytes for `key` without computing anything on
    /// a miss. A present entry counts as a hit (and is LRU-touched); an
    /// absent one counts nothing — the caller is expected to follow up
    /// with [`Self::get_or_compute`], which records the miss. This is
    /// the handlers' fast path: a perfect hit skips even the request's
    /// routing work (grid estimation, experiment construction).
    pub fn peek(&self, key: &str) -> Option<Arc<[u8]>> {
        let inner = &mut *self.inner.lock().unwrap();
        inner.tick += 1;
        if let Some(entry) = inner.entries.get_mut(key) {
            entry.last_used = inner.tick;
            inner.stats.hits += 1;
            return Some(Arc::clone(&entry.bytes));
        }
        None
    }

    /// Returns the cached bytes for `key`, or computes them with
    /// `compute` (single-flight: concurrent callers on the same cold key
    /// wait for the first caller's result instead of recomputing).
    pub fn get_or_compute(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<Vec<u8>, E>,
    ) -> (Result<Arc<[u8]>, E>, CacheOutcome) {
        let flight = {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(key) {
                entry.last_used = tick;
                let bytes = Arc::clone(&entry.bytes);
                inner.stats.hits += 1;
                return (Ok(bytes), CacheOutcome::Hit);
            }
            if let Some(flight) = inner.inflight.get(key) {
                let flight = Arc::clone(flight);
                inner.stats.joined += 1;
                Some(flight)
            } else {
                let flight = Arc::new(Flight {
                    done: Mutex::new(None),
                    cv: Condvar::new(),
                });
                inner.inflight.insert(key.to_string(), Arc::clone(&flight));
                inner.stats.misses += 1;
                None
            }
        };

        if let Some(flight) = flight {
            // Follower: park until the leader publishes its result.
            let mut done = flight.done.lock().unwrap();
            while done.is_none() {
                done = flight.cv.wait(done).unwrap();
            }
            return (done.clone().unwrap(), CacheOutcome::Joined);
        }

        // Leader: compute outside the cache lock, publish, then store.
        let result: Result<Arc<[u8]>, E> = compute().map(Arc::from);
        {
            let mut inner = self.inner.lock().unwrap();
            let flight = inner
                .inflight
                .remove(key)
                .expect("leader's flight entry vanished");
            if let Ok(bytes) = &result {
                inner.stats.computed += 1;
                self.store(&mut inner, key, Arc::clone(bytes));
            }
            *flight.done.lock().unwrap() = Some(result.clone());
            flight.cv.notify_all();
        }
        (result, CacheOutcome::Miss)
    }

    fn store(&self, inner: &mut Inner<E>, key: &str, bytes: Arc<[u8]>) {
        if bytes.len() > self.budget_bytes {
            return;
        }
        while inner.stored_bytes + bytes.len() > self.budget_bytes {
            let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let evicted = inner.entries.remove(&victim).unwrap();
            inner.stored_bytes -= evicted.bytes.len();
            inner.stats.evictions += 1;
        }
        inner.stored_bytes += bytes.len();
        let tick = inner.tick;
        inner.entries.insert(
            key.to_string(),
            Entry {
                bytes,
                last_used: tick,
            },
        );
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            entries: inner.entries.len(),
            bytes: inner.stored_bytes,
            ..inner.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn hit_returns_identical_bytes_without_recompute() {
        let cache: MemoCache<String> = MemoCache::new(1 << 20);
        let calls = AtomicUsize::new(0);
        let compute = || {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(b"payload".to_vec())
        };
        assert!(cache.peek("k").is_none(), "peek must not compute");
        let (a, first) = cache.get_or_compute("k", compute);
        let (b, second) = cache.get_or_compute("k", || unreachable!());
        assert_eq!(first, CacheOutcome::Miss);
        assert_eq!(second, CacheOutcome::Hit);
        assert_eq!(a.unwrap(), b.unwrap());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.peek("k").as_deref(), Some(&b"payload"[..]));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.computed), (2, 1, 1));
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: MemoCache<String> = MemoCache::new(1 << 20);
        let (r, _) = cache.get_or_compute("k", || Err("boom".to_string()));
        assert_eq!(r.unwrap_err(), "boom");
        let (r, outcome) = cache.get_or_compute("k", || Ok(b"ok".to_vec()));
        assert!(r.is_ok());
        assert_eq!(outcome, CacheOutcome::Miss);
    }

    #[test]
    fn lru_budget_evicts_oldest_and_skips_oversized() {
        let cache: MemoCache<String> = MemoCache::new(10);
        let _ = cache.get_or_compute("a", || Ok(vec![0u8; 4]));
        let _ = cache.get_or_compute("b", || Ok(vec![0u8; 4]));
        // Touch "a" so "b" is the LRU victim.
        let _ = cache.get_or_compute("a", || unreachable!());
        let _ = cache.get_or_compute("c", || Ok(vec![0u8; 4]));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        let (_, outcome) = cache.get_or_compute("b", || Ok(vec![0u8; 4]));
        assert_eq!(outcome, CacheOutcome::Miss, "b was evicted");
        // An entry larger than the whole budget is served but not stored.
        let (r, _) = cache.get_or_compute("huge", || Ok(vec![0u8; 64]));
        assert_eq!(r.unwrap().len(), 64);
        let (_, outcome) = cache.get_or_compute("huge", || Ok(vec![0u8; 64]));
        assert_eq!(outcome, CacheOutcome::Miss);
    }

    #[test]
    fn single_flight_computes_once_across_threads() {
        let cache: Arc<MemoCache<String>> = Arc::new(MemoCache::new(1 << 20));
        let calls = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let calls = Arc::clone(&calls);
            handles.push(std::thread::spawn(move || {
                cache
                    .get_or_compute("k", || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Ok(b"shared".to_vec())
                    })
                    .0
                    .unwrap()
            }));
        }
        let results: Vec<Arc<[u8]>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "one leader computed");
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }
}
