//! A minimal blocking HTTP client for tests, benches and smoke scripts.
//!
//! Two modes: the free functions ([`get`], [`post_json`]) open a fresh
//! connection per request (`Connection: close`), exercising the server's
//! full accept → parse → route → respond path; a [`Connection`] keeps
//! one socket alive across sequential requests, isolating per-request
//! latency from connect/thread-spawn cost — what the `serve_load` bench
//! measures. Not a general client: it speaks the same length-delimited
//! HTTP/1.1 subset the server does.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// One parsed response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Headers with lowercased names, in order.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first header named `name` (lowercase), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as (lossy) UTF-8 text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn invalid(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Sends a `GET` request.
///
/// # Errors
///
/// Connection/IO failures, or a malformed response.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<HttpResponse> {
    request(addr, "GET", path, None)
}

/// Sends a `POST` with a JSON body.
///
/// # Errors
///
/// Connection/IO failures, or a malformed response.
pub fn post_json(addr: SocketAddr, path: &str, body: &[u8]) -> std::io::Result<HttpResponse> {
    request(addr, "POST", path, Some(body))
}

/// Sends one request on a fresh connection and reads the response.
///
/// # Errors
///
/// Connection/IO failures, or a malformed response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    write_request(&mut stream, method, path, body, false)?;
    read_response(&mut BufReader::new(stream))
}

/// A keep-alive connection for sequential requests over one socket.
pub struct Connection {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Opens a connection to the server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn open(addr: SocketAddr) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    /// Sends one request on this connection and reads the response.
    ///
    /// # Errors
    ///
    /// IO failures or a malformed response; the connection state is
    /// undefined afterwards — drop it.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<HttpResponse> {
        write_request(&mut self.writer, method, path, body, true)?;
        read_response(&mut self.reader)
    }
}

fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head =
        format!("{method} {path} HTTP/1.1\r\nHost: diva-serve\r\nConnection: {connection}\r\n");
    if let Some(body) = body {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        ));
    }
    head.push_str("\r\n");
    // One write per request: a head-then-body pair of segments interacts
    // with Nagle + delayed ACK into a ~40 ms stall per exchange.
    let mut request = head.into_bytes();
    if let Some(body) = body {
        request.extend_from_slice(body);
    }
    stream.write_all(&request)?;
    stream.flush()
}

fn read_response(reader: &mut impl BufRead) -> std::io::Result<HttpResponse> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid(format!("malformed status line {status_line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(invalid("truncated response head".to_string()));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid(format!("malformed response header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|e| invalid(format!("malformed Content-Length: {e}")))?;
    let body = match content_length {
        Some(n) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}
