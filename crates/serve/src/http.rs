//! A minimal, defensive HTTP/1.1 reader/writer over blocking streams.
//!
//! This is not a general web server: it parses exactly the request shape
//! the `diva-serve` API speaks (a request line, headers, an optional
//! `Content-Length` body), enforces hard size limits, and turns every
//! malformed input into a typed [`HttpError`] with a 4xx status — the
//! connection handler renders those as JSON error bodies and never
//! panics. Chunked transfer encoding is deliberately rejected with `411
//! Length Required`: every client this service targets can send a
//! length, and a length-first protocol keeps the body reader a single
//! bounded `read_exact`.

use std::io::{BufRead, Write};

/// The largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Clone, Debug, Default)]
pub struct Request {
    /// Uppercase method, e.g. `"GET"`.
    pub method: String,
    /// Path without the query string, e.g. `"/run"`.
    pub path: String,
    /// Decoded `key=value` query pairs, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (lowercase), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first query parameter named `name`, if any.
    pub fn query_value(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// Typed protocol-level failures, each mapping to a response status.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// 400: malformed request line, header, or truncated head/body.
    BadRequest(String),
    /// 408: the socket read timed out mid-request.
    Timeout(String),
    /// 411: a body-carrying request without `Content-Length`
    /// (including chunked transfer encoding).
    LengthRequired(String),
    /// 413: the head or the declared body exceeds the configured limit.
    PayloadTooLarge(String),
}

impl HttpError {
    /// The response status this error renders as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::Timeout(_) => 408,
            HttpError::LengthRequired(_) => 411,
            HttpError::PayloadTooLarge(_) => 413,
        }
    }

    /// A stable kind slug for JSON error bodies.
    pub fn kind(&self) -> &'static str {
        match self {
            HttpError::BadRequest(_) => "bad-request",
            HttpError::Timeout(_) => "timeout",
            HttpError::LengthRequired(_) => "length-required",
            HttpError::PayloadTooLarge(_) => "payload-too-large",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            HttpError::BadRequest(m)
            | HttpError::Timeout(m)
            | HttpError::LengthRequired(m)
            | HttpError::PayloadTooLarge(m) => m,
        }
    }
}

fn io_error(context: &str, e: &std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            HttpError::Timeout(format!("{context}: read timed out"))
        }
        _ => HttpError::BadRequest(format!("{context}: {e}")),
    }
}

/// Reads one line (LF-terminated, CR trimmed) with a running head-size
/// budget. `Ok(None)` means EOF before any byte of this line.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest(
                    "truncated request head (connection closed mid-line)".to_string(),
                ));
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(HttpError::PayloadTooLarge(format!(
                        "request head exceeds {MAX_HEAD_BYTES} bytes"
                    )));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(io_error("reading request head", &e)),
        }
    }
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// Reads one request from `reader`. `Ok(None)` is a clean end of the
/// connection (EOF between requests — the keep-alive loop's exit).
///
/// # Errors
///
/// A typed [`HttpError`]; after one, the connection state is
/// unsynchronized and the handler must close it.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let Some(request_line) = read_line(reader, &mut budget)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    let mut request = Request {
        method: method.to_ascii_uppercase(),
        ..Request::default()
    };
    match target.split_once('?') {
        Some((path, query)) => {
            request.path = path.to_string();
            request.query = parse_query(query);
        }
        None => request.path = target.to_string(),
    }
    if !request.path.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target {target:?} is not an absolute path"
        )));
    }

    loop {
        let line = read_line(reader, &mut budget)?.ok_or_else(|| {
            HttpError::BadRequest("truncated request head (no blank line)".to_string())
        })?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line {line:?}")))?;
        request
            .headers
            .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if let Some(te) = request.header("transfer-encoding") {
        return Err(HttpError::LengthRequired(format!(
            "transfer-encoding {te:?} is not supported; send Content-Length"
        )));
    }
    let content_length = match request.header("content-length") {
        Some(raw) => Some(
            raw.trim()
                .parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("malformed Content-Length {raw:?}")))?,
        ),
        None => None,
    };
    match content_length {
        None | Some(0) => {
            if matches!(request.method.as_str(), "POST" | "PUT") && content_length.is_none() {
                return Err(HttpError::LengthRequired(format!(
                    "{} requests must carry Content-Length",
                    request.method
                )));
            }
        }
        Some(n) if n > max_body_bytes => {
            return Err(HttpError::PayloadTooLarge(format!(
                "body of {n} bytes exceeds the {max_body_bytes}-byte limit"
            )));
        }
        Some(n) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body).map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => HttpError::BadRequest(format!(
                    "truncated body (Content-Length {n}, connection closed early)"
                )),
                _ => io_error("reading request body", &e),
            })?;
            request.body = body;
        }
    }
    Ok(Some(request))
}

/// The standard reason phrase for the statuses this service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one response with an explicit `Content-Length` and connection
/// disposition.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // One write per response: a head-then-body segment pair interacts
    // with Nagle + delayed ACK into a ~40 ms stall per exchange.
    let mut response = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason_phrase(status),
        body.len(),
    )
    .into_bytes();
    response.extend_from_slice(body);
    writer.write_all(&response)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw), 1024)
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let req =
            parse(b"GET /jobs/j1?verbose=1&x HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/jobs/j1");
        assert_eq!(req.query_value("verbose"), Some("1"));
        assert_eq!(req.query_value("x"), Some(""));
        assert_eq!(req.header("host"), Some("h"));
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = parse(b"POST /run HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn eof_between_requests_is_clean() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn typed_errors_for_malformed_input() {
        assert_eq!(parse(b"GARBAGE\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nHost h\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
        assert_eq!(
            parse(b"POST /run HTTP/1.1\r\n\r\n").unwrap_err().status(),
            411
        );
        assert_eq!(
            parse(b"POST /run HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status(),
            411
        );
        assert_eq!(
            parse(b"POST /run HTTP/1.1\r\nContent-Length: 9999\r\n\r\n")
                .unwrap_err()
                .status(),
            413
        );
        assert_eq!(
            parse(b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
                .unwrap_err()
                .status(),
            400
        );
        let huge = format!(
            "GET / HTTP/1.1\r\nX: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(parse(huge.as_bytes()).unwrap_err().status(), 413);
    }
}
