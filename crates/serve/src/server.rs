//! The server proper: a thread-per-connection HTTP/1.1 accept loop wired
//! to the typed API layer, the memo cache, and the job queue.
//!
//! Every connection gets a keep-alive loop: read one request
//! ([`crate::http::read_request`]), route it, write one response. A
//! protocol error renders its typed 4xx and closes the connection (the
//! stream is unsynchronized after a malformed head); a handler panic is
//! caught per-request, counted, and rendered as a 500 without taking the
//! connection thread down. Shutdown is cooperative: `POST /shutdown` (or
//! [`Server::shutdown`]) flips a flag, wakes the accept loop with a
//! self-connection, and drains the job queue's worker.

use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::api::{self, ApiError, RunMode};
use crate::cache::MemoCache;
use crate::http;
use crate::jobs::{JobQueue, JobStatus};

/// Tunables for one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Memo-cache byte budget.
    pub cache_bytes: usize,
    /// Job-queue capacity (excess submissions get 429).
    pub job_capacity: usize,
    /// `/run` requests estimated above this many grid cells are routed
    /// to the job queue (unless the body forces `"mode": "sync"`).
    pub job_cell_threshold: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Socket read timeout (a stalled client gets 408 and a close).
    pub read_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            cache_bytes: 64 << 20,
            job_capacity: 32,
            job_cell_threshold: 128,
            max_body_bytes: 1 << 20,
            read_timeout_ms: 10_000,
        }
    }
}

struct AppState {
    config: ServerConfig,
    cache: MemoCache<ApiError>,
    jobs: JobQueue<ApiError>,
    scenarios_doc: Vec<u8>,
    internal_errors: AtomicU64,
    shutting_down: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
}

impl AppState {
    /// Idempotently flips the shutdown flag, wakes the accept loop with
    /// a self-connection, and drains the job worker.
    fn trigger_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(addr) = *self.addr.lock().unwrap() {
            // The accept loop re-checks the flag per connection; this
            // no-op connection is only the wake-up.
            let _ = TcpStream::connect(addr);
        }
        self.jobs.shutdown();
    }
}

/// A running `diva-serve` instance.
pub struct Server {
    state: Arc<AppState>,
    addr: SocketAddr,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Binds `config.addr` and starts serving.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> std::io::Result<Self> {
        // Spin up (and park) the compute pool's workers before accepting
        // traffic, so the first `/run` or `/epsilon` request does not pay
        // thread-spawn latency inside its measured handler. See the
        // `serve_load` bench notes for the measured first-request delta.
        diva_tensor::Backend::auto().prewarm();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(AppState {
            jobs: JobQueue::start(
                config.job_capacity,
                ApiError::new(503, "shutting-down", "server shut down before this job ran"),
            ),
            cache: MemoCache::new(config.cache_bytes),
            scenarios_doc: api::scenarios_document(),
            internal_errors: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            addr: Mutex::new(Some(addr)),
            config,
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("diva-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_state))?;
        Ok(Self {
            state,
            addr,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound address (with the actual port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates shutdown without waiting for it to finish.
    pub fn shutdown(&self) {
        self.state.trigger_shutdown();
    }

    /// Blocks until the accept loop has exited (after [`Self::shutdown`]
    /// or a served `POST /shutdown`) and the job worker is drained.
    pub fn wait(&self) {
        if let Some(handle) = self.accept.lock().unwrap().take() {
            let _ = handle.join();
        }
        self.state.jobs.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<AppState>) {
    for stream in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn_state = Arc::clone(state);
        let _ = std::thread::Builder::new()
            .name("diva-serve-conn".to_string())
            .spawn(move || handle_connection(&conn_state, stream));
    }
}

struct Response {
    status: u16,
    body: Vec<u8>,
    shutdown_after: bool,
}

impl Response {
    fn json(status: u16, body: Vec<u8>) -> Self {
        Self {
            status,
            body,
            shutdown_after: false,
        }
    }

    fn error(err: &ApiError) -> Self {
        Self::json(err.status, err.body())
    }
}

fn handle_connection(state: &Arc<AppState>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(state.config.read_timeout_ms)));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let request = match http::read_request(&mut reader, state.config.max_body_bytes) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) => {
                // The stream is unsynchronized after a malformed head:
                // answer with the typed status and close. Drain what the
                // client is still sending first — closing with unread
                // bytes queued turns into an RST that can destroy the
                // error response before the client reads it.
                let api = ApiError::from_http(&e);
                let _ = http::write_response(
                    &mut writer,
                    api.status,
                    "application/json",
                    &api.body(),
                    false,
                );
                let _ = writer.shutdown(std::net::Shutdown::Write);
                let mut scratch = [0u8; 4096];
                for _ in 0..256 {
                    match reader.read(&mut scratch) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
                return;
            }
        };
        let response = match catch_unwind(AssertUnwindSafe(|| route(state, &request))) {
            Ok(response) => response,
            Err(_) => {
                state.internal_errors.fetch_add(1, Ordering::SeqCst);
                Response::error(&ApiError::new(
                    500,
                    "internal",
                    format!("handler for {} {} panicked", request.method, request.path),
                ))
            }
        };
        let keep_alive = !request.wants_close()
            && !response.shutdown_after
            && !state.shutting_down.load(Ordering::SeqCst);
        let write_ok = http::write_response(
            &mut writer,
            response.status,
            "application/json",
            &response.body,
            keep_alive,
        )
        .is_ok();
        if response.shutdown_after {
            // The 200 is already on the wire; now take the server down.
            state.trigger_shutdown();
        }
        if !write_ok || !keep_alive {
            return;
        }
    }
}

fn route(state: &Arc<AppState>, request: &http::Request) -> Response {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/scenarios") => Response::json(200, state.scenarios_doc.clone()),
        ("GET", "/stats") => Response::json(200, stats_document(state)),
        ("POST", "/run") => handle_run(state, &request.body),
        ("POST", "/explore") => handle_explore(state, &request.body),
        ("POST", "/epsilon") => handle_epsilon(state, &request.body),
        ("POST", "/compare") => handle_compare(request),
        ("POST", "/shutdown") => Response {
            status: 200,
            body: b"{\"ok\": true, \"message\": \"shutting down\"}\n".to_vec(),
            shutdown_after: true,
        },
        ("GET", _) if path.starts_with("/jobs/") => handle_job_poll(state, path),
        _ if matches!(path, "/scenarios" | "/stats") || path.starts_with("/jobs/") => {
            Response::error(&ApiError::new(
                405,
                "method-not-allowed",
                format!("{path} wants GET, not {method}"),
            ))
        }
        (_, "/run" | "/explore" | "/epsilon" | "/compare" | "/shutdown") => {
            Response::error(&ApiError::new(
                405,
                "method-not-allowed",
                format!("{path} wants POST, not {method}"),
            ))
        }
        _ => Response::error(&ApiError::new(
            404,
            "unknown-path",
            format!(
                "no endpoint {path}; endpoints: GET /scenarios, POST /run, POST /explore, \
                 POST /epsilon, POST /compare, GET /jobs/ID, GET /stats, POST /shutdown"
            ),
        )),
    }
}

fn handle_run(state: &Arc<AppState>, body: &[u8]) -> Response {
    let parsed = match api::parse_run_request(body) {
        Ok(parsed) => parsed,
        Err(e) => return Response::error(&e),
    };
    let key = api::run_cache_key(&parsed);
    // Perfect-hit fast path: stored bytes go out before any routing work
    // (grid estimation rebuilds the experiment's axes, which is far more
    // expensive than the hit itself).
    if let Some(bytes) = state.cache.peek(&key) {
        return Response::json(200, bytes.to_vec());
    }
    let estimate = api::estimate_cells(&parsed);
    let as_job = match parsed.mode {
        RunMode::Sync => false,
        RunMode::Job => true,
        RunMode::Auto => estimate > state.config.job_cell_threshold,
    };
    if as_job {
        let job_state = Arc::clone(state);
        let job_key = key;
        let work = Box::new(move || {
            job_state
                .cache
                .get_or_compute(&job_key, || api::execute_run(&parsed))
                .0
        });
        return match state.jobs.submit(work) {
            Ok(id) => Response::json(
                202,
                format!(
                    "{{\"job_id\": {id}, \"poll\": \"/jobs/{id}\", \"estimated_cells\": {estimate}}}\n"
                )
                .into_bytes(),
            ),
            Err(()) => Response::error(&ApiError::new(
                429,
                "queue-full",
                format!(
                    "job queue is full ({} deferred runs); retry after polling existing jobs",
                    state.config.job_capacity
                ),
            )),
        };
    }
    match state
        .cache
        .get_or_compute(&key, || api::execute_run(&parsed))
        .0
    {
        Ok(bytes) => Response::json(200, bytes.to_vec()),
        Err(e) => Response::error(&e),
    }
}

fn handle_explore(state: &Arc<AppState>, body: &[u8]) -> Response {
    let parsed = match api::parse_explore_request(body) {
        Ok(parsed) => parsed,
        Err(e) => return Response::error(&e),
    };
    let key = api::explore_cache_key(&parsed);
    if let Some(bytes) = state.cache.peek(&key) {
        return Response::json(200, bytes.to_vec());
    }
    // A search is grid-sized by construction, so Job is the parsed
    // default; "mode": "sync" opts into an inline answer for small
    // budgets (RunMode::Auto never reaches here — the parser only
    // produces Sync or Job).
    if parsed.mode != RunMode::Sync {
        let budget = parsed.config.budget;
        let job_state = Arc::clone(state);
        let job_key = key;
        let work = Box::new(move || {
            job_state
                .cache
                .get_or_compute(&job_key, || api::execute_explore(&parsed))
                .0
        });
        return match state.jobs.submit(work) {
            Ok(id) => Response::json(
                202,
                format!("{{\"job_id\": {id}, \"poll\": \"/jobs/{id}\", \"budget\": {budget}}}\n")
                    .into_bytes(),
            ),
            Err(()) => Response::error(&ApiError::new(
                429,
                "queue-full",
                format!(
                    "job queue is full ({} deferred runs); retry after polling existing jobs",
                    state.config.job_capacity
                ),
            )),
        };
    }
    match state
        .cache
        .get_or_compute(&key, || api::execute_explore(&parsed))
        .0
    {
        Ok(bytes) => Response::json(200, bytes.to_vec()),
        Err(e) => Response::error(&e),
    }
}

fn handle_epsilon(state: &Arc<AppState>, body: &[u8]) -> Response {
    let parsed = match api::parse_epsilon_request(body) {
        Ok(parsed) => parsed,
        Err(e) => return Response::error(&e),
    };
    let key = api::epsilon_cache_key(&parsed);
    match state
        .cache
        .get_or_compute(&key, || api::execute_epsilon(&parsed))
        .0
    {
        Ok(bytes) => Response::json(200, bytes.to_vec()),
        Err(e) => Response::error(&e),
    }
}

fn handle_compare(request: &http::Request) -> Response {
    let tolerance = match request.query_value("tolerance") {
        None => 0.05,
        Some(raw) => match raw.parse::<f64>() {
            Ok(t) if t.is_finite() && t >= 0.0 => t,
            _ => {
                return Response::error(&ApiError::bad_request(format!(
                    "tolerance wants a non-negative number, got {raw:?}"
                )))
            }
        },
    };
    match api::execute_compare(&request.body, tolerance) {
        Ok((true, doc)) => Response::json(200, doc),
        Ok((false, doc)) => Response::json(409, doc),
        Err(e) => Response::error(&e),
    }
}

fn handle_job_poll(state: &Arc<AppState>, path: &str) -> Response {
    let raw_id = path.strip_prefix("/jobs/").unwrap_or_default();
    let Ok(id) = raw_id.parse::<u64>() else {
        return Response::error(&ApiError::bad_request(format!(
            "job id wants an integer, got {raw_id:?}"
        )));
    };
    match state.jobs.status(id) {
        None => Response::error(&ApiError::new(
            404,
            "unknown-job",
            format!("no job {id} (never submitted, or expired from the finished-job history)"),
        )),
        Some(JobStatus::Queued) => Response::json(
            202,
            format!("{{\"job_id\": {id}, \"state\": \"queued\"}}\n").into_bytes(),
        ),
        Some(JobStatus::Running) => Response::json(
            202,
            format!("{{\"job_id\": {id}, \"state\": \"running\"}}\n").into_bytes(),
        ),
        Some(JobStatus::Done(bytes)) => Response::json(200, bytes.to_vec()),
        Some(JobStatus::Failed(e)) => Response::error(&e),
    }
}

fn stats_document(state: &AppState) -> Vec<u8> {
    let cache = state.cache.stats();
    let (queued, running) = state.jobs.depth();
    let internal = state.internal_errors.load(Ordering::SeqCst);
    let pool = diva_tensor::parallel::pool_stats();
    format!(
        "{{\n  \"schema\": \"diva-stats/v1\",\n  \"records\": [\n    \
         {{\"name\": \"cache\", \"hits\": {}, \"misses\": {}, \"joined\": {}, \"computed\": {}, \
         \"evictions\": {}, \"entries\": {}, \"bytes\": {}}},\n    \
         {{\"name\": \"jobs\", \"queued\": {queued}, \"running\": {running}}},\n    \
         {{\"name\": \"pool\", \"workers\": {}, \"idle\": {}, \"steals\": {}, \
         \"inline_runs\": {}, \"max_region_depth\": {}}},\n    \
         {{\"name\": \"errors\", \"internal\": {internal}}}\n  ]\n}}\n",
        cache.hits,
        cache.misses,
        cache.joined,
        cache.computed,
        cache.evictions,
        cache.entries,
        cache.bytes,
        pool.spawned,
        pool.idle,
        pool.steals,
        pool.inline_runs,
        pool.max_depth,
    )
    .into_bytes()
}
