//! The bounded background-job queue behind `202 + /jobs/{id}` polling.
//!
//! Grid-sized `/run` requests can take long enough that a synchronous
//! response would hold a connection (and its thread) open for minutes.
//! Instead the handler enqueues the work here and immediately answers
//! `202 Accepted` with a job id; the client polls `GET /jobs/{id}` until
//! the result is ready. Failure semantics, in order of appearance:
//!
//! * **Queue full** — [`JobQueue::submit`] refuses (the caller renders
//!   `429 Too Many Requests`). The bound is the backpressure: a client
//!   storm cannot accumulate unbounded deferred work.
//! * **Job failed** — the work closure runs through the same supervised
//!   runner (and shared memo cache) as synchronous requests, so a
//!   panicking cell settles into a typed error; the status endpoint
//!   replays it to every poll.
//! * **Shutdown** — the worker exits after the job it is running;
//!   still-queued jobs are marked failed ("server shutting down") so a
//!   final poll gets a definite answer instead of `queued` forever.
//!
//! Completed statuses are retained for the most recent
//! [`HISTORY_LIMIT`] jobs; polling an expired (or never-issued) id is a
//! 404.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// How many finished jobs keep their status visible for polling.
pub const HISTORY_LIMIT: usize = 256;

/// The work a job runs: produces response bytes or a shared error.
pub type JobWork<E> = Box<dyn FnOnce() -> Result<Arc<[u8]>, E> + Send>;

/// The visible status of a job.
#[derive(Clone, Debug)]
pub enum JobStatus<E> {
    /// Waiting in the queue.
    Queued,
    /// The worker is executing it.
    Running,
    /// Finished; the stored bytes are the response body.
    Done(Arc<[u8]>),
    /// Finished with an error (or abandoned at shutdown).
    Failed(E),
}

struct State<E> {
    queue: VecDeque<(u64, JobWork<E>)>,
    status: HashMap<u64, JobStatus<E>>,
    finished: VecDeque<u64>,
    next_id: u64,
    shutdown: bool,
}

struct Shared<E> {
    state: Mutex<State<E>>,
    cv: Condvar,
    capacity: usize,
}

/// A bounded FIFO job queue drained by one background worker thread.
pub struct JobQueue<E> {
    shared: Arc<Shared<E>>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl<E: Clone + Send + 'static> JobQueue<E> {
    /// Starts the queue and its worker thread. `shutdown_error` is the
    /// status given to jobs abandoned in the queue at shutdown.
    pub fn start(capacity: usize, shutdown_error: E) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                status: HashMap::new(),
                finished: VecDeque::new(),
                next_id: 1,
                shutdown: false,
            }),
            cv: Condvar::new(),
            capacity,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("diva-serve-jobs".to_string())
            .spawn(move || worker_loop(&worker_shared, shutdown_error))
            .expect("spawning the job worker");
        Self {
            shared,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Enqueues `work`; `Err(())` means the queue is at capacity (render
    /// 429) or shutting down.
    #[allow(clippy::result_unit_err)]
    pub fn submit(&self, work: JobWork<E>) -> Result<u64, ()> {
        let mut state = self.shared.state.lock().unwrap();
        if state.shutdown || state.queue.len() >= self.shared.capacity {
            return Err(());
        }
        let id = state.next_id;
        state.next_id += 1;
        state.queue.push_back((id, work));
        state.status.insert(id, JobStatus::Queued);
        self.shared.cv.notify_one();
        Ok(id)
    }

    /// The status of job `id`, if it exists and has not expired from the
    /// finished-job history.
    pub fn status(&self, id: u64) -> Option<JobStatus<E>> {
        self.shared.state.lock().unwrap().status.get(&id).cloned()
    }

    /// `(queued, running)` depths for the stats endpoint.
    pub fn depth(&self) -> (usize, usize) {
        let state = self.shared.state.lock().unwrap();
        let running = state
            .status
            .values()
            .filter(|s| matches!(s, JobStatus::Running))
            .count();
        (state.queue.len(), running)
    }

    /// Stops accepting jobs, fails everything still queued, and joins
    /// the worker after the job it is currently running.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.cv.notify_all();
        }
        if let Some(worker) = self.worker.lock().unwrap().take() {
            let _ = worker.join();
        }
    }
}

fn worker_loop<E: Clone>(shared: &Shared<E>, shutdown_error: E) {
    loop {
        let (id, work) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.status.insert(job.0, JobStatus::Running);
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.cv.wait(state).unwrap();
            }
        };
        let result = work();
        let mut state = shared.state.lock().unwrap();
        let status = match result {
            Ok(bytes) => JobStatus::Done(bytes),
            Err(e) => JobStatus::Failed(e),
        };
        state.status.insert(id, status);
        state.finished.push_back(id);
        while state.finished.len() > HISTORY_LIMIT {
            if let Some(expired) = state.finished.pop_front() {
                state.status.remove(&expired);
            }
        }
        if state.shutdown {
            // Give abandoned queued jobs a terminal answer before exiting.
            let abandoned: Vec<u64> = state.queue.drain(..).map(|(id, _)| id).collect();
            for id in abandoned {
                state
                    .status
                    .insert(id, JobStatus::Failed(shutdown_error.clone()));
                state.finished.push_back(id);
            }
            return;
        }
    }
}

impl<E> Drop for JobQueue<E> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.shutdown = true;
        self.shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn wait_done(q: &JobQueue<String>, id: u64) -> JobStatus<String> {
        for _ in 0..500 {
            match q.status(id) {
                Some(JobStatus::Done(_)) | Some(JobStatus::Failed(_)) => {
                    return q.status(id).unwrap()
                }
                _ => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        panic!("job {id} never finished");
    }

    #[test]
    fn jobs_run_in_order_and_report_results() {
        let q: JobQueue<String> = JobQueue::start(4, "down".to_string());
        let a = q.submit(Box::new(|| Ok(Arc::from(&b"one"[..])))).unwrap();
        let b = q.submit(Box::new(|| Err("boom".to_string()))).unwrap();
        match wait_done(&q, a) {
            JobStatus::Done(bytes) => assert_eq!(&bytes[..], b"one"),
            other => panic!("unexpected {other:?}"),
        }
        match wait_done(&q, b) {
            JobStatus::Failed(e) => assert_eq!(e, "boom"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(q.status(999).is_none());
        q.shutdown();
    }

    #[test]
    fn queue_bound_rejects_excess_submissions() {
        let q: JobQueue<String> = JobQueue::start(1, "down".to_string());
        // Park the worker on a slow job, then fill the single queue slot.
        let slow = q
            .submit(Box::new(|| {
                std::thread::sleep(Duration::from_millis(100));
                Ok(Arc::from(&b"slow"[..]))
            }))
            .unwrap();
        // Wait until the slow job is running (queue drained).
        for _ in 0..200 {
            if matches!(q.status(slow), Some(JobStatus::Running)) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = q.submit(Box::new(|| Ok(Arc::from(&b"q"[..])))).unwrap();
        assert!(
            q.submit(Box::new(|| Ok(Arc::from(&b"x"[..])))).is_err(),
            "second queued job exceeds capacity 1"
        );
        wait_done(&q, queued);
        q.shutdown();
    }

    #[test]
    fn shutdown_fails_abandoned_jobs() {
        let q: JobQueue<String> = JobQueue::start(8, "down".to_string());
        let slow = q
            .submit(Box::new(|| {
                std::thread::sleep(Duration::from_millis(50));
                Ok(Arc::from(&b"slow"[..]))
            }))
            .unwrap();
        for _ in 0..200 {
            if matches!(q.status(slow), Some(JobStatus::Running)) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let abandoned = q.submit(Box::new(|| Ok(Arc::from(&b"never"[..])))).unwrap();
        q.shutdown();
        assert!(matches!(q.status(slow), Some(JobStatus::Done(_))));
        match q.status(abandoned) {
            Some(JobStatus::Failed(e)) => assert_eq!(e, "down"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
