//! `diva-serve`: a long-running HTTP service over the scenario runner
//! and the privacy-accounting engine.
//!
//! The CLI tools (`diva-report`, `dp_account`) pay full grid-evaluation
//! cost on every invocation. This crate keeps one warm process around
//! instead: the `diva_tensor` keep-alive pool stays spun up, and every
//! deterministic response is memoized, so repeated queries — the common
//! shape during design-space exploration — return stored bytes.
//!
//! * [`http`] — a defensive, std-only HTTP/1.1 reader/writer: typed 4xx
//!   for every malformed input, hard head/body size limits, no panics.
//! * [`api`] — flat-JSON request parsing, canonical cache keys, and the
//!   endpoint implementations. `/run` responses are byte-identical to
//!   `diva-report --json` for the same options.
//! * [`cache`] — perfect-hit memoization with single-flight
//!   de-duplication and an LRU byte budget.
//! * [`jobs`] — the bounded background queue behind `202 + /jobs/{id}`
//!   polling for grid-sized requests.
//! * [`server`] — the thread-per-connection accept loop tying it
//!   together, with per-request panic isolation and cooperative
//!   shutdown.
//! * [`client`] — a minimal blocking client for tests, benches and smoke
//!   scripts.
//!
//! Endpoints: `GET /scenarios`, `POST /run`, `POST /explore` (the
//! design-space explorer as a deferred job: `202 + /jobs/{id}`, document
//! bytes identical to `diva-explore --json`), `POST /epsilon`,
//! `POST /compare`, `GET /jobs/{id}`, `GET /stats`, `POST /shutdown`.
//! See the workspace README's "Serving" section for request examples and
//! `ARCHITECTURE.md` for the cache-keying and failure-semantics design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
pub mod http;
pub mod jobs;
pub mod server;

pub use api::{ApiError, EpsilonRequest, ExploreRequest, RunMode, RunRequest};
pub use cache::{CacheOutcome, CacheStats, MemoCache};
pub use client::{get, post_json, Connection, HttpResponse};
pub use http::{Request, MAX_HEAD_BYTES};
pub use jobs::{JobQueue, JobStatus};
pub use server::{Server, ServerConfig};
