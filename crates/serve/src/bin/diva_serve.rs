//! `diva-serve`: run the scenario + privacy-accounting HTTP service.
//!
//! ```text
//! diva-serve [--addr HOST:PORT] [--port-file PATH] [--threads N]
//!            [--cache-mib N] [--job-capacity N] [--job-threshold CELLS]
//!            [--max-body-kib N]
//! ```
//!
//! The process serves until `POST /shutdown` arrives, then exits 0.
//! `--port-file` writes the actually-bound address (useful with port 0)
//! so scripts can wait for readiness and discover the ephemeral port.

use diva_serve::{Server, ServerConfig};

const USAGE: &str = "\
usage: diva-serve [options]

options:
  --addr HOST:PORT      bind address (default 127.0.0.1:8737; port 0 = ephemeral)
  --port-file PATH      write the bound address to PATH once listening
  --threads N           compute pool width (default: all cores; DIVA_NUM_THREADS)
  --cache-mib N         response memo-cache budget in MiB (default 64)
  --job-capacity N      queued background runs before 429 (default 32)
  --job-threshold N     estimated cells above which /run defers to a job (default 128)
  --max-body-kib N      largest accepted request body in KiB (default 1024)
  --help                print this help

endpoints: GET /scenarios, POST /run, POST /epsilon, POST /compare,
           GET /jobs/ID, GET /stats, POST /shutdown
";

fn parse_args() -> Result<(ServerConfig, Option<std::path::PathBuf>), String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:8737".to_string(),
        ..ServerConfig::default()
    };
    let mut port_file = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--port-file" => port_file = Some(std::path::PathBuf::from(value("--port-file")?)),
            "--threads" => {
                let n: usize = parse_num(&value("--threads")?, "--threads")?;
                if n == 0 {
                    return Err("--threads wants at least 1".to_string());
                }
                diva_tensor::parallel::set_max_threads(n);
            }
            "--cache-mib" => {
                config.cache_bytes =
                    parse_num::<usize>(&value("--cache-mib")?, "--cache-mib")? << 20;
            }
            "--job-capacity" => {
                config.job_capacity = parse_num(&value("--job-capacity")?, "--job-capacity")?;
            }
            "--job-threshold" => {
                config.job_cell_threshold =
                    parse_num(&value("--job-threshold")?, "--job-threshold")?;
            }
            "--max-body-kib" => {
                config.max_body_bytes =
                    parse_num::<usize>(&value("--max-body-kib")?, "--max-body-kib")? << 10;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    Ok((config, port_file))
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag} wants a number, got {raw:?}"))
}

fn main() {
    let (config, port_file) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("diva-serve: {message}");
            std::process::exit(2);
        }
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("diva-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("diva-serve listening on {}", server.addr());
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", server.addr())) {
            eprintln!("diva-serve: writing {}: {e}", path.display());
            server.shutdown();
            server.wait();
            std::process::exit(1);
        }
    }
    server.wait();
    println!("diva-serve: shut down cleanly");
}
