//! Request-level latency of `diva-serve` over a real socket: p50/p99 for
//! `/epsilon` and a single-cell `/run`, cached versus uncached.
//!
//! Requests go over one keep-alive connection per series (the
//! [`diva_serve::Connection`] client), so the measured latency is the
//! request path — parse, route, compute or hit, respond — not TCP
//! connect or per-connection thread spawn. "Uncached" varies a body
//! field per request so every key is cold; "cached" repeats one warmed
//! body so every request is a perfect hit served from stored bytes. The
//! cached rows carry `speedup_vs_uncached`, which `bench_regress` gates
//! like the kernel speedups — a regression in the memo path (or an
//! accidentally cache-busting key change) trips CI.
//!
//! Results are merged into `BENCH_perf.json` (or `DIVA_BENCH_OUT`)
//! alongside the compute rows: merged, not overwritten, so running this
//! bench alone refreshes only the serve rows.
//!
//! Prewarm note: `Server::start` now calls `Backend::auto().prewarm()`,
//! so the compute pool's `n - 1` workers are spawned and parked before
//! the listener accepts traffic. The `serve_first_request` row records
//! the very first post-bind request's latency; before the prewarm call
//! that request also paid worker thread-spawn (~100-300 us per worker
//! on multi-core hosts). On a single-core host `prewarm(1)` is a no-op
//! and the row simply documents cold-start (allocator + route) cost.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use diva_bench::perf::{PerfRecord, PerfSink};
use diva_serve::{client, Connection, Server, ServerConfig};

/// Collects per-request latencies until the time budget (and a minimum
/// sample count) is met, then returns `(p50_us, p99_us)`.
fn measure(budget: Duration, mut request: impl FnMut(usize)) -> (f64, f64) {
    const MIN_SAMPLES: usize = 5;
    const MAX_SAMPLES: usize = 500;
    let mut latencies = Vec::new();
    let start = Instant::now();
    for i in 0..MAX_SAMPLES {
        let t = Instant::now();
        request(i);
        latencies.push(t.elapsed().as_secs_f64() * 1e6);
        if start.elapsed() >= budget && latencies.len() >= MIN_SAMPLES {
            break;
        }
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let percentile = |p: f64| {
        let idx = (p / 100.0 * (latencies.len() - 1) as f64).round() as usize;
        latencies[idx]
    };
    (percentile(50.0), percentile(99.0))
}

fn post_ok(conn: &mut Connection, path: &str, body: String) {
    let response = conn
        .send("POST", path, Some(body.as_bytes()))
        .expect("request failed");
    assert_eq!(
        response.status,
        200,
        "{path} answered {}: {}",
        response.status,
        response.text()
    );
}

fn main() {
    let budget = Duration::from_secs_f64(
        std::env::var("DIVA_BENCH_SECS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0),
    );
    let server = Server::start(ServerConfig::default()).expect("starting in-process server");
    let addr: SocketAddr = server.addr();
    let mut conn = Connection::open(addr).expect("opening keep-alive connection");
    let mut sink = PerfSink::new();

    // --- /epsilon: a PLD+RDP query with a three-point curve. Uncached
    // varies `steps` per request (every key cold); cached repeats one
    // warmed body.
    let eps_body = |steps: u64| {
        format!(
            "{{\"q\": 0.01, \"sigma\": 1.1, \"steps\": {steps}, \
             \"step_counts\": \"500,1000,2000\"}}"
        )
    };
    // First request after bind: with the startup prewarm, this no longer
    // includes pool thread-spawn — recorded as its own row (see module
    // docs) so the cold-start cost stays visible across revisions.
    let t_first = Instant::now();
    post_ok(&mut conn, "/epsilon", eps_body(1999)); // warm the pool/allocator
    let first_us = t_first.elapsed().as_secs_f64() * 1e6;
    let (eps_unc_p50, eps_unc_p99) = measure(budget, |i| {
        post_ok(&mut conn, "/epsilon", eps_body(2000 + i as u64));
    });
    post_ok(&mut conn, "/epsilon", eps_body(2000)); // warm the cached key
    let (eps_hit_p50, eps_hit_p99) = measure(budget, |_| {
        post_ok(&mut conn, "/epsilon", eps_body(2000));
    });

    // --- /run: one simulator-backed fig13 cell (the deepest model in
    // the zoo at a large batch, one point, one algorithm). Uncached
    // varies the batch override; cached repeats batch 128.
    let run_body = |batch: usize| {
        format!(
            "{{\"scenario\": \"fig13\", \"models\": \"ResNet-152\", \"points\": \"diva\", \
             \"algs\": \"dp-sgd-r\", \"batch\": \"{batch}\", \"mode\": \"sync\"}}"
        )
    };
    post_ok(&mut conn, "/run", run_body(127)); // warm
    let (run_unc_p50, run_unc_p99) =
        measure(budget, |i| post_ok(&mut conn, "/run", run_body(128 + i)));
    post_ok(&mut conn, "/run", run_body(128)); // warm the cached key
    let (run_hit_p50, run_hit_p99) = measure(budget, |_| {
        post_ok(&mut conn, "/run", run_body(128));
    });

    drop(conn);
    // One cold-connection request documents the end-to-end path still
    // works outside keep-alive before the server goes down.
    let response = client::get(addr, "/stats").expect("cold-connection /stats");
    assert_eq!(response.status, 200);
    server.shutdown();
    server.wait();

    println!("serve_load (budget {budget:?} per series, keep-alive connection)");
    println!("  serve_first_request (post-bind, pool prewarmed): {first_us:>10.1} us");
    sink.push(
        PerfRecord::new("serve_first_request")
            .tag("backend", "prewarmed")
            .metric("first_us", first_us),
    );
    let mut report = |name: &str, backend: &str, p50: f64, p99: f64, speedup: Option<f64>| {
        println!("  {name:>17}/{backend:<8}  p50 {p50:>10.1} us   p99 {p99:>10.1} us");
        let mut record = PerfRecord::new(name)
            .tag("backend", backend)
            .metric("p50_us", p50)
            .metric("p99_us", p99);
        if let Some(speedup) = speedup {
            record = record.metric("speedup_vs_uncached", speedup);
        }
        sink.push(record);
    };
    report(
        "serve_eps_request",
        "uncached",
        eps_unc_p50,
        eps_unc_p99,
        None,
    );
    report(
        "serve_eps_request",
        "cached",
        eps_hit_p50,
        eps_hit_p99,
        Some(eps_unc_p50 / eps_hit_p50),
    );
    report("serve_run_cell", "uncached", run_unc_p50, run_unc_p99, None);
    report(
        "serve_run_cell",
        "cached",
        run_hit_p50,
        run_hit_p99,
        Some(run_unc_p50 / run_hit_p50),
    );

    // The acceptance bar: a perfect hit skips the whole accountant /
    // simulator, so anything under 10x means the memo path broke.
    assert!(
        eps_unc_p50 / eps_hit_p50 >= 10.0,
        "cached /epsilon is only {:.1}x faster than uncached",
        eps_unc_p50 / eps_hit_p50
    );
    assert!(
        run_unc_p50 / run_hit_p50 >= 10.0,
        "cached /run is only {:.1}x faster than uncached",
        run_unc_p50 / run_hit_p50
    );

    match sink.write_merged(None) {
        Ok(path) => println!("\nmerged serve rows into {}", path.display()),
        Err(e) => eprintln!("failed to write serve rows: {e}"),
    }
}
