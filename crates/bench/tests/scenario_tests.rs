//! Integration tests for the scenario/experiment layer: registry
//! completeness, JSON schema stability (golden structure on a 2-model
//! subset), round-tripping through the in-tree parser, axis-filter
//! semantics, and bit-identical results across worker-thread counts.

use diva_bench::scenario::{
    self,
    json::{parse_scenario_json, to_json, SCHEMA},
    render::to_csv,
    RunOptions,
};
use diva_tensor::Backend;

/// The small fig13 subset every schema test runs: 2 models × 2 points.
fn small_fig13_opts() -> RunOptions {
    RunOptions::default()
        .filter("model", &["mobilenet", "squeezenet"])
        .filter("point", &["ws", "diva"])
}

#[test]
fn every_registered_scenario_is_listed() {
    let names = scenario::list();
    assert_eq!(names.len(), 28);
    // Every legacy figure/table/ablation binary has its scenario, plus
    // the design-space exploration starters, the accounting grid and the
    // explorer's regression gate.
    for expected in [
        "dse_frequency",
        "explore_frontier",
        "fig04",
        "fig05",
        "fig06",
        "fig07",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "table1",
        "table2",
        "table3",
        "maxbatch",
        "ppu_traffic",
        "roofline",
        "sensitivity_image",
        "sensitivity_seq",
        "dse_pe_scale",
        "dse_drain_rate",
        "dse_sram",
        "dse_bandwidth",
        "ablation_drain_overlap",
        "ablation_sram",
        "ablation_vanilla_dpsgd",
        "training_run_cost",
        "dp_accounting",
    ] {
        assert!(names.contains(&expected), "missing scenario {expected}");
    }
}

/// Golden structure snapshot of the fig13 JSON document on a 2-model
/// subset: schema id, axes, record count and the exact derived-metric
/// column set are pinned, so the `diva-scenario/v1` schema cannot drift
/// silently.
#[test]
fn fig13_json_golden_structure() {
    let result = scenario::run_with("fig13", &small_fig13_opts()).expect("fig13 runs");
    let doc = to_json(&result);
    let parsed = parse_scenario_json(&doc).expect("parses");

    assert_eq!(parsed.schema, SCHEMA);
    assert_eq!(parsed.scenario, "fig13");
    let axes: Vec<(&str, Vec<&str>)> = parsed
        .axes
        .iter()
        .map(|(n, vs)| (n.as_str(), vs.iter().map(String::as_str).collect()))
        .collect();
    assert_eq!(
        axes,
        vec![
            ("model", vec!["SqueezeNet", "MobileNet"]),
            ("point", vec!["WS", "DiVa"]),
            ("algorithm", vec!["DP-SGD(R)", "SGD"]),
            ("batch", vec!["paper"]),
        ]
    );
    // 2 models × 2 points × 2 algorithms × 1 batch.
    assert_eq!(parsed.records.len(), 8);
    for record in &parsed.records {
        assert_eq!(record.name, "fig13");
        for axis in ["model", "point", "algorithm", "batch"] {
            assert!(record.tag_value(axis).is_some(), "record misses {axis}");
        }
        // The derived columns are schema-stable.
        for metric in ["seconds", "speedup", "speedup_same_alg", "vs_ws_sgd"] {
            assert!(
                record.metric_value(metric).is_some(),
                "record misses {metric}"
            );
        }
    }
    // The headline reductions survive the subset (arms whose cells were
    // filtered out simply produce no summary).
    let labels: Vec<&str> = parsed.reductions.iter().map(|r| r.name.as_str()).collect();
    assert!(
        labels.contains(&"DiVa speedup vs WS (geomean)"),
        "{labels:?}"
    );
    for r in &parsed.reductions {
        assert!(r.metric_value("value").is_some(), "{} has no value", r.name);
        assert!(r.tag_value("kind").is_some());
    }
}

/// The JSON document round-trips: every metric value of every record
/// survives serialize → parse exactly (f64 Display is round-trip-precise).
#[test]
fn fig13_json_round_trips_values() {
    let result = scenario::run_with("fig13", &small_fig13_opts()).expect("fig13 runs");
    let parsed = parse_scenario_json(&to_json(&result)).expect("parses");
    assert_eq!(parsed.records.len(), result.rows.len());
    for (record, row) in parsed.records.iter().zip(&result.rows) {
        for (axis, label) in &row.coords {
            assert_eq!(record.tag_value(axis), Some(label.as_str()));
        }
        for (metric, value) in &row.metrics {
            if value.is_finite() {
                assert_eq!(
                    record.metric_value(metric),
                    Some(*value),
                    "metric {metric} did not round-trip"
                );
            } else {
                assert_eq!(record.metric_value(metric), None);
            }
        }
    }
    assert_eq!(parsed.reductions.len(), result.summaries.len());
    for (red, summary) in parsed.reductions.iter().zip(&result.summaries) {
        assert_eq!(red.name, summary.label);
        assert_eq!(red.metric_value("value"), Some(summary.value));
        assert_eq!(red.metric_value("count"), Some(summary.count as f64));
    }
}

/// The runner must be bit-identical across worker-thread counts *and*
/// across the nested-parallelism toggle: the grid assignment is fixed
/// before execution and task-to-data assignment inside nested regions is
/// data-determined, so every (thread count, nested on/off) combination
/// renders byte-identical JSON. (Toggling the process-global nested flag
/// mid-suite is safe precisely because of this contract: concurrency
/// structure may change, bytes may not.)
#[test]
fn runner_is_bit_identical_across_thread_counts_and_nesting() {
    let opts = small_fig13_opts();
    let reference =
        Backend::serial().install(|| scenario::run_with("fig13", &opts).expect("serial run"));
    let reference_json = to_json(&reference);
    for nested in [true, false] {
        diva_tensor::parallel::set_nested_parallelism(nested);
        for threads in [1usize, 2, 8] {
            let run = Backend::with_threads(threads)
                .install(|| scenario::run_with("fig13", &opts).expect("run"));
            assert_eq!(
                reference, run,
                "results differ at threads={threads} nested={nested}"
            );
            assert_eq!(
                reference_json,
                to_json(&run),
                "JSON differs at threads={threads} nested={nested}"
            );
        }
    }
    diva_tensor::parallel::set_nested_parallelism(true);
}

/// `--batch` replaces the symbolic paper batch with fixed sizes.
#[test]
fn batch_override_replaces_the_batch_axis() {
    let opts = small_fig13_opts().batches(&[8, 16]);
    let result = scenario::run_with("fig13", &opts).expect("runs");
    assert_eq!(result.rows.len(), 16); // 2 × 2 × 2 × 2 batches
    let batches: Vec<&str> = result
        .axes
        .iter()
        .find(|a| a.name == "batch")
        .unwrap()
        .labels
        .iter()
        .map(String::as_str)
        .collect();
    assert_eq!(batches, vec!["8", "16"]);
    assert!(result
        .rows
        .iter()
        .all(|r| matches!(r.coord("batch"), Some("8") | Some("16"))));
}

/// Filtering away the WS baseline must not kill the speedup column: the
/// runner evaluates hidden baseline arms for derived metrics.
#[test]
fn sensitivity_keeps_speedups_without_the_baseline_arm() {
    let opts = RunOptions::default()
        .filter("model", &["vgg16"])
        .filter("scale", &["32x32", "64x64"])
        .filter("point", &["diva"]);
    let result = scenario::run_with("sensitivity_image", &opts).expect("runs");
    assert_eq!(result.rows.len(), 2);
    for row in &result.rows {
        assert_eq!(row.coord("point"), Some("DiVa"));
        let speedup = row.get("speedup").expect("derived vs hidden WS arm");
        assert!(speedup > 1.0, "DiVa should win: {speedup}");
    }
    // Speedups narrow as the image grows (the paper's Section VI-C trend).
    assert!(result.rows[1].get("speedup") < result.rows[0].get("speedup"));
}

#[test]
fn unknown_scenario_and_bad_filters_error_cleanly() {
    assert!(scenario::run_with("nope", &RunOptions::default())
        .unwrap_err()
        .to_string()
        .contains("available:"));
    let err = scenario::run_with(
        "fig13",
        &RunOptions::default().filter("model", &["not-a-model"]),
    )
    .unwrap_err()
    .to_string();
    assert!(err.contains("not-a-model"), "{err}");
    // A filter naming an axis the scenario doesn't have must error, not
    // silently return the full unfiltered grid.
    let err = scenario::run_with("table1", &RunOptions::default().filter("point", &["ws"]))
        .unwrap_err()
        .to_string();
    assert!(err.contains("no axis named"), "{err}");
    assert!(err.contains("dataflow"), "lists available axes: {err}");
    // Same for a --batch override on a scenario without a batch axis.
    let err = scenario::run_with("maxbatch", &RunOptions::default().batches(&[32]))
        .unwrap_err()
        .to_string();
    assert!(err.contains("batch"), "{err}");
}

/// CSV carries one column per axis plus every metric, one line per row.
#[test]
fn csv_has_header_plus_one_line_per_row() {
    let result = scenario::run_with("fig13", &small_fig13_opts()).expect("runs");
    let csv = to_csv(&result);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + result.rows.len());
    assert!(lines[0].starts_with("model,point,algorithm,batch,"));
    assert!(lines[0].contains("speedup"));
}

/// Small non-sweep scenarios run end to end through the registry.
#[test]
fn degenerate_scenarios_run() {
    for name in ["table1", "table2", "fig06"] {
        let result = scenario::run_with(name, &RunOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!result.rows.is_empty(), "{name} produced no rows");
        let doc = to_json(&result);
        parse_scenario_json(&doc).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// The small dse_drain_rate subset the design-space tests run.
fn small_dse_opts() -> RunOptions {
    RunOptions::default()
        .filter("model", &["resnet50"])
        .filter("drain_rows", &["2", "8"])
}

/// The satellite contract: a `dse_*` scenario is byte-identical across
/// worker-thread counts (the config-axis materialization is part of the
/// deterministic pre-execution grid setup).
#[test]
fn dse_scenario_is_bit_identical_across_thread_counts() {
    let opts = small_dse_opts();
    let serial = Backend::serial()
        .install(|| scenario::run_with("dse_drain_rate", &opts).expect("serial run"));
    let parallel = Backend::with_threads(8)
        .install(|| scenario::run_with("dse_drain_rate", &opts).expect("parallel run"));
    assert_eq!(serial, parallel, "results differ across thread counts");
    assert_eq!(
        to_json(&serial),
        to_json(&parallel),
        "JSON differs across thread counts"
    );
    // The sweep actually moved the knob: DiVa is slower at R=2 than R=8,
    // while the WS baseline (no output-stationary drain) is flat.
    let get = |point: &str, drain: &str| {
        serial
            .rows
            .iter()
            .find(|r| r.coord("point") == Some(point) && r.coord("drain_rows") == Some(drain))
            .and_then(|r| r.get("seconds"))
            .expect("cell present")
    };
    assert!(get("DiVa", "2") > get("DiVa", "8"));
    assert_eq!(get("WS", "2"), get("WS", "8"));
}

/// `--sweep key=v1,v2` injects the same config axis ad hoc: sweeping
/// drain_rows over fig13 must reproduce dse_drain_rate's cells exactly.
#[test]
fn ad_hoc_sweep_matches_the_registered_dse_scenario() {
    let sweep_opts = RunOptions::default()
        .filter("model", &["resnet50"])
        .filter("point", &["ws", "diva"])
        .filter("algorithm", &["dp-sgd-r"])
        .sweep("drain_rows", &["2", "8"]);
    let swept = scenario::run_with("fig13", &sweep_opts).expect("fig13 sweeps");
    let axis_names: Vec<&str> = swept.axes.iter().map(|a| a.name.as_str()).collect();
    assert!(axis_names.contains(&"drain_rows"), "{axis_names:?}");
    // Pre-declared reductions are re-grouped by the injected axis: no
    // summary may pool cells across swept configurations.
    assert!(!swept.summaries.is_empty());
    for summary in &swept.summaries {
        assert!(
            summary.group.iter().any(|(axis, _)| axis == "drain_rows"),
            "summary {:?} pools across drain_rows values",
            summary.label
        );
    }
    let dse = scenario::run_with("dse_drain_rate", &small_dse_opts()).expect("dse runs");
    for row in &dse.rows {
        let point = row.coord("point").unwrap();
        let drain = row.coord("drain_rows").unwrap();
        let twin = swept
            .rows
            .iter()
            .find(|r| r.coord("point") == Some(point) && r.coord("drain_rows") == Some(drain))
            .unwrap_or_else(|| panic!("fig13 sweep misses ({point}, {drain})"));
        assert_eq!(
            twin.get("seconds"),
            row.get("seconds"),
            "({point}, R={drain}) differs between --sweep and dse_drain_rate"
        );
    }
}

/// `--set key=value` shifts every accelerator arm; `--sweep`/`--set`
/// reject typos (with the registry listing) and scenarios without an
/// accelerator axis.
#[test]
fn set_override_and_error_paths() {
    let base_opts = RunOptions::default()
        .filter("model", &["squeezenet"])
        .filter("point", &["diva"])
        .filter("algorithm", &["dp-sgd-r"]);
    let base = scenario::run_with("fig13", &base_opts).expect("base runs");
    let slow =
        scenario::run_with("fig13", &base_opts.clone().set("drain_rows", "1")).expect("--set runs");
    assert!(
        slow.rows[0].get("seconds") > base.rows[0].get("seconds"),
        "draining one row per cycle must slow DiVa down"
    );
    // Typo'd parameter names list the registry.
    let err = scenario::run_with("fig13", &base_opts.clone().set("dram_rows", "4"))
        .unwrap_err()
        .to_string();
    assert!(err.contains("drain_rows"), "{err}");
    let err = scenario::run_with("fig13", &RunOptions::default().sweep("dram_rows", &["2"]))
        .unwrap_err()
        .to_string();
    assert!(err.contains("available"), "{err}");
    // Out-of-range values are errors, not panics.
    let err = scenario::run_with("fig13", &base_opts.clone().set("drain_rows", "4096"))
        .unwrap_err()
        .to_string();
    assert!(err.contains("drain rate"), "{err}");
    // Scenarios without an accelerator-carrying axis reject both flags.
    for opts in [
        RunOptions::default().set("drain_rows", "4"),
        RunOptions::default().sweep("drain_rows", &["2", "4"]),
    ] {
        let err = scenario::run_with("table1", &opts).unwrap_err().to_string();
        assert!(err.contains("accelerator"), "{err}");
    }
}

/// The satellite pin: the re-based sensitivity scenarios (whose DiVa arm
/// is now the WS preset retargeted through registered parameter
/// overrides) reproduce the pre-refactor values **bit-for-bit**, computed
/// here the legacy way from the closed DesignPoint presets.
#[test]
fn sensitivity_matches_legacy_design_points() {
    use diva_core::{Accelerator, DesignPoint};
    use diva_workload::Algorithm;

    let opts = RunOptions::default()
        .filter("model", &["vgg16"])
        .filter("scale", &["32x32", "64x64"]);
    let result = scenario::run_with("sensitivity_image", &opts).expect("runs");
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();
    let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
    // The override-built DiVa arm resolves to the preset's exact config.
    for row in &result.rows {
        let scale = match row.coord("scale") {
            Some("32x32") => 32,
            Some("64x64") => 64,
            other => panic!("unexpected scale {other:?}"),
        };
        let model = diva_workload::zoo::vgg16_at(scale);
        let batch = diva_bench::paper_batch(&model);
        let accel = match row.coord("point") {
            Some("WS") => &ws,
            Some("DiVa") => &diva,
            other => panic!("unexpected point {other:?}"),
        };
        let legacy = accel.run(&model, Algorithm::DpSgdReweighted, batch);
        assert_eq!(
            row.get("seconds"),
            Some(legacy.seconds),
            "{:?} diverged from the legacy design-point path",
            row.coords
        );
        let legacy_speedup =
            ws.run(&model, Algorithm::DpSgdReweighted, batch).seconds / legacy.seconds;
        assert_eq!(row.get("speedup"), Some(legacy_speedup));
    }
}

/// fig05/fig07/fig17/table3 moved their closure-captured accelerators
/// onto axes so `--set`/`--sweep` apply; these pins hold every migrated
/// scenario's metric values bit-for-bit to the legacy (closure-built)
/// computation.
#[test]
fn migrated_point_axis_scenarios_match_legacy_values() {
    use diva_core::{bottleneck_accel_seconds, bottleneck_gpu_seconds, Accelerator, DesignPoint};
    use diva_gpu::{GpuModel, Precision};
    use diva_workload::{zoo, Algorithm};

    let model = zoo::squeezenet();
    let batch = diva_bench::paper_batch(&model);
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();

    // fig05: the WS arm on the new single-value point axis must simulate
    // exactly what the old closure-captured baseline did.
    let result = scenario::run_with(
        "fig05",
        &RunOptions::default().filter("model", &["squeezenet"]),
    )
    .expect("fig05 runs");
    assert!(!result.rows.is_empty());
    for row in &result.rows {
        assert_eq!(row.coord("point"), Some("WS"));
        let alg = Algorithm::ALL
            .iter()
            .copied()
            .find(|a| Some(a.label()) == row.coord("algorithm"))
            .expect("algorithm label");
        let legacy = ws.run(&model, alg, batch);
        assert_eq!(
            row.get("total_cycles"),
            Some(legacy.timing.total_cycles() as f64),
            "fig05 {:?} diverged from the legacy closure path",
            row.coords
        );
    }

    // fig07: utilization metrics come from the same WS run.
    let result = scenario::run_with(
        "fig07",
        &RunOptions::default().filter("model", &["squeezenet"]),
    )
    .expect("fig07 runs");
    let legacy = ws.run(&model, Algorithm::DpSgdReweighted, batch);
    let fwd = legacy
        .timing
        .phases
        .get(&diva_core::Phase::Forward)
        .expect("forward phase");
    let legacy_util = fwd.macs as f64 / (fwd.cycles as f64 * ws.config().pe.macs() as f64);
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0].get("util_fwd"), Some(legacy_util));

    // fig17: GPU arms are untouched labels; the DiVa arm now rides the
    // axis but is built from the identical preset config.
    let result = scenario::run_with(
        "fig17",
        &RunOptions::default().filter("model", &["squeezenet"]),
    )
    .expect("fig17 runs");
    let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
    let v100 = GpuModel::v100();
    let a100 = GpuModel::a100();
    for row in &result.rows {
        let legacy = match row.coord("device").expect("device coord") {
            "V100 (FP32)" => bottleneck_gpu_seconds(&model, batch, &v100, Precision::Fp32),
            "V100 (FP16)" => {
                bottleneck_gpu_seconds(&model, batch, &v100, Precision::Fp16TensorCore)
            }
            "A100 (FP32)" => bottleneck_gpu_seconds(&model, batch, &a100, Precision::Fp32),
            "A100 (FP16)" => {
                bottleneck_gpu_seconds(&model, batch, &a100, Precision::Fp16TensorCore)
            }
            "DiVa (BF16)" => bottleneck_accel_seconds(&diva, &model, batch),
            other => panic!("unexpected device {other:?}"),
        };
        assert_eq!(
            row.get("seconds"),
            Some(legacy),
            "fig17 {:?} diverged from the legacy closure path",
            row.coords
        );
    }

    // table3: the DiVa engine row must reproduce the legacy
    // closure-computed effective-TFLOPS + Table III values.
    let result = scenario::run_with("table3", &RunOptions::default()).expect("table3 runs");
    let (mut flops, mut seconds) = (0.0f64, 0.0f64);
    for m in zoo::all_models() {
        let r = diva.run(&m, Algorithm::DpSgdReweighted, diva_bench::paper_batch(&m));
        flops += 2.0 * r.timing.total_macs() as f64;
        seconds += r.seconds;
    }
    let mut effective = [0.0f64; 3];
    effective[2] = flops / seconds / 1e12;
    let legacy_row = diva_energy::table_iii(
        &DesignPoint::Diva.config(),
        &diva_energy::SynthesisModel::calibrated(),
        effective,
    )
    .into_iter()
    .nth(2)
    .expect("three engine rows");
    let diva_row = result
        .rows
        .iter()
        .find(|r| r.coord("engine") == Some("DiVa"))
        .expect("DiVa engine row");
    assert_eq!(diva_row.get("peak_tflops"), Some(legacy_row.peak_tflops));
    assert_eq!(
        diva_row.get("effective_tflops"),
        Some(legacy_row.effective_tflops)
    );
    assert_eq!(diva_row.get("power_w"), Some(legacy_row.power_w));
    assert_eq!(diva_row.get("area_mm2"), Some(legacy_row.area_mm2));
    assert_eq!(
        diva_row.get("tflops_per_watt"),
        Some(legacy_row.tflops_per_watt)
    );
}

/// The payoff of the migration: every one of the re-based scenarios
/// accepts `--set`/`--sweep`, and the overrides actually reshape the
/// hardware arms (while fig17's GPU label arms stay untouched).
#[test]
fn migrated_point_axis_scenarios_accept_set_and_sweep() {
    let base = scenario::run_with(
        "fig05",
        &RunOptions::default()
            .filter("model", &["squeezenet"])
            .filter("algorithm", &["dp-sgd-r"]),
    )
    .expect("fig05 runs");
    let shrunk = scenario::run_with(
        "fig05",
        &RunOptions::default()
            .filter("model", &["squeezenet"])
            .filter("algorithm", &["dp-sgd-r"])
            .set("pe.rows", "64"),
    )
    .expect("fig05 accepts --set");
    assert!(
        shrunk.rows[0].get("total_cycles") > base.rows[0].get("total_cycles"),
        "a quarter-size PE array must cost cycles"
    );

    let swept = scenario::run_with(
        "fig07",
        &RunOptions::default()
            .filter("model", &["squeezenet"])
            .sweep("drain_rows", &["4", "8"]),
    )
    .expect("fig07 accepts --sweep");
    assert_eq!(swept.rows.len(), 2, "one row per swept drain rate");

    let swept = scenario::run_with(
        "fig17",
        &RunOptions::default()
            .filter("model", &["squeezenet"])
            .sweep("freq_mhz", &["470", "940"]),
    )
    .expect("fig17 accepts --sweep on its mixed device axis");
    let seconds_of = |device: &str, freq: &str| {
        swept
            .rows
            .iter()
            .find(|r| r.coord("device") == Some(device) && r.coord("freq_mhz") == Some(freq))
            .and_then(|r| r.get("seconds"))
            .unwrap_or_else(|| panic!("no {device}@{freq} row"))
    };
    assert!(
        seconds_of("DiVa (BF16)", "470") > seconds_of("DiVa (BF16)", "940"),
        "halving the clock must slow the accelerator arm"
    );
    assert_eq!(
        seconds_of("V100 (FP16)", "470"),
        seconds_of("V100 (FP16)", "940"),
        "hardware knobs must not touch the GPU label arms"
    );

    let result = scenario::run_with("table3", &RunOptions::default().set("sram_mib", "16"))
        .expect("table3 accepts --set");
    assert_eq!(result.rows.len(), 3);
}

/// The JSON document names its derived (ratio) metrics, so `--compare`
/// can gate on them.
#[test]
fn json_declares_derived_metrics() {
    let result = scenario::run_with("dse_drain_rate", &small_dse_opts()).expect("runs");
    assert_eq!(result.derived_metrics, vec!["speedup".to_string()]);
    let parsed = parse_scenario_json(&to_json(&result)).expect("parses");
    assert_eq!(parsed.derived, vec!["speedup".to_string()]);
}
