//! End-to-end tests of the fault-tolerance layer: supervised execution,
//! `--keep-going` error records, the checkpoint/resume journal and the
//! deterministic fault-injection harness — including the acceptance pin
//! that a killed-and-resumed run's JSON document is byte-identical to a
//! fresh run's at any worker-thread count.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use diva_bench::faults::{FaultKind, FaultPlan};
use diva_bench::scenario::json::{parse_scenario_json, to_json};
use diva_bench::scenario::render::to_csv;
use diva_bench::scenario::{
    run_experiment, Axis, AxisValue, Cell, CellCtx, Experiment, FailKind, Normalize, ReduceKind,
    Reduction, RowStatus, RunOptions, ScenarioError,
};
use diva_tensor::parallel::Backend;

/// A synthetic 4×2 experiment (v = 10·model + point + 1, speedup vs p0)
/// whose eval bumps `counter` — the counter proves which cells actually
/// re-ran on resume.
fn toy(counter: Arc<AtomicUsize>) -> Experiment {
    Experiment::new(
        "ft_toy",
        "fault tolerance toy",
        Arc::new(move |ctx: &CellCtx| {
            counter.fetch_add(1, Ordering::SeqCst);
            let m: f64 = ctx
                .label("model")
                .strip_prefix('m')
                .unwrap()
                .parse()
                .unwrap();
            let p: f64 = ctx
                .label("point")
                .strip_prefix('p')
                .unwrap()
                .parse()
                .unwrap();
            Cell::new()
                .metric("v", 10.0 * m + p + 1.0)
                .note("policy", "fixed")
        }),
    )
    .axis(Axis::new(
        "model",
        (0..4).map(|i| AxisValue::label(format!("m{i}"))),
    ))
    .axis(Axis::new(
        "point",
        (0..2).map(|i| AxisValue::label(format!("p{i}"))),
    ))
    .derive(Normalize::speedup("v", &[("point", "p0")], "ratio"))
    .reduce(
        Reduction::new("mean ratio at p1", "ratio", ReduceKind::Mean).filter(&[("point", "p1")]),
    )
}

/// The runner's cell keys for the toy grid, in grid order.
fn toy_keys() -> Vec<String> {
    let mut keys = Vec::new();
    for m in 0..4 {
        for p in 0..2 {
            keys.push(format!("model=m{m}|point=p{p}"));
        }
    }
    keys
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diva-ft-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Finds a seed whose sticky panic plan (p = 0.4) hits *some but not all*
/// toy cells — deterministic (FNV decisions), so the test never flakes.
fn mixed_seed() -> (u64, usize) {
    for seed in 0..256 {
        let plan = FaultPlan::single(FaultKind::Panic, 0.4, seed).sticky();
        let hits = toy_keys()
            .iter()
            .filter(|k| plan.decide(k, 0).is_some())
            .count();
        if hits > 0 && hits < toy_keys().len() {
            return (seed, hits);
        }
    }
    panic!("no mixed seed in 0..256 — the fault hash is broken");
}

/// The acceptance pin: inject deterministic panics with a journal
/// attached (the "killed" run), then resume without faults — the resumed
/// document must be byte-identical to a fresh run's, at worker-thread
/// counts 1 and 8, and only the failed cells may re-run.
#[test]
fn killed_run_resumes_byte_identically_at_any_thread_count() {
    let fresh = run_experiment(&toy(Arc::default()), &RunOptions::default()).expect("clean run");
    let fresh_doc = to_json(&fresh);

    let (seed, hits) = mixed_seed();
    let dir = tempdir("resume");

    // The "kill": some cells settle as failures, completed cells are
    // journaled, the run aborts with the typed error.
    let inject = RunOptions::default()
        .faults(FaultPlan::single(FaultKind::Panic, 0.4, seed).sticky())
        .resume(&dir);
    let err = run_experiment(&toy(Arc::default()), &inject).expect_err("injected run fails");
    let ScenarioError::CellsFailed {
        failures,
        completed,
    } = &err
    else {
        panic!("expected CellsFailed, got {err}");
    };
    // Normalize may add DepFailed dependents on top of the direct hits.
    assert!(failures.len() >= hits, "{} < {hits}", failures.len());
    assert!(*completed > 0, "a mixed seed must complete some cells");
    assert_eq!(err.exit_code(), 2);
    assert!(err.to_string().contains("--resume"), "{err}");

    // Resume without faults, single-threaded: only the journaled-failed
    // cells re-run, and the document matches the fresh run byte for byte.
    let calls = Arc::new(AtomicUsize::new(0));
    let resumed = Backend::with_threads(1)
        .install(|| {
            run_experiment(
                &toy(Arc::clone(&calls)),
                &RunOptions::default().resume(&dir),
            )
        })
        .expect("resume");
    assert_eq!(to_json(&resumed), fresh_doc, "byte-identical at 1 thread");
    assert_eq!(
        calls.load(Ordering::SeqCst),
        hits,
        "only the directly-injected cells re-run (dep-failed cells were journaled ok)"
    );

    // A second resume finds everything cached: zero evaluations, same
    // bytes — now at 8 worker threads.
    let calls = Arc::new(AtomicUsize::new(0));
    let resumed = Backend::with_threads(8)
        .install(|| {
            run_experiment(
                &toy(Arc::clone(&calls)),
                &RunOptions::default().resume(&dir),
            )
        })
        .expect("cached resume");
    assert_eq!(to_json(&resumed), fresh_doc, "byte-identical at 8 threads");
    assert_eq!(calls.load(Ordering::SeqCst), 0, "fully cached");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A process killed mid-append leaves a torn final journal line; the next
/// resume must drop exactly that cell, re-run it, and still land on the
/// byte-identical document.
#[test]
fn torn_journal_line_recovers_to_identical_bytes() {
    let fresh = run_experiment(&toy(Arc::default()), &RunOptions::default()).expect("clean run");
    let fresh_doc = to_json(&fresh);

    let dir = tempdir("torn");
    run_experiment(&toy(Arc::default()), &RunOptions::default().resume(&dir)).expect("journaled");
    let path = dir.join("ft_toy.journal.jsonl");
    let full = std::fs::read_to_string(&path).expect("journal exists");
    let cut = full.rfind("\"v\"").expect("has cell records");
    std::fs::write(&path, &full[..cut]).expect("tear the final line");

    let calls = Arc::new(AtomicUsize::new(0));
    let resumed = run_experiment(
        &toy(Arc::clone(&calls)),
        &RunOptions::default().resume(&dir),
    )
    .expect("resume over torn journal");
    assert_eq!(to_json(&resumed), fresh_doc);
    assert_eq!(calls.load(Ordering::SeqCst), 1, "only the torn cell re-ran");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming against a journal written under a different grid shape is
/// refused (exit code 4) instead of silently mixing incompatible cells.
#[test]
fn resume_against_mismatched_journal_is_refused() {
    let dir = tempdir("mismatch");
    run_experiment(&toy(Arc::default()), &RunOptions::default().resume(&dir)).expect("journaled");
    let err = run_experiment(
        &toy(Arc::default()),
        &RunOptions::default()
            .filter("model", &["m0", "m1"])
            .resume(&dir),
    )
    .expect_err("different axes, same journal");
    assert!(matches!(err, ScenarioError::Journal(_)), "{err}");
    assert_eq!(err.exit_code(), 4);
    assert!(err.to_string().contains("fingerprint"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Non-sticky injected faults recover through one retry, leaving no trace
/// in the artifact.
#[test]
fn retries_erase_transient_faults_from_the_artifact() {
    let fresh = run_experiment(&toy(Arc::default()), &RunOptions::default()).expect("clean run");
    let recovered = run_experiment(
        &toy(Arc::default()),
        &RunOptions::default()
            .faults(FaultPlan::single(FaultKind::Panic, 1.0, 11))
            .max_retries(1),
    )
    .expect("every cell recovers on its retry");
    assert_eq!(to_json(&recovered), to_json(&fresh));
}

/// Sticky faults exhaust the retry budget; under `--keep-going` every
/// cell becomes an explicit error record with full retry history, the
/// artifact says so in every format, and the result is thread-count
/// stable.
#[test]
fn sticky_faults_keep_going_records_errors_everywhere() {
    let opts = RunOptions::default()
        .faults(FaultPlan::single(FaultKind::NanMetric, 1.0, 3).sticky())
        .max_retries(2)
        .keep_going();
    let result = run_experiment(&toy(Arc::default()), &opts).expect("keep-going returns a result");
    assert_eq!(result.failures.len(), 8);
    for failure in &result.failures {
        assert_eq!(failure.kind, FailKind::Invalid);
        assert_eq!(failure.attempts, 3, "1 try + 2 retries");
        assert_eq!(failure.history.len(), 3);
        assert!(failure.error.contains("non-finite"), "{}", failure.error);
    }
    for row in &result.rows {
        assert!(
            matches!(row.status, RowStatus::Failed { .. }),
            "every row failed"
        );
        assert!(row.metrics.is_empty());
    }
    assert!(
        result.summaries.is_empty(),
        "groups with zero surviving cells emit no summary"
    );

    let doc = to_json(&result);
    assert!(doc.contains("\"failed\": 8,"), "{doc}");
    assert!(doc.contains("\"status\": \"invalid\""), "{doc}");
    let parsed = parse_scenario_json(&doc).expect("error records still parse");
    assert_eq!(parsed.records.len(), 8);

    let csv = to_csv(&result);
    assert!(
        csv.lines().next().unwrap().contains("status,error"),
        "{csv}"
    );
    assert!(csv.contains("invalid,"), "{csv}");

    // Same failure artifact at a different worker-thread count.
    let again = Backend::with_threads(1)
        .install(|| run_experiment(&toy(Arc::default()), &opts))
        .expect("keep-going at 1 thread");
    assert_eq!(to_json(&again), doc, "failures are thread-count stable");
}

/// The malformed-input satellite: truncated, corrupted and non-finite
/// `diva-scenario/v1` documents produce errors, never panics.
#[test]
fn malformed_documents_error_instead_of_panicking() {
    let fresh = run_experiment(&toy(Arc::default()), &RunOptions::default()).expect("clean run");
    let doc = to_json(&fresh);

    // Empty and truncated-at-every-boundary inputs.
    assert!(parse_scenario_json("").is_err());
    assert!(parse_scenario_json("{").is_err());
    for frac in [1, 2, 3] {
        let cut = doc.len() * frac / 4;
        // Stay on a char boundary (the doc is ASCII, but be explicit).
        let truncated = &doc[..cut];
        assert!(
            parse_scenario_json(truncated).is_err(),
            "truncation at {cut} must error"
        );
    }

    // A non-finite numeric literal is corruption, not data.
    let bad = doc.replacen("\"v\": 1,", "\"v\": NaN,", 1);
    assert_ne!(bad, doc, "fixture metric v=1 exists");
    let err = parse_scenario_json(&bad).expect_err("NaN literal");
    assert!(err.contains("non-finite"), "{err}");
    let inf = doc.replacen("\"v\": 1,", "\"v\": inf,", 1);
    assert!(parse_scenario_json(&inf).is_err());

    // Duplicate cell coordinates are corruption too.
    let row = "{\"name\": \"ft_toy\", \"model\": \"m0\", \"point\": \"p0\", \
               \"policy\": \"fixed\", \"v\": 1, \"ratio\": 1}";
    let dup = doc.replacen(row, &format!("{row},\n    {row}"), 1);
    assert_ne!(dup, doc, "fixture row exists verbatim");
    let err = parse_scenario_json(&dup).expect_err("duplicate coordinates");
    assert!(err.contains("duplicate cell coordinates"), "{err}");
    assert!(err.contains("model=m0|point=p0"), "{err}");
}

/// Unknown scenarios surface the typed error with the available list.
#[test]
fn unknown_scenario_is_a_typed_error() {
    let err = diva_bench::scenario::run_with("no_such_scenario", &RunOptions::default())
        .expect_err("unknown");
    let ScenarioError::UnknownScenario { name, available } = &err else {
        panic!("expected UnknownScenario, got {err}");
    };
    assert_eq!(name, "no_such_scenario");
    assert!(available.iter().any(|s| s == "fig13"));
    assert_eq!(err.exit_code(), 1);
}
