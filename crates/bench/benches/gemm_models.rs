//! Microbenchmarks of the analytic GEMM timing models — the hot path of
//! every figure harness (each full-model simulation evaluates these closed
//! forms thousands of times).

use std::hint::black_box;

use diva_arch::{AcceleratorConfig, Dataflow, GemmShape};
use diva_bench::harness::Harness;
use diva_sim::Simulator;

fn main() {
    let mut h = Harness::new("gemm_models");

    let shapes = [
        GemmShape::new(8192, 1152, 128),  // conv forward
        GemmShape::new(1152, 256, 128),   // conv per-example grad
        GemmShape::new(768, 1, 768),      // MLP per-example grad
        GemmShape::new(4096, 4096, 4096), // large square
    ];
    for df in Dataflow::ALL {
        let sim = Simulator::new(AcceleratorConfig::tpu_v3_like(df)).unwrap();
        h.bench(&format!("gemm_timing/{}", df.label()), || {
            let mut acc = 0u64;
            for &s in &shapes {
                acc += sim.gemm_timing(black_box(s), 32, true).total_cycles;
            }
            acc
        });
    }

    let sim = Simulator::new(AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct)).unwrap();
    h.bench("compute_cycles/outer_product", || {
        sim.compute_cycles(black_box(GemmShape::new(4608, 16, 512)))
    });
}
