//! Criterion microbenchmarks of the analytic GEMM timing models — the hot
//! path of every figure harness (each full-model simulation evaluates these
//! closed forms thousands of times).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use diva_arch::{AcceleratorConfig, Dataflow, GemmShape};
use diva_sim::Simulator;

fn bench_gemm_timing(c: &mut Criterion) {
    let shapes = [
        GemmShape::new(8192, 1152, 128),  // conv forward
        GemmShape::new(1152, 256, 128),   // conv per-example grad
        GemmShape::new(768, 1, 768),      // MLP per-example grad
        GemmShape::new(4096, 4096, 4096), // large square
    ];
    let mut group = c.benchmark_group("gemm_timing");
    for df in Dataflow::ALL {
        let sim = Simulator::new(AcceleratorConfig::tpu_v3_like(df)).unwrap();
        group.bench_function(df.label(), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &s in &shapes {
                    acc += sim.gemm_timing(black_box(s), 32, true).total_cycles;
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_compute_cycles(c: &mut Criterion) {
    let sim =
        Simulator::new(AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct)).unwrap();
    c.bench_function("compute_cycles/outer_product", |b| {
        b.iter(|| sim.compute_cycles(black_box(GemmShape::new(4608, 16, 512))))
    });
}

criterion_group!(benches, bench_gemm_timing, bench_compute_cycles);
criterion_main!(benches);
