//! Microbenchmarks of the register-level functional PE-array simulators
//! (these bound the size of the validation sweeps we can run).

use std::hint::black_box;

use diva_bench::harness::Harness;
use diva_pearray::{AdderTree, OsArray, OuterProductArray, Ppu, WsArray};
use diva_tensor::{DivaRng, Tensor};

fn operands(m: usize, k: usize, n: usize) -> (Tensor, Tensor) {
    let mut rng = DivaRng::seed_from_u64(1);
    (
        Tensor::uniform(&[m, k], -1.0, 1.0, &mut rng),
        Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng),
    )
}

fn main() {
    let mut h = Harness::new("functional_arrays");

    let (a, b) = operands(32, 16, 32);
    let ws = WsArray::new(16, 16, 8);
    h.bench("gemm_32x16x32/ws_16x16", || {
        ws.gemm(black_box(&a), black_box(&b)).cycles
    });
    let os = OsArray::new(16, 16, 8);
    h.bench("gemm_32x16x32/os_16x16", || {
        os.gemm(black_box(&a), black_box(&b)).cycles
    });
    let op = OuterProductArray::new(16, 16, 8);
    h.bench("gemm_32x16x32/outer_product_16x16", || {
        op.gemm(black_box(&a), black_box(&b)).cycles
    });

    let mut rng = DivaRng::seed_from_u64(2);
    let tile = Tensor::uniform(&[128, 128], -1.0, 1.0, &mut rng);
    let ppu = Ppu::new(128, 8);
    h.bench("ppu_sum_of_squares_128x128", || {
        ppu.sum_of_squares(black_box(&tile)).value
    });

    let vectors: Vec<Vec<f32>> = (0..128).map(|_| vec![1.0f32; 128]).collect();
    h.bench("adder_tree_stream_128x128", || {
        let mut tree = AdderTree::new(128);
        tree.reduce_stream(black_box(&vectors)).1
    });
}
