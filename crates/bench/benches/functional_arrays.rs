//! Criterion microbenchmarks of the register-level functional PE-array
//! simulators (these bound the size of the validation sweeps we can run).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use diva_pearray::{AdderTree, OsArray, OuterProductArray, Ppu, WsArray};
use diva_tensor::{DivaRng, Tensor};

fn operands(m: usize, k: usize, n: usize) -> (Tensor, Tensor) {
    let mut rng = DivaRng::seed_from_u64(1);
    (
        Tensor::uniform(&[m, k], -1.0, 1.0, &mut rng),
        Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng),
    )
}

fn bench_arrays(c: &mut Criterion) {
    let (a, b) = operands(32, 16, 32);
    let mut group = c.benchmark_group("functional_gemm_32x16x32");
    group.bench_function("ws_16x16", |bch| {
        let arr = WsArray::new(16, 16, 8);
        bch.iter(|| arr.gemm(black_box(&a), black_box(&b)).cycles)
    });
    group.bench_function("os_16x16", |bch| {
        let arr = OsArray::new(16, 16, 8);
        bch.iter(|| arr.gemm(black_box(&a), black_box(&b)).cycles)
    });
    group.bench_function("outer_product_16x16", |bch| {
        let arr = OuterProductArray::new(16, 16, 8);
        bch.iter(|| arr.gemm(black_box(&a), black_box(&b)).cycles)
    });
    group.finish();
}

fn bench_ppu(c: &mut Criterion) {
    let mut rng = DivaRng::seed_from_u64(2);
    let tile = Tensor::uniform(&[128, 128], -1.0, 1.0, &mut rng);
    let ppu = Ppu::new(128, 8);
    c.bench_function("ppu_sum_of_squares_128x128", |b| {
        b.iter(|| ppu.sum_of_squares(black_box(&tile)).value)
    });

    let vectors: Vec<Vec<f32>> = (0..128).map(|_| vec![1.0f32; 128]).collect();
    c.bench_function("adder_tree_stream_128x128", |b| {
        b.iter(|| {
            let mut tree = AdderTree::new(128);
            tree.reduce_stream(black_box(&vectors)).1
        })
    });
}

criterion_group!(benches, bench_arrays, bench_ppu);
criterion_main!(benches);
