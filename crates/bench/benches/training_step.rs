//! Criterion benchmarks of full-model simulation: lowering a training step
//! to ops and timing it end-to-end (one Figure 13 bar = one of these).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use diva_core::{Accelerator, DesignPoint};
use diva_workload::{zoo, Algorithm};

fn bench_lowering(c: &mut Criterion) {
    let model = zoo::resnet50();
    c.bench_function("lower/resnet50_dpsgdr_b32", |b| {
        b.iter(|| model.lower(black_box(Algorithm::DpSgdReweighted), 32).len())
    });
}

fn bench_full_step(c: &mut Criterion) {
    let model = zoo::resnet50();
    let mut group = c.benchmark_group("simulate_step/resnet50_b32");
    for dp in [DesignPoint::WsBaseline, DesignPoint::Diva] {
        let accel = Accelerator::from_design_point(dp);
        group.bench_function(dp.label(), |b| {
            b.iter(|| {
                accel
                    .run(black_box(&model), Algorithm::DpSgdReweighted, 32)
                    .timing
                    .total_cycles()
            })
        });
    }
    group.finish();
}

fn bench_memory_model(c: &mut Criterion) {
    let model = zoo::bert_large();
    c.bench_function("max_batch/bert_large_dpsgd", |b| {
        b.iter(|| model.max_batch_pow2(Algorithm::DpSgd, black_box(16 * (1 << 30))))
    });
}

criterion_group!(benches, bench_lowering, bench_full_step, bench_memory_model);
criterion_main!(benches);
