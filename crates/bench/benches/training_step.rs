//! Benchmarks of full-model simulation: lowering a training step to ops and
//! timing it end-to-end (one Figure 13 bar = one of these).

use std::hint::black_box;

use diva_bench::harness::Harness;
use diva_core::{Accelerator, DesignPoint};
use diva_workload::{zoo, Algorithm};

fn main() {
    let mut h = Harness::new("training_step");

    let model = zoo::resnet50();
    h.bench("lower/resnet50_dpsgdr_b32", || {
        model.lower(black_box(Algorithm::DpSgdReweighted), 32).len()
    });

    for dp in [DesignPoint::WsBaseline, DesignPoint::Diva] {
        let accel = Accelerator::from_design_point(dp).unwrap();
        h.bench(
            &format!("simulate_step/resnet50_b32/{}", dp.label()),
            || {
                accel
                    .run(black_box(&model), Algorithm::DpSgdReweighted, 32)
                    .timing
                    .total_cycles()
            },
        );
    }

    let bert = zoo::bert_large();
    h.bench("max_batch/bert_large_dpsgd", || {
        bert.max_batch_pow2(Algorithm::DpSgd, black_box(16 * (1 << 30)))
    });
}
