//! Benchmarks of the *functional* DP machinery: per-example gradient
//! computation, the two DP-SGD variants, and the RDP accountant.

use std::hint::black_box;

use diva_bench::harness::Harness;
use diva_dp::{DpSgdConfig, DpTrainer, RdpAccountant, TrainingAlgorithm};
use diva_nn::{Layer, Network};
use diva_tensor::{DivaRng, Tensor};

fn mlp(rng: &mut DivaRng) -> Network {
    Network::new(vec![
        Layer::dense(64, 128, true, rng),
        Layer::relu(),
        Layer::dense(128, 10, true, rng),
    ])
}

fn main() {
    let mut h = Harness::new("dp_algorithms");

    for alg in TrainingAlgorithm::ALL {
        let mut rng = DivaRng::seed_from_u64(7);
        let mut net = mlp(&mut rng);
        let x = Tensor::uniform(&[32, 64], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
        let trainer = DpTrainer::new(DpSgdConfig {
            algorithm: alg,
            clip_norm: 1.0,
            noise_multiplier: 1.1,
            learning_rate: 0.1,
        });
        h.bench(&format!("functional_step_mlp_b32/{}", alg.label()), || {
            trainer
                .step(&mut net, black_box(&x), &labels, &mut rng)
                .mean_loss
        });
    }

    let acc = RdpAccountant::new(256.0 / 60_000.0, 1.1);
    h.bench("rdp_epsilon/mnist_scale", || {
        acc.epsilon(black_box(14_000), 1e-5)
    });
}
