//! Compute-backend throughput: the blocked/parallel kernels versus the
//! seed's scalar loops, on the shapes the acceptance criteria track —
//! 256³ matmul, a conv forward/weight-gradient pair, a full DP-SGD(R)
//! training step at batch 32 (MLP and CNN), the fused patch-reuse conv
//! first backward versus the naive per-example `im2col` path it replaced,
//! and the accounting engine's batch-ε API versus a naive per-count query
//! loop. Results are written to `BENCH_perf.json` at the workspace root
//! (override with `DIVA_BENCH_OUT`) so subsequent PRs have a trajectory to
//! regress against (`bench_regress` gates the matmul/conv/DP-step/ε rows
//! in CI).
//!
//! Backend sweep: `serial` and `parallel(auto)` rows are recorded for the
//! step benchmarks; on a single-core host the two coincide and the blocked
//! kernel carries the whole speedup.
//!
//! SIMD policy: the conv / DP-step / ε standard rows are measured with the
//! explicit SIMD kernels **disabled** (`set_simd_enabled(false)` — a no-op
//! without the `simd` feature), so their speedups are comparable whether or
//! not the bench was compiled with the feature; that is what lets the CI
//! regression gate, which builds without features, diff them against a
//! record generated with `--features simd`. The matmul section is the
//! exception: its `serial` / `parallel` rows record **production dispatch**
//! (AVX-512 → AVX2 → safe, whatever this build and host resolve to) so the
//! recorded milliseconds reflect what `matmul` actually delivers, and those
//! rows carry no speedup metric (the absolute number is ISA-dependent, so
//! gating its ratio across heterogeneous runners would be noise). The
//! cross-config `serial_safe` / `serial_safe_noreorder` rows keep the safe
//! kernel and carry `speedup_vs_scalar`; those are what `bench_regress`
//! gates (the noreorder row pins the L1 B-strip-grouping delta — see
//! `diva_tensor::gemm::set_l1_reorder`).
//!
//! Nested-scaling row: `dpsgd_step_b32_nested` runs the full DP-SGD step
//! inside an outer 2-cell parallel region — the scenario-runner shape —
//! with hierarchical nested scheduling on versus off. The `nested_on` row
//! carries `speedup_vs_nonested`, gated by `bench_regress`: a change that
//! silently re-serializes nested regions shows up as that ratio collapsing
//! on multi-core hosts (on a single-core host both sides coincide at 1.0).

use std::hint::black_box;

use diva_bench::harness::Harness;
use diva_bench::perf::{PerfRecord, PerfSink};
use diva_dp::{
    batch_epsilons, event_epsilon, AccountantKind, DpEvent, DpSgdConfig, DpTrainer,
    TrainingAlgorithm,
};
use diva_nn::{slice_example, Conv2dLayer, GradMode, Layer, Network, ParamGrads};
use std::sync::Mutex;

use diva_tensor::{
    conv2d, conv2d_backward_data, conv2d_backward_weight, matmul, matmul_reference, parallel,
    set_l1_reorder, set_scalar_reference_mode, set_simd_enabled, Backend, Conv2dGeom, DivaRng,
    Tensor,
};

/// GFLOP/s for a GEMM of the given shape at the measured seconds/iter.
fn gflops(m: usize, k: usize, n: usize, secs: f64) -> f64 {
    2.0 * (m as f64) * (k as f64) * (n as f64) / secs / 1e9
}

fn bench_matmul(h: &mut Harness, sink: &mut PerfSink) {
    const D: usize = 256;
    let mut rng = DivaRng::seed_from_u64(11);
    let a = Tensor::uniform(&[D, D], -1.0, 1.0, &mut rng);
    let b = Tensor::uniform(&[D, D], -1.0, 1.0, &mut rng);

    h.bench("matmul_256/scalar", || matmul_reference(black_box(&a), &b));

    // Production-dispatch rows: whatever kernel this build and host resolve
    // to (AVX-512 → AVX2 → safe). These record what `matmul` actually
    // delivers; their absolute numbers are ISA-dependent, so they carry no
    // speedup metric and are not gated (see the module docs).
    set_simd_enabled(true);
    h.bench("matmul_256/blocked_serial", || {
        Backend::serial().install(|| matmul(black_box(&a), &b))
    });
    h.bench("matmul_256/blocked_parallel", || {
        Backend::auto().install(|| matmul(black_box(&a), &b))
    });

    // Cross-config rows: explicit kernels off, so the numbers are
    // comparable whether or not the bench was compiled with `simd`. The
    // noreorder variant additionally disables the L1 B-strip grouping —
    // its delta versus `safe_serial` is the reorder's contribution on this
    // host (results are bit-identical either way).
    set_simd_enabled(false);
    h.bench("matmul_256/safe_serial", || {
        Backend::serial().install(|| matmul(black_box(&a), &b))
    });
    set_l1_reorder(false);
    h.bench("matmul_256/safe_serial_noreorder", || {
        Backend::serial().install(|| matmul(black_box(&a), &b))
    });
    set_l1_reorder(true);

    let scalar = h.get("matmul_256/scalar").unwrap().secs_per_iter;
    for (short, backend, gate) in [
        ("scalar", "scalar", true),
        ("blocked_serial", "serial", false),
        ("blocked_parallel", "parallel", false),
        ("safe_serial", "serial_safe", true),
        ("safe_serial_noreorder", "serial_safe_noreorder", true),
    ] {
        let secs = h.get(&format!("matmul_256/{short}")).unwrap().secs_per_iter;
        let mut record = PerfRecord::new("matmul_256x256x256")
            .tag("backend", backend)
            .metric("ms", secs * 1e3)
            .metric("gflops", gflops(D, D, D, secs));
        if gate {
            record = record.metric("speedup_vs_scalar", scalar / secs);
        }
        sink.push(record);
    }
}

fn bench_conv(h: &mut Harness, sink: &mut PerfSink) {
    // A mid-network ResNet-ish shape: the forward GEMM is
    // (B·P·Q, Cin·R·S, Cout) = (2048, 576, 64).
    let geom = Conv2dGeom::new(64, 64, 3, 1, 1, 16, 16);
    let mut rng = DivaRng::seed_from_u64(12);
    let x = Tensor::uniform(&[8, 64, 16, 16], -1.0, 1.0, &mut rng);
    let w = Tensor::uniform(&[64, 64, 3, 3], -0.5, 0.5, &mut rng);
    let y = conv2d(&x, &w, &geom);
    let gy = Tensor::uniform(y.shape().dims(), -1.0, 1.0, &mut rng);
    let (p, q) = geom.out_hw();
    let macs = 8 * p * q * geom.patch_len() * geom.cout;

    set_scalar_reference_mode(true);
    h.bench("conv_64c_b8/scalar", || {
        let f = conv2d(black_box(&x), &w, &geom);
        let g = conv2d_backward_weight(&x, black_box(&gy), &geom);
        (f, g)
    });
    set_scalar_reference_mode(false);
    h.bench("conv_64c_b8/blocked_serial", || {
        Backend::serial().install(|| {
            let f = conv2d(black_box(&x), &w, &geom);
            let g = conv2d_backward_weight(&x, black_box(&gy), &geom);
            (f, g)
        })
    });
    h.bench("conv_64c_b8/blocked_parallel", || {
        Backend::auto().install(|| {
            let f = conv2d(black_box(&x), &w, &geom);
            let g = conv2d_backward_weight(&x, black_box(&gy), &geom);
            (f, g)
        })
    });

    let scalar = h.get("conv_64c_b8/scalar").unwrap().secs_per_iter;
    for (short, backend) in [
        ("scalar", "scalar"),
        ("blocked_serial", "serial"),
        ("blocked_parallel", "parallel"),
    ] {
        let secs = h
            .get(&format!("conv_64c_b8/{short}"))
            .unwrap()
            .secs_per_iter;
        sink.push(
            PerfRecord::new("conv2d_fwd_plus_wgrad_64c_16x16_b8")
                .tag("backend", backend)
                .metric("ms", secs * 1e3)
                // Forward + weight-gradient are two GEMMs of equal MAC count.
                .metric("gflops", 2.0 * 2.0 * macs as f64 / secs / 1e9)
                .metric("speedup_vs_scalar", scalar / secs),
        );
    }
}

/// An MLP sized so its GEMMs exercise the blocked path (the per-step cost
/// the paper's Figure 5 decomposes).
fn step_net(rng: &mut DivaRng) -> Network {
    Network::new(vec![
        Layer::dense(256, 512, true, rng),
        Layer::relu(),
        Layer::dense(512, 256, true, rng),
        Layer::relu(),
        Layer::dense(256, 10, true, rng),
    ])
}

fn bench_dp_step(h: &mut Harness, sink: &mut PerfSink) {
    const B: usize = 32;
    for alg in [TrainingAlgorithm::DpSgdReweighted, TrainingAlgorithm::DpSgd] {
        let label = match alg {
            TrainingAlgorithm::DpSgd => "dpsgd_step_b32",
            _ => "dpsgdr_step_b32",
        };
        let mut rng = DivaRng::seed_from_u64(13);
        let mut net = step_net(&mut rng);
        let x = Tensor::uniform(&[B, 256], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..B).map(|i| i % 10).collect();
        let config = DpSgdConfig {
            algorithm: alg,
            clip_norm: 1.0,
            noise_multiplier: 1.1,
            learning_rate: 0.05,
        };

        set_scalar_reference_mode(true);
        let scalar_trainer = DpTrainer::builder()
            .config(config)
            .backend(Backend::serial())
            .build();
        h.bench(&format!("{label}/scalar"), || {
            scalar_trainer
                .step(&mut net, black_box(&x), &labels, &mut rng)
                .mean_loss
        });
        set_scalar_reference_mode(false);
        let serial_trainer = DpTrainer::builder()
            .config(config)
            .backend(Backend::serial())
            .build();
        h.bench(&format!("{label}/blocked_serial"), || {
            serial_trainer
                .step(&mut net, black_box(&x), &labels, &mut rng)
                .mean_loss
        });
        let parallel_trainer = DpTrainer::builder()
            .config(config)
            .backend(Backend::auto())
            .build();
        h.bench(&format!("{label}/blocked_parallel"), || {
            parallel_trainer
                .step(&mut net, black_box(&x), &labels, &mut rng)
                .mean_loss
        });

        let scalar = h.get(&format!("{label}/scalar")).unwrap().secs_per_iter;
        for (short, backend) in [
            ("scalar", "scalar"),
            ("blocked_serial", "serial"),
            ("blocked_parallel", "parallel"),
        ] {
            let secs = h.get(&format!("{label}/{short}")).unwrap().secs_per_iter;
            sink.push(
                PerfRecord::new(label)
                    .tag("backend", backend)
                    .tag("algorithm", alg.label())
                    .metric("ms", secs * 1e3)
                    .metric("steps_per_sec", 1.0 / secs)
                    .metric("speedup_vs_scalar", scalar / secs),
            );
        }
    }
}

/// The nested-scaling canary (see the module docs): full DP-SGD steps on
/// two independent model replicas inside an outer parallel region — the
/// shape the scenario runner's cell fan-out produces — with hierarchical
/// nested scheduling on versus off. Under the old scheduler the inner
/// per-example fan-out always collapsed to serial inside the outer region;
/// the `nested_on` row's `speedup_vs_nonested` pins that this no longer
/// happens (it reads ~1.0 on a single-core host, > 1 with real workers).
fn bench_nested_step(h: &mut Harness, sink: &mut PerfSink) {
    const B: usize = 32;
    const CELLS: usize = 2;
    let label = "dpsgd_step_b32_nested";
    let mut rng = DivaRng::seed_from_u64(16);
    let x = Tensor::uniform(&[B, 256], -1.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..B).map(|i| i % 10).collect();
    let config = DpSgdConfig {
        algorithm: TrainingAlgorithm::DpSgd,
        clip_norm: 1.0,
        noise_multiplier: 1.1,
        learning_rate: 0.05,
    };
    // One replica per cell so the outer tasks share nothing mutable; the
    // Mutex is uncontended (each task locks only its own cell).
    let cells: Vec<Mutex<(Network, DivaRng)>> = (0..CELLS)
        .map(|c| {
            let mut cell_rng = DivaRng::seed_from_u64(17 + c as u64);
            let net = step_net(&mut cell_rng);
            Mutex::new((net, cell_rng))
        })
        .collect();
    let trainer = DpTrainer::builder()
        .config(config)
        .backend(Backend::auto())
        .build();
    let run_cells = || {
        parallel::par_map(CELLS, |c| {
            let mut cell = cells[c].lock().unwrap();
            let (net, cell_rng) = &mut *cell;
            trainer
                .step(net, black_box(&x), &labels, cell_rng)
                .mean_loss
        })
    };

    parallel::set_nested_parallelism(false);
    h.bench(&format!("{label}/nested_off"), run_cells);
    parallel::set_nested_parallelism(true);
    h.bench(&format!("{label}/nested_on"), run_cells);

    let off = h.get(&format!("{label}/nested_off")).unwrap().secs_per_iter;
    for (short, backend) in [("nested_off", "nested_off"), ("nested_on", "nested_on")] {
        let secs = h.get(&format!("{label}/{short}")).unwrap().secs_per_iter;
        let mut record = PerfRecord::new(label)
            .tag("backend", backend)
            .tag("algorithm", "DP-SGD")
            .metric("ms", secs * 1e3)
            .metric("steps_per_sec", CELLS as f64 / secs);
        if short == "nested_on" {
            record = record.metric("speedup_vs_nonested", off / secs);
        }
        sink.push(record);
    }
}

/// A small CNN whose first-layer per-example weight-gradient GEMM
/// (`(C_out, P·Q, C_in·R·S) = (16, 196, 72)`) routes through the
/// blocked/packed kernel, so the patch-reuse and pack-cache machinery sits
/// on the measured path.
fn conv_step_net(rng: &mut DivaRng) -> Network {
    Network::new(vec![
        Layer::conv2d(8, 16, 3, 1, 1, 14, 14, rng),
        Layer::relu(),
        Layer::max_pool2d(2),
        Layer::flatten(),
        Layer::dense(16 * 7 * 7, 10, true, rng),
    ])
}

/// Full DP-SGD(R) training steps on the CNN at batch 32 — the `conv
/// dp-step` rows of `BENCH_perf.json`.
fn bench_conv_dp_step(h: &mut Harness, sink: &mut PerfSink) {
    const B: usize = 32;
    let label = "conv_dpsgdr_step_b32";
    let mut rng = DivaRng::seed_from_u64(14);
    let mut net = conv_step_net(&mut rng);
    let x = Tensor::uniform(&[B, 8, 14, 14], -1.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..B).map(|i| i % 10).collect();
    let config = DpSgdConfig {
        algorithm: TrainingAlgorithm::DpSgdReweighted,
        clip_norm: 1.0,
        noise_multiplier: 1.1,
        learning_rate: 0.05,
    };

    set_scalar_reference_mode(true);
    let scalar_trainer = DpTrainer::builder()
        .config(config)
        .backend(Backend::serial())
        .build();
    h.bench(&format!("{label}/scalar"), || {
        scalar_trainer
            .step(&mut net, black_box(&x), &labels, &mut rng)
            .mean_loss
    });
    set_scalar_reference_mode(false);
    let serial_trainer = DpTrainer::builder()
        .config(config)
        .backend(Backend::serial())
        .build();
    h.bench(&format!("{label}/blocked_serial"), || {
        serial_trainer
            .step(&mut net, black_box(&x), &labels, &mut rng)
            .mean_loss
    });
    let parallel_trainer = DpTrainer::builder()
        .config(config)
        .backend(Backend::auto())
        .build();
    h.bench(&format!("{label}/blocked_parallel"), || {
        parallel_trainer
            .step(&mut net, black_box(&x), &labels, &mut rng)
            .mean_loss
    });

    let scalar = h.get(&format!("{label}/scalar")).unwrap().secs_per_iter;
    for (short, backend) in [
        ("scalar", "scalar"),
        ("blocked_serial", "serial"),
        ("blocked_parallel", "parallel"),
    ] {
        let secs = h.get(&format!("{label}/{short}")).unwrap().secs_per_iter;
        sink.push(
            PerfRecord::new(label)
                .tag("backend", backend)
                .tag("algorithm", "DP-SGD(R)")
                .metric("ms", secs * 1e3)
                .metric("steps_per_sec", 1.0 / secs)
                .metric("speedup_vs_scalar", scalar / secs),
        );
    }
}

/// DP-SGD(R)'s *first* backward (the `NormOnly` pass) on a first-layer
/// convolution at batch 32: the fused patch-reuse path versus the naive
/// per-example `im2col` path this PR replaced.
///
/// The naive side reproduces the pre-fusion semantics exactly: derive the
/// (dead) input gradient — the pre-fusion network always did — then, per
/// example, slice the batch, re-lower the example with `im2col` inside
/// `conv2d_backward_weight`, and take norms. The fused side is the current
/// layer path: strided GEMM windows over the patch buffer lowered in the
/// forward, dead input gradient skipped.
/// One example's pre-fusion `NormOnly` contribution: slice, re-lower with
/// `im2col` (inside `conv2d_backward_weight`), take weight + bias norms.
/// Shared by the timed naive closure and the divergence sanity check so
/// the published speedup and the checked semantics cannot drift apart.
fn naive_example_norm(x: &Tensor, gy: &Tensor, geom: &Conv2dGeom, i: usize) -> f64 {
    let xi = slice_example(x, i);
    let gi = slice_example(gy, i);
    let gw = conv2d_backward_weight(&xi, &gi, geom);
    let dims = gi.shape().dims().to_vec();
    let (c, p, q) = (dims[1], dims[2], dims[3]);
    let mut bias_sq = 0.0f64;
    for ci in 0..c {
        let base = ci * p * q;
        let s: f32 = gi.data()[base..base + p * q].iter().sum();
        bias_sq += f64::from(s) * f64::from(s);
    }
    gw.squared_norm() + bias_sq
}

fn bench_conv_first_backward(h: &mut Harness, sink: &mut PerfSink) {
    const B: usize = 32;
    let label = "conv_dpsgdr_first_backward_b32";
    let geom = Conv2dGeom::new(8, 16, 3, 1, 1, 14, 14);
    let mut rng = DivaRng::seed_from_u64(15);
    let layer = Conv2dLayer::new(8, 16, 3, 1, 1, 14, 14, &mut rng);
    let x = Tensor::uniform(&[B, 8, 14, 14], -1.0, 1.0, &mut rng);
    let (y, cache) = layer.forward(&x);
    let gy = Tensor::uniform(y.shape().dims(), -1.0, 1.0, &mut rng);
    let weight = layer.params()[0].clone();

    h.bench(&format!("{label}/naive"), || {
        let gx = conv2d_backward_data(black_box(&gy), &weight, &geom);
        let norms = parallel::par_map(B, |i| naive_example_norm(&x, &gy, &geom, i));
        (gx, norms)
    });
    h.bench(&format!("{label}/fused"), || {
        layer.backward_opt(&cache, black_box(&gy), GradMode::NormOnly, false)
    });

    // Sanity: both paths agree on the norms (bit parity is pinned by the
    // dedicated test suite; here we just refuse to publish numbers for
    // diverging computations).
    let fused = layer.backward_opt(&cache, &gy, GradMode::NormOnly, false);
    let ParamGrads::SqNorms(fused_norms) = fused.grads else {
        panic!("NormOnly must yield norms");
    };
    let naive_norms = parallel::par_map(B, |i| naive_example_norm(&x, &gy, &geom, i));
    assert_eq!(
        fused_norms, naive_norms,
        "fused/naive first-backward diverged"
    );

    let naive = h.get(&format!("{label}/naive")).unwrap().secs_per_iter;
    for short in ["naive", "fused"] {
        let secs = h.get(&format!("{label}/{short}")).unwrap().secs_per_iter;
        sink.push(
            PerfRecord::new(label)
                .tag("backend", short)
                .tag("algorithm", "DP-SGD(R)")
                .metric("ms", secs * 1e3)
                .metric("speedup_vs_naive", naive / secs),
        );
    }
}

/// Accounting throughput: ε for a schedule of checkpoint step counts under
/// both accountants — the naive path (one full `event_epsilon` query per
/// count, each recomposing from scratch) versus the vectorized
/// `batch_epsilons` (one composition walk, binary-power cache, running
/// prefix across the sorted counts). The `dp_eps_throughput_*` rows this
/// emits are gated by `bench_regress`, so a change that destroys the
/// prefix-reuse win (or quietly routes the batch API through the naive
/// loop) fails CI.
fn bench_eps_throughput(h: &mut Harness, sink: &mut PerfSink) {
    // The MNIST configuration the golden tests pin (q = 600/60000).
    const Q: f64 = 0.01;
    const SIGMA: f64 = 1.0;
    const DELTA: f64 = 1e-5;
    let counts: Vec<u64> = (1..=16).map(|i| i * 250).collect();
    let step = DpEvent::poisson_sampled(Q, DpEvent::gaussian(SIGMA));

    for kind in [AccountantKind::Rdp, AccountantKind::Pld] {
        let label = format!("dp_eps_throughput_{}", kind.label());

        // Refuse to publish a speedup for diverging computations: the two
        // paths must agree on every ε before their times are compared
        // (loose tolerance — the PLD sides take different truncation
        // paths; see the batch tests for the tight contracts).
        let naive_eps: Vec<f64> = counts
            .iter()
            .map(|&t| event_epsilon(kind, &DpEvent::dp_sgd(Q, SIGMA, t), DELTA).unwrap())
            .collect();
        let batch_eps = batch_epsilons(kind, &step, &counts, DELTA).unwrap();
        for (i, (n, b)) in naive_eps.iter().zip(&batch_eps).enumerate() {
            assert!(
                (n - b).abs() <= 1e-3 * n.max(1.0),
                "{label}: naive/batch diverged at {} steps: {n} vs {b}",
                counts[i]
            );
        }

        h.bench(&format!("{label}/naive"), || {
            counts
                .iter()
                .map(|&t| {
                    event_epsilon(kind, &DpEvent::dp_sgd(Q, SIGMA, black_box(t)), DELTA).unwrap()
                })
                .collect::<Vec<f64>>()
        });
        h.bench(&format!("{label}/batch"), || {
            batch_epsilons(kind, black_box(&step), &counts, DELTA).unwrap()
        });

        let naive = h.get(&format!("{label}/naive")).unwrap().secs_per_iter;
        for short in ["naive", "batch"] {
            let secs = h.get(&format!("{label}/{short}")).unwrap().secs_per_iter;
            sink.push(
                PerfRecord::new(&label)
                    .tag("backend", short)
                    .tag("accountant", kind.label())
                    .metric("ms", secs * 1e3)
                    .metric("eps_per_sec", counts.len() as f64 / secs)
                    .metric("speedup_vs_naive", naive / secs),
            );
        }
    }
}

fn main() {
    // Conv / step / ε rows are measured with the portable safe kernel
    // regardless of how the bench was compiled (see the module docs); the
    // matmul section toggles simd itself for its production-dispatch rows
    // and leaves it disabled for everything after.
    set_simd_enabled(false);
    let mut h = Harness::new("compute_backend");
    let mut sink = PerfSink::new();
    sink.push(
        PerfRecord::new("host")
            .tag("backend", "info")
            .metric("threads", parallel::max_threads() as f64),
    );
    bench_matmul(&mut h, &mut sink);
    bench_conv(&mut h, &mut sink);
    bench_dp_step(&mut h, &mut sink);
    bench_nested_step(&mut h, &mut sink);
    bench_conv_dp_step(&mut h, &mut sink);
    bench_conv_first_backward(&mut h, &mut sink);
    bench_eps_throughput(&mut h, &mut sink);
    match sink.write(None) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_perf.json: {e}"),
    }
}
