//! The `BENCH_perf.json` emitter: a machine-readable record of
//! compute-backend throughput, written by the `compute_backend` bench
//! target so successive PRs can compare against a stored trajectory.
//!
//! The format is deliberately flat — a list of records, each a name plus
//! numeric metrics — and the writer is a ~60-line hand-rolled JSON emitter
//! because serde is not in the approved dependency set.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One benchmark record: a name, a set of string tags, and numeric metrics.
#[derive(Clone, Debug, Default)]
pub struct PerfRecord {
    /// Record id, e.g. `"matmul_256x256x256"`.
    pub name: String,
    /// String tags, e.g. `("backend", "parallel(8)")`.
    pub tags: Vec<(String, String)>,
    /// Numeric metrics, e.g. `("gflops", 41.2)`.
    pub metrics: Vec<(String, f64)>,
}

impl PerfRecord {
    /// Creates an empty record.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Self::default()
        }
    }

    /// Adds a string tag.
    pub fn tag(mut self, key: &str, value: &str) -> Self {
        self.tags.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a numeric metric (non-finite values are stored as `null`).
    pub fn metric(mut self, key: &str, value: f64) -> Self {
        self.metrics.push((key.to_string(), value));
        self
    }
}

/// Collects [`PerfRecord`]s and serializes them to `BENCH_perf.json`.
#[derive(Clone, Debug, Default)]
pub struct PerfSink {
    records: Vec<PerfRecord>,
}

impl PerfSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: PerfRecord) {
        self.records.push(record);
    }

    /// The default output path: `BENCH_perf.json` at the workspace root
    /// (override with `DIVA_BENCH_OUT`).
    pub fn default_path() -> PathBuf {
        if let Ok(p) = std::env::var("DIVA_BENCH_OUT") {
            return PathBuf::from(p);
        }
        // CARGO_MANIFEST_DIR is crates/bench; the workspace root is two up.
        let manifest = env!("CARGO_MANIFEST_DIR");
        Path::new(manifest).join("../..").join("BENCH_perf.json")
    }

    /// Serializes the sink to a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let threads = diva_tensor::parallel::max_threads();
        let _ = writeln!(out, "  \"schema\": \"diva-bench-perf/v1\",");
        let _ = writeln!(out, "  \"host_threads\": {threads},");
        out.push_str("  \"records\": [\n");
        for (ri, r) in self.records.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(out, "\"name\": {}", json_string(&r.name));
            for (k, v) in &r.tags {
                let _ = write!(out, ", {}: {}", json_string(k), json_string(v));
            }
            for (k, v) in &r.metrics {
                if v.is_finite() {
                    let _ = write!(out, ", {}: {v}", json_string(k));
                } else {
                    let _ = write!(out, ", {}: null", json_string(k));
                }
            }
            out.push('}');
            if ri + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the sink to `path` (the default path if `None`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn write(&self, path: Option<&Path>) -> std::io::Result<PathBuf> {
        let path = path
            .map(Path::to_path_buf)
            .unwrap_or_else(Self::default_path);
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Escapes a string as a JSON string literal (control characters, quotes
/// and backslashes; everything we emit is ASCII identifiers).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_is_well_formed() {
        let mut sink = PerfSink::new();
        sink.push(
            PerfRecord::new("matmul_256")
                .tag("backend", "serial")
                .metric("gflops", 16.5)
                .metric("bad", f64::NAN),
        );
        let json = sink.to_json();
        assert!(json.contains("\"name\": \"matmul_256\""));
        assert!(json.contains("\"backend\": \"serial\""));
        assert!(json.contains("\"gflops\": 16.5"));
        assert!(json.contains("\"bad\": null"));
        // Balanced braces/brackets as a cheap well-formedness proxy.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
