//! The `BENCH_perf.json` emitter: a machine-readable record of
//! compute-backend throughput, written by the `compute_backend` bench
//! target so successive PRs can compare against a stored trajectory.
//!
//! The format is deliberately flat — a list of records, each a name plus
//! numeric metrics — and the writer is a ~60-line hand-rolled JSON emitter
//! because serde is not in the approved dependency set.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One benchmark record: a name, a set of string tags, and numeric metrics.
#[derive(Clone, Debug, Default)]
pub struct PerfRecord {
    /// Record id, e.g. `"matmul_256x256x256"`.
    pub name: String,
    /// String tags, e.g. `("backend", "parallel(8)")`.
    pub tags: Vec<(String, String)>,
    /// Numeric metrics, e.g. `("gflops", 41.2)`.
    pub metrics: Vec<(String, f64)>,
}

impl PerfRecord {
    /// Creates an empty record.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Self::default()
        }
    }

    /// Adds a string tag.
    pub fn tag(mut self, key: &str, value: &str) -> Self {
        self.tags.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a numeric metric (non-finite values are stored as `null`).
    pub fn metric(mut self, key: &str, value: f64) -> Self {
        self.metrics.push((key.to_string(), value));
        self
    }
}

/// Collects [`PerfRecord`]s and serializes them to `BENCH_perf.json`.
#[derive(Clone, Debug, Default)]
pub struct PerfSink {
    records: Vec<PerfRecord>,
}

impl PerfSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: PerfRecord) {
        self.records.push(record);
    }

    /// The default output path: `BENCH_perf.json` at the workspace root
    /// (override with `DIVA_BENCH_OUT`).
    pub fn default_path() -> PathBuf {
        if let Ok(p) = std::env::var("DIVA_BENCH_OUT") {
            return PathBuf::from(p);
        }
        // CARGO_MANIFEST_DIR is crates/bench; the workspace root is two up.
        let manifest = env!("CARGO_MANIFEST_DIR");
        Path::new(manifest).join("../..").join("BENCH_perf.json")
    }

    /// Serializes the sink to a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let threads = diva_tensor::parallel::max_threads();
        let _ = writeln!(out, "  \"schema\": \"diva-bench-perf/v1\",");
        let _ = writeln!(out, "  \"host_threads\": {threads},");
        out.push_str("  \"records\": [\n");
        for (ri, r) in self.records.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(out, "\"name\": {}", json_string(&r.name));
            for (k, v) in &r.tags {
                let _ = write!(out, ", {}: {}", json_string(k), json_string(v));
            }
            for (k, v) in &r.metrics {
                if v.is_finite() {
                    let _ = write!(out, ", {}: {v}", json_string(k));
                } else {
                    let _ = write!(out, ", {}: null", json_string(k));
                }
            }
            out.push('}');
            if ri + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the sink to `path` (the default path if `None`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn write(&self, path: Option<&Path>) -> std::io::Result<PathBuf> {
        let path = path
            .map(Path::to_path_buf)
            .unwrap_or_else(Self::default_path);
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Merges this sink's records into the perf document at `path` (the
    /// default path if `None`) and writes the result: existing rows with
    /// the same `(name, backend tag)` identity are replaced in place,
    /// every other existing row is preserved in its original order, and
    /// rows new to the document append. A missing or unparseable
    /// document is treated as empty. This is how bench drivers that
    /// record different subsystems (`compute_backend`, `serve_load`)
    /// share one `BENCH_perf.json` without clobbering each other.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn write_merged(&self, path: Option<&Path>) -> std::io::Result<PathBuf> {
        let path = path
            .map(Path::to_path_buf)
            .unwrap_or_else(Self::default_path);
        let existing = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| parse_perf_json(&text).ok())
            .unwrap_or_default();
        let identity =
            |r: &PerfRecord| (r.name.clone(), r.tag_value("backend").map(str::to_string));
        let mut merged = PerfSink::new();
        for old in existing {
            let replacement = self.records.iter().find(|r| identity(r) == identity(&old));
            merged.push(replacement.unwrap_or(&old).clone());
        }
        for new in &self.records {
            if !merged.records.iter().any(|r| identity(r) == identity(new)) {
                merged.push(new.clone());
            }
        }
        std::fs::write(&path, merged.to_json())?;
        Ok(path)
    }
}

/// Parses one flat JSON object — `{"key": "string", "key2": 1.5, ...}` —
/// into a [`PerfRecord`]-shaped bag: string values land in `tags`,
/// numeric values in `metrics`, `null`s are dropped, and a `"name"` key
/// (optional here, unlike in a perf document) fills `name`. This is the
/// same scanner the perf and scenario documents use, exposed for callers
/// that speak the workspace's flat-JSON convention over the wire
/// (`diva-serve` request bodies).
///
/// # Errors
///
/// Returns a description of the first malformed construct (missing
/// braces, unterminated string, non-finite number, stray token).
pub fn parse_flat_json_object(text: &str) -> Result<PerfRecord, String> {
    let trimmed = text.trim();
    let body = trimmed
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| "expected a JSON object {...}".to_string())?;
    parse_fields(body)
}

/// Parses a `BENCH_perf.json` document produced by [`PerfSink::to_json`]
/// back into records. This is a minimal scanner for the flat schema this
/// crate itself emits (string and numeric values only, no nesting inside a
/// record), not a general JSON parser; the CI regression gate
/// (`bench_regress`) uses it to diff a fresh run against the committed
/// record.
///
/// # Errors
///
/// Returns a description of the first malformed construct encountered.
pub fn parse_perf_json(text: &str) -> Result<Vec<PerfRecord>, String> {
    let start = text
        .find("\"records\"")
        .ok_or_else(|| "missing \"records\" key".to_string())?;
    let open = text[start..]
        .find('[')
        .ok_or_else(|| "missing records array".to_string())?
        + start;
    let close = text
        .rfind(']')
        .filter(|&c| c > open)
        .ok_or_else(|| "unterminated records array".to_string())?;
    let mut records = Vec::new();
    let mut rest = &text[open + 1..close];
    while let Some(obj_open) = rest.find('{') {
        let obj_close = rest[obj_open..]
            .find('}')
            .ok_or_else(|| "unterminated record object".to_string())?
            + obj_open;
        let body = &rest[obj_open + 1..obj_close];
        records.push(parse_record(body)?);
        rest = &rest[obj_close + 1..];
    }
    Ok(records)
}

/// Parses one `"key": value` comma-separated record body (also used by the
/// scenario JSON parser, whose arrays hold the same flat objects) and
/// requires a `"name"` key.
pub(crate) fn parse_record(body: &str) -> Result<PerfRecord, String> {
    let record = parse_fields(body)?;
    if record.name.is_empty() {
        return Err("record without a name".to_string());
    }
    Ok(record)
}

/// Parses the fields of one flat object body; `"name"` is optional.
fn parse_fields(body: &str) -> Result<PerfRecord, String> {
    let mut record = PerfRecord::default();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let (key, after_key) = parse_json_string(rest)?;
        let after_colon = after_key
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("expected ':' after key {key:?}"))?
            .trim_start();
        let after_value = if after_colon.starts_with('"') {
            let (value, tail) = parse_json_string(after_colon)?;
            if key == "name" {
                record.name = value;
            } else {
                record.tags.push((key, value));
            }
            tail
        } else {
            let end = after_colon.find(',').unwrap_or(after_colon.len());
            let raw = after_colon[..end].trim();
            if raw != "null" {
                let v: f64 = raw
                    .parse()
                    .map_err(|e| format!("bad number {raw:?} for key {key:?}: {e}"))?;
                // Rust's f64 parser accepts "NaN"/"inf", but JSON has no
                // such literals — a document carrying them is corrupt
                // (our emitters write null for non-finite values).
                if !v.is_finite() {
                    return Err(format!(
                        "non-finite number {raw:?} for key {key:?} (non-finite metrics serialize as null)"
                    ));
                }
                record.metrics.push((key, v));
            }
            &after_colon[end..]
        };
        rest = after_value.trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(record)
}

/// Parses a leading JSON string literal, returning it unescaped plus the
/// remaining input.
pub(crate) fn parse_json_string(s: &str) -> Result<(String, &str), String> {
    let inner = s.strip_prefix('"').ok_or_else(|| {
        // Truncate on a char boundary — slicing at a fixed byte offset
        // panics mid-way through a multi-byte character.
        let shown: String = s.chars().take(20).collect();
        format!("expected string at {shown:?}")
    })?;
    let mut out = String::new();
    let mut chars = inner.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &inner[i + 1..])),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, other)) => out.push(other),
                None => return Err("dangling escape".to_string()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

impl PerfRecord {
    /// The value of string tag `key`, if present.
    pub fn tag_value(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value of numeric metric `key`, if present (and finite).
    pub fn metric_value(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Escapes a string as a JSON string literal (control characters, quotes
/// and backslashes; everything we emit is ASCII identifiers). Public
/// because every hand-rolled emitter in the workspace — scenario JSON,
/// the serve layer's response bodies — shares this one escaper.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_is_well_formed() {
        let mut sink = PerfSink::new();
        sink.push(
            PerfRecord::new("matmul_256")
                .tag("backend", "serial")
                .metric("gflops", 16.5)
                .metric("bad", f64::NAN),
        );
        let json = sink.to_json();
        assert!(json.contains("\"name\": \"matmul_256\""));
        assert!(json.contains("\"backend\": \"serial\""));
        assert!(json.contains("\"gflops\": 16.5"));
        assert!(json.contains("\"bad\": null"));
        // Balanced braces/brackets as a cheap well-formedness proxy.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn parse_round_trips_emitted_json() {
        let mut sink = PerfSink::new();
        sink.push(
            PerfRecord::new("conv_dpsgdr_step_b32")
                .tag("backend", "serial")
                .tag("algorithm", "DP-SGD(R)")
                .metric("ms", 12.5)
                .metric("speedup_vs_scalar", 3.25)
                .metric("nan_metric", f64::NAN),
        );
        sink.push(
            PerfRecord::new("host")
                .tag("backend", "info")
                .metric("threads", 4.0),
        );
        let parsed = parse_perf_json(&sink.to_json()).expect("round trip");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "conv_dpsgdr_step_b32");
        assert_eq!(parsed[0].tag_value("backend"), Some("serial"));
        assert_eq!(parsed[0].tag_value("algorithm"), Some("DP-SGD(R)"));
        assert_eq!(parsed[0].metric_value("ms"), Some(12.5));
        assert_eq!(parsed[0].metric_value("speedup_vs_scalar"), Some(3.25));
        // NaN was serialized as null and therefore dropped on parse.
        assert_eq!(parsed[0].metric_value("nan_metric"), None);
        assert_eq!(parsed[1].metric_value("threads"), Some(4.0));
    }

    #[test]
    fn flat_object_parse_accepts_nameless_bodies() {
        let r = parse_flat_json_object(
            "{\"scenario\": \"fig13\", \"models\": \"mobilenet,squeezenet\", \"steps\": 100}",
        )
        .expect("flat object");
        assert_eq!(r.name, "");
        assert_eq!(r.tag_value("scenario"), Some("fig13"));
        assert_eq!(r.metric_value("steps"), Some(100.0));
        assert!(parse_flat_json_object("not json").is_err());
        assert!(parse_flat_json_object("{\"k\": nope}").is_err());
    }

    #[test]
    fn write_merged_replaces_by_identity_and_keeps_foreign_rows() {
        let dir = std::env::temp_dir().join(format!("diva_perf_merge_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("perf.json");

        let mut first = PerfSink::new();
        first.push(
            PerfRecord::new("conv_b32")
                .tag("backend", "pool")
                .metric("ms", 10.0),
        );
        first.push(
            PerfRecord::new("conv_b32")
                .tag("backend", "scalar")
                .metric("ms", 50.0),
        );
        first.write(Some(&path)).unwrap();

        let mut second = PerfSink::new();
        second.push(
            PerfRecord::new("conv_b32")
                .tag("backend", "pool")
                .metric("ms", 8.0),
        );
        second.push(
            PerfRecord::new("serve_eps")
                .tag("backend", "cached")
                .metric("p50_us", 90.0),
        );
        second.write_merged(Some(&path)).unwrap();

        let merged = parse_perf_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(merged.len(), 3);
        // Replaced in place, original order kept, new row appended.
        assert_eq!(merged[0].metric_value("ms"), Some(8.0));
        assert_eq!(merged[1].tag_value("backend"), Some("scalar"));
        assert_eq!(merged[2].name, "serve_eps");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse_perf_json("{}").is_err());
        assert!(parse_perf_json("{\"records\": [{\"ms\": 1.0}]}").is_err());
        assert!(parse_perf_json("{\"records\": [{\"name\": \"x\", \"ms\": bogus}]}").is_err());
    }
}
