//! Deterministic fault injection for the scenario engine's cell
//! supervisor — a test/CLI-gated harness, never active by default.
//!
//! A [`FaultPlan`] names the fault kinds to inject (panics, NaN metric
//! corruption, artificial delays), each with a probability, plus a seed.
//! Whether a given grid cell is hit is a pure function of
//! `(seed, cell key, fault kind)` through an FNV-1a hash: no RNG state,
//! no ordering dependence, identical on every platform and worker-thread
//! count. That determinism is the point — the supervisor, retry policy,
//! journal and `--resume` path can be CI-tested against *reproducible*
//! failures.
//!
//! By default a fault fires only on a cell's **first** attempt, so a
//! retried cell recovers — the deterministic way to exercise the
//! supervisor's bounded retry policy. A [`FaultPlan::sticky`] plan fires
//! on every attempt instead, exercising retry exhaustion.
//!
//! The `diva-report` flags `--inject KIND=PROB[,KIND=PROB...]`,
//! `--fault-seed N` and `--fault-sticky` build a plan from the command
//! line (see [`FaultPlan::parse`]); library users construct one directly.

/// The kinds of fault the harness can inject into a cell evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic before the cell's evaluation closure runs.
    Panic,
    /// Corrupt the evaluated cell's first metric to NaN, so the
    /// supervisor's non-finite classification triggers.
    NanMetric,
    /// Sleep [`DELAY_MILLIS`] before evaluating, so a cell timeout
    /// (`--timeout-ms`) classifies the cell as timed out.
    Delay,
}

/// How long an injected [`FaultKind::Delay`] sleeps.
pub const DELAY_MILLIS: u64 = 25;

impl FaultKind {
    /// The stable lowercase name used by `--inject` and error records.
    pub fn slug(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::NanMetric => "nan",
            FaultKind::Delay => "delay",
        }
    }

    fn from_slug(s: &str) -> Option<Self> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "nan" => Some(FaultKind::NanMetric),
            "delay" => Some(FaultKind::Delay),
            _ => None,
        }
    }
}

/// One injection rule: a fault kind and its per-cell probability.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// What to inject.
    pub kind: FaultKind,
    /// Probability in `[0, 1]` that a given cell is hit (decided by
    /// coordinate hash, not an RNG — see the module docs).
    pub probability: f64,
}

/// A deterministic fault-injection plan, carried by
/// `scenario::RunOptions::faults`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every per-cell decision hash.
    pub seed: u64,
    /// The injection rules, evaluated in order (first hit wins).
    pub rules: Vec<FaultRule>,
    /// If `true`, faults fire on every attempt (retry exhaustion); if
    /// `false` (default), only on a cell's first attempt (retry recovery).
    pub sticky: bool,
}

impl FaultPlan {
    /// A plan with one rule.
    pub fn single(kind: FaultKind, probability: f64, seed: u64) -> Self {
        Self {
            seed,
            rules: vec![FaultRule { kind, probability }],
            sticky: false,
        }
    }

    /// Marks the plan sticky (faults fire on every attempt).
    pub fn sticky(mut self) -> Self {
        self.sticky = true;
        self
    }

    /// Parses the `--inject` specification: comma-separated `KIND=PROB`
    /// pairs, e.g. `panic=0.5,nan=0.1`. Kinds: `panic`, `nan`, `delay`.
    ///
    /// # Errors
    ///
    /// Returns a description when a kind is unknown or a probability does
    /// not parse or lies outside `[0, 1]`.
    pub fn parse(spec: &str, seed: u64, sticky: bool) -> Result<Self, String> {
        let mut rules = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind_s, prob_s) = part
                .split_once('=')
                .ok_or_else(|| format!("--inject wants KIND=PROB, got {part:?}"))?;
            let kind = FaultKind::from_slug(kind_s.trim()).ok_or_else(|| {
                format!("unknown fault kind {kind_s:?}; known: panic, nan, delay")
            })?;
            let probability: f64 = prob_s
                .trim()
                .parse()
                .map_err(|e| format!("bad probability {prob_s:?} for {kind_s}: {e}"))?;
            if !(0.0..=1.0).contains(&probability) {
                return Err(format!(
                    "probability for {kind_s} must be in [0, 1], got {probability}"
                ));
            }
            rules.push(FaultRule { kind, probability });
        }
        if rules.is_empty() {
            return Err("--inject wants at least one KIND=PROB pair".to_string());
        }
        Ok(Self {
            seed,
            rules,
            sticky,
        })
    }

    /// Decides which fault (if any) hits the cell identified by `key` on
    /// the given attempt. Pure and platform-independent: the decision
    /// depends only on `(self, key, attempt)`.
    pub fn decide(&self, key: &str, attempt: u32) -> Option<FaultKind> {
        if attempt > 0 && !self.sticky {
            return None;
        }
        for rule in &self.rules {
            let h = fnv1a64(&[
                &self.seed.to_le_bytes(),
                key.as_bytes(),
                &[match rule.kind {
                    FaultKind::Panic => 1u8,
                    FaultKind::NanMetric => 2,
                    FaultKind::Delay => 3,
                }],
            ]);
            // Upper 53 bits → uniform in [0, 1); exact in f64.
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            if unit < rule.probability {
                return Some(rule.kind);
            }
        }
        None
    }
}

/// 64-bit FNV-1a over a sequence of byte slices — the workspace's one
/// deterministic, platform-independent hash, shared by the fault decision
/// above and the journal's code-version fingerprint.
pub fn fnv1a64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Delimit parts so ("ab","c") and ("a","bc") hash differently.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_probability_bounded() {
        let plan = FaultPlan::single(FaultKind::Panic, 0.5, 42);
        let keys: Vec<String> = (0..200).map(|i| format!("model=m{i}|point=p0")).collect();
        let hits: Vec<bool> = keys.iter().map(|k| plan.decide(k, 0).is_some()).collect();
        // Re-deciding gives the same answers.
        for (k, &hit) in keys.iter().zip(&hits) {
            assert_eq!(plan.decide(k, 0).is_some(), hit);
        }
        let count = hits.iter().filter(|&&h| h).count();
        assert!(
            (40..160).contains(&count),
            "0.5 probability hit {count}/200 cells"
        );
        // Probability 0 and 1 are exact.
        let never = FaultPlan::single(FaultKind::Panic, 0.0, 42);
        let always = FaultPlan::single(FaultKind::Panic, 1.0, 42);
        for k in &keys {
            assert_eq!(never.decide(k, 0), None);
            assert_eq!(always.decide(k, 0), Some(FaultKind::Panic));
        }
    }

    #[test]
    fn non_sticky_fires_only_on_the_first_attempt() {
        let plan = FaultPlan::single(FaultKind::Panic, 1.0, 7);
        assert_eq!(plan.decide("cell", 0), Some(FaultKind::Panic));
        assert_eq!(plan.decide("cell", 1), None);
        let sticky = plan.sticky();
        assert_eq!(sticky.decide("cell", 0), Some(FaultKind::Panic));
        assert_eq!(sticky.decide("cell", 3), Some(FaultKind::Panic));
    }

    #[test]
    fn seeds_decorrelate_cells() {
        // Different seeds must produce different hit sets at p=0.5.
        let keys: Vec<String> = (0..64).map(|i| format!("cell{i}")).collect();
        let hit_set = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::single(FaultKind::Panic, 0.5, seed);
            keys.iter().map(|k| plan.decide(k, 0).is_some()).collect()
        };
        assert_ne!(hit_set(1), hit_set(2));
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let plan = FaultPlan::parse("panic=0.5, nan=0.25", 9, true).expect("parses");
        assert_eq!(plan.seed, 9);
        assert!(plan.sticky);
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].kind, FaultKind::Panic);
        assert_eq!(plan.rules[1].probability, 0.25);
        assert!(FaultPlan::parse("explode=0.5", 0, false).is_err());
        assert!(FaultPlan::parse("panic=1.5", 0, false).is_err());
        assert!(FaultPlan::parse("panic", 0, false).is_err());
        assert!(FaultPlan::parse("", 0, false).is_err());
    }

    #[test]
    fn fnv_delimits_parts() {
        assert_ne!(fnv1a64(&[b"ab", b"c"]), fnv1a64(&[b"a", b"bc"]));
        assert_ne!(fnv1a64(&[b"a"]), fnv1a64(&[b"a", b""]));
    }
}
