//! Shared harness utilities for the figure/table regeneration binaries and
//! the performance benchmarks.
//!
//! Every table and figure of the paper's evaluation is a **registered
//! scenario** of the declarative experiment API in [`scenario`]: an
//! `Experiment` (named axes × per-cell eval × declared reductions)
//! executed by one shared runner and rendered as text, JSON or CSV. The
//! `diva-report` binary drives the registry (`diva-report --list`); the
//! per-figure binaries in `src/bin/` are thin shims over
//! [`scenario::run`] kept for compatibility.
//!
//! This library also hosts the other shared pieces: the batch-size
//! policy, aligned table printing, a parallel runner backed by the
//! workspace-wide thread pool, a small measurement harness (`harness`)
//! for the `cargo bench` targets, and the `BENCH_perf.json` emitter
//! (`perf`) that records compute-backend throughput so later PRs have a
//! trajectory to regress against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod faults;
pub mod harness;
pub mod perf;
pub mod scenario;

use diva_workload::{Algorithm, ModelSpec};

/// TPUv3 HBM capacity (paper Table II / Section III-A): 16 GB.
pub const HBM_CAPACITY: u64 = 16 * (1 << 30);

/// The paper's batch-size policy (Figure 5 caption): every algorithm runs
/// with the maximum power-of-two mini-batch that *vanilla DP-SGD* can fit
/// in 16 GB, so all three algorithms are compared at identical batch sizes.
pub fn paper_batch(model: &ModelSpec) -> u64 {
    model.max_batch_pow2(Algorithm::DpSgd, HBM_CAPACITY).max(1)
}

/// Prints an aligned text table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(rule));
    for row in rows {
        line(row);
    }
}

/// Formats a float with `prec` decimals.
pub fn fmt(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a value as a multiplier, e.g. "3.61x".
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats bytes with a binary-unit suffix.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

/// Runs `f` over every item and returns results in input order.
///
/// Work is fanned out over the workspace-wide **keep-alive** pool
/// (`diva_tensor::parallel`), *not* ad-hoc threads: the figure binaries run
/// alongside the parallel compute backend, and a second thread source would
/// oversubscribe the cores the GEMM workers already occupy. The pool is
/// prewarmed to the width this call will actually resolve to (the
/// installed `Backend` override or the process default, capped by the item
/// count — never more), so a figure binary's first sweep doesn't pay
/// thread-spawn latency; the same parked workers then serve every later
/// region. Nested calls (per-model simulations here, GEMM M-splits and
/// per-example backward fan-outs inside them) are scheduled
/// hierarchically on the same pool — inner tasks run on idle workers or
/// inline on the waiting submitter, never on threads² ad-hoc threads —
/// and task-to-data assignment stays fixed pre-execution, so results are
/// byte-identical whatever gets stolen where.
pub fn run_parallel<T, I, F>(items: Vec<I>, f: F) -> Vec<T>
where
    T: Send,
    I: Sync,
    F: Fn(&I) -> T + Sync,
{
    diva_tensor::parallel::prewarm(diva_tensor::parallel::effective_threads().min(items.len()));
    diva_tensor::parallel::par_map(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_workload::zoo;

    #[test]
    fn paper_batches_are_modest_for_dp_sgd() {
        // The whole point of Section III-A: DP-SGD fits only small batches.
        for m in zoo::all_models() {
            let b = paper_batch(&m);
            assert!(b >= 1, "{}", m.name);
            // LSTM-small (0.4 M params) legitimately fits batch 8192.
            assert!(b <= 16384, "{} allows suspicious batch {b}", m.name);
        }
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let items: Vec<u64> = (0..16).collect();
        let out = run_parallel(items.clone(), |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512.0 B");
        assert_eq!(fmt_bytes(16 * (1 << 30)), "16.0 GiB");
    }
}
