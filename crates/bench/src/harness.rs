//! A small measurement harness for the `cargo bench` targets.
//!
//! The approved dependency set has no criterion, so the bench targets are
//! `harness = false` binaries built on this module. The protocol follows
//! criterion's shape at a fraction of the machinery: calibrate an iteration
//! count from a warm-up, collect several timed samples, report the median
//! (medians are robust to the scheduling noise of shared machines).
//!
//! `DIVA_BENCH_SECS` scales the per-benchmark time budget (default 1.0,
//! split between warm-up and sampling); CI sets it low to smoke-test the
//! bench targets without burning minutes.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark; the median is reported.
const SAMPLES: usize = 5;

/// One benchmark's measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Full benchmark id, `suite/name`.
    pub name: String,
    /// Median wall-clock seconds per iteration.
    pub secs_per_iter: f64,
    /// Iterations per timed sample.
    pub iters: u64,
}

impl Measurement {
    /// Iterations per second implied by the median time.
    pub fn per_second(&self) -> f64 {
        1.0 / self.secs_per_iter
    }
}

/// A named group of benchmarks; construct one per bench target.
pub struct Harness {
    suite: String,
    budget: Duration,
    results: Vec<Measurement>,
}

impl Harness {
    /// Creates a harness titled `suite`, reading the time budget from
    /// `DIVA_BENCH_SECS` (default one second per benchmark).
    pub fn new(suite: &str) -> Self {
        let secs = std::env::var("DIVA_BENCH_SECS")
            .ok()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .filter(|&s| s > 0.0)
            .unwrap_or(1.0);
        println!("== bench suite: {suite} (budget {secs:.2}s/benchmark) ==");
        Self {
            suite: suite.to_string(),
            budget: Duration::from_secs_f64(secs),
            results: Vec::new(),
        }
    }

    /// Measures `f`, printing and recording the result. The closure's
    /// return value is passed through [`black_box`] so the work is not
    /// optimized away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &mut Self {
        // Warm-up: run for ~1/5 of the budget to fill caches and estimate
        // the per-iteration cost.
        let warm_budget = self.budget / 5;
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warm_budget || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let est = start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size each timed sample at 1/SAMPLES of the remaining budget.
        let sample_secs = self.budget.as_secs_f64() * 0.8 / SAMPLES as f64;
        let iters = ((sample_secs / est) as u64).max(1);
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = samples[SAMPLES / 2];
        let full = format!("{}/{name}", self.suite);
        println!(
            "{full:<48} {:>12}   ({iters} iters/sample)",
            fmt_time(median)
        );
        self.results.push(Measurement {
            name: full,
            secs_per_iter: median,
            iters,
        });
        self
    }

    /// All measurements so far, in execution order.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Looks up a measurement by its short name within the suite.
    pub fn get(&self, name: &str) -> Option<&Measurement> {
        let full = format!("{}/{name}", self.suite);
        self.results.iter().find(|m| m.name == full)
    }
}

/// Formats a duration in engineering units.
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_records() {
        std::env::set_var("DIVA_BENCH_SECS", "0.02");
        let mut h = Harness::new("selftest");
        h.bench("noop", || 1 + 1);
        let m = h.get("noop").expect("measurement recorded");
        assert!(m.secs_per_iter > 0.0);
        assert!(m.iters >= 1);
        std::env::remove_var("DIVA_BENCH_SECS");
    }

    #[test]
    fn time_formatting_spans_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }
}
