//! Section III-A: max mini-batch per model and algorithm — a legacy shim
//! over the registered `maxbatch` scenario (`diva-report maxbatch`).

fn main() {
    diva_bench::scenario::run("maxbatch");
}
