//! Section III-A: maximum mini-batch size per model and training algorithm
//! under TPUv3's 16 GB HBM (the paper quotes e.g. SGD 8192 vs DP-SGD 32 for
//! ResNet-152, and 1024 vs 8 for BERT-base).

use diva_bench::{fmt_bytes, print_table, HBM_CAPACITY};
use diva_workload::{zoo, Algorithm};

fn main() {
    let rows: Vec<Vec<String>> = zoo::all_models()
        .iter()
        .map(|m| {
            let mut row = vec![m.name.clone(), fmt_bytes(m.params() * 4)];
            for alg in Algorithm::ALL {
                row.push(m.max_batch_pow2(alg, HBM_CAPACITY).to_string());
            }
            let ratio = m.max_batch_pow2(Algorithm::Sgd, HBM_CAPACITY) as f64
                / m.max_batch_pow2(Algorithm::DpSgd, HBM_CAPACITY).max(1) as f64;
            row.push(format!("{ratio:.0}x"));
            row
        })
        .collect();
    print_table(
        "Max power-of-two mini-batch under 16 GB HBM (paper Section III-A)",
        &[
            "model",
            "weights",
            "SGD",
            "DP-SGD",
            "DP-SGD(R)",
            "SGD/DP-SGD",
        ],
        &rows,
    );
}
