//! Figure 13: end-to-end speedup vs the WS systolic baseline — a legacy
//! shim over the registered `fig13` scenario (`diva-report fig13`).

fn main() {
    diva_bench::scenario::run("fig13");
}
