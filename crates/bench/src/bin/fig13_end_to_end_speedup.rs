//! Figure 13: end-to-end speedup vs the WS systolic baseline.
//!
//! Design points: WS (baseline), OS+PPU, DiVa without PPU, DiVa — all
//! running DP-SGD(R) — plus non-private SGD on WS and DiVa as reference
//! points. (Paper headline: DiVa avg 3.6× / max 7.3× over WS; DiVa-SGD
//! ≈ 1.6× over WS-SGD; DiVa-DP reaches ~75% of WS-SGD.)

use diva_bench::{fmt_x, paper_batch, print_table, run_parallel};
use diva_core::{geomean, Accelerator, DesignPoint};
use diva_workload::{zoo, Algorithm, ModelSpec};

fn main() {
    let accels: Vec<Accelerator> = DesignPoint::ALL
        .iter()
        .map(|&dp| Accelerator::from_design_point(dp))
        .collect();
    let models = zoo::all_models();

    let results = run_parallel(models, |model: &ModelSpec| {
        let batch = paper_batch(model);
        let dp_secs: Vec<f64> = accels
            .iter()
            .map(|a| a.run(model, Algorithm::DpSgdReweighted, batch).seconds)
            .collect();
        let sgd_ws = accels[0].run(model, Algorithm::Sgd, batch).seconds;
        let sgd_diva = accels[3].run(model, Algorithm::Sgd, batch).seconds;
        (model.name.clone(), batch, dp_secs, sgd_ws, sgd_diva)
    });

    let mut rows = Vec::new();
    let mut diva_speedups = Vec::new();
    let mut diva_noppu_speedups = Vec::new();
    let mut os_speedups = Vec::new();
    let mut sgd_speedups = Vec::new();
    let mut dp_vs_sgd = Vec::new();
    for (name, batch, dp, sgd_ws, sgd_diva) in &results {
        let base = dp[0];
        rows.push(vec![
            name.clone(),
            batch.to_string(),
            fmt_x(base / dp[1]),
            fmt_x(base / dp[2]),
            fmt_x(base / dp[3]),
            fmt_x(base / sgd_ws),
            fmt_x(base / sgd_diva),
        ]);
        os_speedups.push(base / dp[1]);
        diva_noppu_speedups.push(base / dp[2]);
        diva_speedups.push(base / dp[3]);
        sgd_speedups.push(sgd_ws / sgd_diva);
        dp_vs_sgd.push(sgd_ws / dp[3]); // DiVa DP time vs WS SGD time
    }

    print_table(
        "Figure 13: speedup over the WS baseline (DP-SGD(R) unless noted)",
        &[
            "model",
            "batch",
            "OS+PPU",
            "DiVa w/o PPU",
            "DiVa",
            "SGD on WS",
            "SGD on DiVa",
        ],
        &rows,
    );

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nDiVa speedup vs WS:          avg {:.1}x, geomean {:.1}x, max {:.1}x (paper: avg 3.6x, max 7.3x)",
        avg(&diva_speedups),
        geomean(&diva_speedups),
        max(&diva_speedups)
    );
    println!(
        "DiVa w/o PPU speedup:        avg {:.1}x (the PPU ablation)",
        avg(&diva_noppu_speedups)
    );
    println!("OS+PPU speedup:              avg {:.1}x", avg(&os_speedups));
    println!(
        "DiVa-SGD vs WS-SGD:          avg {:.1}x (paper: ~1.6x)",
        avg(&sgd_speedups)
    );
    println!(
        "DiVa DP-SGD(R) reaches {:.0}% of WS non-private SGD throughput (paper: ~75%)",
        100.0 * avg(&dp_vs_sgd)
    );
}
