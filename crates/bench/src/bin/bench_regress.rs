//! Bench-smoke regression gate: diffs the conv / DP-step rows of a fresh
//! `BENCH_perf.json` against the committed record and fails on a >25%
//! throughput regression on the same backend.
//!
//! Usage: `bench_regress <baseline.json> <current.json> [threshold]`
//! (threshold is the allowed fractional regression, default `0.25`; also
//! settable via `DIVA_BENCH_REGRESS_THRESHOLD`).
//!
//! Exit codes distinguish the failure modes so CI can triage without
//! parsing stderr: `0` all gated rows present and within threshold, `1`
//! at least one row regressed, `2` usage/parse error or no gated rows,
//! `3` gated rows missing from the current run (no regression among the
//! rows that were present). A regression wins over a missing row when
//! both occur — it is the more actionable signal.
//!
//! Comparison metric: the *relative* speedup columns
//! (`speedup_vs_scalar` / `speedup_vs_naive`), not wall-clock. Both sides
//! of each speedup are measured in the same process on the same host, so
//! the ratio survives the heterogeneous CI runners that absolute
//! milliseconds do not. Gated rows are the matmul, convolution, DP-step,
//! accounting-throughput and serve-latency records (names containing
//! `matmul`, `conv`, `step`, `eps` or `serve`). The serve rows gate on
//! `speedup_vs_uncached` — the memo-cache hit's edge over a cold request,
//! measured against the same in-process server. The nested-scaling step
//! row gates on `speedup_vs_nonested` — nested parallelism on versus off
//! inside an outer region, same process, same host.

use diva_bench::perf::{parse_perf_json, PerfRecord};

/// Metrics eligible as the throughput proxy, in preference order.
const SPEEDUP_METRICS: [&str; 5] = [
    "speedup_vs_scalar",
    "speedup_vs_naive",
    "speedup_vs_uncached",
    "speedup_vs_nomemo",
    "speedup_vs_nonested",
];

fn gated(record: &PerfRecord) -> bool {
    (record.name.contains("matmul")
        || record.name.contains("conv")
        || record.name.contains("step")
        || record.name.contains("eps")
        || record.name.contains("serve")
        || record.name.contains("explore"))
        && SPEEDUP_METRICS
            .iter()
            .any(|m| record.metric_value(m).is_some())
}

fn speedup(record: &PerfRecord) -> Option<(&'static str, f64)> {
    SPEEDUP_METRICS
        .iter()
        .find_map(|&m| record.metric_value(m).map(|v| (m, v)))
}

fn load(path: &str) -> Vec<PerfRecord> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_regress: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_perf_json(&text).unwrap_or_else(|e| {
        eprintln!("bench_regress: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path) = match args.as_slice() {
        [b, c] | [b, c, _] => (b.as_str(), c.as_str()),
        _ => {
            eprintln!("usage: bench_regress <baseline.json> <current.json> [threshold]");
            std::process::exit(2);
        }
    };
    let threshold: f64 = args
        .get(2)
        .cloned()
        .or_else(|| std::env::var("DIVA_BENCH_REGRESS_THRESHOLD").ok())
        .map(|s| s.parse().expect("threshold must be a number"))
        .unwrap_or(0.25);

    let baseline = load(baseline_path);
    let current = load(current_path);

    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    let mut checked = 0usize;
    println!(
        "{:<36} {:<10} {:>10} {:>10} {:>8}",
        "record", "backend", "baseline", "current", "ratio"
    );
    for base in baseline.iter().filter(|r| gated(r)) {
        let backend = base.tag_value("backend").unwrap_or("");
        // The scalar/naive/uncached/nomemo baseline rows' speedup is 1.0
        // by construction — nothing to gate.
        if backend == "scalar" || backend == "naive" || backend == "uncached" || backend == "nomemo"
        {
            continue;
        }
        let Some((metric, base_speedup)) = speedup(base) else {
            continue;
        };
        let Some(cur) = current
            .iter()
            .find(|r| r.name == base.name && r.tag_value("backend") == Some(backend))
        else {
            missing.push(format!(
                "{} [{}]: row missing from current run (renamed benchmark, or a \
                 feature-gated row in the committed record?)",
                base.name, backend
            ));
            continue;
        };
        let Some(cur_speedup) = cur.metric_value(metric) else {
            missing.push(format!(
                "{} [{}]: current run lost metric {metric} (present in the baseline row)",
                cur.name, backend
            ));
            continue;
        };
        checked += 1;
        let ratio = cur_speedup / base_speedup;
        println!(
            "{:<36} {:<10} {:>9.2}x {:>9.2}x {:>8.3}",
            base.name, backend, base_speedup, cur_speedup, ratio
        );
        if ratio < 1.0 - threshold {
            regressions.push(format!(
                "{} [{}]: {metric} regressed {:.2}x -> {:.2}x ({:.0}% below baseline, \
                 allowed {:.0}%)",
                base.name,
                backend,
                base_speedup,
                cur_speedup,
                (1.0 - ratio) * 100.0,
                threshold * 100.0
            ));
        }
    }

    // Report collected failures before any "nothing was checked" verdict,
    // so an all-rows-missing current run surfaces the real diagnosis
    // instead of a misleading complaint about the baseline.
    if !regressions.is_empty() || !missing.is_empty() {
        if !regressions.is_empty() {
            eprintln!("\nbench_regress: {} regression(s):", regressions.len());
            for f in &regressions {
                eprintln!("  {f}");
            }
        }
        if !missing.is_empty() {
            eprintln!("\nbench_regress: {} missing row(s):", missing.len());
            for f in &missing {
                eprintln!("  {f}");
            }
        }
        eprintln!(
            "\nhow to read this: each gated row's speedup is the ratio of the scalar/naive\n\
             baseline's time to the optimized path's time, with BOTH sides measured in the\n\
             same process on the same host — so a drop means the optimized path lost ground\n\
             relative to its own baseline, not that the machine is slow. Likely causes, in\n\
             order: (1) a change to the blocked GEMM, packing, patch-reuse or pool code\n\
             made the optimized path genuinely slower (fix it, or re-record\n\
             BENCH_perf.json with justification in the PR); (2) the scalar reference was\n\
             accidentally optimized, shrinking the ratio (check gemm_reference /\n\
             set_scalar_reference_mode call sites); (3) a missing row means the bench\n\
             stopped emitting it — usually a renamed benchmark or a feature-gated row\n\
             leaking into the committed record. See ARCHITECTURE.md ('Benchmarks and the\n\
             regression gate') for the full contract."
        );
        // Regressions exit 1; a missing-rows-only failure exits 3 so CI
        // can tell "the code got slower" from "the record went stale".
        std::process::exit(if regressions.is_empty() { 3 } else { 1 });
    }
    if checked == 0 {
        eprintln!("bench_regress: no gated conv/DP-step rows found in {baseline_path}");
        std::process::exit(2);
    }
    println!(
        "\nbench_regress: {checked} rows within {:.0}% of the committed record",
        threshold * 100.0
    );
}
