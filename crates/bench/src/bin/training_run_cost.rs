//! Capstone: full private-training-run cost — a legacy shim over the
//! registered `training_run_cost` scenario
//! (`diva-report training_run_cost`).

fn main() {
    diva_bench::scenario::run("training_run_cost");
}
