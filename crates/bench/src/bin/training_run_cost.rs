//! Capstone: the practitioner's view of the paper's result. For a
//! CIFAR-10-scale private training run (50k examples, 100 epochs, σ = 1.1,
//! δ = 1e-5), what does each model cost in hours, watt-hours and ε on the
//! TPU-like WS baseline versus DiVa?

use diva_bench::{fmt, paper_batch, print_table, run_parallel};
use diva_core::{Accelerator, DesignPoint, TrainingRunPlan};
use diva_workload::{zoo, Algorithm, ModelSpec};

fn main() {
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline);
    let diva = Accelerator::from_design_point(DesignPoint::Diva);

    let results = run_parallel(zoo::all_models(), |model: &ModelSpec| {
        let batch = paper_batch(model);
        let plan = TrainingRunPlan {
            dataset_size: 50_000,
            batch,
            epochs: 100,
            noise_multiplier: 1.1,
            delta: 1e-5,
        };
        let a = ws.estimate_training_run(model, Algorithm::DpSgdReweighted, &plan);
        let b = diva.estimate_training_run(model, Algorithm::DpSgdReweighted, &plan);
        (model.name.clone(), batch, a, b)
    });

    let mut rows = Vec::new();
    for (name, batch, a, b) in &results {
        rows.push(vec![
            name.clone(),
            batch.to_string(),
            fmt(a.hours(), 2),
            fmt(b.hours(), 2),
            fmt(a.watt_hours(), 1),
            fmt(b.watt_hours(), 1),
            fmt(a.epsilon.unwrap_or(f64::NAN), 2),
        ]);
    }
    print_table(
        "Training-run cost: 100 epochs of CIFAR-10-scale DP-SGD(R), sigma=1.1, delta=1e-5",
        &[
            "model",
            "batch",
            "WS (h)",
            "DiVa (h)",
            "WS (Wh)",
            "DiVa (Wh)",
            "epsilon",
        ],
        &rows,
    );
    println!(
        "\nEpsilon is a property of the algorithm, not the hardware: DiVa buys back the\n\
         wall-clock and energy that privacy costs, at identical (eps, delta)."
    );
}
