//! Table III: engine power/area and effective throughput — a legacy shim
//! over the registered `table3` scenario (`diva-report table3`).

fn main() {
    diva_bench::scenario::run("table3");
}
