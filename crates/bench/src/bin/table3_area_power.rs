//! Table III: power, area, and effective throughput (TFLOPS) normalized to
//! power and area for the three GEMM engines. Effective TFLOPS is measured
//! by running the full DP-SGD(R) workload suite through the simulator.

use diva_bench::{fmt, paper_batch, print_table};
use diva_core::{Accelerator, DesignPoint};
use diva_energy::{table_iii, SynthesisModel};
use diva_workload::{zoo, Algorithm};

fn main() {
    // Measure effective TFLOPS per engine over the whole suite.
    let designs = [
        DesignPoint::WsBaseline,
        DesignPoint::OsWithPpu,
        DesignPoint::Diva,
    ];
    let models = zoo::all_models();
    let mut effective = [0.0f64; 3];
    for (i, design) in designs.iter().enumerate() {
        let accel = Accelerator::from_design_point(*design);
        let mut flops = 0.0;
        let mut seconds = 0.0;
        for model in &models {
            let r = accel.run(model, Algorithm::DpSgdReweighted, paper_batch(model));
            flops += 2.0 * r.timing.total_macs() as f64;
            seconds += r.seconds;
        }
        effective[i] = flops / seconds / 1e12;
    }

    let cfg = DesignPoint::Diva.config();
    let rows_data = table_iii(&cfg, &SynthesisModel::calibrated(), effective);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.dataflow.label().to_string(),
                fmt(r.peak_tflops, 1),
                fmt(r.effective_tflops, 1),
                fmt(r.power_w, 1),
                fmt(r.area_mm2, 0),
                fmt(r.tflops_per_watt, 3),
                fmt(r.tflops_per_mm2, 3),
            ]
        })
        .collect();
    print_table(
        "Table III: engine power/area and effective throughput (DP-SGD(R) suite)",
        &[
            "engine",
            "peak TFLOPS",
            "eff TFLOPS",
            "power (W)",
            "area (mm^2)",
            "eff TFLOPS/W",
            "eff TFLOPS/mm^2",
        ],
        &rows,
    );
    println!(
        "\nDiVa vs WS: {:.1}x TFLOPS/W, {:.1}x TFLOPS/mm^2 (paper: 3.5x and 4.6x; paper's\n\
         measured effective TFLOPS were 1.2 / 0.9 / 6.6)",
        rows_data[2].tflops_per_watt / rows_data[0].tflops_per_watt,
        rows_data[2].tflops_per_mm2 / rows_data[0].tflops_per_mm2
    );
    let s = SynthesisModel::calibrated();
    println!(
        "Area overhead vs WS: engine {:.1}%, +PPU {:.1}% (paper: 19.6% and +4.6%)",
        100.0 * s.area_overhead_vs_ws(false),
        100.0 * (s.area_overhead_vs_ws(true) - s.area_overhead_vs_ws(false))
    );
}
