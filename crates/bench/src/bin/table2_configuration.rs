//! Table II: the DiVa architecture configuration — a legacy shim over the
//! registered `table2` scenario (`diva-report table2`).

fn main() {
    diva_bench::scenario::run("table2");
}
