//! Table II: the DiVa architecture configuration.

use diva_bench::{fmt_bytes, print_table};
use diva_core::DesignPoint;

fn main() {
    let cfg = DesignPoint::Diva.config();
    let rows = vec![
        vec!["PE array dimension".into(), format!("{}", cfg.pe)],
        vec![
            "PE operating frequency".into(),
            format!("{:.0} MHz", cfg.freq_hz / 1e6),
        ],
        vec!["On-chip SRAM size".into(), fmt_bytes(cfg.sram_bytes)],
        vec!["Memory channels".into(), cfg.memory.channels.to_string()],
        vec![
            "Memory bandwidth".into(),
            format!("{:.0} GB/sec", cfg.memory.bandwidth_bytes_per_sec / 1e9),
        ],
        vec![
            "Memory access latency".into(),
            format!("{} cycles", cfg.memory.access_latency_cycles),
        ],
        vec![
            "Output drain rate (R)".into(),
            format!("{} rows/cycle", cfg.drain_rows_per_cycle),
        ],
        vec![
            "Peak throughput".into(),
            format!("{:.1} TFLOPS", cfg.peak_tflops()),
        ],
        vec!["Post-processing unit".into(), cfg.has_ppu.to_string()],
    ];
    print_table(
        "Table II: DiVa architecture configuration",
        &["parameter", "value"],
        &rows,
    );
}
