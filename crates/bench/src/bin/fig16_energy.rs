//! Figure 16: chip-wide energy consumption of one DP-SGD(R) training step,
//! normalized to the WS systolic baseline (paper: DiVa averages 2.6×, max
//! 4.6× lower energy across the full suite).

use diva_bench::{fmt, paper_batch, print_table};
use diva_core::{Accelerator, AcceleratorConfig, Dataflow, DesignPoint};
use diva_workload::{zoo, Algorithm};

fn design_points() -> Vec<(String, Accelerator)> {
    let mut os_no_ppu: AcceleratorConfig =
        AcceleratorConfig::tpu_v3_like(Dataflow::OutputStationary);
    os_no_ppu.has_ppu = false;
    vec![
        (
            "WS".into(),
            Accelerator::from_design_point(DesignPoint::WsBaseline),
        ),
        (
            "OS w/o PPU".into(),
            Accelerator::from_config("OS w/o PPU", os_no_ppu).expect("valid config"),
        ),
        (
            "OS+PPU".into(),
            Accelerator::from_design_point(DesignPoint::OsWithPpu),
        ),
        (
            "DiVa w/o PPU".into(),
            Accelerator::from_design_point(DesignPoint::DivaNoPpu),
        ),
        (
            "DiVa".into(),
            Accelerator::from_design_point(DesignPoint::Diva),
        ),
    ]
}

fn main() {
    let accels = design_points();
    let models = zoo::all_models();

    let mut rows = Vec::new();
    let mut diva_reductions = Vec::new();
    for model in &models {
        let batch = paper_batch(model);
        let energies: Vec<_> = accels
            .iter()
            .map(|(_, a)| {
                let r = a.run(model, Algorithm::DpSgdReweighted, batch);
                r.energy
            })
            .collect();
        let ws_total = energies[0].total();
        for ((label, _), e) in accels.iter().zip(&energies) {
            rows.push(vec![
                model.name.clone(),
                label.clone(),
                fmt(e.total() / ws_total, 3),
                fmt(e.engine_j / ws_total, 3),
                fmt(e.ppu_j / ws_total, 3),
                fmt(e.sram_j / ws_total, 3),
                fmt(e.dram_j / ws_total, 3),
                fmt(e.uncore_j / ws_total, 3),
            ]);
        }
        diva_reductions.push(ws_total / energies[4].total());
    }
    print_table(
        "Figure 16: DP-SGD(R) step energy (normalized to WS total)",
        &[
            "model", "design", "total", "engine", "ppu", "sram", "dram", "uncore",
        ],
        &rows,
    );
    let avg = diva_reductions.iter().sum::<f64>() / diva_reductions.len() as f64;
    let max = diva_reductions.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nDiVa energy reduction vs WS: avg {avg:.1}x, max {max:.1}x (paper: avg 2.6x, max 4.6x)"
    );
}
