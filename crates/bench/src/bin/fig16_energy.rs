//! Figure 16: chip-wide step energy normalized to WS — a legacy shim over
//! the registered `fig16` scenario (`diva-report fig16`).

fn main() {
    diva_bench::scenario::run("fig16");
}
