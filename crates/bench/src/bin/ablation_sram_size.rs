//! Ablation: SRAM capacity sweep — a legacy shim over the registered
//! `ablation_sram` scenario (`diva-report ablation_sram`).

fn main() {
    diva_bench::scenario::run("ablation_sram");
}
