//! Ablation: how much of the baseline's behaviour depends on the 16 MB
//! on-chip SRAM (Table II)? Sweeps SRAM capacity and reports DP-SGD(R)
//! step time and DRAM traffic on the WS baseline and on DiVa.

use diva_bench::{fmt, fmt_bytes, print_table};
use diva_core::{Accelerator, DesignPoint};
use diva_workload::{zoo, Algorithm};

fn main() {
    let model = zoo::resnet50();
    let batch = 64;
    let sizes: [u64; 5] = [2 << 20, 4 << 20, 8 << 20, 16 << 20, 64 << 20];

    let mut rows = Vec::new();
    for dp in [DesignPoint::WsBaseline, DesignPoint::Diva] {
        for &sram in &sizes {
            let mut cfg = dp.config();
            cfg.sram_bytes = sram;
            let accel =
                Accelerator::from_config(format!("{} {}", dp.label(), fmt_bytes(sram)), cfg)
                    .expect("valid config");
            let r = accel.run(&model, Algorithm::DpSgdReweighted, batch);
            rows.push(vec![
                dp.label().to_string(),
                fmt_bytes(sram),
                fmt(1e3 * r.seconds, 2),
                fmt_bytes(r.timing.total_dram_bytes()),
            ]);
        }
    }
    print_table(
        "Ablation: SRAM capacity sweep (ResNet-50, DP-SGD(R), batch 64)",
        &["design", "SRAM", "step (ms)", "DRAM traffic"],
        &rows,
    );
    println!(
        "\nSmaller SRAM forces operand re-streaming (more DRAM traffic); DiVa's PPU\n\
         fusion makes it far less sensitive than the WS baseline, whose post-processing\n\
         spills scale with gradient size, not SRAM."
    );
}
