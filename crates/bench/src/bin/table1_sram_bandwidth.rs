//! Table I: on-chip SRAM read/write bandwidth requirements per dataflow.

use diva_arch::{sram_bandwidth, Dataflow, PeArray};
use diva_bench::print_table;

fn main() {
    let pe = PeArray::new(128, 128);
    let rows: Vec<Vec<String>> = Dataflow::ALL
        .iter()
        .map(|&df| {
            let bw = sram_bandwidth(df, pe, 8, 8);
            vec![
                df.label().to_string(),
                format!("{} B/clk", bw.lhs_read),
                format!("{} B/clk", bw.rhs_read),
                format!("{} B/clk", bw.output_write),
                format!("{} B/clk", bw.total()),
            ]
        })
        .collect();
    print_table(
        "Table I: SRAM bandwidth requirements (128x128 PEs, BF16 in / FP32 out)",
        &["dataflow", "LHS read", "RHS read", "output write", "total"],
        &rows,
    );
    println!(
        "\nWS total = (2*PE_H + 20*PE_W) B/clk; OS & outer-product = (2*PE_H + 34*PE_W) B/clk,\n\
         the paper's Section IV-D design-overhead trade-off."
    );
}
