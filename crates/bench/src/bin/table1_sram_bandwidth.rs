//! Table I: SRAM bandwidth requirements per dataflow — a legacy shim over
//! the registered `table1` scenario (`diva-report table1`).

fn main() {
    diva_bench::scenario::run("table1");
}
