//! Ablation: would shadow accumulator latches (drain/compute overlap) be
//! worth it? DiVa drains output tiles serially at R rows/cycle (Section
//! IV-C); double-buffered accumulators would hide that drain behind the
//! next tile's compute at the cost of a second 32-bit latch per PE.

use diva_bench::{fmt, fmt_x, paper_batch, print_table, run_parallel};
use diva_core::{Accelerator, DesignPoint};
use diva_workload::{zoo, Algorithm, ModelSpec};

fn main() {
    let baseline = Accelerator::from_design_point(DesignPoint::Diva);
    let mut overlap_cfg = DesignPoint::Diva.config();
    overlap_cfg.drain_overlap = true;
    let overlapped = Accelerator::from_config("DiVa+overlap", overlap_cfg).expect("valid config");

    let results = run_parallel(zoo::all_models(), |model: &ModelSpec| {
        let batch = paper_batch(model);
        let serial = baseline.run(model, Algorithm::DpSgdReweighted, batch);
        let ovl = overlapped.run(model, Algorithm::DpSgdReweighted, batch);
        (model.name.clone(), batch, serial.seconds, ovl.seconds)
    });

    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for (name, batch, serial, ovl) in &results {
        let gain = serial / ovl;
        gains.push(gain);
        rows.push(vec![
            name.clone(),
            batch.to_string(),
            fmt(1e3 * serial, 2),
            fmt(1e3 * ovl, 2),
            fmt_x(gain),
        ]);
    }
    print_table(
        "Ablation: drain/compute overlap (shadow accumulators), DP-SGD(R) on DiVa",
        &["model", "batch", "serial (ms)", "overlap (ms)", "gain"],
        &rows,
    );
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    println!(
        "\naverage gain: {avg:.2}x — the serial drain costs little at R = 8 because\n\
         K usually exceeds 128/R; overlap pays off only for the tiniest-K layers."
    );
}
