//! Ablation: drain/compute overlap (shadow accumulators) — a legacy shim
//! over the registered `ablation_drain_overlap` scenario
//! (`diva-report ablation_drain_overlap`).

fn main() {
    diva_bench::scenario::run("ablation_drain_overlap");
}
