//! Figure 17: DiVa vs NVIDIA V100/A100 on the GEMMs of DP-SGD's
//! backpropagation bottleneck (per-example weight gradients), with GPUs
//! running JAX-style batched kernels at FP32 (CUDA cores) or FP16 (tensor
//! cores). Speedups are normalized to V100 FP32.
//!
//! Paper headline: DiVa averages ~1.2×/1.0× vs V100/A100 tensor cores with
//! only 23.6%/9.5% of their peak FP16 throughput; MobileNet is the GPU-
//! friendly exception.

use diva_bench::{fmt_x, paper_batch, print_table, run_parallel};
use diva_core::{bottleneck_accel_seconds, bottleneck_gpu_seconds, Accelerator, DesignPoint};
use diva_gpu::{GpuModel, Precision};
use diva_workload::{zoo, ModelSpec};

fn main() {
    let diva = Accelerator::from_design_point(DesignPoint::Diva);
    let v100 = GpuModel::v100();
    let a100 = GpuModel::a100();
    let models = zoo::all_models();

    let results = run_parallel(models, |model: &ModelSpec| {
        let batch = paper_batch(model);
        let t = [
            bottleneck_gpu_seconds(model, batch, &v100, Precision::Fp32),
            bottleneck_gpu_seconds(model, batch, &v100, Precision::Fp16TensorCore),
            bottleneck_gpu_seconds(model, batch, &a100, Precision::Fp32),
            bottleneck_gpu_seconds(model, batch, &a100, Precision::Fp16TensorCore),
            bottleneck_accel_seconds(&diva, model, batch),
        ];
        (model.name.clone(), batch, t)
    });

    let mut rows = Vec::new();
    let mut vs_v100 = Vec::new();
    let mut vs_a100 = Vec::new();
    for (name, batch, t) in &results {
        let base = t[0]; // V100 FP32
        rows.push(vec![
            name.clone(),
            batch.to_string(),
            fmt_x(1.0),
            fmt_x(base / t[1]),
            fmt_x(base / t[2]),
            fmt_x(base / t[3]),
            fmt_x(base / t[4]),
        ]);
        vs_v100.push(t[1] / t[4]);
        vs_a100.push(t[3] / t[4]);
    }
    print_table(
        "Figure 17: DP-SGD bottleneck-GEMM speedup (normalized to V100 FP32)",
        &[
            "model",
            "batch",
            "V100 (FP32)",
            "V100 (FP16)",
            "A100 (FP32)",
            "A100 (FP16)",
            "DiVa (BF16)",
        ],
        &rows,
    );
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nDiVa vs V100 tensor cores: avg {:.2}x, max {:.1}x (paper: avg 1.2x, max 4.1x)",
        avg(&vs_v100),
        max(&vs_v100)
    );
    println!(
        "DiVa vs A100 tensor cores: avg {:.2}x, max {:.1}x (paper: avg 1.0x, max 3.4x)",
        avg(&vs_a100),
        max(&vs_a100)
    );
    println!(
        "DiVa peak is only 23.6% / 9.5% of V100 / A100 FP16 peak — winning by mapping,\n\
         not muscle (the paper's point). MobileNet favors the GPUs (batched micro-GEMMs)."
    );
}
