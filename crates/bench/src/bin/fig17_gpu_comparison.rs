//! Figure 17: DiVa vs V100/A100 on the DP-SGD bottleneck GEMMs — a legacy
//! shim over the registered `fig17` scenario (`diva-report fig17`).

fn main() {
    diva_bench::scenario::run("fig17");
}
