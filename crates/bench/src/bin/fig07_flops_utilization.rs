//! Figure 7: WS-baseline FLOPS utilization per GEMM class — a legacy shim
//! over the registered `fig07` scenario (`diva-report fig07`).

fn main() {
    diva_bench::scenario::run("fig07");
}
